#!/usr/bin/env bash
# Manifest/docs health smoke check (CI-runnable):
#  1. `cargo doc --no-deps` must emit zero warnings — every first-party
#     crate declares #![warn(missing_docs)], so an undocumented public
#     item anywhere fails this check.
#  2. The *whole workspace* is additionally held to a hard gate: with
#     RUSTDOCFLAGS="--deny missing_docs", missing docs on any public item
#     of any workspace crate — the ten spf-* crates, the façade, and the
#     vendored stand-ins — are a build error, not a grep.
#  3. The set-algebra doctests (Ipv4Set / Ipv6Set / CoverageMap rustdoc
#     examples) must run, so the examples stay executable, not decorative.
#  4. Every example must build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo doc --no-deps (expecting zero warnings)"
doc_log=$(cargo doc --no-deps 2>&1) || { echo "$doc_log"; exit 1; }
if echo "$doc_log" | grep -q "^warning"; then
    echo "$doc_log" | grep -B1 -A6 "^warning"
    echo "FAIL: cargo doc emitted warnings (missing docs or bad intra-doc links)"
    exit 1
fi

echo "== missing-docs hard gate, workspace-wide (--deny missing_docs)"
RUSTDOCFLAGS="--deny missing_docs" cargo doc --no-deps --workspace \
    --target-dir target/docs-gate

echo "== doctests on the spf-types public API (cargo test --doc)"
cargo test -q --doc -p spf-types -p lazy-gatekeepers

echo "== cargo build --examples"
cargo build --examples

echo "OK: docs are warning-free workspace-wide, the deny gate and doctests pass, all examples build"
