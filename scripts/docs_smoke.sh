#!/usr/bin/env bash
# Manifest/docs health smoke check (CI-runnable):
#  1. `cargo doc --no-deps` must emit zero warnings — every workspace
#     crate declares #![warn(missing_docs)], so an undocumented public
#     item anywhere fails this check.
#  2. The crawl-engine crates (`spf-crawler`, `spf-analyzer`) are held to
#     a hard gate: missing docs on any public item are a *build error*,
#     not a grep — their public surface documents the cache/dispatch
#     invariants DESIGN.md §3 depends on.
#  3. Every example must build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo doc --no-deps (expecting zero warnings)"
doc_log=$(cargo doc --no-deps 2>&1) || { echo "$doc_log"; exit 1; }
if echo "$doc_log" | grep -q "^warning"; then
    echo "$doc_log" | grep -B1 -A6 "^warning"
    echo "FAIL: cargo doc emitted warnings (missing docs or bad intra-doc links)"
    exit 1
fi

echo "== missing-docs hard gate for the crawl engine (spf-crawler, spf-analyzer)"
RUSTDOCFLAGS="--deny missing_docs" cargo doc --no-deps -p spf-crawler -p spf-analyzer \
    --target-dir target/docs-gate

echo "== cargo build --examples"
cargo build --examples

echo "OK: docs are warning-free, crawl-engine docs pass the deny gate, all examples build"
