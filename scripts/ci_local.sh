#!/usr/bin/env bash
# The full CI matrix, runnable locally — one command that exercises
# exactly what .github/workflows/ci.yml runs, so the tier-1 verify and CI
# cannot drift:
#
#   [build-and-test]  cargo build --release; compiler differential
#                     suites (fail-fast); cargo test -q;
#                     cargo build --benches --examples; docs smoke
#   [lint]            cargo clippy --all-targets -- -D warnings;
#                     cargo fmt --check
#   [bench-smoke]     scripts/bench_guard.sh (quick benches + regression
#                     gate against the committed BENCH_*.json)
#
# Pass --fast to skip the bench-smoke stage (the slowest one) during
# tight edit loops; CI always runs all three.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
    esac
done

echo "== [build-and-test] cargo build --release"
cargo build --release

# The compiler's fast differential suites first: a verdict-identity or
# residue-classification regression fails here in seconds instead of
# minutes into the full pass (compiler_stress, the socket-level grid,
# rides inside `cargo test -q` below).
echo "== [build-and-test] compiler differential suites"
cargo test -q --test proptest_compiler --test rfc_conformance

echo "== [build-and-test] cargo test -q"
cargo test -q

echo "== [build-and-test] cargo build --benches --examples"
cargo build --benches --examples

echo "== [build-and-test] docs smoke"
scripts/docs_smoke.sh

echo "== [lint] cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== [lint] cargo fmt --check"
cargo fmt --check

if [ "$FAST" = "1" ]; then
    echo "OK: build-and-test + lint green (bench-smoke skipped via --fast)"
else
    echo "== [bench-smoke] scripts/bench_guard.sh"
    scripts/bench_guard.sh
    echo "OK: full CI matrix green"
fi
