#!/usr/bin/env bash
# Bench-regression gate (CI `bench-smoke` job, and part of ci_local.sh):
# re-run the quick-mode benches and compare their guard points against
# the committed BENCH_2.json / BENCH_3.json / BENCH_4.json / BENCH_5.json
# / BENCH_6.json / BENCH_7.json / BENCH_8.json / BENCH_9.json /
# BENCH_10.json baselines.
#
# Every bench report carries `quick_points` — a small fixed configuration
# matrix measured at quick scale with the same plain best-of-N loop in
# both full and quick runs — so a smoke run is directly comparable to the
# committed artifact. A configuration more than 30 % below its baseline
# fails the bench process (see `spf_bench::guard`); override the
# tolerance with BENCH_GUARD_TOLERANCE (a fraction, e.g. 0.5).
#
# Fresh quick artifacts land in target/bench_guard/ (the committed
# baselines at the repo root are never overwritten by this script).
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"
GUARD_DIR="$ROOT/target/bench_guard"
mkdir -p "$GUARD_DIR"

echo "== bench_guard: quick crawl_scaling vs committed BENCH_2.json"
BENCH_2_OUT="$GUARD_DIR/BENCH_2.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_2.json" \
CRAWL_SCALING_QUICK=1 cargo bench --bench crawl_scaling

echo "== bench_guard: quick wire_throughput vs committed BENCH_3.json"
BENCH_3_OUT="$GUARD_DIR/BENCH_3.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_3.json" \
WIRE_THROUGHPUT_QUICK=1 cargo bench --bench wire_throughput

echo "== bench_guard: quick overlap_scaling vs committed BENCH_4.json"
BENCH_4_OUT="$GUARD_DIR/BENCH_4.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_4.json" \
OVERLAP_SCALING_QUICK=1 cargo bench --bench overlap_scaling

echo "== bench_guard: quick spoof_matrix_scaling vs committed BENCH_5.json"
BENCH_5_OUT="$GUARD_DIR/BENCH_5.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_5.json" \
SPOOF_MATRIX_QUICK=1 cargo bench --bench spoof_matrix_scaling

echo "== bench_guard: quick service_throughput vs committed BENCH_6.json"
BENCH_6_OUT="$GUARD_DIR/BENCH_6.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_6.json" \
SERVICE_QUICK=1 cargo bench --bench service_throughput

echo "== bench_guard: quick compiled_throughput vs committed BENCH_7.json"
BENCH_7_OUT="$GUARD_DIR/BENCH_7.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_7.json" \
COMPILED_QUICK=1 cargo bench --bench compiled_throughput

echo "== bench_guard: quick async_wire_throughput vs committed BENCH_8.json"
BENCH_8_OUT="$GUARD_DIR/BENCH_8.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_8.json" \
ASYNC_WIRE_QUICK=1 cargo bench --bench async_wire_throughput

echo "== bench_guard: quick churn_rescan vs committed BENCH_9.json"
BENCH_9_OUT="$GUARD_DIR/BENCH_9.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_9.json" \
CHURN_RESCAN_QUICK=1 cargo bench --bench churn_rescan

echo "== bench_guard: quick auth_stack_scaling vs committed BENCH_10.json"
BENCH_10_OUT="$GUARD_DIR/BENCH_10.json" \
BENCH_GUARD_BASELINE="$ROOT/BENCH_10.json" \
AUTH_STACK_QUICK=1 cargo bench --bench auth_stack_scaling

echo "OK: quick throughput within tolerance of the committed baselines"
