//! End-to-end experiment pipelines under measurement — one bench per
//! table/figure family (see DESIGN.md §4's bench-target column) plus the
//! record-cache ablation: the paper stresses that their cache collapses
//! repeated provider lookups; `crawl_adoption/cache_off` quantifies the
//! DNS load without it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spf_analyzer::{analyze_domain, Walker};
use spf_crawler::{crawl, include_ecosystem, CrawlConfig, ScanAggregates};
use spf_dns::{VirtualClock, ZoneResolver};
use spf_netsim::{Population, PopulationConfig, Scale};
use spf_notify::{apply_remediation, Campaign, CampaignConfig, FixRates};
use std::hint::black_box;

const BENCH_SCALE: u64 = 20_000; // ≈641 domains: fast enough per iteration
const SEED: u64 = 0x5bf1_2023;

fn population() -> Population {
    Population::build(PopulationConfig {
        scale: Scale {
            denominator: BENCH_SCALE,
        },
        seed: SEED,
    })
}

/// Table 1 / Figure 1: the crawl that measures adoption — with the shared
/// record cache (paper design) and without it (ablation).
fn bench_crawl_adoption(c: &mut Criterion) {
    let pop = population();
    let mut group = c.benchmark_group("crawl_adoption");
    group.sample_size(10);
    group.bench_function("cache_on", |b| {
        b.iter(|| {
            let walker = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
            let out = crawl(&walker, &pop.domains, CrawlConfig::with_workers(4));
            ScanAggregates::compute(&out.reports).with_spf
        })
    });
    group.bench_function("cache_off", |b| {
        b.iter(|| {
            // A fresh walker per domain defeats the cache entirely.
            pop.domains
                .iter()
                .map(|d| {
                    let walker = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
                    analyze_domain(&walker, d).has_spf as u64
                })
                .sum::<u64>()
        })
    });
    group.finish();
}

/// Figures 2/3: classifying one erroneous domain of each class.
fn bench_analyze_errors(c: &mut Criterion) {
    let pop = population();
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
    // Warm the provider cache, then find one domain per error class.
    let out = crawl(&walker, &pop.domains, CrawlConfig::with_workers(4));
    let error_domains: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.has_error())
        .map(|r| r.domain.clone())
        .take(16)
        .collect();
    assert!(!error_domains.is_empty());
    c.bench_function("analyze_errors/classify_16_domains", |b| {
        b.iter(|| {
            let fresh = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
            error_domains
                .iter()
                .map(|d| analyze_domain(&fresh, d).has_error() as u64)
                .sum::<u64>()
        })
    });
}

/// Table 4 / Figure 5: recursive authorized-IP counting per domain.
fn bench_ip_counting(c: &mut Criterion) {
    let pop = population();
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
    let out = crawl(&walker, &pop.domains, CrawlConfig::with_workers(4));
    c.bench_function("ip_counting/ecosystem", |b| {
        b.iter(|| include_ecosystem(black_box(&out.reports), &walker).len())
    });
    c.bench_function("ip_counting/cdf", |b| {
        let agg = ScanAggregates::compute(&out.reports);
        b.iter(|| spf_report::Cdf::new(agg.allowed_ip_counts.clone()).fraction_above(100_000))
    });
}

/// Table 2: campaign + remediation + rescan.
fn bench_notify_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("notify_campaign");
    group.sample_size(10);
    group.bench_function("campaign_remediate_rescan", |b| {
        b.iter_batched(
            || {
                let pop = population();
                let walker = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
                let out = crawl(&walker, &pop.domains, CrawlConfig::with_workers(4));
                (pop, out.reports)
            },
            |(pop, reports)| {
                let clock = Arc::new(VirtualClock::new());
                let mut campaign = Campaign::new(CampaignConfig::default(), clock);
                let outcome = campaign.run(&reports);
                apply_remediation(&pop.store, &reports, &FixRates::default(), SEED);
                let walker = Walker::new(ZoneResolver::new(Arc::clone(&pop.store)));
                let rescan = crawl(&walker, &pop.domains, CrawlConfig::with_workers(4));
                (
                    outcome.sent,
                    ScanAggregates::compute(&rescan.reports).total_errors(),
                )
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// The population generator itself (world-building cost).
fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_population");
    group.sample_size(10);
    group.bench_function("scale_1_to_20000", |b| b.iter(population));
    group.finish();
}

criterion_group!(
    benches,
    bench_crawl_adoption,
    bench_analyze_errors,
    bench_ip_counting,
    bench_notify_campaign,
    bench_generate
);
criterion_main!(benches);
