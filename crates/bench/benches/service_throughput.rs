//! The verdict-service throughput sweep behind BENCH_6.json and
//! DESIGN.md §9.
//!
//! One `service_throughput` criterion group serves the crawled
//! population from a resident [`VerdictService`] and replays the three
//! generated traffic mixes — Zipf hot-domain skew, attacker bursts from
//! top-coverage vantages, and a cold-miss flood — through the pipelined
//! socket driver, sweeping workers × verdict-memo (on / off) × UDP vs
//! TCP. Each point records queries/s plus the client-observed
//! p50/p99/p999 round-trip latency from the fixed-bucket log histogram.
//!
//! The harness asserts every replayed query was answered `ok` (no
//! sheds, no errors) before trusting any timing, then writes the sweep
//! to `BENCH_6.json` at the workspace root.
//!
//! Quick mode for CI smoke runs: set `SERVICE_QUICK=1` (or pass
//! `--quick`) to shrink the population and query counts; the JSON is
//! still written so the artifact upload works.
//!
//! Regression gate: the report's `quick_points` are measured with the
//! same plain best-of-N loop in full and quick runs, so
//! `scripts/bench_guard.sh` can compare a CI quick run against the
//! committed BENCH_6.json; with `BENCH_GUARD_BASELINE` set, this binary
//! fails itself on a throughput regression (`spf_bench::guard`).

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

use criterion::Criterion;
use serde::Serialize;
use spf_bench::guard::{self, GuardPoint};
use spf_bench::{service_lab, ServiceLab};
use spf_dns::{Resolver, ZoneResolver};
use spf_service::{
    build_plan, drive, ServiceConfig, TrafficMix, TrafficReport, Transport, VerdictService,
};

const SEED: u64 = 0x5bf1_2023;
/// Timed passes per configuration; the recorded figure is the best of
/// them, which damps the scheduling noise of small shared hosts.
const RUNS: usize = 3;
/// Pipelined clients and per-client window for every driven run.
const CLIENTS: usize = 4;
const WINDOW: usize = 32;

const MIXES: [TrafficMix; 3] = [
    TrafficMix::HotSkew,
    TrafficMix::AttackerBurst,
    TrafficMix::ColdFlood,
];

#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    mix: String,
    transport: String,
    scale_denominator: u64,
    workers: usize,
    cached: bool,
    clients: usize,
    window: usize,
    queries: u64,
    /// Best-of-RUNS answered queries per second.
    qps: f64,
    /// Client-observed round-trip latency of the best run (µs).
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    /// Verdict-memo hit rate of the best run (0 when uncached).
    cache_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    runs_per_config: usize,
    host_parallelism: usize,
    baseline_note: String,
    results: Vec<SweepPoint>,
    /// Guard points: answered queries per second for fixed quick
    /// configurations, measured by the same plain loop in every mode.
    quick_points: Vec<GuardPoint>,
}

/// One timed replay: spawn a fresh service (so cache state never leaks
/// between runs), drive the plan, and insist on an all-`ok` outcome.
fn timed_run(
    lab: &ServiceLab,
    mix: TrafficMix,
    transport: Transport,
    workers: usize,
    cached: bool,
    queries: usize,
) -> (TrafficReport, f64) {
    let resolver: Arc<dyn Resolver> = Arc::new(ZoneResolver::new(Arc::clone(&lab.store)));
    let mut config = ServiceConfig::with_workers(workers);
    if !cached {
        config = config.cache(None);
    }
    let mut service = VerdictService::spawn(resolver, config).expect("service spawns");
    let plan = build_plan(mix, &lab.domains, &lab.vantage_ips, queries, SEED);
    let report =
        drive(service.addr(), transport, mix, &plan, CLIENTS, WINDOW).expect("drive succeeds");
    assert_eq!(
        (report.ok, report.overloaded, report.errors),
        (report.sent, 0, 0),
        "a benched run must answer every query ok ({mix} {transport} w{workers})"
    );
    let hit_rate = service
        .telemetry()
        .cache
        .map(|c| c.hit_rate())
        .unwrap_or(0.0);
    service.shutdown();
    (report, hit_rate)
}

/// Best-of-RUNS for one configuration.
fn measure(
    lab: &ServiceLab,
    denominator: u64,
    mix: TrafficMix,
    transport: Transport,
    workers: usize,
    cached: bool,
    queries: usize,
) -> SweepPoint {
    let mut best: Option<(TrafficReport, f64)> = None;
    for _ in 0..RUNS {
        let (report, hit_rate) = timed_run(lab, mix, transport, workers, cached, queries);
        if best.as_ref().is_none_or(|(b, _)| report.qps > b.qps) {
            best = Some((report, hit_rate));
        }
    }
    let (report, cache_hit_rate) = best.expect("RUNS >= 1");
    SweepPoint {
        mix: mix.label().to_string(),
        transport: transport.to_string(),
        scale_denominator: denominator,
        workers,
        cached,
        clients: report.clients,
        window: report.window,
        queries: report.sent,
        qps: report.qps,
        p50_us: report.latency.p50_us,
        p99_us: report.latency.p99_us,
        p999_us: report.latency.p999_us,
        cache_hit_rate,
    }
}

/// Fixed population scale and query count for `quick_points`, shared by
/// full and quick runs so the committed baseline stays comparable to a
/// CI quick run.
const QUICK_DENOMINATOR: u64 = 5_000;
const QUICK_QUERIES: usize = 8_000;

/// The fixed quick matrix behind `quick_points`: one point per traffic
/// mix, all at `QUICK_DENOMINATOR` over UDP with the memo on. Reuses
/// `lab` when it is already at the quick scale (quick mode).
fn measure_quick_points(lab: &ServiceLab, lab_denominator: u64) -> Vec<GuardPoint> {
    let quick_lab;
    let lab = if lab_denominator == QUICK_DENOMINATOR {
        lab
    } else {
        quick_lab = service_lab(QUICK_DENOMINATOR, SEED, 8);
        &quick_lab
    };
    MIXES
        .iter()
        .map(|&mix| {
            let key = format!("service_{}_w4_udp_cached", mix.label());
            guard::quick_point(key, RUNS, || {
                let (report, _) = timed_run(lab, mix, Transport::Udp, 4, true, QUICK_QUERIES);
                report.qps
            })
        })
        .collect()
}

fn quick_mode() -> bool {
    std::env::var("SERVICE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    let (denominator, queries) = if quick {
        (QUICK_DENOMINATOR, QUICK_QUERIES)
    } else {
        (1_000, 40_000)
    };
    // (mix, transport, workers, cached): the three mixes over both
    // transports at the standard pool, plus worker and memo sweeps on
    // the hot mix where the cache does the most work.
    let configs: &[(TrafficMix, Transport, usize, bool)] = if quick {
        &[
            (TrafficMix::HotSkew, Transport::Udp, 4, true),
            (TrafficMix::AttackerBurst, Transport::Udp, 4, true),
            (TrafficMix::ColdFlood, Transport::Udp, 4, true),
            (TrafficMix::HotSkew, Transport::Tcp, 4, true),
        ]
    } else {
        &[
            (TrafficMix::HotSkew, Transport::Udp, 4, true),
            (TrafficMix::HotSkew, Transport::Udp, 4, false),
            (TrafficMix::HotSkew, Transport::Udp, 1, true),
            (TrafficMix::HotSkew, Transport::Udp, 8, true),
            (TrafficMix::HotSkew, Transport::Tcp, 4, true),
            (TrafficMix::AttackerBurst, Transport::Udp, 4, true),
            (TrafficMix::AttackerBurst, Transport::Udp, 4, false),
            (TrafficMix::AttackerBurst, Transport::Tcp, 4, true),
            (TrafficMix::ColdFlood, Transport::Udp, 4, true),
            (TrafficMix::ColdFlood, Transport::Udp, 4, false),
            (TrafficMix::ColdFlood, Transport::Tcp, 4, true),
        ]
    };

    println!(
        "service_throughput: {} configurations at 1:{denominator}, {queries} queries each \
         (seed {SEED:#x})",
        configs.len()
    );
    let lab = service_lab(denominator, SEED, 8);
    println!(
        "service_throughput: population ready — {} domains, {} vantage addresses",
        lab.domains.len(),
        lab.vantage_ips.len()
    );

    let points: RefCell<Vec<SweepPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("service_throughput");
    group.measurement_time(Duration::from_millis(1));
    for &(mix, transport, workers, cached) in configs {
        let id = format!(
            "{}_{transport}_w{workers}_{}",
            mix.label(),
            if cached { "cached" } else { "raw" }
        );
        let points = &points;
        let lab = &lab;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let point = measure(lab, denominator, mix, transport, workers, cached, queries);
                let mut points = points.borrow_mut();
                match points.iter_mut().find(|p| {
                    p.mix == point.mix
                        && p.transport == point.transport
                        && p.workers == point.workers
                        && p.cached == point.cached
                }) {
                    Some(existing) if existing.qps >= point.qps => {}
                    Some(existing) => *existing = point,
                    None => points.push(point),
                }
                workers
            });
        });
    }
    group.finish();

    let quick_points = measure_quick_points(&lab, denominator);
    let results = points.into_inner();
    for p in &results {
        println!(
            "service_throughput: {} over {} w{} {} — {:.0} q/s, lat(µs) p50={:.0} p99={:.0} \
             p999={:.0}, memo hit rate {:.1} %",
            p.mix,
            p.transport,
            p.workers,
            if p.cached { "cached" } else { "raw" },
            p.qps,
            p.p50_us,
            p.p99_us,
            p.p999_us,
            p.cache_hit_rate * 100.0
        );
    }

    let report = BenchReport {
        bench: "service_throughput".to_string(),
        quick_mode: quick,
        runs_per_config: RUNS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        baseline_note: "every point replays a generated mix through real sockets against a \
                        resident service and is accepted only if all queries answered ok; \
                        latency is the client-observed round trip from the shared log \
                        histogram"
            .to_string(),
        results,
        quick_points: quick_points.clone(),
    };
    let out_path = std::env::var("BENCH_6_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_6.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_6.json is writable");
    println!("service_throughput: wrote {out_path}");

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
