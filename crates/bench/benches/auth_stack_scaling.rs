//! The layered auth-stack overhead sweep behind BENCH_10.json and
//! DESIGN.md §13.
//!
//! One `auth_stack_scaling` criterion group measures, per configuration
//! on the combined population + hosting spoof world, three engines over
//! the identical domains × vantages grid:
//!
//! * **v1** — the SPF-only [`spoof_matrix`] the v2 engine embeds;
//! * **v2 cold** — [`auth_matrix_with_cache`] with a fresh
//!   [`AuthCache`]: the SPF sub-matrix plus one DMARC and one MTA-STS
//!   lookup per domain;
//! * **v2 warm** — the same call again through the same cache, so every
//!   layer lookup is memo-served and the residual cost over v1 is the
//!   stop-attribution fold alone.
//!
//! The harness asserts the DESIGN.md §13 rail before trusting any
//! timing — the v2 SPF sub-matrix serializes byte-identically to the v1
//! report, and the warm matrix equals the cold one — then splits the
//! headline configuration's population by [`DeploymentMix`] tier and
//! re-times v1 vs v2 on each tier's domains, so the report carries the
//! stack overhead *per deployment mix* (a FullStack domain pays the
//! same two lookups as an SpfOnly one; the per-mix columns prove the
//! overhead is flat across tiers rather than concentrated in the
//! DMARC-publishing cohort). The whole sweep lands in `BENCH_10.json`
//! at the workspace root, with the warm DMARC-memo hit rate as the
//! cache-effectiveness headline.
//!
//! Quick mode for CI smoke runs: set `AUTH_STACK_QUICK=1` (or pass
//! `--quick`) to shrink the matrix to the 1:5000 population; the JSON
//! is still written so the artifact upload works.
//!
//! Regression gate: the report's `quick_points` are measured with the
//! same plain best-of-N loop in full and quick runs, so
//! `scripts/bench_guard.sh` can compare a CI quick run against the
//! committed BENCH_10.json; with `BENCH_GUARD_BASELINE` set, this
//! binary fails itself on a throughput regression (`spf_bench::guard`).

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::guard::{self, GuardPoint};
use spf_core::{AuthCache, CompilerStats, EvalPolicy};
#[allow(deprecated)]
use spf_crawler::spoof_matrix;
use spf_crawler::{
    auth_matrix_with_cache, crawl, evaluate_auth_row, select_vantages, CrawlConfig, DeploymentMix,
    ProviderVantage, SpoofMatrixConfig, VantagePoint,
};
use spf_dns::ZoneResolver;
use spf_netsim::{build_spoof_world, Scale};
use spf_types::DomainName;

const SEED: u64 = 0x5bf1_2023;
/// Timed passes per configuration; the recorded figure is the best of
/// them, which damps the scheduling noise of small shared hosts.
const RUNS: usize = 3;
/// Vantage budget per run (top-coverage + hosting + control mix).
const VANTAGES: usize = 8;
/// Full-mode acceptance ceiling: the cold stacked run may cost at most
/// this factor of the SPF-only run at the headline configuration. Two
/// memoized TXT lookups per domain ride on [`VANTAGES`] SPF
/// evaluations, so the real overhead is a small slice of this — the
/// ceiling catches the structural regressions (a layer lookup gone
/// per-cell instead of per-domain) without gating on host jitter.
const COLD_OVERHEAD_CEILING: f64 = 2.0;

/// One crawled world with its vantage set, held out of the timed
/// region.
struct World {
    resolver: ZoneResolver,
    domains: Vec<DomainName>,
    vantages: Vec<VantagePoint>,
}

/// Build the spoof world and derive its vantage set from a coverage
/// crawl (the same selection path the `repro` targets use).
fn build_world(denominator: u64) -> World {
    let world = build_spoof_world(Scale { denominator }, SEED);
    let providers: Vec<ProviderVantage> = world
        .providers
        .iter()
        .map(|p| ProviderVantage {
            label: format!("hosting{}", p.id),
            web: p.web_ip,
            mta: p.mta_ip,
        })
        .collect();
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&world.store)));
    let out = crawl(&walker, &world.domains, CrawlConfig::with_workers(8));
    let weighted = out.coverage.into_weighted();
    let vantages = select_vantages(&weighted, &providers, VANTAGES, 4, SEED);
    World {
        resolver: ZoneResolver::new(world.store),
        domains: world.domains,
        vantages,
    }
}

/// Time one v1 (SPF-only) matrix run over an explicit domain slice.
fn timed_v1(world: &World, domains: &[DomainName], workers: usize) -> (f64, String) {
    let started = Instant::now();
    #[allow(deprecated)]
    let (matrix, _) = spoof_matrix(
        &world.resolver,
        domains,
        &world.vantages,
        SpoofMatrixConfig::with_workers(workers),
    );
    let secs = started.elapsed().as_secs_f64();
    (secs, serde_json::to_string(&matrix).expect("v1 serializes"))
}

/// Time one v2 (stacked) matrix run through `cache`; returns the
/// seconds, the cumulative DMARC-memo hit rate after the run, the
/// serialized matrix, and the serialized SPF sub-matrix (the §13 rail's
/// comparand against the v1 report).
fn timed_v2(
    world: &World,
    domains: &[DomainName],
    workers: usize,
    cache: &AuthCache,
) -> (f64, f64, String, String) {
    let started = Instant::now();
    let (matrix, stats) = auth_matrix_with_cache(
        &world.resolver,
        domains,
        &world.vantages,
        SpoofMatrixConfig::with_workers(workers),
        cache,
    );
    let secs = started.elapsed().as_secs_f64();
    (
        secs,
        stats.auth_cache.dmarc_hit_rate(),
        serde_json::to_string(&matrix).expect("v2 serializes"),
        serde_json::to_string(&matrix.spf).expect("v2 SPF sub-matrix serializes"),
    )
}

/// v2-vs-v1 overhead for one deployment-mix tier's domain subset.
#[derive(Debug, Clone, Serialize)]
struct MixPoint {
    mix: String,
    domains: u64,
    v1_secs: f64,
    v2_cold_secs: f64,
    /// `v2_cold_secs / v1_secs` on this tier's domains alone.
    overhead: f64,
}

#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    scale_denominator: u64,
    workers: usize,
    vantage_count: usize,
    domains: u64,
    evaluations: u64,
    /// Best-of-RUNS seconds for the SPF-only v1 matrix.
    v1_secs: f64,
    /// Best-of-RUNS seconds for the stacked matrix on a fresh cache.
    v2_cold_secs: f64,
    /// Best-of-RUNS seconds for the stacked matrix on the warmed cache.
    v2_warm_secs: f64,
    /// `v2_cold_secs / v1_secs` — the stack's cold overhead.
    cold_overhead: f64,
    /// `v2_warm_secs / v1_secs` — the overhead once every layer lookup
    /// is memo-served.
    warm_overhead: f64,
    /// Cumulative DMARC-memo hit rate after the warm run (one miss and
    /// one hit per domain ⇒ 0.5 when the memo is working).
    warm_dmarc_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    runs_per_config: usize,
    vantage_count: usize,
    host_parallelism: usize,
    baseline_note: String,
    results: Vec<SweepPoint>,
    /// Per-deployment-mix overhead at the headline configuration (full
    /// mode) or the quick configuration (quick mode).
    mix_points: Vec<MixPoint>,
    /// Guard points: v1, v2-cold, and v2-warm evaluation throughput at
    /// quick scale, measured by the same plain loop in every mode.
    quick_points: Vec<GuardPoint>,
}

/// Measure one configuration: best-of-RUNS for all three engines, with
/// the §13 byte-identity rail asserted on every pass before any timing
/// is kept.
fn measure(world: &World, denominator: u64, workers: usize) -> SweepPoint {
    let mut best_v1 = f64::INFINITY;
    let mut best_cold = f64::INFINITY;
    let mut best_warm = f64::INFINITY;
    let mut warm_rate = 0.0;
    for _ in 0..RUNS {
        let (v1_secs, v1_json) = timed_v1(world, &world.domains, workers);
        let cache = AuthCache::new();
        let (cold_secs, _, cold_json, cold_spf_json) =
            timed_v2(world, &world.domains, workers, &cache);
        let (warm_secs, rate, warm_json, _) = timed_v2(world, &world.domains, workers, &cache);
        // The rail: the stacked report embeds the v1 matrix verbatim,
        // and a warm pass changes nothing but the timing.
        assert_eq!(
            cold_spf_json, v1_json,
            "v2 SPF sub-matrix diverged from v1 at 1:{denominator} w{workers}"
        );
        assert_eq!(
            cold_json, warm_json,
            "warm stacked matrix diverged from cold at 1:{denominator} w{workers}"
        );
        best_v1 = best_v1.min(v1_secs);
        best_cold = best_cold.min(cold_secs);
        if warm_secs < best_warm {
            best_warm = warm_secs;
            warm_rate = rate;
        }
    }
    SweepPoint {
        scale_denominator: denominator,
        workers,
        vantage_count: world.vantages.len(),
        domains: world.domains.len() as u64,
        evaluations: (world.domains.len() * world.vantages.len()) as u64,
        v1_secs: best_v1,
        v2_cold_secs: best_cold,
        v2_warm_secs: best_warm,
        cold_overhead: best_cold / best_v1.max(f64::EPSILON),
        warm_overhead: best_warm / best_v1.max(f64::EPSILON),
        warm_dmarc_hit_rate: warm_rate,
    }
}

/// Partition the world's population by deployment-mix tier. The tier is
/// a per-domain fact (layer presence, not verdicts), so a single-vantage
/// row per domain classifies the whole population cheaply.
fn partition_by_mix(world: &World) -> Vec<(DeploymentMix, Vec<DomainName>)> {
    let policy = EvalPolicy::default();
    let cache = AuthCache::new();
    let mut compiler = CompilerStats::default();
    let probe = &world.vantages[..1.min(world.vantages.len())];
    let mut tiers: Vec<(DeploymentMix, Vec<DomainName>)> = DeploymentMix::ALL
        .iter()
        .map(|&mix| (mix, Vec::new()))
        .collect();
    for domain in &world.domains {
        let row = evaluate_auth_row(
            &world.resolver,
            domain,
            probe,
            &policy,
            None,
            false,
            &mut compiler,
            Some(&cache),
        );
        tiers
            .iter_mut()
            .find(|(mix, _)| *mix == row.tier)
            .expect("classify returns a known tier")
            .1
            .push(domain.clone());
    }
    tiers.retain(|(_, domains)| !domains.is_empty());
    tiers
}

/// Per-mix overhead: v1 vs cold v2 on each tier's domain subset alone.
fn measure_mix_points(world: &World, workers: usize) -> Vec<MixPoint> {
    partition_by_mix(world)
        .into_iter()
        .map(|(mix, domains)| {
            let mut best_v1 = f64::INFINITY;
            let mut best_v2 = f64::INFINITY;
            for _ in 0..RUNS {
                let (v1_secs, _) = timed_v1(world, &domains, workers);
                let (v2_secs, _, _, _) = timed_v2(world, &domains, workers, &AuthCache::new());
                best_v1 = best_v1.min(v1_secs);
                best_v2 = best_v2.min(v2_secs);
            }
            MixPoint {
                mix: format!("{mix:?}"),
                domains: domains.len() as u64,
                v1_secs: best_v1,
                v2_cold_secs: best_v2,
                overhead: best_v2 / best_v1.max(f64::EPSILON),
            }
        })
        .collect()
}

/// The fixed quick matrix behind `quick_points`: `(engine, warm)`.
const QUICK_DENOM: u64 = 5_000;
const QUICK_WORKERS: usize = 4;

/// Best-of-RUNS evaluation throughput for the three engines at quick
/// scale, sharing one world build.
fn measure_quick_points(world: &World) -> Vec<GuardPoint> {
    let evaluations = (world.domains.len() * world.vantages.len()) as f64;
    let mut points = vec![guard::quick_point(
        format!("auth_stack_{QUICK_DENOM}_w{QUICK_WORKERS}_v1"),
        RUNS,
        || {
            let (secs, json) = timed_v1(world, &world.domains, QUICK_WORKERS);
            assert!(!json.is_empty());
            evaluations / secs.max(f64::EPSILON)
        },
    )];
    points.push(guard::quick_point(
        format!("auth_stack_{QUICK_DENOM}_w{QUICK_WORKERS}_v2_cold"),
        RUNS,
        || {
            let (secs, _, json, _) =
                timed_v2(world, &world.domains, QUICK_WORKERS, &AuthCache::new());
            assert!(!json.is_empty());
            evaluations / secs.max(f64::EPSILON)
        },
    ));
    points.push(guard::quick_point(
        format!("auth_stack_{QUICK_DENOM}_w{QUICK_WORKERS}_v2_warm"),
        RUNS,
        || {
            let cache = AuthCache::new();
            let _ = timed_v2(world, &world.domains, QUICK_WORKERS, &cache);
            let (secs, rate, _, _) = timed_v2(world, &world.domains, QUICK_WORKERS, &cache);
            assert!(rate > 0.0, "warm pass served no DMARC memo hits");
            evaluations / secs.max(f64::EPSILON)
        },
    ));
    points
}

fn quick_mode() -> bool {
    std::env::var("AUTH_STACK_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    // (scale, workers): the headline is 1:1000 at 4 workers; full mode
    // adds an 8-worker point to show the overhead is scheduling-stable.
    let configs: &[(u64, usize)] = if quick {
        &[(QUICK_DENOM, QUICK_WORKERS)]
    } else {
        &[(1_000, 4), (1_000, 8)]
    };

    println!(
        "auth_stack_scaling: sweeping {} configurations (seed {SEED:#x}, {VANTAGES} vantages)",
        configs.len()
    );

    let points: RefCell<Vec<SweepPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("auth_stack_scaling");
    group.measurement_time(Duration::from_millis(1));
    for &(denom, workers) in configs {
        let id = format!("pop_{denom}_w{workers}");
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let world = build_world(denom);
                let point = measure(&world, denom, workers);
                let mut points = points.borrow_mut();
                match points
                    .iter_mut()
                    .find(|p| p.scale_denominator == denom && p.workers == workers)
                {
                    Some(existing) if existing.v2_cold_secs <= point.v2_cold_secs => {}
                    Some(existing) => *existing = point,
                    None => points.push(point),
                }
                workers
            });
        });
    }
    group.finish();

    // Per-mix overhead at the headline configuration (shares the quick
    // world in quick mode so the smoke run stays cheap).
    let (mix_denom, mix_workers) = configs[0];
    let mix_world = build_world(mix_denom);
    let mix_points = measure_mix_points(&mix_world, mix_workers);
    let quick_world = if mix_denom == QUICK_DENOM {
        mix_world
    } else {
        build_world(QUICK_DENOM)
    };
    let quick_points = measure_quick_points(&quick_world);

    let results = points.into_inner();
    for p in &results {
        println!(
            "auth_stack_scaling: 1:{} w{} — {} domains × {} vantages; v1 {:.1} ms, \
             v2 cold {:.1} ms ({:.2}x), v2 warm {:.1} ms ({:.2}x), warm DMARC hit rate {:.1} %",
            p.scale_denominator,
            p.workers,
            p.domains,
            p.vantage_count,
            p.v1_secs * 1e3,
            p.v2_cold_secs * 1e3,
            p.cold_overhead,
            p.v2_warm_secs * 1e3,
            p.warm_overhead,
            p.warm_dmarc_hit_rate * 100.0,
        );
        // The acceptance bar rides the committed full-mode artifact.
        if !quick {
            assert!(
                p.cold_overhead <= COLD_OVERHEAD_CEILING,
                "stacked matrix cost {:.2}x the SPF-only matrix at 1:{} w{} — \
                 the layer lookups must stay per-domain, not per-cell",
                p.cold_overhead,
                p.scale_denominator,
                p.workers,
            );
        }
    }
    for m in &mix_points {
        println!(
            "auth_stack_scaling: mix {} — {} domains; v1 {:.1} ms, v2 cold {:.1} ms ({:.2}x)",
            m.mix,
            m.domains,
            m.v1_secs * 1e3,
            m.v2_cold_secs * 1e3,
            m.overhead,
        );
    }

    let report = BenchReport {
        bench: "auth_stack_scaling".to_string(),
        quick_mode: quick,
        runs_per_config: RUNS,
        vantage_count: VANTAGES,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        baseline_note: "all three columns evaluate the identical domains × vantages grid; \
                        the v2 SPF sub-matrix is asserted byte-identical to the v1 report \
                        and the warm pass byte-identical to the cold one before any timing \
                        is recorded; mix_points re-time both engines on each deployment \
                        tier's domains alone"
            .to_string(),
        results,
        mix_points,
        quick_points: quick_points.clone(),
    };
    let out_path = std::env::var("BENCH_10_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_10.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_10.json is writable");
    println!("auth_stack_scaling: wrote {out_path}");

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
