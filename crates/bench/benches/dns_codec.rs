//! RFC 1035 codec throughput and the name-compression ablation from
//! DESIGN.md §5: how much smaller and how much slower compressed encoding
//! is on a realistic SPF answer.

use criterion::{criterion_group, criterion_main, Criterion};
use spf_dns::{
    decode, encode, encode_uncompressed, Message, Question, RecordData, RecordType, ResourceRecord,
    TxtData,
};
use spf_types::DomainName;
use std::hint::black_box;

fn dom(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn spf_response() -> Message {
    let q = Message::query(7, Question::new(dom("example.com"), RecordType::Txt));
    Message::response(
        &q,
        spf_dns::Rcode::NoError,
        vec![ResourceRecord::new(
            dom("example.com"),
            RecordData::Txt(TxtData::from_text(
                "v=spf1 include:spf.protection.outlook.com include:_spf.google.com \
                 ip4:192.0.2.0/24 ~all",
            )),
        )],
    )
}

/// An MX answer with many same-suffix names: compression's best case.
fn mx_response() -> Message {
    let q = Message::query(8, Question::new(dom("big.example.com"), RecordType::Mx));
    let answers = (0..10u16)
        .map(|i| {
            ResourceRecord::new(
                dom("big.example.com"),
                RecordData::Mx {
                    preference: i,
                    exchange: dom(&format!("mx{i}.mail.big.example.com")),
                },
            )
        })
        .collect();
    Message::response(&q, spf_dns::Rcode::NoError, answers)
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_codec");
    for (name, msg) in [("spf_txt", spf_response()), ("mx_10", mx_response())] {
        group.bench_function(format!("encode_compressed/{name}"), |b| {
            b.iter(|| encode(black_box(&msg)).unwrap())
        });
        group.bench_function(format!("encode_uncompressed/{name}"), |b| {
            b.iter(|| encode_uncompressed(black_box(&msg)).unwrap())
        });
        let bytes = encode(&msg).unwrap();
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| decode(black_box(&bytes)).unwrap())
        });
        // Report the size win once per target (visible with --nocapture).
        let plain = encode_uncompressed(&msg).unwrap();
        eprintln!(
            "[dns_codec] {name}: compressed {}B vs uncompressed {}B ({:.0} % saved)",
            bytes.len(),
            plain.len(),
            (1.0 - bytes.len() as f64 / plain.len() as f64) * 100.0
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
