//! Async (epoll reactor) wire-engine throughput — the BENCH_8.json
//! baseline.
//!
//! One `async_wire_throughput` criterion group crawls the 1:500
//! population through every [`spf_types::Backend`] transport — the
//! in-memory reference, the blocking socket-pool wire engine, and the
//! epoll reactor engine — all assembled through the same
//! `spf_bench::build_resolver` path the `repro` CLI uses. The JSON
//! records best-of-N domains/s per configuration plus the wire
//! telemetry, and states the measured engine-vs-engine slowdown ratios
//! directly: on a single-core host every wire transport pays the full
//! syscall tax with no parallelism to hide it, so the honest
//! memory-to-wire gap is large (see DESIGN.md §11) — the figure here is
//! the measurement, not a target.
//!
//! Quick mode for CI smoke runs: `ASYNC_WIRE_QUICK=1` (or `--quick`)
//! shrinks the population to 1:20000 and the matrix to one async
//! configuration. Regression gate: `quick_points` are measured with the
//! same plain loop in every mode; with `BENCH_GUARD_BASELINE` set
//! (`scripts/bench_guard.sh`), the run fails itself on a >30 %
//! regression against the committed BENCH_8.json (`spf_bench::guard`).

use std::cell::RefCell;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::build_resolver;
use spf_bench::guard::{self, GuardPoint};
use spf_crawler::{crawl, CrawlConfig};
use spf_netsim::{Population, PopulationConfig, Scale};
use spf_types::Backend;

const SEED: u64 = 0x5bf1_2023;
/// Crawls per configuration; the recorded figure is the best of them.
const RUNS: usize = 3;
/// The full-mode measurement scale (matches the reactor_stress suite).
const FULL_SCALE: Scale = Scale { denominator: 500 };
/// The quick/guard scale (matches the other wire benches).
const QUICK_SCALE: Scale = Scale {
    denominator: 20_000,
};
/// The guard matrix: (workers, servers) async configurations at quick
/// scale.
const QUICK_CONFIGS: &[(usize, usize)] = &[(4, 2)];

#[derive(Debug, Clone, Serialize)]
struct EnginePoint {
    /// The canonical backend spelling (`memory`, `wire:4`, `wire-async:4`).
    backend: String,
    workers: usize,
    best_secs: f64,
    domains_per_sec: f64,
    /// UDP datagrams per crawled domain (query amplification); zero for
    /// the in-memory reference.
    amplification: f64,
    /// Fraction of resolver queries that joined an in-flight wire query.
    coalesce_rate: f64,
    /// Fraction of resolver queries served by the wire TTL cache.
    wire_cache_hit_rate: f64,
    wire_queries: u64,
    tcp_fallbacks: u64,
    retries: u64,
    temp_errors: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    scale_denominator: u64,
    domains: u64,
    runs_per_config: usize,
    host_parallelism: usize,
    /// Best in-memory throughput measured this run (the reference every
    /// slowdown ratio divides by).
    in_memory_domains_per_sec: f64,
    /// Best blocking-wire throughput measured this run.
    blocking_domains_per_sec: f64,
    /// Best async-wire throughput measured this run.
    async_domains_per_sec: f64,
    /// `in_memory / async` — the honest single-host socket tax. The
    /// paper's infrastructure amortizes it across cores; this host
    /// cannot, and the figure is recorded rather than gamed.
    async_vs_memory_slowdown: f64,
    /// `blocking / async` — engine-vs-engine on identical semantics
    /// (>1 means the reactor is faster, <1 slower).
    async_vs_blocking_speedup: f64,
    results: Vec<EnginePoint>,
    /// Guard points at quick scale, measured by the plain loop in every
    /// mode (see `spf_bench::guard`).
    quick_points: Vec<GuardPoint>,
}

fn quick_mode() -> bool {
    std::env::var("ASYNC_WIRE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// One timed crawl through `build_resolver` — the same engine-selection
/// path every other entry point uses.
fn timed_crawl(population: &Population, backend: Backend, workers: usize) -> EnginePoint {
    let (resolver, wire) = build_resolver(&population.store, backend);
    let started = Instant::now();
    let out = crawl(
        &Walker::new(resolver),
        &population.domains,
        CrawlConfig::with_workers(workers).backend(backend),
    );
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(out.reports.len(), population.domains.len());
    let snap = wire.as_ref().map(|run| run.snapshot()).unwrap_or_default();
    EnginePoint {
        backend: backend.to_string(),
        workers,
        best_secs: secs,
        domains_per_sec: out.stats.domains_per_sec(),
        amplification: snap.amplification(out.stats.domains),
        coalesce_rate: snap.coalesce_rate(),
        wire_cache_hit_rate: snap.cache_hit_rate(),
        wire_queries: snap.wire_queries,
        tcp_fallbacks: snap.tcp_fallbacks,
        retries: snap.retries,
        temp_errors: snap.temp_errors,
    }
}

/// Best-of-`RUNS` guard points over the async quick matrix.
fn measure_quick_points(quick_population: &Population) -> Vec<GuardPoint> {
    QUICK_CONFIGS
        .iter()
        .map(|&(workers, servers)| {
            guard::quick_point(format!("async_w{workers}_v{servers}"), RUNS, || {
                timed_crawl(quick_population, Backend::wire_async(servers), workers).domains_per_sec
            })
        })
        .collect()
}

/// Best throughput among the report's points whose backend starts with
/// `prefix`.
fn best_for(results: &[EnginePoint], prefix: &str) -> f64 {
    results
        .iter()
        .filter(|p| p.backend.starts_with(prefix))
        .map(|p| p.domains_per_sec)
        .fold(0.0f64, f64::max)
}

fn main() {
    let quick = quick_mode();
    let scale = if quick { QUICK_SCALE } else { FULL_SCALE };
    // (backend, workers): the in-memory and blocking-wire references
    // bracket the async worker/shard sweep.
    let configs: Vec<(Backend, usize)> = if quick {
        vec![
            (Backend::memory(), 8),
            (Backend::wire(2), 4),
            (Backend::wire_async(2), 4),
        ]
    } else {
        vec![
            (Backend::memory(), 8),
            (Backend::wire(4), 8),
            // worker scaling at the default shard count…
            (Backend::wire_async(4), 1),
            (Backend::wire_async(4), 8),
            (Backend::wire_async(4), 32),
            // …and shard scaling at fixed workers.
            (Backend::wire_async(1), 8),
        ]
    };

    println!(
        "async_wire_throughput: generating the 1:{} population (seed {SEED:#x}) ...",
        scale.denominator
    );
    let population = Population::build(PopulationConfig { scale, seed: SEED });
    let n = population.domains.len();
    println!(
        "async_wire_throughput: {n} domains, sweeping {} backend configurations",
        configs.len()
    );

    let points: RefCell<Vec<EnginePoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("async_wire_throughput");
    group.measurement_time(Duration::from_millis(1));
    for (backend, workers) in &configs {
        let (backend, workers) = (*backend, *workers);
        let id = format!("{backend}_w{workers}").replace([':', '+'], "_");
        let population = &population;
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..RUNS {
                    let point = timed_crawl(population, backend, workers);
                    total += n;
                    let mut points = points.borrow_mut();
                    match points
                        .iter_mut()
                        .find(|p| (&p.backend, p.workers) == (&point.backend, point.workers))
                    {
                        Some(existing) if existing.best_secs <= point.best_secs => {}
                        Some(existing) => *existing = point,
                        None => points.push(point),
                    }
                }
                total
            });
        });
    }
    group.finish();

    let quick_population = if scale.denominator == QUICK_SCALE.denominator {
        population
    } else {
        println!(
            "async_wire_throughput: measuring guard points on the 1:{} quick population ...",
            QUICK_SCALE.denominator
        );
        Population::build(PopulationConfig {
            scale: QUICK_SCALE,
            seed: SEED,
        })
    };
    let quick_points = measure_quick_points(&quick_population);

    let results = points.into_inner();
    let in_memory = best_for(&results, "memory");
    let blocking = best_for(&results, "wire:");
    let best_async = best_for(&results, "wire-async");
    let report = BenchReport {
        bench: "async_wire_throughput".to_string(),
        quick_mode: quick,
        scale_denominator: scale.denominator,
        domains: n as u64,
        runs_per_config: RUNS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        in_memory_domains_per_sec: in_memory,
        blocking_domains_per_sec: blocking,
        async_domains_per_sec: best_async,
        async_vs_memory_slowdown: if best_async > 0.0 {
            in_memory / best_async
        } else {
            0.0
        },
        async_vs_blocking_speedup: if blocking > 0.0 {
            best_async / blocking
        } else {
            0.0
        },
        results,
        quick_points: quick_points.clone(),
    };

    let out_path = std::env::var("BENCH_8_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_8.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_8.json is writable");
    println!("async_wire_throughput: wrote {out_path}");
    println!(
        "async_wire_throughput: memory {:.0} / blocking {:.0} / async {:.0} domains/s \
         — async is {:.2}x the blocking engine, {:.1}x below in-memory",
        report.in_memory_domains_per_sec,
        report.blocking_domains_per_sec,
        report.async_domains_per_sec,
        report.async_vs_blocking_speedup,
        report.async_vs_memory_slowdown,
    );

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
