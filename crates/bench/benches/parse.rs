//! Parser throughput: the crawl parses one record per SPF domain, so
//! `parse_lenient` dominates the classification pipeline behind
//! Figures 2/3. Includes the strict/lenient comparison and the
//! record-detection predicate that filters TXT records.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const CORPUS: &[(&str, &str)] = &[
    ("deny_all", "v=spf1 -all"),
    (
        "provider_include",
        "v=spf1 include:spf.protection.outlook.com -all",
    ),
    ("paper_example", "v=spf1 +mx a:puffin.example.com/28 -all"),
    (
        "many_ip4",
        "v=spf1 ip4:192.0.2.0/24 ip4:198.51.100.0/24 ip4:203.0.113.0/24 \
         ip4:10.0.0.0/8 ip4:172.16.0.0/12 ip4:192.168.0.0/16 ~all",
    ),
    (
        "macro_heavy",
        "v=spf1 exists:%{ir}.%{v}._spf.%{d2} include:%{d2}.trusted.example redirect=%{d}",
    ),
    (
        "syntax_error_mix",
        "v=spf1 ipv4:1.2.3.4 ip4: 5.6.7.8 v=spf1 -al",
    ),
    (
        "long_provider",
        // A websitewelcome-scale record: dozens of blocks.
        "v=spf1 ip4:16.0.0.1 ip4:16.0.0.2 ip4:16.0.0.3 ip4:16.0.1.0/24 ip4:16.0.2.0/24 \
         ip4:16.4.0.0/16 ip4:16.8.0.0/14 ip4:17.0.0.0/15 ip4:17.2.0.0/16 ip4:17.3.0.0/19 \
         ip4:17.3.32.0/20 ip4:17.3.48.0/21 ip4:17.3.56.0/25 ip4:17.3.56.128/28 -all",
    ),
];

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for (name, record) in CORPUS {
        group.bench_function(format!("lenient/{name}"), |b| {
            b.iter(|| spf_core::parse_lenient(black_box(record)))
        });
    }
    group.bench_function("strict/paper_example", |b| {
        b.iter(|| spf_core::parse(black_box("v=spf1 +mx a:puffin.example.com/28 -all")))
    });
    group.bench_function("is_spf_record", |b| {
        b.iter_batched(
            || CORPUS.iter().map(|(_, r)| *r).collect::<Vec<_>>(),
            |records| {
                records
                    .iter()
                    .filter(|r| spf_core::is_spf_record(black_box(r)))
                    .count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dmarc(c: &mut Criterion) {
    c.bench_function("parse/dmarc_full", |b| {
        b.iter(|| {
            spf_core::parse_dmarc(black_box(
                "v=DMARC1; p=reject; sp=quarantine; rua=mailto:agg@x.example; pct=50; adkim=s",
            ))
        })
    });
}

criterion_group!(benches, bench_parse, bench_dmarc);
criterion_main!(benches);
