//! The spoofability-matrix scaling sweep behind BENCH_5.json and
//! DESIGN.md §6/§8.
//!
//! One `spoof_matrix_scaling` criterion group sweeps two world shapes —
//! the combined population + hosting spoof world and the include-heavy
//! stress preset ([`spf_netsim::spooflab`]) — across workers × vantage
//! counts, and measures every configuration **twice**: with the subtree
//! verdict cache on and off. The acceptance headline is the
//! cached-vs-uncached speedup on the include-heavy preset, where every
//! tenant's record is a deep shared include chain and the uncached
//! engine re-walks it for every `(customer, vantage)` cell.
//!
//! The harness asserts the cached and uncached matrices serialize
//! identically before trusting any timing, then writes the sweep to
//! `BENCH_5.json` at the workspace root.
//!
//! Quick mode for CI smoke runs: set `SPOOF_MATRIX_QUICK=1` (or pass
//! `--quick`) to shrink the matrix; the JSON is still written so the
//! artifact upload works.
//!
//! Regression gate: the report's `quick_points` are measured with the
//! same plain best-of-N loop in full and quick runs, so
//! `scripts/bench_guard.sh` can compare a CI quick run against the
//! committed BENCH_5.json; with `BENCH_GUARD_BASELINE` set, this binary
//! fails itself on a throughput regression (`spf_bench::guard`).

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::guard::{self, GuardPoint};
#[allow(deprecated)]
use spf_crawler::spoof_matrix;
use spf_crawler::{
    crawl, select_vantages, CrawlConfig, ProviderVantage, SpoofMatrixConfig, VantagePoint,
};
use spf_dns::ZoneResolver;
use spf_netsim::{build_include_heavy, build_spoof_world, Scale};
use spf_types::DomainName;

const SEED: u64 = 0x5bf1_2023;
/// Timed passes per configuration; the recorded figure is the best of
/// them, which damps the scheduling noise of small shared hosts.
const RUNS: usize = 3;

/// Which world a configuration evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// The calibrated population merged with the hosting case study.
    Spoof,
    /// The include-heavy cache stress preset.
    IncludeHeavy,
}

impl Shape {
    fn key(&self) -> &'static str {
        match self {
            Shape::Spoof => "pop",
            Shape::IncludeHeavy => "heavy",
        }
    }
}

/// One crawled world with its vantage set, held out of the timed region.
struct World {
    resolver: ZoneResolver,
    domains: Vec<DomainName>,
    vantages: Vec<VantagePoint>,
}

/// Build a world and derive its vantage set from a coverage crawl (the
/// same selection path the `repro` target uses).
fn build_world(shape: Shape, denominator: u64) -> World {
    let (store, domains, providers) = match shape {
        Shape::Spoof => {
            let world = build_spoof_world(Scale { denominator }, SEED);
            let providers: Vec<ProviderVantage> = world
                .providers
                .iter()
                .map(|p| ProviderVantage {
                    label: format!("hosting{}", p.id),
                    web: p.web_ip,
                    mta: p.mta_ip,
                })
                .collect();
            (world.store, world.domains, providers)
        }
        Shape::IncludeHeavy => {
            let tenants = (12_823_598 / denominator) as usize;
            let world = build_include_heavy(tenants);
            (world.store, world.domains, Vec::new())
        }
    };
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
    let out = crawl(&walker, &domains, CrawlConfig::with_workers(8));
    let weighted = out.coverage.into_weighted();
    let vantages = select_vantages(&weighted, &providers, 8, 4, SEED);
    World {
        resolver: ZoneResolver::new(store),
        domains,
        vantages,
    }
}

#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    shape: String,
    scale_denominator: u64,
    workers: usize,
    vantage_count: usize,
    domains: u64,
    evaluations: u64,
    /// Best-of-RUNS seconds with the verdict cache on.
    cached_secs: f64,
    /// Best-of-RUNS seconds with the cache off.
    uncached_secs: f64,
    /// `uncached_secs / cached_secs` — the acceptance headline on the
    /// `heavy` shape.
    speedup: f64,
    /// Verdict-cache hit rate of the cached run.
    cache_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    runs_per_config: usize,
    host_parallelism: usize,
    baseline_note: String,
    results: Vec<SweepPoint>,
    /// Guard points: cached-matrix evaluation throughput for fixed quick
    /// configurations, measured by the same plain loop in every mode.
    quick_points: Vec<GuardPoint>,
}

/// Time one matrix run; returns (secs, hit rate, serialized matrix).
fn timed_run(world: &World, vantage_count: usize, config: SpoofMatrixConfig) -> (f64, f64, String) {
    let vantages = &world.vantages[..vantage_count.min(world.vantages.len())];
    let started = Instant::now();
    #[allow(deprecated)]
    let (matrix, stats) = spoof_matrix(&world.resolver, &world.domains, vantages, config);
    let secs = started.elapsed().as_secs_f64();
    (
        secs,
        stats.cache_hit_rate(),
        serde_json::to_string(&matrix).expect("matrix serializes"),
    )
}

/// Measure one configuration: best-of-RUNS cached and uncached, with the
/// cross-check that the two matrices are byte-identical.
fn measure(world: &World, shape: Shape, denominator: u64, workers: usize, vc: usize) -> SweepPoint {
    let vantage_count = vc.min(world.vantages.len());
    let mut best_cached = f64::INFINITY;
    let mut best_uncached = f64::INFINITY;
    let mut hit_rate = 0.0;
    for _ in 0..RUNS {
        let (cached_secs, rate, cached_json) = timed_run(
            world,
            vantage_count,
            SpoofMatrixConfig::with_workers(workers),
        );
        let (uncached_secs, _, uncached_json) = timed_run(
            world,
            vantage_count,
            SpoofMatrixConfig::with_workers(workers).cached(false),
        );
        assert_eq!(
            cached_json, uncached_json,
            "cached and uncached matrices diverged at {shape:?} w{workers} v{vantage_count}"
        );
        if cached_secs < best_cached {
            best_cached = cached_secs;
            hit_rate = rate;
        }
        best_uncached = best_uncached.min(uncached_secs);
    }
    SweepPoint {
        shape: shape.key().to_string(),
        scale_denominator: denominator,
        workers,
        vantage_count,
        domains: world.domains.len() as u64,
        evaluations: (world.domains.len() * vantage_count) as u64,
        cached_secs: best_cached,
        uncached_secs: best_uncached,
        speedup: best_uncached / best_cached.max(f64::EPSILON),
        cache_hit_rate: hit_rate,
    }
}

/// The fixed quick matrix behind `quick_points`: `(shape, denominator,
/// workers, vantages, cached)`.
const QUICK_CONFIGS: &[(Shape, u64, usize, usize, bool)] = &[
    (Shape::IncludeHeavy, 5_000, 4, 8, true),
    (Shape::IncludeHeavy, 5_000, 4, 8, false),
    (Shape::Spoof, 5_000, 4, 8, true),
];

/// Best-of-RUNS matrix throughput (evaluations per second) over the
/// fixed quick configurations.
fn measure_quick_points() -> Vec<GuardPoint> {
    // Worlds are memoized per (shape, denominator): consecutive quick
    // configs differing only in the cached flag share one build (zone +
    // crawl + vantage selection), halving CI guard setup time.
    let mut worlds: Vec<((Shape, u64), World)> = Vec::new();
    QUICK_CONFIGS
        .iter()
        .map(|&(shape, denom, workers, vc, cached)| {
            if !worlds.iter().any(|(k, _)| *k == (shape, denom)) {
                worlds.push(((shape, denom), build_world(shape, denom)));
            }
            let world = &worlds
                .iter()
                .find(|(k, _)| *k == (shape, denom))
                .expect("just inserted")
                .1;
            let vantage_count = vc.min(world.vantages.len());
            let key = format!(
                "spoof_{}_{denom}_w{workers}_v{vantage_count}_{}",
                shape.key(),
                if cached { "cached" } else { "raw" }
            );
            guard::quick_point(key, RUNS, || {
                let (secs, _, json) = timed_run(
                    world,
                    vantage_count,
                    SpoofMatrixConfig::with_workers(workers).cached(cached),
                );
                assert!(!json.is_empty());
                (world.domains.len() * vantage_count) as f64 / secs.max(f64::EPSILON)
            })
        })
        .collect()
}

fn quick_mode() -> bool {
    std::env::var("SPOOF_MATRIX_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    // (shape, scale, workers, vantage count): both shapes at the bench
    // scale, sweeping workers at fixed vantages and vantages at fixed
    // workers.
    let configs: &[(Shape, u64, usize, usize)] = if quick {
        &[
            (Shape::IncludeHeavy, 5_000, 4, 8),
            (Shape::Spoof, 5_000, 4, 8),
        ]
    } else {
        &[
            (Shape::IncludeHeavy, 1_000, 1, 8),
            (Shape::IncludeHeavy, 1_000, 4, 8),
            (Shape::IncludeHeavy, 1_000, 8, 8),
            (Shape::IncludeHeavy, 1_000, 4, 4),
            (Shape::Spoof, 1_000, 1, 8),
            (Shape::Spoof, 1_000, 4, 8),
            (Shape::Spoof, 1_000, 8, 8),
            (Shape::Spoof, 1_000, 4, 12),
        ]
    };

    println!(
        "spoof_matrix_scaling: sweeping {} configurations (seed {SEED:#x})",
        configs.len()
    );

    let points: RefCell<Vec<SweepPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("spoof_matrix_scaling");
    group.measurement_time(Duration::from_millis(1));
    for &(shape, denom, workers, vc) in configs {
        let id = format!("{}_{denom}_w{workers}_v{vc}", shape.key());
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let world = build_world(shape, denom);
                let point = measure(&world, shape, denom, workers, vc);
                let mut points = points.borrow_mut();
                // Dedup on the *measured* configuration (vantage counts
                // are clamped to what the world actually offers).
                match points.iter_mut().find(|p| {
                    p.shape == point.shape
                        && p.workers == point.workers
                        && p.vantage_count == point.vantage_count
                }) {
                    Some(existing) if existing.cached_secs <= point.cached_secs => {}
                    Some(existing) => *existing = point,
                    None => points.push(point),
                }
                workers
            });
        });
    }
    group.finish();

    let quick_points = measure_quick_points();
    let results = points.into_inner();
    for p in &results {
        println!(
            "spoof_matrix_scaling: {}@1:{} w{} v{} — cached {:.1} ms ({:.0} evals/s, \
             hit rate {:.1} %), uncached {:.1} ms, speedup {:.2}x",
            p.shape,
            p.scale_denominator,
            p.workers,
            p.vantage_count,
            p.cached_secs * 1e3,
            p.evaluations as f64 / p.cached_secs.max(f64::EPSILON),
            p.cache_hit_rate * 100.0,
            p.uncached_secs * 1e3,
            p.speedup
        );
    }
    if let Some(best) = results
        .iter()
        .filter(|p| p.shape == "heavy")
        .map(|p| p.speedup)
        .fold(None::<f64>, |acc, s| Some(acc.map_or(s, |a| a.max(s))))
    {
        println!("spoof_matrix_scaling: best include-heavy cached-vs-uncached speedup {best:.2}x");
    }

    let report = BenchReport {
        bench: "spoof_matrix_scaling".to_string(),
        quick_mode: quick,
        runs_per_config: RUNS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        baseline_note: "cached and uncached columns evaluate the identical matrix (asserted \
                        byte-identical each run); the heavy shape is spooflab's include-heavy \
                        preset, where every tenant record is a deep shared include chain"
            .to_string(),
        results,
        quick_points: quick_points.clone(),
    };
    let out_path = std::env::var("BENCH_5_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_5.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_5.json is writable");
    println!("spoof_matrix_scaling: wrote {out_path}");

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
