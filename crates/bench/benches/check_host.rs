//! `check_host()` latency — what a receiving MTA pays per message, and
//! the lookup-accounting ablation from DESIGN.md §5 (global-recursive
//! counting, as the paper's checkdmarc does, vs per-record counting).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use spf_core::{check_host, EvalContext, EvalPolicy, LookupAccounting};
use spf_dns::{ZoneResolver, ZoneStore};
use spf_types::DomainName;
use std::hint::black_box;

fn dom(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn world() -> Arc<ZoneStore> {
    let store = Arc::new(ZoneStore::new());
    // Flat direct record.
    store.add_txt(&dom("flat.example"), "v=spf1 ip4:192.0.2.0/24 -all");
    // Provider include (one level).
    store.add_txt(
        &dom("customer.example"),
        "v=spf1 include:spf.provider.example -all",
    );
    store.add_txt(
        &dom("spf.provider.example"),
        "v=spf1 ip4:198.51.100.0/24 ip4:203.0.113.0/24 -all",
    );
    // Nine-deep include chain (stays within the 10-lookup limit).
    for i in 0..9 {
        let name = dom(&format!("chain{i}.example"));
        let next = format!("chain{}.example", i + 1);
        store.add_txt(&name, &format!("v=spf1 include:{next} -all"));
    }
    store.add_txt(&dom("chain9.example"), "v=spf1 ip4:10.1.2.3 -all");
    // a/mx resolution.
    store.add_txt(&dom("amx.example"), "v=spf1 a mx -all");
    store.add_a(&dom("amx.example"), "192.0.2.77".parse().unwrap());
    store.add_mx(&dom("amx.example"), 10, &dom("mx.amx.example"));
    store.add_a(&dom("mx.amx.example"), "192.0.2.78".parse().unwrap());
    // Macro exists.
    store.add_txt(
        &dom("macro.example"),
        "v=spf1 exists:%{ir}.allow.macro.example -all",
    );
    store.add_a(
        &dom("3.2.0.192.allow.macro.example"),
        "127.0.0.2".parse().unwrap(),
    );
    store
}

fn bench_check_host(c: &mut Criterion) {
    let store = world();
    let resolver = ZoneResolver::new(store);
    let policy = EvalPolicy::default();
    let mut group = c.benchmark_group("check_host");
    let cases = [
        ("flat_pass", "192.0.2.7", "flat.example"),
        ("flat_fail", "203.0.113.99", "flat.example"),
        ("provider_include", "198.51.100.20", "customer.example"),
        ("deep_chain_9", "10.1.2.3", "chain0.example"),
        ("a_mx_resolution", "192.0.2.78", "amx.example"),
        ("macro_exists", "192.0.2.3", "macro.example"),
    ];
    for (name, ip, domain) in cases {
        let ctx = EvalContext::mail_from(ip.parse().unwrap(), "alice", dom(domain));
        let d = dom(domain);
        group.bench_function(name, |b| {
            b.iter(|| {
                check_host(
                    black_box(&resolver),
                    black_box(&ctx),
                    black_box(&d),
                    &policy,
                )
            })
        });
    }
    group.finish();
}

/// Ablation: global-recursive vs per-record lookup accounting on a chain
/// that the global budget rejects and the per-record budget allows.
fn bench_accounting_ablation(c: &mut Criterion) {
    let store = Arc::new(ZoneStore::new());
    for i in 0..12 {
        let name = dom(&format!("p{i}.example"));
        let next = format!("p{}.example", i + 1);
        store.add_txt(&name, &format!("v=spf1 include:{next} -all"));
    }
    store.add_txt(&dom("p12.example"), "v=spf1 ip4:10.0.0.1 -all");
    let resolver = ZoneResolver::new(store);
    let ctx = EvalContext::mail_from("10.0.0.1".parse().unwrap(), "alice", dom("p0.example"));
    let d = dom("p0.example");
    let mut group = c.benchmark_group("lookup_accounting");
    for (name, accounting) in [
        ("global_recursive", LookupAccounting::GlobalRecursive),
        ("per_record", LookupAccounting::PerRecord),
    ] {
        let policy = EvalPolicy {
            accounting,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| check_host(black_box(&resolver), &ctx, &d, &policy))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_check_host, bench_accounting_ablation);
criterion_main!(benches);
