//! The crawl-engine scaling sweep behind BENCH_2.json and DESIGN.md §6.
//!
//! One `crawl_scaling` criterion group sweeps workers × cache-shards ×
//! batch-size over the same 1:200 population (≈64k domains,
//! [`Scale::crawl_sweep`]) and records, per configuration, the best-of-N
//! throughput plus the walker's cache hit rate and the dispatcher's peak
//! queue depth. After the group finishes, the harness writes the whole
//! sweep — including the speedup against the committed pre-PR baseline
//! (single-lock cache, unbounded preloaded dispatch) — to `BENCH_2.json`
//! at the workspace root.
//!
//! Quick mode for CI smoke runs: set `CRAWL_SCALING_QUICK=1` (or pass
//! `--quick`) to shrink the population to 1:5000 and the matrix to two
//! configurations; the JSON is still written so the artifact upload works.
//!
//! Regression gate: the report's `quick_points` are measured with the
//! same plain best-of-N loop in full and quick runs, so
//! `scripts/bench_guard.sh` can compare a CI quick run against the
//! committed BENCH_2.json (`spf_bench::guard`); with
//! `BENCH_GUARD_BASELINE` set, this binary fails itself on a >30 %
//! throughput regression.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::{WalkPolicy, Walker};
use spf_bench::guard::{self, GuardPoint};
use spf_crawler::{crawl, CrawlConfig};
use spf_dns::ZoneResolver;
use spf_netsim::{Population, PopulationConfig, Scale};

const SEED: u64 = 0x5bf1_2023;
/// Crawls per criterion pass (each configuration sees `2 × RUNS` timed
/// crawls: criterion's calibration pass plus its measured pass); the
/// recorded figure is the best of them, which damps the scheduling noise
/// of small shared hosts.
const RUNS: usize = 3;

/// Pre-PR throughput of this sweep's 32-worker point, measured on the same
/// host and population (scale 1:200, seed 0x5bf12023) at commit fddfab6 —
/// the single global `RwLock<HashMap>` walker cache with the whole domain
/// list preloaded into an unbounded channel. Kept as the fixed comparison
/// point for the `speedup_at_32_workers_vs_pre_pr` field.
const PRE_PR_32_WORKERS_DOMAINS_PER_SEC: f64 = 210_221.0;

#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    workers: usize,
    shards: usize,
    batch_size: usize,
    best_secs: f64,
    domains_per_sec: f64,
    cache_hit_rate: f64,
    peak_queue_depth: usize,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    scale_denominator: u64,
    domains: u64,
    runs_per_config: usize,
    host_parallelism: usize,
    pre_pr_baseline: PrePrBaseline,
    results: Vec<SweepPoint>,
    speedup_at_32_workers_vs_pre_pr: f64,
    /// Guard points: the quick configurations at quick scale, measured by
    /// the plain loop in *every* mode so CI quick runs compare
    /// apples-to-apples against this committed artifact.
    quick_points: Vec<GuardPoint>,
}

/// The fixed quick-scale matrix behind `quick_points`.
const QUICK_CONFIGS: &[(usize, usize, usize)] = &[(1, 1, 1), (4, 16, 64)];
const QUICK_SCALE: Scale = Scale { denominator: 5_000 };

/// One timed crawl of `population` under the given configuration.
fn timed_crawl(population: &Population, workers: usize, shards: usize, batch: usize) -> SweepPoint {
    let walker = Walker::with_shards(
        ZoneResolver::new(Arc::clone(&population.store)),
        WalkPolicy::default(),
        shards,
    );
    let started = Instant::now();
    let out = crawl(
        &walker,
        &population.domains,
        CrawlConfig::with_workers(workers).batch_size(batch),
    );
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(out.reports.len(), population.domains.len());
    SweepPoint {
        workers,
        shards,
        batch_size: batch,
        best_secs: secs,
        domains_per_sec: out.stats.domains_per_sec(),
        cache_hit_rate: out.stats.cache_hit_rate(),
        peak_queue_depth: out.stats.peak_queue_depth,
    }
}

/// Best-of-`RUNS` guard points over the quick matrix at quick scale.
fn measure_quick_points(quick_population: &Population) -> Vec<GuardPoint> {
    QUICK_CONFIGS
        .iter()
        .map(|&(workers, shards, batch)| {
            guard::quick_point(format!("w{workers}_s{shards}_b{batch}"), RUNS, || {
                timed_crawl(quick_population, workers, shards, batch).domains_per_sec
            })
        })
        .collect()
}

#[derive(Debug, Serialize)]
struct PrePrBaseline {
    description: String,
    workers_32_domains_per_sec: f64,
}

fn quick_mode() -> bool {
    std::env::var("CRAWL_SCALING_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    let scale = if quick {
        Scale { denominator: 5_000 }
    } else {
        Scale::crawl_sweep()
    };
    let configs: &[(usize, usize, usize)] = if quick {
        &[(1, 1, 1), (4, 16, 64)]
    } else {
        &[
            // workers × shards at the default batch: the scaling story.
            (1, 1, 1), // pre-PR-shaped: single lock stripe, per-domain dispatch
            (1, 16, 64),
            (4, 1, 64),
            (4, 16, 64),
            (8, 16, 64),
            (32, 1, 64),
            (32, 16, 64),
            (32, 16, 256),
            // batch sweep at fixed workers/shards: the dispatch knob.
            (8, 16, 1),
            (8, 16, 16),
            (8, 16, 256),
        ]
    };

    println!(
        "crawl_scaling: generating the 1:{} population (seed {SEED:#x}) ...",
        scale.denominator
    );
    let population = Population::build(PopulationConfig { scale, seed: SEED });
    let n = population.domains.len();
    println!(
        "crawl_scaling: {n} domains, sweeping {} configurations",
        configs.len()
    );

    let points: RefCell<Vec<SweepPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("crawl_scaling");
    group.measurement_time(Duration::from_millis(1));
    for &(workers, shards, batch_size) in configs {
        let id = format!("w{workers}_s{shards}_b{batch_size}");
        let population = &population;
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..RUNS {
                    let point = timed_crawl(population, workers, shards, batch_size);
                    total += population.domains.len();
                    let mut points = points.borrow_mut();
                    match points.iter_mut().find(|p| {
                        (p.workers, p.shards, p.batch_size) == (workers, shards, batch_size)
                    }) {
                        Some(existing) if existing.best_secs <= point.best_secs => {}
                        Some(existing) => *existing = point,
                        None => points.push(point),
                    }
                }
                total
            });
        });
    }
    group.finish();

    // Guard points: always measured at quick scale with the plain loop,
    // so the committed full-mode artifact and a CI quick run agree on
    // population and method.
    let quick_population = if scale.denominator == QUICK_SCALE.denominator {
        population
    } else {
        println!(
            "crawl_scaling: measuring guard points on the 1:{} quick population ...",
            QUICK_SCALE.denominator
        );
        Population::build(PopulationConfig {
            scale: QUICK_SCALE,
            seed: SEED,
        })
    };
    let quick_points = measure_quick_points(&quick_population);

    let results = points.into_inner();
    let best_32 = results
        .iter()
        .filter(|p| p.workers == 32 && p.shards > 1)
        .map(|p| p.domains_per_sec)
        .fold(0.0f64, f64::max);
    let report = BenchReport {
        bench: "crawl_scaling".to_string(),
        quick_mode: quick,
        scale_denominator: scale.denominator,
        domains: n as u64,
        runs_per_config: RUNS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        pre_pr_baseline: PrePrBaseline {
            description: "single global RwLock<HashMap> walker cache + unbounded preloaded \
                          dispatch (commit fddfab6), 32 workers, same scale/seed/host"
                .to_string(),
            workers_32_domains_per_sec: PRE_PR_32_WORKERS_DOMAINS_PER_SEC,
        },
        results,
        speedup_at_32_workers_vs_pre_pr: if quick {
            0.0 // quick populations are too small to compare against the baseline
        } else {
            best_32 / PRE_PR_32_WORKERS_DOMAINS_PER_SEC
        },
        quick_points: quick_points.clone(),
    };

    let out_path = std::env::var("BENCH_2_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_2.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_2.json is writable");
    println!("crawl_scaling: wrote {out_path}");
    if !quick {
        println!(
            "crawl_scaling: best 32-worker throughput {best_32:.0} domains/s \
             ({:.2}x the pre-PR single-lock baseline)",
            report.speedup_at_32_workers_vs_pre_pr
        );
    }

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
