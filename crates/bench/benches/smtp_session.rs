//! Table 5's transport cost: a full spoof attempt is one TCP SMTP session
//! (connect, EHLO, XCLIENT, MAIL, RCPT, DATA, QUIT) against the receiving
//! MTA with its SPF gate — this bench measures that session end to end,
//! plus the case-study harness as a whole.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use spf_dns::{ZoneResolver, ZoneStore};
use spf_netsim::{build_hosting, Scale};
use spf_smtp::{run_case_study, MtaConfig, SmtpClient, SmtpServer};
use spf_types::DomainName;

fn bench_session(c: &mut Criterion) {
    let store = Arc::new(ZoneStore::new());
    let victim = DomainName::parse("victim.example").unwrap();
    store.add_txt(&victim, "v=spf1 ip4:198.51.100.7 -all");
    let server = SmtpServer::spawn(
        Arc::new(ZoneResolver::new(Arc::clone(&store))),
        MtaConfig::default(),
    )
    .unwrap();
    let addr = server.addr();
    let mut group = c.benchmark_group("smtp_session");
    group.sample_size(30);
    group.bench_function("full_session_spf_pass", |b| {
        b.iter(|| {
            let mut client = SmtpClient::connect(addr).unwrap();
            client.ehlo("web.hosting.example").unwrap();
            client.xclient("198.51.100.7".parse().unwrap()).unwrap();
            client.mail_from("ceo@victim.example").unwrap();
            client.rcpt_to("us@receiver.example").unwrap();
            client.data("Subject: hi\n\nbody").unwrap();
            client.quit().unwrap();
        })
    });
    group.bench_function("rejected_session_spf_fail", |b| {
        b.iter(|| {
            let mut client = SmtpClient::connect(addr).unwrap();
            client.ehlo("attacker.example").unwrap();
            client.xclient("203.0.113.9".parse().unwrap()).unwrap();
            let reply = client.mail_from("ceo@victim.example").unwrap();
            assert_eq!(reply.code, 550);
            client.quit().unwrap();
        })
    });
    group.finish();
}

fn bench_case_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("case_study");
    group.sample_size(10);
    group.bench_function("table5_five_providers", |b| {
        b.iter(|| {
            let world = build_hosting(Scale {
                denominator: 10_000,
            });
            let resolver = Arc::new(ZoneResolver::new(Arc::clone(&world.store)));
            run_case_study(&world, resolver).unwrap().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session, bench_case_study);
criterion_main!(benches);
