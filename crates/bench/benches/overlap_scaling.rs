//! The overlap-engine scaling sweep behind BENCH_4.json and DESIGN.md §6.
//!
//! One `overlap_scaling` criterion group sweeps population scale ×
//! provider skew — the calibrated population plus the two
//! [`TenancyPreset`] worlds (mega-providers vs long tail) — and measures,
//! per configuration, the cost of answering the §6 overlap questions
//! (most-spoofable address, coverage histogram, covered space) two ways:
//!
//! * **sweep-line** — fold every domain's flattened range set into a
//!   [`CoverageMap`] and sweep the boundary multiset: `O(B log B)` in the
//!   number of distinct boundaries;
//! * **naive baseline** — the membership-scan path the engine replaces:
//!   probe [`NAIVE_PROBES`] candidate addresses against every domain's
//!   `Ipv4Set::contains`, `O(domains × probes × log ranges)` — and even
//!   then the answers are only probe-set approximations, while the sweep
//!   is exact.
//!
//! The harness asserts the two paths agree at every probe before trusting
//! the timings, then writes the whole sweep to `BENCH_4.json` at the
//! workspace root.
//!
//! Quick mode for CI smoke runs: set `OVERLAP_SCALING_QUICK=1` (or pass
//! `--quick`) to shrink the matrix to the 1:5000 population and
//! mega-tenancy worlds; the JSON is still written so the artifact upload
//! works.
//!
//! Regression gate: the report's `quick_points` are measured with the
//! same plain best-of-N loop in full and quick runs, so
//! `scripts/bench_guard.sh` can compare a CI quick run against the
//! committed BENCH_4.json (`spf_bench::guard`); with
//! `BENCH_GUARD_BASELINE` set, this binary fails itself on a >30 %
//! throughput regression.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::guard::{self, GuardPoint};
use spf_crawler::{crawl, CrawlConfig};
use spf_dns::ZoneResolver;
use spf_netsim::{
    build_tenancy, Population, PopulationConfig, Scale, TenancyConfig, TenancyPreset,
};
use spf_types::{CoverageMap, Ipv4Set, WeightedRanges};

const SEED: u64 = 0x5bf1_2023;
/// Timed passes per configuration; the recorded figure is the best of
/// them, which damps the scheduling noise of small shared hosts.
const RUNS: usize = 3;
/// Candidate addresses the naive baseline probes (sampled evenly from
/// the population's own range starts, so every probe can actually hit).
const NAIVE_PROBES: usize = 512;

/// Which world a configuration crawls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// The calibrated paper population.
    Calibrated,
    /// A [`TenancyPreset`] world.
    Tenancy(TenancyPreset),
}

impl Shape {
    fn key(&self) -> &'static str {
        match self {
            Shape::Calibrated => "pop",
            Shape::Tenancy(TenancyPreset::MegaProviders) => "mega",
            Shape::Tenancy(TenancyPreset::LongTail) => "long_tail",
        }
    }
}

/// The flattened range sets of one crawled world (the overlap engine's
/// input), held out of the timed region.
struct WorldSets {
    sets: Vec<Ipv4Set>,
    probes: Vec<Ipv4Addr>,
}

#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    shape: String,
    scale_denominator: u64,
    domains: u64,
    spf_domains: u64,
    boundaries: u64,
    weighted_ranges: u64,
    max_coverage_domains: u64,
    total_covered: u64,
    /// Best-of-RUNS seconds for the exact sweep-line pipeline.
    sweep_secs: f64,
    /// Best-of-RUNS seconds for the probe-set membership baseline.
    naive_secs: f64,
    /// `naive_secs / sweep_secs` — the acceptance headline.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    runs_per_config: usize,
    naive_probe_count: usize,
    host_parallelism: usize,
    baseline_note: String,
    results: Vec<SweepPoint>,
    /// Guard points: sweep-pipeline throughput (SPF range sets folded
    /// per second) for the fixed quick configurations at quick scale,
    /// measured by the same plain loop in every mode.
    quick_points: Vec<GuardPoint>,
}

/// Crawl a world and extract the overlap inputs (untimed).
fn build_sets(shape: Shape, denominator: u64) -> WorldSets {
    let (store, domains) = match shape {
        Shape::Calibrated => {
            let population = Population::build(PopulationConfig {
                scale: Scale { denominator },
                seed: SEED,
            });
            (population.store, population.domains)
        }
        Shape::Tenancy(preset) => {
            let world = build_tenancy(TenancyConfig {
                scale: Scale { denominator },
                preset,
                seed: SEED,
            });
            (world.store, world.domains)
        }
    };
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
    let out = crawl(&walker, &domains, CrawlConfig::with_workers(8));
    let sets: Vec<Ipv4Set> = out
        .reports
        .iter()
        .filter(|r| r.has_spf)
        .filter_map(|r| r.record.as_ref().map(|rec| rec.ips.clone()))
        .filter(|ips| !ips.is_empty())
        .collect();
    // Probe the naive path where it can hit: an even sample of the
    // population's own range-start addresses.
    let starts: Vec<Ipv4Addr> = sets
        .iter()
        .flat_map(|s| s.iter_ranges().map(|(lo, _)| lo))
        .collect();
    let step = (starts.len() / NAIVE_PROBES).max(1);
    let probes: Vec<Ipv4Addr> = starts
        .iter()
        .step_by(step)
        .take(NAIVE_PROBES)
        .copied()
        .collect();
    WorldSets { sets, probes }
}

/// One timed pass of the exact sweep-line pipeline: accumulate, sweep,
/// and answer all three §6 questions.
fn timed_sweep(world: &WorldSets) -> (f64, WeightedRanges, usize) {
    let started = Instant::now();
    let mut map = CoverageMap::new();
    for set in &world.sets {
        map.add_set(set);
    }
    let boundaries = map.boundary_count();
    let weighted = map.into_weighted();
    let _max = weighted.max_coverage();
    let _histogram = weighted.power_of_two_histogram();
    let _covered = weighted.total_covered();
    (started.elapsed().as_secs_f64(), weighted, boundaries)
}

/// One timed pass of the naive membership baseline: per probe address,
/// count the domains whose interval set contains it.
fn timed_naive(world: &WorldSets) -> (f64, Vec<u64>) {
    let started = Instant::now();
    let weights: Vec<u64> = world
        .probes
        .iter()
        .map(|&addr| world.sets.iter().filter(|s| s.contains(addr)).count() as u64)
        .collect();
    (started.elapsed().as_secs_f64(), weights)
}

/// Measure one configuration: best-of-RUNS for both paths, with the
/// cross-check that they agree at every probe.
fn measure(shape: Shape, denominator: u64, domains: u64) -> SweepPoint {
    let world = build_sets(shape, denominator);
    let mut best_sweep = f64::INFINITY;
    let mut best_naive = f64::INFINITY;
    let mut weighted = WeightedRanges::new();
    let mut boundaries = 0usize;
    for _ in 0..RUNS {
        let (sweep_secs, w, b) = timed_sweep(&world);
        best_sweep = best_sweep.min(sweep_secs);
        weighted = w;
        boundaries = b;
        let (naive_secs, naive_weights) = timed_naive(&world);
        best_naive = best_naive.min(naive_secs);
        for (&addr, &naive) in world.probes.iter().zip(&naive_weights) {
            assert_eq!(
                weighted.weight_at(addr),
                naive,
                "sweep and naive disagree at {addr}"
            );
        }
    }
    SweepPoint {
        shape: shape.key().to_string(),
        scale_denominator: denominator,
        domains,
        spf_domains: world.sets.len() as u64,
        boundaries: boundaries as u64,
        weighted_ranges: weighted.range_count() as u64,
        max_coverage_domains: weighted.max_weight(),
        total_covered: weighted.total_covered(),
        sweep_secs: best_sweep,
        naive_secs: best_naive,
        speedup: best_naive / best_sweep.max(f64::EPSILON),
    }
}

/// The fixed quick matrix behind `quick_points`.
const QUICK_CONFIGS: &[(Shape, u64)] = &[
    (Shape::Calibrated, 5_000),
    (Shape::Tenancy(TenancyPreset::MegaProviders), 5_000),
];

/// Sweeps per guard-point timing: a single quick-scale sweep finishes in
/// ~0.1 ms, where scheduler jitter alone can eat the 30 % tolerance, so
/// each measurement times a batch and divides.
const QUICK_INNER: usize = 16;

/// Best-of-RUNS sweep-pipeline throughput (sets folded per second) over
/// the quick matrix.
fn measure_quick_points() -> Vec<GuardPoint> {
    QUICK_CONFIGS
        .iter()
        .map(|&(shape, denom)| {
            let world = build_sets(shape, denom);
            guard::quick_point(format!("overlap_{}_{denom}", shape.key()), RUNS, || {
                let started = Instant::now();
                for _ in 0..QUICK_INNER {
                    let (_, weighted, _) = timed_sweep(&world);
                    assert!(!weighted.is_empty());
                }
                let secs = started.elapsed().as_secs_f64();
                (world.sets.len() * QUICK_INNER) as f64 / secs.max(f64::EPSILON)
            })
        })
        .collect()
}

fn quick_mode() -> bool {
    std::env::var("OVERLAP_SCALING_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    // Population scale × provider skew: both presets and the calibrated
    // world, each at two scales (the acceptance point is 1:200).
    let configs: &[(Shape, u64)] = if quick {
        QUICK_CONFIGS
    } else {
        &[
            (Shape::Calibrated, 1_000),
            (Shape::Calibrated, 200),
            (Shape::Tenancy(TenancyPreset::MegaProviders), 1_000),
            (Shape::Tenancy(TenancyPreset::MegaProviders), 200),
            (Shape::Tenancy(TenancyPreset::LongTail), 1_000),
            (Shape::Tenancy(TenancyPreset::LongTail), 200),
        ]
    };

    println!(
        "overlap_scaling: sweeping {} configurations (seed {SEED:#x}, {} naive probes)",
        configs.len(),
        NAIVE_PROBES
    );

    let points: RefCell<Vec<SweepPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("overlap_scaling");
    group.measurement_time(Duration::from_millis(1));
    for &(shape, denom) in configs {
        let id = format!("{}_{denom}", shape.key());
        let points = &points;
        let domains = Scale { denominator: denom }.approx_domains();
        group.bench_function(id, move |b| {
            b.iter(|| {
                let point = measure(shape, denom, domains);
                let mut points = points.borrow_mut();
                match points
                    .iter_mut()
                    .find(|p| p.shape == point.shape && p.scale_denominator == denom)
                {
                    Some(existing) if existing.sweep_secs <= point.sweep_secs => {}
                    Some(existing) => *existing = point,
                    None => points.push(point),
                }
                domains
            });
        });
    }
    group.finish();

    let quick_points = measure_quick_points();
    let results = points.into_inner();
    for p in &results {
        println!(
            "overlap_scaling: {}@1:{} — sweep {:.2} ms ({} boundaries), naive {:.2} ms \
             ({} probes × {} sets), speedup {:.1}x",
            p.shape,
            p.scale_denominator,
            p.sweep_secs * 1e3,
            p.boundaries,
            p.naive_secs * 1e3,
            NAIVE_PROBES,
            p.spf_domains,
            p.speedup
        );
    }

    let report = BenchReport {
        bench: "overlap_scaling".to_string(),
        quick_mode: quick,
        runs_per_config: RUNS,
        naive_probe_count: NAIVE_PROBES,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        baseline_note: "the naive column answers only a probe-set approximation of the \
                        overlap questions via per-address Ipv4Set::contains scans; the \
                        sweep column answers them exactly, so the speedup is a lower bound"
            .to_string(),
        results,
        quick_points: quick_points.clone(),
    };
    let out_path = std::env::var("BENCH_4_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_4.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_4.json is writable");
    println!("overlap_scaling: wrote {out_path}");

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
