//! The compiled-backend throughput sweep behind BENCH_7.json and
//! DESIGN.md §10.
//!
//! One `compiled_throughput` criterion group measures steady-state
//! verdict serving over two world shapes — the combined population +
//! hosting spoof world and the include-heavy stress preset — through
//! three backends on the identical `(domain, vantage)` cell set:
//!
//! * **compiled** — every domain's SPF tree pre-compiled to a
//!   qualifier-tagged interval matcher ([`spf_core::compile_policy`]);
//!   a verdict is a binary search, with residual regions falling back
//!   to the memoized evaluator;
//! * **cached** — `check_host_cached` over a warm subtree-verdict memo
//!   (the PR 5 engine the compiled backend must beat);
//! * **bare** — plain `check_host`, the semantic reference.
//!
//! The harness asserts the compiled backend's verdicts are identical to
//! bare `check_host` on every cell before trusting any timing — the
//! same identity `tests/compiler_stress.rs` pins under concurrency and
//! zone mutation. The acceptance headline is the compiled-vs-cached
//! speedup (≥10× on the population shape), and the report carries the
//! population's compilability split ([`spf_core::CompilerStats`]).
//!
//! Quick mode for CI smoke runs: set `COMPILED_QUICK=1` (or pass
//! `--quick`) to shrink the sweep; `BENCH_7.json` is still written so
//! the artifact upload works.
//!
//! Regression gate: `quick_points` are measured with the same plain
//! best-of-N loop in full and quick runs, so `scripts/bench_guard.sh`
//! can compare a CI quick run against the committed BENCH_7.json; with
//! `BENCH_GUARD_BASELINE` set, this binary fails itself on a
//! throughput regression (`spf_bench::guard`).

use std::cell::RefCell;
use std::net::IpAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::guard::{self, GuardPoint};
use spf_core::{
    check_host, check_host_cached, compile_policy, CompileConfig, CompiledPolicy, CompilerStats,
    EvalContext, EvalPolicy,
};
use spf_crawler::{
    crawl, select_vantages, CrawlConfig, ProviderVantage, SpoofVerdictCache, VantagePoint,
    SPOOF_SENDER_LOCAL,
};
use spf_dns::ZoneResolver;
use spf_netsim::{build_include_heavy, build_spoof_world, Scale};
use spf_types::DomainName;

const SEED: u64 = 0x5bf1_2023;
/// Timed passes per configuration; the recorded figure is the best of
/// them, which damps the scheduling noise of small shared hosts.
const RUNS: usize = 3;

/// Which world a configuration evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// The calibrated population merged with the hosting case study.
    Spoof,
    /// The include-heavy cache stress preset.
    IncludeHeavy,
}

impl Shape {
    fn key(&self) -> &'static str {
        match self {
            Shape::Spoof => "pop",
            Shape::IncludeHeavy => "heavy",
        }
    }
}

/// One crawled world with its vantage set, held out of the timed region.
struct World {
    resolver: ZoneResolver,
    domains: Vec<DomainName>,
    vantages: Vec<VantagePoint>,
}

/// Build a world and derive its vantage set from a coverage crawl (the
/// same selection path the `repro` target uses).
fn build_world(shape: Shape, denominator: u64) -> World {
    let (store, domains, providers) = match shape {
        Shape::Spoof => {
            let world = build_spoof_world(Scale { denominator }, SEED);
            let providers: Vec<ProviderVantage> = world
                .providers
                .iter()
                .map(|p| ProviderVantage {
                    label: format!("hosting{}", p.id),
                    web: p.web_ip,
                    mta: p.mta_ip,
                })
                .collect();
            (world.store, world.domains, providers)
        }
        Shape::IncludeHeavy => {
            let tenants = (12_823_598 / denominator) as usize;
            let world = build_include_heavy(tenants);
            (world.store, world.domains, Vec::new())
        }
    };
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
    let out = crawl(&walker, &domains, CrawlConfig::with_workers(8));
    let weighted = out.coverage.into_weighted();
    let vantages = select_vantages(&weighted, &providers, 8, 4, SEED);
    World {
        resolver: ZoneResolver::new(store),
        domains,
        vantages,
    }
}

/// The population's compiled artifacts, built once outside the timed
/// region (the resident-service amortization: compile per domain, serve
/// per query).
struct CompiledWorld {
    policies: Vec<CompiledPolicy>,
    stats: CompilerStats,
    compile_secs: f64,
}

fn compile_world(world: &World, policy: &EvalPolicy) -> CompiledWorld {
    let config = CompileConfig::with_policy(*policy);
    let started = Instant::now();
    let mut stats = CompilerStats::default();
    let policies: Vec<CompiledPolicy> = world
        .domains
        .iter()
        .map(|d| {
            let compiled = compile_policy(&world.resolver, d, &config);
            stats.record(&compiled);
            compiled
        })
        .collect();
    CompiledWorld {
        policies,
        stats,
        compile_secs: started.elapsed().as_secs_f64(),
    }
}

fn cell_ctx(vantage: &VantagePoint, domain: &DomainName) -> EvalContext {
    EvalContext::mail_from(IpAddr::V4(vantage.ip), SPOOF_SENDER_LOCAL, domain.clone())
}

/// One timed pass over every `(domain, vantage)` cell through the
/// compiled tables (residues falling back to the warm memo). Returns
/// `(secs, compiled_hits, fallbacks)`.
fn serve_compiled(
    world: &World,
    compiled: &CompiledWorld,
    vantage_count: usize,
    policy: &EvalPolicy,
    memo: &SpoofVerdictCache,
) -> (f64, u64, u64) {
    let vantages = &world.vantages[..vantage_count];
    let mut hits = 0u64;
    let mut fallbacks = 0u64;
    let mut passes = 0u64;
    let started = Instant::now();
    for (domain, policy_compiled) in world.domains.iter().zip(&compiled.policies) {
        for vantage in vantages {
            // The allocation-free serving path: borrow the verdict
            // template; only residual regions pay the live evaluator.
            let result = match policy_compiled.verdict_ref(IpAddr::V4(vantage.ip)) {
                Some(eval) => {
                    hits += 1;
                    eval.result
                }
                None => {
                    fallbacks += 1;
                    let ctx = cell_ctx(vantage, domain);
                    check_host_cached(&world.resolver, &ctx, domain, policy, memo).result
                }
            };
            passes += u64::from(result == spf_core::SpfResult::Pass);
        }
    }
    let secs = started.elapsed().as_secs_f64();
    std::hint::black_box(passes);
    (secs, hits, fallbacks)
}

/// One timed pass over the same cells through `check_host_cached` on a
/// warm subtree-verdict memo.
fn serve_cached(
    world: &World,
    vantage_count: usize,
    policy: &EvalPolicy,
    memo: &SpoofVerdictCache,
) -> f64 {
    let vantages = &world.vantages[..vantage_count];
    let mut passes = 0u64;
    let started = Instant::now();
    for domain in &world.domains {
        for vantage in vantages {
            let ctx = cell_ctx(vantage, domain);
            let eval = check_host_cached(&world.resolver, &ctx, domain, policy, memo);
            passes += u64::from(eval.result == spf_core::SpfResult::Pass);
        }
    }
    let secs = started.elapsed().as_secs_f64();
    std::hint::black_box(passes);
    secs
}

/// The identity gate: every compiled-backend verdict must equal bare
/// `check_host` on the same cell, field for field, before any timing is
/// trusted.
fn assert_identity(world: &World, compiled: &CompiledWorld, vantage_count: usize, p: &EvalPolicy) {
    let vantages = &world.vantages[..vantage_count];
    let memo = SpoofVerdictCache::with_default_shards();
    for (domain, policy_compiled) in world.domains.iter().zip(&compiled.policies) {
        for vantage in vantages {
            let ctx = cell_ctx(vantage, domain);
            let bare = check_host(&world.resolver, &ctx, domain, p);
            let served = match policy_compiled.verdict(IpAddr::V4(vantage.ip)) {
                Some(eval) => eval,
                None => check_host_cached(&world.resolver, &ctx, domain, p, &memo),
            };
            assert_eq!(
                served, bare,
                "compiled backend diverged from check_host at ({domain}, {})",
                vantage.ip
            );
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    shape: String,
    scale_denominator: u64,
    vantage_count: usize,
    domains: u64,
    cells: u64,
    /// One-time compile cost for the whole population (amortized,
    /// untimed in the serving columns).
    compile_secs: f64,
    /// Best-of-RUNS seconds serving every cell from compiled tables
    /// (residues through the warm memo).
    compiled_secs: f64,
    /// Best-of-RUNS seconds serving the same cells through
    /// `check_host_cached` on a warm memo.
    cached_secs: f64,
    /// Best-of-RUNS seconds through plain `check_host`.
    bare_secs: f64,
    /// `cached_secs / compiled_secs` — the acceptance headline.
    speedup_vs_cached: f64,
    /// Fraction of verdicts answered from the interval tables.
    compiled_hit_rate: f64,
    /// Fraction of trees that compiled fully static.
    full_fraction: f64,
    /// The population's compilability split and residue taxonomy.
    compiler: CompilerStats,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    runs_per_config: usize,
    host_parallelism: usize,
    baseline_note: String,
    results: Vec<SweepPoint>,
    /// Guard points: compiled and cached serving throughput for fixed
    /// quick configurations, measured by the same plain loop in every
    /// mode.
    quick_points: Vec<GuardPoint>,
}

/// Measure one configuration: identity gate first, then best-of-RUNS
/// compiled / cached / bare serving passes over the identical cells.
fn measure(world: &World, shape: Shape, denominator: u64, vc: usize) -> SweepPoint {
    let policy = EvalPolicy::default();
    let vantage_count = vc.min(world.vantages.len());
    let compiled = compile_world(world, &policy);
    assert_identity(world, &compiled, vantage_count, &policy);

    // Warm both memos once so every timed pass sees the steady state
    // (the resident service's shape: caches resident, queries arriving).
    let compiled_memo = SpoofVerdictCache::with_default_shards();
    let cached_memo = SpoofVerdictCache::with_default_shards();
    let (_, mut hits, mut fallbacks) =
        serve_compiled(world, &compiled, vantage_count, &policy, &compiled_memo);
    serve_cached(world, vantage_count, &policy, &cached_memo);

    let mut best_compiled = f64::INFINITY;
    let mut best_cached = f64::INFINITY;
    let mut best_bare = f64::INFINITY;
    for _ in 0..RUNS {
        let (compiled_secs, h, f) =
            serve_compiled(world, &compiled, vantage_count, &policy, &compiled_memo);
        best_compiled = best_compiled.min(compiled_secs);
        hits = h;
        fallbacks = f;
        best_cached = best_cached.min(serve_cached(world, vantage_count, &policy, &cached_memo));
        let bare_started = Instant::now();
        let mut passes = 0u64;
        for domain in &world.domains {
            for vantage in &world.vantages[..vantage_count] {
                let ctx = cell_ctx(vantage, domain);
                let eval = check_host(&world.resolver, &ctx, domain, &policy);
                passes += u64::from(eval.result == spf_core::SpfResult::Pass);
            }
        }
        std::hint::black_box(passes);
        best_bare = best_bare.min(bare_started.elapsed().as_secs_f64());
    }

    let mut stats = compiled.stats;
    stats.compiled_verdicts = hits;
    stats.fallback_verdicts = fallbacks;
    let cells = (world.domains.len() * vantage_count) as u64;
    SweepPoint {
        shape: shape.key().to_string(),
        scale_denominator: denominator,
        vantage_count,
        domains: world.domains.len() as u64,
        cells,
        compile_secs: compiled.compile_secs,
        compiled_secs: best_compiled,
        cached_secs: best_cached,
        bare_secs: best_bare,
        speedup_vs_cached: best_cached / best_compiled.max(f64::EPSILON),
        compiled_hit_rate: stats.compiled_hit_rate(),
        full_fraction: stats.full_fraction(),
        compiler: stats,
    }
}

/// The fixed quick matrix behind `quick_points`: `(shape, denominator,
/// vantages, compiled)`.
const QUICK_CONFIGS: &[(Shape, u64, usize, bool)] = &[
    (Shape::Spoof, 5_000, 8, true),
    (Shape::Spoof, 5_000, 8, false),
    (Shape::IncludeHeavy, 5_000, 8, true),
];

/// Best-of-RUNS serving throughput (cells per second) over the fixed
/// quick configurations.
fn measure_quick_points() -> Vec<GuardPoint> {
    let policy = EvalPolicy::default();
    // Worlds (and their compiled artifacts) are memoized per (shape,
    // denominator): consecutive quick configs differing only in the
    // backend share one build.
    let mut worlds: Vec<((Shape, u64), (World, CompiledWorld))> = Vec::new();
    QUICK_CONFIGS
        .iter()
        .map(|&(shape, denom, vc, use_compiled)| {
            if !worlds.iter().any(|(k, _)| *k == (shape, denom)) {
                let world = build_world(shape, denom);
                let compiled = compile_world(&world, &policy);
                worlds.push(((shape, denom), (world, compiled)));
            }
            let (world, compiled) = &worlds
                .iter()
                .find(|(k, _)| *k == (shape, denom))
                .expect("just inserted")
                .1;
            let vantage_count = vc.min(world.vantages.len());
            let memo = SpoofVerdictCache::with_default_shards();
            let key = format!(
                "compiled_{}_{denom}_v{vantage_count}_{}",
                shape.key(),
                if use_compiled { "tables" } else { "memo" }
            );
            guard::quick_point(key, RUNS, || {
                let secs = if use_compiled {
                    serve_compiled(world, compiled, vantage_count, &policy, &memo).0
                } else {
                    serve_cached(world, vantage_count, &policy, &memo)
                };
                (world.domains.len() * vantage_count) as f64 / secs.max(f64::EPSILON)
            })
        })
        .collect()
}

fn quick_mode() -> bool {
    std::env::var("COMPILED_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    // (shape, scale, vantage count): both shapes at the bench scale,
    // plus a wider vantage sweep on the population shape where the
    // compile cost amortizes further.
    let configs: &[(Shape, u64, usize)] = if quick {
        &[(Shape::Spoof, 5_000, 8), (Shape::IncludeHeavy, 5_000, 8)]
    } else {
        &[
            (Shape::Spoof, 1_000, 4),
            (Shape::Spoof, 1_000, 8),
            (Shape::Spoof, 1_000, 12),
            (Shape::IncludeHeavy, 1_000, 4),
            (Shape::IncludeHeavy, 1_000, 8),
        ]
    };

    println!(
        "compiled_throughput: sweeping {} configurations (seed {SEED:#x})",
        configs.len()
    );

    let points: RefCell<Vec<SweepPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("compiled_throughput");
    group.measurement_time(Duration::from_millis(1));
    for &(shape, denom, vc) in configs {
        let id = format!("{}_{denom}_v{vc}", shape.key());
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let world = build_world(shape, denom);
                let point = measure(&world, shape, denom, vc);
                let mut points = points.borrow_mut();
                match points
                    .iter_mut()
                    .find(|p| p.shape == point.shape && p.vantage_count == point.vantage_count)
                {
                    Some(existing) if existing.compiled_secs <= point.compiled_secs => {}
                    Some(existing) => *existing = point,
                    None => points.push(point),
                }
                vc
            });
        });
    }
    group.finish();

    let quick_points = measure_quick_points();
    let results = points.into_inner();
    for p in &results {
        println!(
            "compiled_throughput: {}@1:{} v{} — compiled {:.2} ms ({:.0} cells/s, \
             {:.1} % from tables, {:.1} % trees fully static), cached {:.2} ms, \
             bare {:.2} ms, speedup vs cached {:.1}x (compile cost {:.1} ms once)",
            p.shape,
            p.scale_denominator,
            p.vantage_count,
            p.compiled_secs * 1e3,
            p.cells as f64 / p.compiled_secs.max(f64::EPSILON),
            p.compiled_hit_rate * 100.0,
            p.full_fraction * 100.0,
            p.cached_secs * 1e3,
            p.bare_secs * 1e3,
            p.speedup_vs_cached,
            p.compile_secs * 1e3,
        );
        println!("compiled_throughput:   {}", p.compiler);
    }
    if let Some(best) = results
        .iter()
        .map(|p| p.speedup_vs_cached)
        .fold(None::<f64>, |acc, s| Some(acc.map_or(s, |a| a.max(s))))
    {
        println!("compiled_throughput: best compiled-vs-cached speedup {best:.1}x");
    }

    let report = BenchReport {
        bench: "compiled_throughput".to_string(),
        quick_mode: quick,
        runs_per_config: RUNS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        baseline_note: "compiled, cached, and bare columns serve the identical cell set \
                        (compiled verdicts asserted field-identical to bare check_host before \
                        timing); compile_secs is the one-time population compile the resident \
                        service amortizes over queries"
            .to_string(),
        results,
        quick_points: quick_points.clone(),
    };
    let out_path = std::env::var("BENCH_7_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_7.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_7.json is writable");
    println!("compiled_throughput: wrote {out_path}");

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
