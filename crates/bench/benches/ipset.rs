//! Ipv4Set arithmetic — the engine behind Figure 5 and Table 4 — and the
//! representation ablation from DESIGN.md §5: interval arithmetic vs
//! naive address enumeration. Enumeration is only feasible up to small
//! blocks (a /16 is already 65k inserts; a /8 would be 16M), which is
//! exactly why the analyzer needs the interval set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spf_netsim::AddressAllocator;
use spf_types::{Ipv4Cidr, Ipv4Set};
use std::hint::black_box;
use std::net::Ipv4Addr;

/// The 20 Table 4 allowed-IP counts.
const PROVIDER_SIZES: [u64; 20] = [
    491_520, 328_960, 1_088_784, 505_104, 4_358, 22_528, 4_608, 220_672, 1_049, 264, 64_512, 2,
    36_312, 4_358, 6_209, 26_112, 5_120, 10_492, 87_040, 15,
];

fn provider_sets() -> Vec<Ipv4Set> {
    let mut alloc = AddressAllocator::new(Ipv4Addr::new(16, 0, 0, 0), 4);
    PROVIDER_SIZES
        .iter()
        .map(|&size| alloc.alloc_mail_style(size).into_iter().collect())
        .collect()
}

fn bench_union(c: &mut Criterion) {
    let sets = provider_sets();
    let mut group = c.benchmark_group("ipset");
    group.bench_function("union_20_providers", |b| {
        b.iter(|| {
            let mut acc = Ipv4Set::new();
            for s in &sets {
                acc.union_with(black_box(s));
            }
            acc.address_count()
        })
    });
    group.bench_function("count_after_union", |b| {
        let mut acc = Ipv4Set::new();
        for s in &sets {
            acc.union_with(s);
        }
        b.iter(|| black_box(&acc).address_count())
    });
    group.bench_function("contains_probe", |b| {
        let mut acc = Ipv4Set::new();
        for s in &sets {
            acc.union_with(s);
        }
        let probes: Vec<Ipv4Addr> = (0..256u32)
            .map(|i| Ipv4Addr::from(0x1000_0000 + i * 65_537))
            .collect();
        b.iter(|| probes.iter().filter(|p| acc.contains(**p)).count())
    });
    group.finish();
}

/// Ablation: inserting a /16 as one interval vs 65,536 single addresses.
fn bench_representation_ablation(c: &mut Criterion) {
    let block: Ipv4Cidr = "10.20.0.0/16".parse().unwrap();
    let mut group = c.benchmark_group("ipset_representation");
    group.bench_function("interval_insert_slash16", |b| {
        b.iter_batched(
            Ipv4Set::new,
            |mut set| {
                set.insert_cidr(black_box(&block));
                set.address_count()
            },
            BatchSize::SmallInput,
        )
    });
    group.sample_size(10);
    group.bench_function("naive_enumerate_slash16", |b| {
        let (lo, hi) = block.range_u32();
        b.iter_batched(
            Ipv4Set::new,
            |mut set| {
                for v in lo..=hi {
                    set.insert_addr(Ipv4Addr::from(v));
                }
                set.address_count()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_union, bench_representation_ablation);
criterion_main!(benches);
