//! Wire-path crawl throughput — the BENCH_3.json baseline.
//!
//! One `wire_throughput` criterion group crawls the 1:500 population
//! (≈25.6k domains, the `wire_stress` scale) over real UDP/TCP sockets:
//! a hash-sharded [`WireFleet`] of authoritative name servers behind a
//! pooled, single-flight-coalescing, TTL-caching [`WireResolver`]. Each
//! configuration records best-of-N domains/s plus the wire telemetry the
//! paper's operational sections care about: **query amplification**
//! (datagrams per crawled domain), the **coalescing hit-rate**, the
//! wire-cache hit-rate and TCP fallback counts. A same-scale in-memory
//! crawl is measured as the reference point, so the JSON also states the
//! socket tax directly.
//!
//! Quick mode for CI smoke runs: `WIRE_THROUGHPUT_QUICK=1` (or
//! `--quick`) shrinks the population to 1:20000 and the matrix to one
//! configuration. Regression gate: `quick_points` are measured with the
//! same plain loop in every mode; with `BENCH_GUARD_BASELINE` set
//! (`scripts/bench_guard.sh`), the run fails itself on a >30 %
//! regression against the committed BENCH_3.json (`spf_bench::guard`).

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::guard::{self, GuardPoint};
use spf_crawler::{crawl, CrawlConfig};
use spf_dns::{ServerConfig, WireClientConfig, WireFleet, ZoneResolver};
use spf_netsim::{wirelab, Population, PopulationConfig, Scale};
use spf_types::Backend;

const SEED: u64 = 0x5bf1_2023;
/// Crawls per configuration; the recorded figure is the best of them.
const RUNS: usize = 3;
/// The full-mode measurement scale (matches the `wire_stress` suite).
const FULL_SCALE: Scale = Scale { denominator: 500 };
/// The quick/guard scale (matches the repro smoke examples).
const QUICK_SCALE: Scale = Scale {
    denominator: 20_000,
};
/// The guard matrix: (workers, servers) at quick scale.
const QUICK_CONFIGS: &[(usize, usize)] = &[(4, 2)];

#[derive(Debug, Clone, Serialize)]
struct WirePoint {
    workers: usize,
    servers: usize,
    best_secs: f64,
    domains_per_sec: f64,
    /// UDP datagrams per crawled domain (query amplification).
    amplification: f64,
    /// Fraction of resolver queries that joined an in-flight wire query.
    coalesce_rate: f64,
    /// Fraction of resolver queries served by the wire TTL cache.
    wire_cache_hit_rate: f64,
    wire_queries: u64,
    tcp_fallbacks: u64,
    retries: u64,
    temp_errors: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    scale_denominator: u64,
    domains: u64,
    runs_per_config: usize,
    host_parallelism: usize,
    /// Same-population in-memory crawl throughput (the socket tax
    /// reference; 8 workers, default shards).
    in_memory_domains_per_sec: f64,
    results: Vec<WirePoint>,
    /// Guard points at quick scale, measured by the plain loop in every
    /// mode (see `spf_bench::guard`).
    quick_points: Vec<GuardPoint>,
}

fn quick_mode() -> bool {
    std::env::var("WIRE_THROUGHPUT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// One timed wire crawl: fresh fleet, resolver, walker.
fn timed_wire_crawl(population: &Population, workers: usize, servers: usize) -> WirePoint {
    let fleet = WireFleet::spawn(&population.store, servers, ServerConfig::default())
        .expect("fleet spawns on loopback");
    let resolver = Arc::new(
        fleet
            .resolver(WireClientConfig::crawl())
            .with_behaviors(wirelab::zero_faults(servers), SEED),
    );
    let started = Instant::now();
    let out = crawl(
        &Walker::new(Arc::clone(&resolver)),
        &population.domains,
        CrawlConfig::with_workers(workers).backend(Backend::wire(servers)),
    );
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(out.reports.len(), population.domains.len());
    let snap = resolver.snapshot();
    WirePoint {
        workers,
        servers,
        best_secs: secs,
        domains_per_sec: out.stats.domains_per_sec(),
        amplification: snap.amplification(out.stats.domains),
        coalesce_rate: snap.coalesce_rate(),
        wire_cache_hit_rate: snap.cache_hit_rate(),
        wire_queries: snap.wire_queries,
        tcp_fallbacks: snap.tcp_fallbacks,
        retries: snap.retries,
        temp_errors: snap.temp_errors,
    }
}

/// The in-memory reference crawl at the same scale (the socket tax).
fn in_memory_domains_per_sec(population: &Population) -> f64 {
    (0..RUNS)
        .map(|_| {
            let walker = Walker::new(ZoneResolver::new(Arc::clone(&population.store)));
            let out = crawl(&walker, &population.domains, CrawlConfig::with_workers(8));
            out.stats.domains_per_sec()
        })
        .fold(0.0f64, f64::max)
}

/// Best-of-`RUNS` guard points over the quick matrix at quick scale.
fn measure_quick_points(quick_population: &Population) -> Vec<GuardPoint> {
    QUICK_CONFIGS
        .iter()
        .map(|&(workers, servers)| {
            guard::quick_point(format!("w{workers}_v{servers}"), RUNS, || {
                timed_wire_crawl(quick_population, workers, servers).domains_per_sec
            })
        })
        .collect()
}

fn main() {
    let quick = quick_mode();
    let scale = if quick { QUICK_SCALE } else { FULL_SCALE };
    let configs: &[(usize, usize)] = if quick {
        QUICK_CONFIGS
    } else {
        &[
            // worker scaling at the default shard count…
            (1, 4),
            (8, 4),
            (32, 4),
            // …and shard scaling at fixed workers.
            (8, 1),
            (32, 1),
        ]
    };

    println!(
        "wire_throughput: generating the 1:{} population (seed {SEED:#x}) ...",
        scale.denominator
    );
    let population = Population::build(PopulationConfig { scale, seed: SEED });
    let n = population.domains.len();
    println!(
        "wire_throughput: {n} domains, sweeping {} wire configurations",
        configs.len()
    );

    let points: RefCell<Vec<WirePoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("wire_throughput");
    group.measurement_time(Duration::from_millis(1));
    for &(workers, servers) in configs {
        let id = format!("w{workers}_v{servers}");
        let population = &population;
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..RUNS {
                    let point = timed_wire_crawl(population, workers, servers);
                    total += n;
                    let mut points = points.borrow_mut();
                    match points
                        .iter_mut()
                        .find(|p| (p.workers, p.servers) == (workers, servers))
                    {
                        Some(existing) if existing.best_secs <= point.best_secs => {}
                        Some(existing) => *existing = point,
                        None => points.push(point),
                    }
                }
                total
            });
        });
    }
    group.finish();

    let in_memory = in_memory_domains_per_sec(&population);
    let quick_population = if scale.denominator == QUICK_SCALE.denominator {
        population
    } else {
        println!(
            "wire_throughput: measuring guard points on the 1:{} quick population ...",
            QUICK_SCALE.denominator
        );
        Population::build(PopulationConfig {
            scale: QUICK_SCALE,
            seed: SEED,
        })
    };
    let quick_points = measure_quick_points(&quick_population);

    let results = points.into_inner();
    let report = BenchReport {
        bench: "wire_throughput".to_string(),
        quick_mode: quick,
        scale_denominator: scale.denominator,
        domains: n as u64,
        runs_per_config: RUNS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        in_memory_domains_per_sec: in_memory,
        results,
        quick_points: quick_points.clone(),
    };

    let out_path = std::env::var("BENCH_3_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_3.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_3.json is writable");
    println!("wire_throughput: wrote {out_path}");
    if let Some(best) = report
        .results
        .iter()
        .max_by(|a, b| a.domains_per_sec.total_cmp(&b.domains_per_sec))
    {
        println!(
            "wire_throughput: best {:.0} domains/s at w{}_v{} \
             ({:.2} queries/domain, coalesced {:.1} %, in-memory reference {:.0} domains/s)",
            best.domains_per_sec,
            best.workers,
            best.servers,
            best.amplification,
            best.coalesce_rate * 100.0,
            in_memory,
        );
    }

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
