//! The longitudinal churn-rescan bench behind BENCH_9.json and
//! DESIGN.md §12.
//!
//! One `churn_rescan` criterion group measures, per configuration, the
//! cost of keeping the corpus current across churn epochs two ways:
//!
//! * **incremental** — the [`ChurnEngine`] path: invalidate and
//!   re-crawl only the churned domains, folding their old coverage
//!   contributions out and the fresh ones in (`O(delta)` per epoch);
//! * **full rescan** — the baseline it replaces: a from-scratch walker
//!   and a full-population crawl every epoch (`O(population)`).
//!
//! The harness asserts the two paths produce **byte-identical** report
//! vectors and weighted coverage profiles at every epoch before any
//! timing is recorded — the incremental path is delta-exact, not an
//! approximation — and then writes the whole sweep to `BENCH_9.json`
//! at the workspace root. The acceptance headline is the 1:200 point at
//! 1 % monthly churn: incremental must be ≥ 5× faster than the full
//! rescan.
//!
//! A second, untimed-by-criterion guard pins the *scaling shape*: two
//! populations of 4×-different size are churned by the same **absolute**
//! number of domains per epoch, and the larger population's incremental
//! epoch must cost no more than [`DELTA_GUARD_FACTOR`]× the smaller's —
//! incremental cost tracks delta size, not population size.
//!
//! Quick mode for CI smoke runs: set `CHURN_RESCAN_QUICK=1` (or pass
//! `--quick`) to shrink the matrix to the 1:5000 population; the JSON is
//! still written so the artifact upload works.
//!
//! Regression gate: the report's `quick_points` are measured with the
//! same plain best-of-N loop in full and quick runs, so
//! `scripts/bench_guard.sh` can compare a CI quick run against the
//! committed BENCH_9.json (`spf_bench::guard`); with
//! `BENCH_GUARD_BASELINE` set, this binary fails itself on a throughput
//! regression.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use serde::Serialize;
use spf_analyzer::Walker;
use spf_bench::guard::{self, GuardPoint};
use spf_crawler::{crawl, ChurnEngine, CrawlConfig, LongitudinalConfig, ZoneDelta};
use spf_dns::{ZoneResolver, ZoneStore};
use spf_netsim::{ChurnConfig, ChurnSimulator, Population, PopulationConfig, Scale};
use spf_types::DomainName;

const SEED: u64 = 0x5bf1_2023;
/// Crawl workers for every pass (both paths use the same pool size).
const WORKERS: usize = 4;
/// Churn epochs per measured configuration.
const EPOCHS: u64 = 2;
/// One virtual month between epochs.
const MONTH: Duration = Duration::from_secs(30 * 86_400);
/// Domain TTLs far beyond the simulated horizon, so the due set is
/// exactly the churn delta and the comparison isolates delta cost.
const LONG_TTL: Duration = Duration::from_secs(10 * 365 * 86_400);
/// The delta-size guard's absolute churn size per epoch.
const DELTA_GUARD_DOMAINS: u64 = 32;
/// Allowed cost growth for the same delta on a 4×-larger population.
const DELTA_GUARD_FACTOR: f64 = 4.0;
/// Timed single-epoch passes per guard point; best-of damps scheduler
/// noise on small shared hosts.
const RUNS: usize = 3;

/// A prepared churn world: the zone, the population, and a live engine
/// bootstrapped over a persistent in-memory walker.
struct ChurnWorld {
    store: Arc<ZoneStore>,
    domains: Vec<DomainName>,
    walker: Walker<ZoneResolver>,
    engine: ChurnEngine,
    sim: ChurnSimulator,
}

fn build_world(denominator: u64, churn_rate: f64) -> ChurnWorld {
    let population = Population::build(PopulationConfig {
        scale: Scale { denominator },
        seed: SEED,
    });
    let store = Arc::clone(&population.store);
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
    let config = LongitudinalConfig::default()
        .crawl(CrawlConfig::with_workers(WORKERS))
        .ttl(LONG_TTL, Duration::ZERO);
    let engine = ChurnEngine::bootstrap(&walker, population.domains.clone(), config);
    let sim = ChurnSimulator::new(
        Arc::clone(&store),
        population.domains.clone(),
        ChurnConfig {
            rate: churn_rate,
            seed: SEED,
            ..ChurnConfig::default()
        },
    );
    ChurnWorld {
        store,
        domains: population.domains,
        walker,
        engine,
        sim,
    }
}

/// Advance one churn epoch: plan + apply the batch (untimed — the churn
/// itself is the world changing, not the measured work), then time the
/// engine's incremental step.
fn timed_incremental_epoch(world: &mut ChurnWorld, epoch: u64) -> (f64, u64) {
    let batch = world.sim.next_epoch();
    batch.apply(&world.store);
    world.engine.deliver(ZoneDelta::new(batch.domains(), || {}));
    let started = Instant::now();
    let report = world.engine.step(
        &world.walker,
        MONTH * u32::try_from(epoch).unwrap_or(u32::MAX),
    );
    (started.elapsed().as_secs_f64(), report.recrawled)
}

/// Time the baseline the engine replaces: a from-scratch walker and a
/// full-population crawl of the current zone.
fn timed_full_rescan(world: &ChurnWorld) -> (f64, spf_crawler::CrawlOutput) {
    let started = Instant::now();
    let walker = Walker::new(ZoneResolver::new(Arc::clone(&world.store)));
    let output = crawl(&walker, &world.domains, CrawlConfig::with_workers(WORKERS));
    (started.elapsed().as_secs_f64(), output)
}

/// Byte-identity of the incremental state against a full recompute —
/// asserted every epoch before the timings are recorded.
fn assert_identical(world: &ChurnWorld, full: &spf_crawler::CrawlOutput) {
    let inc_reports = serde_json::to_string(&world.engine.reports()).expect("serialize");
    let full_reports = serde_json::to_string(&full.reports).expect("serialize");
    assert_eq!(
        inc_reports, full_reports,
        "incremental reports diverged from full recompute"
    );
    let inc_weighted = serde_json::to_string(&world.engine.weighted()).expect("serialize");
    let full_weighted =
        serde_json::to_string(&full.coverage.clone().into_weighted()).expect("serialize");
    assert_eq!(
        inc_weighted, full_weighted,
        "incremental coverage diverged from full recompute"
    );
}

#[derive(Debug, Clone, Serialize)]
struct ChurnPoint {
    scale_denominator: u64,
    domains: u64,
    churn_rate: f64,
    epochs: u64,
    recrawled_total: u64,
    /// Summed incremental step seconds across the epochs.
    incremental_secs: f64,
    /// Summed from-scratch full-rescan seconds across the epochs.
    full_secs: f64,
    /// `full_secs / incremental_secs` — the acceptance headline.
    speedup: f64,
}

/// Measure one configuration: every epoch's identity asserted, then the
/// summed costs of both paths.
fn measure(denominator: u64, churn_rate: f64) -> ChurnPoint {
    let mut world = build_world(denominator, churn_rate);
    let mut incremental_secs = 0.0;
    let mut full_secs = 0.0;
    let mut recrawled_total = 0u64;
    for epoch in 1..=EPOCHS {
        let (inc, recrawled) = timed_incremental_epoch(&mut world, epoch);
        let (full, output) = timed_full_rescan(&world);
        assert_identical(&world, &output);
        incremental_secs += inc;
        full_secs += full;
        recrawled_total += recrawled;
    }
    ChurnPoint {
        scale_denominator: denominator,
        domains: world.domains.len() as u64,
        churn_rate,
        epochs: EPOCHS,
        recrawled_total,
        incremental_secs,
        full_secs,
        speedup: full_secs / incremental_secs.max(f64::EPSILON),
    }
}

#[derive(Debug, Clone, Serialize)]
struct DeltaGuard {
    delta_domains: u64,
    small_population: u64,
    large_population: u64,
    small_epoch_secs: f64,
    large_epoch_secs: f64,
    /// `large / small` — must stay under [`DELTA_GUARD_FACTOR`].
    cost_ratio: f64,
    allowed_factor: f64,
}

/// Best incremental epoch cost for a fixed absolute delta size on a
/// population of `denominator` scale.
fn fixed_delta_epoch_secs(denominator: u64) -> (f64, u64) {
    let population_len = Scale { denominator }.approx_domains();
    let rate = DELTA_GUARD_DOMAINS as f64 / population_len as f64;
    let mut best = f64::INFINITY;
    let mut population = 0u64;
    for _ in 0..RUNS {
        let mut world = build_world(denominator, rate);
        population = world.domains.len() as u64;
        let (secs, recrawled) = timed_incremental_epoch(&mut world, 1);
        assert_eq!(
            recrawled, DELTA_GUARD_DOMAINS,
            "fixed-delta churn rate produced the wrong delta size"
        );
        best = best.min(secs);
    }
    (best, population)
}

/// The scaling-shape pin: same absolute delta, 4× the population, at
/// most [`DELTA_GUARD_FACTOR`]× the cost.
fn measure_delta_guard() -> DeltaGuard {
    let (small_epoch_secs, small_population) = fixed_delta_epoch_secs(2_000);
    let (large_epoch_secs, large_population) = fixed_delta_epoch_secs(500);
    let cost_ratio = large_epoch_secs / small_epoch_secs.max(f64::EPSILON);
    assert!(
        cost_ratio <= DELTA_GUARD_FACTOR,
        "incremental epoch cost grew {cost_ratio:.1}x on a {}x population \
         (same {DELTA_GUARD_DOMAINS}-domain delta) — cost must track delta \
         size, not population size",
        large_population / small_population.max(1),
    );
    DeltaGuard {
        delta_domains: DELTA_GUARD_DOMAINS,
        small_population,
        large_population,
        small_epoch_secs,
        large_epoch_secs,
        cost_ratio,
        allowed_factor: DELTA_GUARD_FACTOR,
    }
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick_mode: bool,
    workers: usize,
    epochs_per_config: u64,
    host_parallelism: usize,
    baseline_note: String,
    results: Vec<ChurnPoint>,
    delta_guard: Option<DeltaGuard>,
    /// Guard points: incremental re-crawl throughput (churned domains
    /// re-evaluated per second) at quick scale, measured by the same
    /// plain best-of-N loop in every mode.
    quick_points: Vec<GuardPoint>,
}

/// Best-of-RUNS incremental throughput at quick scale: each pass
/// bootstraps a fresh engine and times one churn epoch.
fn measure_quick_points() -> Vec<GuardPoint> {
    const QUICK_DENOM: u64 = 5_000;
    const QUICK_RATE: f64 = 0.02;
    vec![guard::quick_point(
        format!("churn_rescan_pop_{QUICK_DENOM}"),
        RUNS,
        || {
            let mut world = build_world(QUICK_DENOM, QUICK_RATE);
            let (secs, recrawled) = timed_incremental_epoch(&mut world, 1);
            assert!(recrawled > 0, "quick epoch churned nothing");
            recrawled as f64 / secs.max(f64::EPSILON)
        },
    )]
}

fn quick_mode() -> bool {
    std::env::var("CHURN_RESCAN_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

fn main() {
    let quick = quick_mode();
    // The acceptance point is 1:200 at 1 % monthly churn; full mode adds
    // a second scale to show the speedup grows with population size.
    let configs: &[(u64, f64)] = if quick {
        &[(5_000, 0.01)]
    } else {
        &[(1_000, 0.01), (200, 0.01)]
    };

    println!(
        "churn_rescan: sweeping {} configurations (seed {SEED:#x}, {EPOCHS} epochs each)",
        configs.len(),
    );

    let points: RefCell<Vec<ChurnPoint>> = RefCell::new(Vec::new());
    let mut criterion = Criterion::default().measurement_time(Duration::from_millis(1));
    let mut group = criterion.benchmark_group("churn_rescan");
    group.measurement_time(Duration::from_millis(1));
    for &(denom, rate) in configs {
        let id = format!("pop_{denom}");
        let points = &points;
        group.bench_function(id, move |b| {
            b.iter(|| {
                let point = measure(denom, rate);
                let mut points = points.borrow_mut();
                match points.iter_mut().find(|p| p.scale_denominator == denom) {
                    Some(existing) if existing.incremental_secs <= point.incremental_secs => {}
                    Some(existing) => *existing = point,
                    None => points.push(point),
                }
                denom
            });
        });
    }
    group.finish();

    let delta_guard = if quick {
        None
    } else {
        Some(measure_delta_guard())
    };
    let quick_points = measure_quick_points();
    let results = points.into_inner();
    for p in &results {
        println!(
            "churn_rescan: 1:{} — {} domains, {} churned over {} epochs; \
             incremental {:.2} ms vs full rescan {:.2} ms, speedup {:.1}x",
            p.scale_denominator,
            p.domains,
            p.recrawled_total,
            p.epochs,
            p.incremental_secs * 1e3,
            p.full_secs * 1e3,
            p.speedup,
        );
        // The acceptance bar rides the committed full-mode artifact.
        if !quick && p.scale_denominator == 200 {
            assert!(
                p.speedup >= 5.0,
                "1:200 incremental re-crawl must be ≥5x a full rescan, got {:.1}x",
                p.speedup
            );
        }
    }
    if let Some(guard) = &delta_guard {
        println!(
            "churn_rescan: delta guard — {}-domain delta costs {:.2} ms on {} domains \
             vs {:.2} ms on {} domains (ratio {:.2} ≤ {:.1})",
            guard.delta_domains,
            guard.small_epoch_secs * 1e3,
            guard.small_population,
            guard.large_epoch_secs * 1e3,
            guard.large_population,
            guard.cost_ratio,
            guard.allowed_factor,
        );
    }

    let report = BenchReport {
        bench: "churn_rescan".to_string(),
        quick_mode: quick,
        workers: WORKERS,
        epochs_per_config: EPOCHS,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        baseline_note: "both columns produce byte-identical report vectors and weighted \
                        coverage (asserted every epoch before timing); the full column \
                        rebuilds a fresh walker and re-crawls the whole population, the \
                        incremental column re-crawls only the churned delta"
            .to_string(),
        results,
        delta_guard,
        quick_points: quick_points.clone(),
    };
    let out_path = std::env::var("BENCH_9_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_9.json", env!("CARGO_MANIFEST_DIR")));
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("BENCH_9.json is writable");
    println!("churn_rescan: wrote {out_path}");

    // With BENCH_GUARD_BASELINE set (scripts/bench_guard.sh), fail the
    // run on a regression against the committed artifact.
    guard::enforce_from_env(&quick_points);
}
