//! One regeneration pipeline per table and figure of the paper.
//!
//! Every function takes the prepared scan ([`Repro`]) and returns the
//! rendered artifact plus an [`Experiment`] comparing measured values to
//! the paper's published ones (counts are rescaled to full-scale units
//! before comparison). The `repro` binary prints the artifacts and writes
//! the experiment log to EXPERIMENTS.md; the criterion benches re-run the
//! same pipelines under measurement.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use spf_analyzer::{DomainReport, ErrorClass, NotFoundCause, Walker};
use spf_core::{check_host, AuthCache, EvalContext, SpfResult};
#[allow(deprecated)]
use spf_crawler::spoof_matrix as run_spoof_matrix;
use spf_crawler::{
    auth_matrix_with_cache, crawl, include_ecosystem, select_vantages, ChurnEngine, CrawlConfig,
    CrawlStats, DeploymentMix, IncludeStats, LongitudinalConfig, OverlapReport, ProviderVantage,
    ScanAggregates, SpoofMatrixConfig, StopLayer, VantageKind, VantagePoint, ZoneDelta,
    DEFAULT_CONTROLS, DEFAULT_PROVIDER_ROWS, DEFAULT_TOP_COVERAGE, SPOOF_SENDER_LOCAL,
};
use spf_dns::{
    Resolver, ServerConfig, VirtualClock, WireClientConfig, WireFleet, WireSnapshot, WireTelemetry,
    ZoneResolver, ZoneStore,
};
use spf_netsim::{
    build_hosting, build_spoof_world, ChurnConfig, ChurnSimulator, Population, PopulationConfig,
    Scale,
};
use spf_notify::{apply_remediation, Campaign, CampaignConfig, CampaignOutcome, FixRates};
use spf_report::{
    fmt_count, fmt_percent, paper, render_bars, render_cdf, Cdf, Experiment, Heatmap, Histogram,
    Table,
};
use spf_smtp::{run_case_study, SpoofSuccess};
use spf_types::{Backend, Evaluator, StatItem, Stats, Transport, WeightedRanges};

/// The live wire substrate of a wire-mode scan. Dropping it shuts the
/// server fleet down, so it rides inside [`Repro`] for the run's
/// lifetime.
pub struct WireRun {
    /// The sharded authoritative server fleet.
    pub fleet: WireFleet,
    /// The wire engine (shared with the walker) behind its telemetry
    /// face — blocking socket pool or epoll reactor, the harness reads
    /// both through the same [`WireTelemetry`] trait.
    pub resolver: Arc<dyn WireTelemetry>,
}

impl WireRun {
    /// Point-in-time copy of the wire engine's counters.
    pub fn snapshot(&self) -> WireSnapshot {
        self.resolver.snapshot()
    }

    /// The `[wire]` telemetry line for a crawl over `domains` domains:
    /// the engine's counter view plus the fleet's answer counts, all
    /// rendered through the shared [`Stats`] formatter.
    pub fn stats(&self, domains: u64) -> WireRunStats {
        WireRunStats {
            view: self.snapshot().stats_view(domains),
            fleet_udp: self.fleet.answered(),
            fleet_tcp: self.fleet.tcp_answered(),
        }
    }
}

/// The `[wire]` line of one crawl: engine counters + fleet answers.
pub struct WireRunStats {
    view: spf_dns::WireStatsView,
    fleet_udp: u64,
    fleet_tcp: u64,
}

impl Stats for WireRunStats {
    fn scope(&self) -> &'static str {
        "wire"
    }

    fn items(&self) -> Vec<StatItem> {
        let mut items = self.view.items();
        items.push(StatItem::count("fleet_udp", self.fleet_udp));
        items.push(StatItem::count("fleet_tcp", self.fleet_tcp));
        items
    }
}

/// A prepared scan: population, crawl output, aggregates, ecosystem.
pub struct Repro {
    /// The generated world.
    pub population: Population,
    /// The shared walker (memo cache holds every include analysis). The
    /// resolver behind it is the in-process [`ZoneResolver`], the
    /// blocking wire client, or the epoll reactor engine, per the
    /// config's [`Backend`] transport.
    pub walker: Walker<Arc<dyn Resolver>>,
    /// Per-domain reports in rank order.
    pub reports: Vec<DomainReport>,
    /// Aggregates over the full population.
    pub all: ScanAggregates,
    /// Aggregates over the top-1M segment.
    pub top: ScanAggregates,
    /// The include ecosystem.
    pub eco: Vec<IncludeStats>,
    /// The population's weighted address-space coverage profile — the
    /// sweep-line over the boundary deltas every SPF-bearing domain
    /// contributed during the crawl (DESIGN.md §7).
    pub overlap: WeightedRanges,
    /// Distinct boundaries the coverage sweep processed (its `B`).
    pub overlap_boundaries: usize,
    /// Throughput/cache/queue counters of the scan crawl.
    pub stats: CrawlStats,
    /// The crawl configuration the scan ran under.
    pub config: CrawlConfig,
    /// The wire substrate when the backend transport runs over
    /// sockets; `None` in-memory.
    pub wire: Option<WireRun>,
    /// Scale denominator, for rescaling counts.
    pub denom: u64,
    /// Seed used.
    pub seed: u64,
}

impl Repro {
    /// Rescale a measured count to full-scale units.
    pub fn up(&self, measured: u64) -> u64 {
        measured * self.denom
    }
}

/// Assemble the resolver stack a [`Backend`]'s transport selects over
/// `store`: the in-process [`ZoneResolver`], or a freshly spawned
/// server fleet fronted by the blocking wire client
/// ([`Transport::WireBlocking`]) or the epoll reactor engine
/// ([`Transport::WireAsync`]). Every entry point — `repro`, the spoof
/// matrix, the verdict service, the benches — routes through here, so
/// a backend means the same stack everywhere.
pub fn build_resolver(
    store: &Arc<ZoneStore>,
    backend: Backend,
) -> (Arc<dyn Resolver>, Option<WireRun>) {
    match backend.transport {
        Transport::Memory => (Arc::new(ZoneResolver::new(Arc::clone(store))), None),
        Transport::WireBlocking => {
            let fleet = WireFleet::spawn(store, backend.servers.max(1), ServerConfig::default())
                .expect("wire fleet spawns on loopback");
            let resolver = Arc::new(fleet.resolver(WireClientConfig::crawl()));
            (
                Arc::clone(&resolver) as Arc<dyn Resolver>,
                Some(WireRun {
                    fleet,
                    resolver: resolver as Arc<dyn WireTelemetry>,
                }),
            )
        }
        Transport::WireAsync => {
            let fleet = WireFleet::spawn(store, backend.servers.max(1), ServerConfig::default())
                .expect("wire fleet spawns on loopback");
            let resolver = Arc::new(fleet.async_resolver(WireClientConfig::crawl()));
            (
                Arc::clone(&resolver) as Arc<dyn Resolver>,
                Some(WireRun {
                    fleet,
                    resolver: resolver as Arc<dyn WireTelemetry>,
                }),
            )
        }
    }
}

/// Generate the population and run the full crawl (in-memory mode).
pub fn prepare(denominator: u64, seed: u64, workers: usize) -> Repro {
    prepare_with(denominator, seed, CrawlConfig::with_workers(workers))
}

/// Generate the population and run the full crawl under an explicit
/// [`CrawlConfig`] — including the wire backends, which spawn the
/// sharded server fleet and crawl over real sockets.
pub fn prepare_with(denominator: u64, seed: u64, config: CrawlConfig) -> Repro {
    let population = Population::build(PopulationConfig {
        scale: Scale { denominator },
        seed,
    });
    let (resolver, wire) = build_resolver(&population.store, config.backend);
    let walker = Walker::new(resolver);
    let output = crawl(&walker, &population.domains, config);
    let all = ScanAggregates::compute(&output.reports);
    let top = ScanAggregates::compute(&output.reports[..population.top_len]);
    let eco = include_ecosystem(&output.reports, &walker);
    let mut coverage = output.coverage;
    let overlap_boundaries = coverage.boundary_count();
    let overlap = coverage.into_weighted();
    Repro {
        population,
        walker,
        reports: output.reports,
        all,
        top,
        eco,
        overlap,
        overlap_boundaries,
        stats: output.stats,
        config,
        wire,
        denom: denominator,
        seed,
    }
}

/// Table 1 — SPF and DMARC usage in the wild.
pub fn table1(r: &Repro) -> (Table, Experiment) {
    let mut table = Table::new(
        "Table 1: SPF and DMARC usage in the wild",
        &["Study", "Year", "List", "Size", "SPF", "DM."],
    );
    for (study, year, list, size, spf, dmarc) in paper::TABLE1_PRIOR {
        if study == "Our study" {
            continue; // replaced by measured rows below
        }
        table.push_row(vec![
            study.to_string(),
            year.to_string(),
            list.to_string(),
            size.to_string(),
            fmt_percent(spf),
            dmarc.map(fmt_percent).unwrap_or_else(|| "—".into()),
        ]);
    }
    table.push_row(vec![
        "Our study (measured)".into(),
        "2023".into(),
        "Tranco".into(),
        "1M".into(),
        fmt_percent(r.top.spf_rate()),
        fmt_percent(r.top.dmarc_rate()),
    ]);
    table.push_row(vec![
        "Our study (measured)".into(),
        "2023".into(),
        "Tranco".into(),
        "12M".into(),
        fmt_percent(r.all.spf_rate()),
        fmt_percent(r.all.dmarc_rate()),
    ]);

    let mut exp = Experiment::new("Table 1", "SPF and DMARC adoption");
    exp.percent(
        "SPF rate (top 1M)",
        paper::TABLE1_OURS_TOP1M.0,
        r.top.spf_rate(),
    );
    exp.percent(
        "DMARC rate (top 1M)",
        paper::TABLE1_OURS_TOP1M.1,
        r.top.dmarc_rate(),
    );
    exp.percent("SPF rate (all)", paper::TABLE1_OURS_ALL.0, r.all.spf_rate());
    exp.percent(
        "DMARC rate (all)",
        paper::TABLE1_OURS_ALL.1,
        r.all.dmarc_rate(),
    );
    exp.percent(
        "SPF among MX domains (all)",
        0.751,
        r.all.spf_rate_among_mx(),
    );
    exp.note(
        "The paper's 79.3 % SPF-among-MX figure refers to the top 1M; over all \
         12.8M domains the cohort arithmetic implies 75.1 %, which is what the \
         generator encodes.",
    );
    (table, exp)
}

/// Figure 1 — implementation of email and security mechanisms.
pub fn figure1(r: &Repro) -> (Table, Experiment) {
    let mut table = Table::new(
        "Figure 1: implementation of email and security mechanisms (full-scale units)",
        &["Mechanism", "Paper", "Measured"],
    );
    let (p_all, p_mx, p_spf, p_dmarc) = paper::FIGURE1_COUNTS;
    let rows = [
        ("All", p_all, r.up(r.all.total_domains)),
        ("MX", p_mx, r.up(r.all.with_mx)),
        ("SPF", p_spf, r.up(r.all.with_spf)),
        ("DMARC", p_dmarc, r.up(r.all.with_dmarc)),
    ];
    let mut exp = Experiment::new("Figure 1", "population overlaps (All/MX/SPF/DMARC)");
    for (label, paper_count, measured) in rows {
        table.push_row(vec![
            label.into(),
            fmt_count(paper_count),
            fmt_count(measured),
        ]);
        exp.count(label, paper_count, measured);
    }
    exp.count("SPF ∧ MX", 6_869_474, r.up(r.all.with_mx_and_spf));
    (table, exp)
}

/// Figure 2 — appearance of different error types.
pub fn figure2(r: &Repro) -> (String, Experiment) {
    let mut exp = Experiment::new("Figure 2", "SPF error classes");
    let mut buckets = Vec::new();
    for (label, paper_count) in paper::FIGURE2 {
        let class = class_by_label(label);
        let measured = r.up(r.all.error_counts.get(&class).copied().unwrap_or(0));
        buckets.push((label.to_string(), measured));
        exp.count(label, paper_count, measured);
    }
    exp.count(
        "Total errors",
        paper::TOTAL_ERRORS,
        r.up(r.all.total_errors()),
    );
    exp.count(
        "Excluded transient DNS errors",
        paper::DNS_TRANSIENT_ERRORS,
        r.up(r.all.dns_transient),
    );
    let chart = render_bars(
        "Figure 2: appearance of different error types (full-scale units)",
        &Histogram::new(buckets),
        48,
    );
    (chart, exp)
}

fn class_by_label(label: &str) -> ErrorClass {
    match label {
        "Syntax Error" => ErrorClass::SyntaxError,
        "Too Many DNS Lookups" => ErrorClass::TooManyDnsLookups,
        "Too Many Void DNS Lookups" => ErrorClass::TooManyVoidDnsLookups,
        "Redirect Loop" => ErrorClass::RedirectLoop,
        "Include Loop" => ErrorClass::IncludeLoop,
        "Record not found" => ErrorClass::RecordNotFound,
        "Invalid IP address" => ErrorClass::InvalidIpAddress,
        other => unreachable!("unknown class label {other}"),
    }
}

fn cause_by_label(label: &str) -> NotFoundCause {
    match label {
        "Other Errors" => NotFoundCause::OtherError,
        "No SPF Record" => NotFoundCause::NoSpfRecord,
        "Multiple SPF Records" => NotFoundCause::MultipleSpfRecords,
        "Domain not found" => NotFoundCause::DomainNotFound,
        "Empty Result" => NotFoundCause::EmptyResult,
        "DNS Timeout" => NotFoundCause::DnsTimeout,
        other => unreachable!("unknown cause label {other}"),
    }
}

/// Figure 3 — distribution of record-not-found errors.
pub fn figure3(r: &Repro) -> (String, Experiment) {
    let mut exp = Experiment::new("Figure 3", "record-not-found causes");
    let mut buckets = Vec::new();
    for (label, paper_count) in paper::FIGURE3 {
        let cause = cause_by_label(label);
        let raw = r.all.not_found_causes.get(&cause).copied().unwrap_or(0);
        // "Other Errors" is a fixed-count curiosity cohort (3 domains at
        // any scale), so it is not rescaled.
        let measured = if cause == NotFoundCause::OtherError {
            raw
        } else {
            r.up(raw)
        };
        buckets.push((label.to_string(), measured));
        exp.count(label, paper_count, measured);
    }
    exp.note(
        "The paper's three 'other errors' include one UTF-8 decode failure; \
         non-UTF-8 zone content cannot be expressed in this implementation, so \
         all three are oversized-label/name cases.",
    );
    let chart = render_bars(
        "Figure 3: distribution of record-not-found errors (full-scale units)",
        &Histogram::new(buckets),
        48,
    );
    (chart, exp)
}

/// Figure 4 — includes exceeding the DNS lookup limit.
pub fn figure4(r: &Repro) -> (Table, Experiment) {
    let over: Vec<&IncludeStats> = r.eco.iter().filter(|s| s.dns_lookups > 10).collect();
    let affected: u64 = over.iter().map(|s| s.used_by).sum();
    let bluehost = over.iter().max_by_key(|s| s.used_by);
    let mut table = Table::new(
        "Figure 4: includes exceeding the DNS lookup limit (top 10 by users; full-scale units)",
        &["Include", "DNS lookups", "Used by"],
    );
    let mut sorted: Vec<&&IncludeStats> = over.iter().collect();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.used_by));
    for s in sorted.iter().take(10) {
        table.push_row(vec![
            s.domain.to_string(),
            s.dns_lookups.to_string(),
            fmt_count(r.up(s.used_by)),
        ]);
    }
    let mut exp = Experiment::new("Figure 4", "lookup-limit-exceeding includes");
    exp.count(
        "Includes over the limit",
        paper::FIGURE4_FAT_INCLUDES,
        r.up(over.len() as u64),
    );
    exp.count("Affected domains", paper::FIGURE4_AFFECTED, r.up(affected));
    if let Some(b) = bluehost {
        exp.plain(
            "Dominant include's lookup count",
            paper::FIGURE4_BLUEHOST_LOOKUPS as f64,
            b.dns_lookups as f64,
        );
        exp.percent(
            "Dominant include's share of affected domains",
            paper::FIGURE4_BLUEHOST_SHARE,
            b.used_by as f64 / affected.max(1) as f64,
        );
    }
    exp.note(
        "The paper reports 85,915 affected domains but classifies only 49,421 \
         under 'Too Many DNS Lookups' (Figure 2); the generator unifies the two \
         populations, so the affected count tracks the Figure 2 class.",
    );
    (table, exp)
}

/// Table 2 — errors before and after the notification campaign.
/// Runs the campaign + remediation model and rescans; mutates the zone.
/// The returned [`CrawlStats`] describe the rescan crawl.
pub fn table2(r: &Repro, workers: usize) -> (Table, Experiment, CampaignOutcome, CrawlStats) {
    // 1. Notification campaign (throttled on a virtual clock).
    let clock = Arc::new(VirtualClock::new());
    let mut campaign = Campaign::new(CampaignConfig::default(), clock);
    let outcome = campaign.run(&r.reports);

    // 2. Operators react per the calibrated fix rates.
    apply_remediation(
        &r.population.store,
        &r.reports,
        &FixRates::default(),
        r.seed ^ 0xF1,
    );

    // 3. Rescan two (virtual) weeks later — fresh walker, fresh cache, on
    // the same substrate as the first scan. In wire mode the fleet's
    // shard stores are deep copies, so the remediated zone needs a
    // freshly partitioned fleet (`_rescan_wire` keeps it alive).
    let rescan_config = CrawlConfig {
        workers,
        ..r.config
    };
    let (resolver, _rescan_wire) = build_resolver(&r.population.store, rescan_config.backend);
    let walker = Walker::new(resolver);
    let rescan = crawl(&walker, &r.population.domains, rescan_config);
    let after = ScanAggregates::compute(&rescan.reports);

    let mut table = Table::new(
        "Table 2: SPF errors before and after our notification (full-scale units)",
        &["Error", "Before", "After", "Change"],
    );
    let mut exp = Experiment::new("Table 2", "notification campaign impact");
    let count_of = |agg: &ScanAggregates, class: ErrorClass| {
        agg.error_counts.get(&class).copied().unwrap_or(0)
    };
    for (label, p_before, p_after) in paper::TABLE2 {
        let class = class_by_label(label);
        let before = r.up(count_of(&r.all, class));
        let after_n = r.up(count_of(&after, class));
        let change = if before == 0 {
            0.0
        } else {
            after_n as f64 / before as f64 - 1.0
        };
        table.push_row(vec![
            label.to_string(),
            fmt_count(before),
            fmt_count(after_n),
            format!("{:+.2} %", change * 100.0),
        ]);
        exp.count(format!("{label} (after)"), p_after, after_n);
        let _ = p_before;
    }
    let before_total = r.up(r.all.total_errors());
    let after_total = r.up(after.total_errors());
    table.push_row(vec![
        "Total Errors".into(),
        fmt_count(before_total),
        fmt_count(after_total),
        format!(
            "{:+.2} %",
            (after_total as f64 / before_total.max(1) as f64 - 1.0) * 100.0
        ),
    ]);
    exp.count("Total errors (after)", paper::TABLE2_TOTAL.1, after_total);
    exp.count(
        "Notifications sent",
        paper::NOTIFICATIONS_SENT,
        r.up(outcome.sent),
    );
    exp.note(
        "The operator is modelled by per-class fix probabilities taken from \
         Table 2's change column (DESIGN.md §2); the rescan itself re-runs the \
         full pipeline against the mutated zone.",
    );
    (table, exp, outcome, rescan.stats)
}

/// Table 3 — very large IP ranges by CIDR class.
pub fn table3(r: &Repro) -> (Table, Experiment) {
    // Include column: unique include records carrying a network of the
    // class (measured over the ecosystem).
    let mut include_col: BTreeMap<u8, u64> = BTreeMap::new();
    for s in &r.eco {
        let mut prefixes: Vec<u8> = s
            .subnet_prefixes
            .iter()
            .copied()
            .filter(|p| *p <= 16)
            .collect();
        prefixes.dedup();
        for p in prefixes {
            *include_col.entry(p).or_default() += 1;
        }
    }
    let mut table = Table::new(
        "Table 3: type and amount of SPF mechanisms with large IP ranges (full-scale units)",
        &[
            "CIDR",
            "ip4/a/mx (paper)",
            "ip4/a/mx (ours)",
            "include (paper)",
            "include (ours)",
        ],
    );
    let mut exp = Experiment::new("Table 3", "very large IP ranges");
    for (prefix, p_direct, p_include) in paper::TABLE3 {
        let m_direct = r.up(r.all.large_ranges_direct.get(&prefix).copied().unwrap_or(0));
        let m_include = r.up(include_col.get(&prefix).copied().unwrap_or(0));
        table.push_row(vec![
            format!("/{prefix}"),
            fmt_count(p_direct),
            fmt_count(m_direct),
            fmt_count(p_include),
            fmt_count(m_include),
        ]);
        exp.count(format!("/{prefix} direct"), p_direct, m_direct);
        if p_include > 0 || m_include > 0 {
            exp.count(format!("/{prefix} include"), p_include, m_include);
        }
    }
    exp.count(
        "Domains >100k IPs via direct mechanisms",
        paper::LAX_VIA_DIRECT,
        r.up(r.all.lax_via_direct),
    );
    exp.count(
        "Domains >100k IPs via includes",
        paper::LAX_VIA_INCLUDE,
        r.up(r.all.lax_via_include),
    );
    exp.note(
        "Tiny classes are kept present at reduced scale by min-1 rounding, so \
         their rescaled counts overshoot the paper's single-digit values; the \
         distribution shape is the reproduced quantity.",
    );
    (table, exp)
}

/// Table 4 — top 20 included domains.
pub fn table4(r: &Repro) -> (Table, Experiment) {
    let mut table = Table::new(
        "Table 4: top 20 included domains (full-scale units)",
        &[
            "Include",
            "Used by (paper)",
            "Used by (ours)",
            "Allowed IPs (paper)",
            "Allowed IPs (ours)",
        ],
    );
    let mut exp = Experiment::new("Table 4", "top-20 include ecosystem");
    let by_name: BTreeMap<&str, &IncludeStats> =
        r.eco.iter().map(|s| (s.domain.as_str(), s)).collect();
    for (name, p_used, p_ips) in paper::TABLE4 {
        let stats = by_name.get(name);
        let m_used = stats.map(|s| r.up(s.used_by)).unwrap_or(0);
        let m_ips = stats.map(|s| s.allowed_ips).unwrap_or(0);
        table.push_row(vec![
            name.to_string(),
            fmt_count(p_used),
            fmt_count(m_used),
            fmt_count(p_ips),
            fmt_count(m_ips),
        ]);
        exp.count(format!("{name} allowed IPs"), p_ips, m_ips);
        exp.count(format!("{name} used by"), p_used, m_used);
    }
    exp.note(
        "Allowed-IP counts are exact by construction. Used-by counts carry a \
         global normalization: the paper's usage column sums to more include \
         slots than its Figure 6 histogram provides, so the generator scales \
         usage proportionally (ordering and magnitudes preserved).",
    );
    (table, exp)
}

/// Table 5 — the web-hosting spoofing case study (over real TCP).
pub fn table5(denominator: u64) -> (Table, Experiment) {
    let world = build_hosting(Scale { denominator });
    let resolver = Arc::new(ZoneResolver::new(Arc::clone(&world.store)));
    let rows = run_case_study(&world, resolver).expect("case study runs");
    let mut table = Table::new(
        "Table 5: results of the providers case study (full-scale units)",
        &["Provider", "Success", "# Domains", "# Allowed IPs"],
    );
    let mut exp = Experiment::new("Table 5", "web-hosting spoofing case study");
    for ((provider, p_success, p_domains, p_ips), row) in paper::TABLE5.iter().zip(&rows) {
        table.push_row(vec![
            provider.to_string(),
            row.success.to_string(),
            fmt_count(row.domains * denominator),
            fmt_count(row.allowed_ips),
        ]);
        exp.plain(
            format!("Provider {provider} success matches '{p_success}'"),
            1.0,
            f64::from(row.success.to_string() == *p_success),
        );
        exp.count(
            format!("Provider {provider} spoofable domains"),
            *p_domains,
            row.domains * denominator,
        );
        exp.count(
            format!("Provider {provider} allowed IPs"),
            *p_ips,
            row.allowed_ips,
        );
    }
    let total: u64 = rows.iter().map(|r| r.domains).sum::<u64>() * denominator;
    exp.count(
        "Total spoofable domains",
        paper::TABLE5_TOTAL_SPOOFABLE,
        total,
    );
    exp.note(
        "Every attempt is a live TCP SMTP session against a receiving MTA whose \
         SPF gate runs check_host(); port-25 blocking and MTA authentication are \
         provider behaviour flags (DESIGN.md §2).",
    );
    (table, exp)
}

/// Figure 5 — CDF of authorized IPv4 addresses.
pub fn figure5(r: &Repro) -> (String, Experiment) {
    let cdf = Cdf::new(r.all.allowed_ip_counts.clone());
    let rendered = render_cdf("Figure 5: CDF of authorized IPv4 addresses", &cdf);
    let mut exp = Experiment::new("Figure 5", "CDF of authorized IPv4 addresses");
    exp.percent(
        "Domains with <20 allowed IPs",
        paper::TIGHT_RATE,
        cdf.fraction_below(20),
    );
    exp.percent(
        "Domains with >100k allowed IPs",
        paper::LAX_RATE,
        cdf.fraction_above(100_000),
    );
    let (step_exp, _) = cdf.steepest_power_of_two_step();
    exp.plain("Steepest CDF step at 2^k, k =", 19.0, step_exp as f64);
    exp.note(
        "The paper highlights the largest rise between 400k and 700k allowed \
         addresses (Microsoft at 491,520 / secureserver at 505,104), i.e. the \
         2^18→2^19 step.",
    );
    (rendered, exp)
}

/// Figure 6 — number of includes in the top-level record.
pub fn figure6(r: &Repro) -> (String, Experiment) {
    let mut buckets = Vec::new();
    let mut exp = Experiment::new("Figure 6", "top-level include counts");
    for (k, p_count) in paper::FIGURE6.iter().enumerate() {
        let label = if k == 11 {
            ">10".to_string()
        } else {
            k.to_string()
        };
        let measured = r.up(r.all.include_count_histogram[k]);
        buckets.push((label.clone(), measured));
        exp.count(format!("{label} includes"), *p_count, measured);
    }
    let chart = render_bars(
        "Figure 6: number of includes in the top level record (full-scale units)",
        &Histogram::new(buckets),
        48,
    );
    (chart, exp)
}

/// Figure 7 — distribution of subnet sizes in includes.
pub fn figure7(r: &Repro) -> (String, Experiment) {
    let mut by_prefix: BTreeMap<u8, u64> = BTreeMap::new();
    for s in &r.eco {
        for p in &s.subnet_prefixes {
            *by_prefix.entry(*p).or_default() += 1;
        }
    }
    let key_prefixes = [32u8, 24, 16, 8, 0];
    let buckets: Vec<(String, u64)> = key_prefixes
        .iter()
        .map(|p| (format!("/{p}"), by_prefix.get(p).copied().unwrap_or(0)))
        .collect();
    let hist = Histogram::new(buckets);
    let chart = render_bars(
        "Figure 7: distribution of subnet sizes in includes (entries across unique includes)",
        &hist,
        48,
    );
    let mut exp = Experiment::new("Figure 7", "subnet sizes inside includes");
    // The reproduced quantity is the *shape*: /32 peak, /24 second.
    let peak = hist.peak().map(|(l, _)| l.clone()).unwrap_or_default();
    exp.plain("Peak bucket is /32", 1.0, f64::from(peak == "/32"));
    let v32 = hist.share("/32");
    let v24 = hist.share("/24");
    let v16 = hist.share("/16");
    exp.plain(
        "/24 is the second peak",
        1.0,
        f64::from(v24 > v16 && v32 > v24),
    );
    exp.note(
        "The paper's y-axis counts are not directly comparable (the unit of \
         counting is ambiguous between include entries and domains); the \
         reproduced property is the ordering /32 > /24 > /16 > /8 of the \
         distribution's mass.",
    );
    (chart, exp)
}

/// Figure 8 — heatmap of include usage vs. allowed IPs.
pub fn figure8(r: &Repro) -> (String, Experiment) {
    let points: Vec<(u64, u64)> = r
        .eco
        .iter()
        .map(|s| (s.allowed_ips, r.up(s.used_by)))
        .collect();
    let map = Heatmap::from_points(&points, 33, 33);
    let mut out = String::new();
    out.push_str("Figure 8: include density over (allowed IPs, used-by), log2 bins\n");
    let (hx, hy, hc) = map.hottest();
    out.push_str(&format!(
        "  includes: {}   hottest cell: allowed≈2^{hx}, used-by≈2^{hy} ({hc} includes)\n",
        map.total()
    ));
    out.push_str(&format!(
        "  mass with allowed IPs ≤ 2^20: {:.1} %\n",
        map.mass_at_most_x(20) * 100.0
    ));
    let mut exp = Experiment::new("Figure 8", "include usage × allowed-IP heatmap");
    exp.percent("Mass with allowed IPs ≤ 2^20", 0.99, map.mass_at_most_x(20));
    exp.note(
        "The paper reads the heatmap qualitatively: 'a huge concentration, up \
         to around 2^20 allowed IPs', matching the Figure 5 step. The measured \
         mass below 2^20 reproduces that concentration.",
    );
    (out, exp)
}

/// §5.1 / §5.5 — additional findings.
pub fn extras(r: &Repro) -> (Table, Experiment) {
    let mut table = Table::new(
        "Additional findings (§5.1, §5.5; full-scale units)",
        &["Finding", "Paper", "Measured"],
    );
    let mut exp = Experiment::new("§5.1/§5.5", "additional findings");
    let rows: Vec<(&str, f64, f64, bool)> = vec![
        (
            "SPF among MX-less domains",
            paper::SPF_AMONG_NO_MX,
            r.all.spf_rate_among_no_mx(),
            true,
        ),
        (
            "Deny-all share of MX-less SPF",
            paper::DENY_ALL_SHARE,
            r.all.spf_without_mx_deny_all as f64 / r.all.spf_without_mx.max(1) as f64,
            true,
        ),
        (
            "Permissive all policies",
            paper::PERMISSIVE_ALL as f64,
            r.up(r.all.permissive_all) as f64,
            false,
        ),
        (
            "PTR mechanism users",
            paper::PTR_MECHANISM as f64,
            r.up(r.all.uses_ptr) as f64,
            false,
        ),
        (
            "Deprecated SPF RR users",
            paper::DEPRECATED_SPF_RR as f64,
            r.up(r.all.deprecated_spf_rr) as f64,
            false,
        ),
        (
            "RFC 6652 ra/rp/rr users",
            paper::REPORTING_MODIFIERS as f64,
            // Fixed-count cohort: not rescaled.
            r.all.reporting_modifiers as f64,
            false,
        ),
        (
            "Include mechanism usage",
            paper::INCLUDE_USAGE_RATE,
            r.all.uses_include as f64 / r.all.with_spf.max(1) as f64,
            true,
        ),
        (
            "Direct ip6 usage (§4.1)",
            0.005,
            r.all.uses_ip6 as f64 / r.all.with_spf.max(1) as f64,
            true,
        ),
    ];
    for (label, paper_v, measured, is_rate) in rows {
        if is_rate {
            table.push_row(vec![
                label.into(),
                fmt_percent(paper_v),
                fmt_percent(measured),
            ]);
            exp.percent(label, paper_v, measured);
        } else {
            table.push_row(vec![
                label.into(),
                fmt_count(paper_v as u64),
                fmt_count(measured as u64),
            ]);
            exp.count(label, paper_v as u64, measured as u64);
        }
    }
    exp.note(
        "The XSS record (§5.5) and the 14 ra/rp/rr domains are fixed-count \
         curiosity cohorts and are generated at their absolute counts at every \
         scale.",
    );
    (table, exp)
}

/// §6 in overlap form — the cross-population address-space engine: the
/// most-spoofable address, the coverage histogram, and provider
/// concentration by covered space. Not a paper artifact row-for-row (the
/// study never published the sweep), so the experiment log carries
/// internal consistency checks instead of paper columns: the sweep's
/// max-coverage answer is recounted naively against every report's
/// membership test, and the histogram must be monotone.
pub fn overlap(r: &Repro) -> (String, Experiment) {
    let report = OverlapReport::compute(&r.overlap, &r.eco, r.all.with_spf, DEFAULT_PROVIDER_ROWS);

    let mut out = String::new();
    out.push_str("Overlap: cross-population address-space coverage\n");
    out.push_str(&format!(
        "  SPF domains contributing: {} (full-scale {})\n",
        fmt_count(report.spf_domains),
        fmt_count(r.up(report.spf_domains)),
    ));
    out.push_str(&format!(
        "  sweep: {} boundaries -> {} weighted ranges, {} addresses covered\n",
        fmt_count(r.overlap_boundaries as u64),
        fmt_count(report.weighted_ranges),
        fmt_count(report.total_covered),
    ));
    match report.max_coverage_addr {
        Some(addr) => out.push_str(&format!(
            "  most-spoofable address: {addr} — authorized by {} domains \
             (full-scale {}, {} of SPF domains)\n\n",
            fmt_count(report.max_coverage_domains),
            fmt_count(r.up(report.max_coverage_domains)),
            fmt_percent(report.max_coverage_share()),
        )),
        None => out.push_str("  no domain authorizes any address\n\n"),
    }

    let mut histogram = Table::new(
        "Coverage histogram: addresses authorized by at least k domains",
        &["k (domains)", "Addresses", "Share of covered space"],
    );
    for &(k, addrs) in &report.histogram {
        histogram.push_row(vec![
            format!("≥ {k}"),
            fmt_count(addrs),
            fmt_percent(addrs as f64 / report.total_covered.max(1) as f64),
        ]);
    }
    out.push_str(&histogram.render());
    out.push('\n');

    let mut providers = Table::new(
        "Provider concentration: top include trees by covered space (Table 4 in overlap form)",
        &[
            "Include",
            "Used by (full-scale)",
            "Covered IPs",
            "Share of union",
        ],
    );
    for p in &report.providers {
        providers.push_row(vec![
            p.domain.to_string(),
            fmt_count(r.up(p.used_by)),
            fmt_count(p.covered_ips),
            fmt_percent(p.share_of_union),
        ]);
    }
    out.push_str(&providers.render());

    let mut exp = Experiment::new("Overlap", "cross-population address-space overlap");
    // The sweep's headline answer, recounted the naive way: probe every
    // report's interval set for the winning address.
    let naive_recount = report.max_coverage_addr.map_or(0, |addr| {
        r.reports
            .iter()
            .filter(|rep| {
                rep.has_spf
                    && rep
                        .record
                        .as_ref()
                        .is_some_and(|rec| rec.ips.contains(addr))
            })
            .count() as u64
    });
    exp.plain(
        "Sweep max-coverage equals naive membership recount",
        1.0,
        f64::from(naive_recount == report.max_coverage_domains),
    );
    exp.plain(
        "Coverage histogram is monotone in k",
        1.0,
        f64::from(report.histogram.windows(2).all(|w| w[0].1 >= w[1].1)),
    );
    exp.plain(
        "Top provider's space is within the covered union",
        1.0,
        f64::from(
            report
                .providers
                .first()
                .is_none_or(|p| p.covered_ips <= report.total_covered),
        ),
    );
    exp.note(
        "The paper never published the population-wide sweep, so this section \
         has no paper column; the flags above recount the sweep-line's answers \
         through the naive per-address membership path it replaces \
         (BENCH_4.json measures the speedup).",
    );
    (out, exp)
}

/// §6 at population scale — the spoofability verdict matrix: real
/// `check_host()` verdicts for the whole population (the calibrated
/// scan plus the Table 5 hosting customers) from attacker vantage
/// addresses, deduplicated through the subtree verdict cache. The
/// config's [`Backend`] selects both halves of the stack: its transport
/// like every scan target, and its [`Evaluator`] for the verdicts —
/// [`Evaluator::Compiled`] answers every cell from the domain's
/// compiled interval matcher (residual terms fall back to the live
/// evaluator), gains the `[compiler]` compilability line, and an extra
/// experiment flag recounts the sampled sub-population through the
/// interpreted engine to pin backend equality in-run. The experiment
/// log carries internal consistency flags (sampled matrix cells
/// recounted through plain uncached `check_host`) plus the Table 5
/// label replay.
#[allow(deprecated)] // the v1 engine is this experiment's subject; `spoof_matrix_stacked` is v2
pub fn spoof_matrix(denominator: u64, seed: u64, config: CrawlConfig) -> (String, Experiment) {
    let use_compiled = config.backend.is_compiled();
    let world = build_spoof_world(Scale { denominator }, seed);
    let (resolver, _wire) = build_resolver(&world.store, config.backend);

    // One crawl pass for the coverage profile the vantage selection
    // needs (and the SPF-domain census).
    let walker = Walker::new(Arc::clone(&resolver));
    let output = crawl(&walker, &world.domains, config);
    let weighted = output.coverage.into_weighted();

    let provider_vantages: Vec<ProviderVantage> = world
        .providers
        .iter()
        .map(|p| ProviderVantage {
            label: format!("hosting{}", p.id),
            web: p.web_ip,
            mta: p.mta_ip,
        })
        .collect();
    let vantages = select_vantages(
        &weighted,
        &provider_vantages,
        DEFAULT_TOP_COVERAGE,
        DEFAULT_CONTROLS,
        seed,
    );

    let matrix_config = SpoofMatrixConfig::with_workers(config.workers)
        .compiled(use_compiled)
        .cached(config.backend.evaluator != Evaluator::Interpreted);
    let (matrix, stats) = run_spoof_matrix(&resolver, &world.domains, &vantages, matrix_config);

    let mut out = String::new();
    out.push_str("Spoof matrix: population-scale check_host() verdicts\n");
    out.push_str(&format!(
        "  {} domains × {} vantages = {} evaluations ({:.0}/s, verdict-cache hit rate {:.1} %)\n",
        fmt_count(matrix.domains),
        vantages.len(),
        fmt_count(stats.evaluations),
        stats.evals_per_sec(),
        stats.cache_hit_rate() * 100.0,
    ));
    out.push_str(&format!(
        "  spoofable from shared infrastructure: {} (full-scale {})\n",
        fmt_count(matrix.spoofable_shared),
        fmt_count(matrix.spoofable_shared * denominator),
    ));
    out.push_str(&format!(
        "  spoofable from control addresses:     {} (the +all cohort)\n",
        fmt_count(matrix.spoofable_control),
    ));
    out.push_str(&format!(
        "  lazy-gatekeeper rate: {} of {} SPF domains pass from an address \
         the owner plausibly doesn't control\n\n",
        fmt_percent(matrix.lazy_gatekeeper_rate()),
        fmt_count(matrix.spf_domains),
    ));
    if let Some(compiler) = &stats.compiler {
        out.push_str(&format!("  {compiler}\n"));
        out.push_str(&format!(
            "  compiled backend: {} of trees fully static, {} of verdicts \
             answered from interval tables\n\n",
            fmt_percent(compiler.full_fraction()),
            fmt_percent(compiler.compiled_hit_rate()),
        ));
    }

    let mut vantage_table = Table::new(
        "Verdicts by vantage",
        &[
            "Vantage", "Kind", "pass", "softfail", "neutral", "fail", "errors",
        ],
    );
    for v in &matrix.vantages {
        vantage_table.push_row(vec![
            format!("{} ({})", v.label, v.ip),
            format!("{:?}", v.kind),
            fmt_count(v.pass),
            fmt_count(v.softfail),
            fmt_count(v.neutral),
            fmt_count(v.fail),
            fmt_count(v.temperror + v.permerror),
        ]);
    }
    out.push_str(&vantage_table.render());
    out.push('\n');

    // Table 5 replayed through the matrix: per provider, the verdicts of
    // its own hosted customers from its own two addresses, labeled with
    // the same SpoofSuccess logic the live TCP case study uses.
    let mut provider_table = Table::new(
        "Providers through the matrix (Table 5 replay)",
        &["Provider", "Success", "Spoofable customers", "Paper"],
    );
    let mut exp = Experiment::new("Spoof matrix", "population-scale verdict matrix");
    for (provider, (_, p_success, _, _)) in world.providers.iter().zip(paper::TABLE5.iter()) {
        let provider_vantage_pair = vec![
            VantagePoint {
                label: format!("hosting{}-web", provider.id),
                kind: VantageKind::ProviderWeb,
                ip: provider.web_ip,
            },
            VantagePoint {
                label: format!("hosting{}-mta", provider.id),
                kind: VantageKind::ProviderMta,
                ip: provider.mta_ip,
            },
        ];
        let (customer_matrix, _) = run_spoof_matrix(
            &resolver,
            &provider.customers,
            &provider_vantage_pair,
            matrix_config,
        );
        let web_allowed = !provider.blocks_port25;
        let mta_allowed = !provider.mta_requires_auth;
        let smtp_ok = web_allowed && customer_matrix.vantages[0].pass > 0;
        let mta_ok = mta_allowed && customer_matrix.vantages[1].pass > 0;
        let success = SpoofSuccess::from_paths(smtp_ok, mta_ok);
        // Customers spoofable by ≥1 *permitted* path: the per-customer
        // union when both paths are open (spoofable_shared counts pass
        // from either vantage), one vantage's pass count when only one
        // is, zero when the provider blocks both.
        let spoofable = match (web_allowed, mta_allowed) {
            (true, true) => customer_matrix.spoofable_shared,
            (true, false) => customer_matrix.vantages[0].pass,
            (false, true) => customer_matrix.vantages[1].pass,
            (false, false) => 0,
        };
        provider_table.push_row(vec![
            format!("hosting{}", provider.id),
            success.to_string(),
            fmt_count(spoofable * denominator),
            p_success.to_string(),
        ]);
        exp.plain(
            format!(
                "Provider {} matrix label matches '{p_success}'",
                provider.id
            ),
            1.0,
            f64::from(success.to_string() == *p_success),
        );
    }
    out.push_str(&provider_table.render());

    // Consistency: re-evaluate a sampled sub-population through the
    // engine with the verdict cache off *and* through bare per-cell
    // `check_host` calls — all three views must agree exactly.
    let sample_stride = (world.domains.len() / 64).max(1);
    let sample: Vec<spf_types::DomainName> = world
        .domains
        .iter()
        .step_by(sample_stride)
        .cloned()
        .collect();
    let (cached_sample, _) = run_spoof_matrix(&resolver, &sample, &vantages, matrix_config);
    let (uncached_sample, _) =
        run_spoof_matrix(&resolver, &sample, &vantages, matrix_config.cached(false));
    let mut bare_pass = vec![0u64; vantages.len()];
    let mut sampled_cells = 0u64;
    for domain in &sample {
        for (vi, vantage) in vantages.iter().enumerate() {
            let ctx = EvalContext::mail_from(
                std::net::IpAddr::V4(vantage.ip),
                SPOOF_SENDER_LOCAL,
                domain.clone(),
            );
            let eval = check_host(resolver.as_ref(), &ctx, domain, &matrix_config.policy);
            if eval.result == SpfResult::Pass {
                bare_pass[vi] += 1;
            }
            sampled_cells += 1;
        }
    }
    let bare_consistent = bare_pass
        .iter()
        .zip(&uncached_sample.vantages)
        .all(|(&bare, row)| bare == row.pass);
    exp.plain(
        "Cached and uncached sample matrices identical",
        1.0,
        f64::from(cached_sample == uncached_sample),
    );
    if use_compiled {
        let (interpreted_sample, _) =
            run_spoof_matrix(&resolver, &sample, &vantages, matrix_config.compiled(false));
        exp.plain(
            "Compiled and interpreted sample matrices identical",
            1.0,
            f64::from(cached_sample == interpreted_sample),
        );
    }
    exp.plain(
        "Uncached sample matches bare check_host recount",
        1.0,
        f64::from(bare_consistent),
    );
    exp.plain(
        "Shared-infrastructure spoofability ≥ control spoofability",
        1.0,
        f64::from(matrix.spoofable_shared >= matrix.spoofable_control),
    );
    // Control-passers must be a subset of shared-passers (a record open
    // enough to pass from a least-covered address passes from the
    // most-covered ones too) — equivalently, the lazy-gatekeeper union
    // adds nothing beyond the shared count.
    exp.plain(
        "Every control pass is also a shared pass (+all passes everywhere)",
        1.0,
        f64::from(matrix.lazy_gatekeepers == matrix.spoofable_shared),
    );
    exp.note(format!(
        "The matrix evaluated {} cells ({} sampled for the uncached recount); \
         the byte-identity of cached vs uncached verdicts is pinned exactly by \
         tests/spoof_matrix_stress.rs and the proptest suite — the flags here \
         are the cheap in-run smoke version.",
        stats.evaluations, sampled_cells
    ));
    (out, exp)
}

/// Pre-Backend spelling of [`spoof_matrix`]: the boolean maps onto
/// [`Evaluator::Compiled`]. Thin deprecated shim.
#[deprecated(note = "set Evaluator::Compiled on the config's Backend and call spoof_matrix")]
pub fn spoof_matrix_with(
    denominator: u64,
    seed: u64,
    config: CrawlConfig,
    use_compiled: bool,
) -> (String, Experiment) {
    let backend = if use_compiled {
        config.backend.evaluator(Evaluator::Compiled)
    } else {
        config.backend
    };
    spoof_matrix(denominator, seed, config.backend(backend))
}

/// Matrix v2, behind `repro -- spoof-matrix --stack`: the layered
/// auth-stack pipeline of DESIGN.md §13. Every `(vantage, domain)` cell
/// carries the same SPF verdict as the v1 matrix (pinned in-run by a
/// byte comparison of the embedded SPF sub-matrix), and on top of it
/// the victim domain's DMARC disposition and MTA-STS mode name the
/// *first layer that stops an aligned spoof* — [`StopLayer`]. The
/// rendered report buckets the population by [`DeploymentMix`] preset
/// and shows, per tier, where attacker-reachable attempts die and what
/// residue stays spoofable through the whole stack.
pub fn spoof_matrix_stacked(
    denominator: u64,
    seed: u64,
    config: CrawlConfig,
) -> (String, Experiment) {
    let use_compiled = config.backend.is_compiled();
    let world = build_spoof_world(Scale { denominator }, seed);
    let (resolver, _wire) = build_resolver(&world.store, config.backend);

    let walker = Walker::new(Arc::clone(&resolver));
    let output = crawl(&walker, &world.domains, config);
    let weighted = output.coverage.into_weighted();
    let provider_vantages: Vec<ProviderVantage> = world
        .providers
        .iter()
        .map(|p| ProviderVantage {
            label: format!("hosting{}", p.id),
            web: p.web_ip,
            mta: p.mta_ip,
        })
        .collect();
    let vantages = select_vantages(
        &weighted,
        &provider_vantages,
        DEFAULT_TOP_COVERAGE,
        DEFAULT_CONTROLS,
        seed,
    );
    let attacker_vantages = vantages
        .iter()
        .filter(|v| v.kind.attacker_reachable())
        .count() as u64;

    let matrix_config = SpoofMatrixConfig::with_workers(config.workers)
        .compiled(use_compiled)
        .cached(config.backend.evaluator != Evaluator::Interpreted);
    // A caller-owned layer memo shared across both runs: the first run
    // is cold per domain, the warm re-run must serve every DMARC and
    // MTA-STS fact from the memo (the hit rate the report prints).
    let auth_cache = AuthCache::new();
    let (auth, stats) = auth_matrix_with_cache(
        &resolver,
        &world.domains,
        &vantages,
        matrix_config,
        &auth_cache,
    );
    let (auth_warm, warm_stats) = auth_matrix_with_cache(
        &resolver,
        &world.domains,
        &vantages,
        matrix_config,
        &auth_cache,
    );

    let mut out = String::new();
    out.push_str("Auth-stack matrix v2: layered stop attribution (DESIGN.md §13)\n");
    out.push_str(&format!(
        "  {} domains × {} vantages ({} attacker-reachable); SPF sub-matrix \
         byte-identical to v1\n",
        fmt_count(auth.spf.domains),
        vantages.len(),
        attacker_vantages,
    ));
    out.push_str(&format!(
        "  DMARC published on {} domains ({} enforced); MTA-STS enforce on {}\n",
        fmt_count(auth.dmarc_domains),
        fmt_count(auth.dmarc_enforced_domains),
        fmt_count(auth.mta_sts_enforced_domains),
    ));
    out.push_str(&format!(
        "  residual spoofable through the full stack: {} ({} of the population, \
         full-scale {})\n",
        fmt_count(auth.residual_spoofable),
        fmt_percent(auth.residual_rate()),
        fmt_count(auth.residual_spoofable * denominator),
    ));
    out.push_str(&format!(
        "  warm re-run DMARC-memo hit rate: {} ({} layer lookups served \
         without a wire query)\n\n",
        fmt_percent(warm_stats.auth_cache.dmarc_hit_rate()),
        fmt_count(
            (warm_stats.auth_cache.dmarc_hits - stats.auth_cache.dmarc_hits)
                + (warm_stats.auth_cache.sts_hits - stats.auth_cache.sts_hits)
        ),
    ));

    let mut tier_table = Table::new(
        "Stop attribution by deployment mix",
        &[
            "Mix",
            "Domains",
            "stop=spf",
            "stop=dmarc",
            "stop=mta-sts",
            "open",
            "Residual spoofable",
        ],
    );
    for mix in DeploymentMix::ALL {
        let tier = auth.tier(mix);
        tier_table.push_row(vec![
            mix.to_string(),
            fmt_count(tier.domains),
            fmt_percent(tier.stop_rate(StopLayer::Spf)),
            fmt_percent(tier.stop_rate(StopLayer::Dmarc)),
            fmt_percent(tier.stop_rate(StopLayer::MtaSts)),
            fmt_percent(tier.stop_rate(StopLayer::None)),
            fmt_count(tier.residual_spoofable),
        ]);
    }
    out.push_str(&tier_table.render());

    let mut exp = Experiment::new("Auth-stack matrix v2", "layered stop attribution");
    // The safety rail, in-run: the embedded SPF sub-matrix must be
    // byte-identical to what the v1 engine reports for the same inputs.
    #[allow(deprecated)]
    let (v1, _) = run_spoof_matrix(&resolver, &world.domains, &vantages, matrix_config);
    exp.plain(
        "v2 SPF sub-matrix byte-identical to the v1 spoof matrix",
        1.0,
        f64::from(
            serde_json::to_string(&auth.spf).expect("serializes")
                == serde_json::to_string(&v1).expect("serializes"),
        ),
    );
    exp.plain(
        "Warm re-run byte-identical with all layers memo-served",
        1.0,
        f64::from(
            auth == auth_warm && warm_stats.auth_cache.dmarc_hits > stats.auth_cache.dmarc_hits,
        ),
    );
    let conserved = DeploymentMix::ALL.iter().all(|&mix| {
        let tier = auth.tier(mix);
        tier.stops.total() == tier.domains * attacker_vantages
    });
    exp.plain(
        "Per-tier stop histograms conserve attacker-reachable cells",
        1.0,
        f64::from(conserved),
    );
    exp.plain(
        "Tier residuals sum to the population residual",
        1.0,
        f64::from(
            DeploymentMix::ALL
                .iter()
                .map(|&mix| auth.tier(mix).residual_spoofable)
                .sum::<u64>()
                == auth.residual_spoofable,
        ),
    );
    exp.plain(
        "Tier domain counts partition the population",
        1.0,
        f64::from(
            DeploymentMix::ALL
                .iter()
                .map(|&mix| auth.tier(mix).domains)
                .sum::<u64>()
                == auth.spf.domains,
        ),
    );
    // The paper's thesis, stacked: an *authorized* attacker (SPF pass
    // from shared infrastructure) is invisible to every aligned upper
    // layer, so v1's shared-pass cohort is a floor on the residual.
    exp.plain(
        "Every v1 shared-infrastructure pass stays residually spoofable",
        1.0,
        f64::from(auth.residual_spoofable >= v1.spoofable_shared),
    );
    exp.note(format!(
        "The stacked engine evaluated {} SPF cells plus {} DMARC and {} MTA-STS \
         layer lookups (cold run); stop attribution is pure per-cell \
         (`stop_layer`), so the whole report folds and merges exactly like v1.",
        stats.engine.evaluations, stats.auth_cache.dmarc_misses, stats.auth_cache.sts_misses,
    ));
    (out, exp)
}

/// The longitudinal trend pipeline behind `repro -- trends`: simulate
/// `epochs` virtual months of seeded zone churn over the calibrated
/// population and advance the [`ChurnEngine`] one epoch at a time. Each
/// epoch re-crawls only the churned and TTL-expired domains, folds
/// their old contributions out of the coverage map and spoof matrix and
/// the fresh ones in, and renders one trend row — the lazy-gatekeeper
/// rate as a time series from a fixed vantage set (DESIGN.md §12).
///
/// The in-run consistency flags pin the whole point of the design: the
/// final epoch's reports, weighted coverage, and spoof matrix are
/// byte-identical to a from-scratch recompute of the churned zone, and
/// every incremental epoch touched a strict subset of the population.
pub fn trends(
    denominator: u64,
    seed: u64,
    config: CrawlConfig,
    epochs: u64,
    churn_rate: f64,
) -> (String, Experiment) {
    const MONTH: Duration = Duration::from_secs(30 * 86_400);
    let use_compiled = config.backend.is_compiled();
    let population = Population::build(PopulationConfig {
        scale: Scale { denominator },
        seed,
    });
    let store = Arc::clone(&population.store);
    let (resolver, mut wire) = build_resolver(&store, config.backend);
    let mut walker = Walker::new(resolver);
    let lcfg = LongitudinalConfig::default().crawl(config);
    let engine = ChurnEngine::bootstrap(&walker, population.domains.clone(), lcfg);

    // The fixed observation points: chosen once from the bootstrap
    // coverage profile and held constant, so epoch-over-epoch matrix
    // deltas measure the population's drift, not the vantage set's.
    let vantages = select_vantages(
        &engine.weighted(),
        &[],
        DEFAULT_TOP_COVERAGE,
        DEFAULT_CONTROLS,
        seed,
    );
    let matrix_config = SpoofMatrixConfig::with_workers(config.workers)
        .compiled(use_compiled)
        .cached(config.backend.evaluator != Evaluator::Interpreted);
    engine.attach_matrix(walker.resolver(), vantages.clone(), matrix_config);

    let mut sim = ChurnSimulator::new(
        Arc::clone(&store),
        population.domains.clone(),
        ChurnConfig {
            rate: churn_rate,
            seed,
            ..ChurnConfig::default()
        },
    );

    let mut trend = Table::new(
        "Lazy-gatekeeper trend (simulated months)",
        &[
            "Epoch",
            "Events",
            "Recrawled",
            "Churned",
            "TTL-due",
            "SPF domains",
            "Lazy gatekeepers",
            "Rate",
        ],
    );
    let bootstrap_matrix = engine.matrix().expect("matrix attached");
    trend.push_row(vec![
        "0 (bootstrap)".to_string(),
        "-".to_string(),
        fmt_count(population.domains.len() as u64),
        "-".to_string(),
        "-".to_string(),
        fmt_count(engine.spf_domains()),
        fmt_count(bootstrap_matrix.lazy_gatekeepers),
        fmt_percent(bootstrap_matrix.lazy_gatekeeper_rate()),
    ]);

    let mut kind_census: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_events = 0u64;
    let mut total_recrawled = 0u64;
    let mut max_recrawled = 0u64;
    for epoch in 1..=epochs {
        let batch = sim.next_epoch();
        for event in &batch.events {
            *kind_census.entry(format!("{:?}", event.kind)).or_default() += 1;
        }
        total_events += batch.events.len() as u64;
        batch.apply(&store);
        if config.backend.transport != Transport::Memory {
            // Wire fleets hold deep zone shards from spawn time, so the
            // churned zone needs a fresh fleet + walker each epoch.
            let (fresh_resolver, fresh_wire) = build_resolver(&store, config.backend);
            walker = Walker::new(fresh_resolver);
            wire = fresh_wire;
        }
        // The zone already mutated above (and wire fleets resharded), so
        // the delta delivers the invalidation set with a no-op apply.
        engine.deliver(ZoneDelta::new(batch.domains(), || {}));
        let report = engine.step(&walker, MONTH * u32::try_from(epoch).unwrap_or(u32::MAX));
        let matrix = engine.matrix().expect("matrix attached");
        total_recrawled += report.recrawled;
        max_recrawled = max_recrawled.max(report.recrawled);
        trend.push_row(vec![
            epoch.to_string(),
            fmt_count(batch.events.len() as u64),
            fmt_count(report.recrawled),
            fmt_count(report.delta_domains),
            fmt_count(report.expired_domains),
            fmt_count(engine.spf_domains()),
            fmt_count(matrix.lazy_gatekeepers),
            fmt_percent(matrix.lazy_gatekeeper_rate()),
        ]);
    }
    drop(wire);

    let mut out = String::new();
    out.push_str("Longitudinal trends: TTL-driven incremental re-crawl over a churning zone\n");
    out.push_str(&format!(
        "  {} domains, {} epochs (virtual months) at {} churn/month, {} vantages\n",
        fmt_count(population.domains.len() as u64),
        epochs,
        fmt_percent(churn_rate),
        vantages.len(),
    ));
    out.push_str(&format!(
        "  {} churn events total; incremental re-crawls touched {} domain-epochs \
         (full rescans would have touched {})\n\n",
        fmt_count(total_events),
        fmt_count(total_recrawled),
        fmt_count(population.domains.len() as u64 * epochs),
    ));
    out.push_str(&trend.render());
    out.push('\n');
    let census: Vec<String> = kind_census
        .iter()
        .map(|(kind, count)| format!("{kind} ×{count}"))
        .collect();
    out.push_str(&format!("  churn mix: {}\n", census.join(", ")));
    if let Some((addr, weight)) = engine.weighted().max_coverage() {
        out.push_str(&format!(
            "  most-covered address after churn: {addr} ({} domains authorize it)\n",
            fmt_count(weight),
        ));
    }

    // The delta-exactness pins: recompute the churned zone from scratch
    // (in-memory — reports are backend-identical) and compare bytes.
    let mut exp = Experiment::new("Longitudinal trends", "churn engine vs full recompute");
    let fresh_walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
    let full = crawl(
        &fresh_walker,
        &population.domains,
        CrawlConfig::with_workers(config.workers),
    );
    let reports_identical = serde_json::to_string(&engine.reports()).expect("serialize reports")
        == serde_json::to_string(&full.reports).expect("serialize reports");
    let weighted_identical = serde_json::to_string(&engine.weighted()).expect("serialize coverage")
        == serde_json::to_string(&full.coverage.weighted()).expect("serialize coverage");
    let fresh_resolver: Arc<dyn Resolver> = Arc::new(ZoneResolver::new(Arc::clone(&store)));
    #[allow(deprecated)]
    let (fresh_matrix, _) = run_spoof_matrix(
        &fresh_resolver,
        &population.domains,
        &vantages,
        matrix_config,
    );
    let matrix_identical = serde_json::to_string(&engine.matrix().expect("matrix attached"))
        .expect("serialize matrix")
        == serde_json::to_string(&fresh_matrix).expect("serialize matrix");
    exp.plain(
        "Folded reports byte-identical to full recompute",
        1.0,
        f64::from(reports_identical),
    );
    exp.plain(
        "Folded coverage byte-identical to full recompute",
        1.0,
        f64::from(weighted_identical),
    );
    exp.plain(
        "Folded spoof matrix byte-identical to fresh matrix",
        1.0,
        f64::from(matrix_identical),
    );
    exp.plain(
        "Every incremental epoch re-crawled a strict subset",
        1.0,
        f64::from(epochs == 0 || max_recrawled < population.domains.len() as u64),
    );
    exp.note(format!(
        "{} epochs of {} churn re-crawled {} domain-epochs instead of {}; the \
         byte-identity flags above are the in-run smoke version of the exhaustive \
         pins in tests/proptest_churn.rs and tests/churn_stress.rs.",
        epochs,
        fmt_percent(churn_rate),
        fmt_count(total_recrawled),
        fmt_count(population.domains.len() as u64 * epochs),
    ));
    (out, exp)
}

/// Everything the verdict service needs from a prepared world: the
/// shared zone store, the population in rank order, and the attacker
/// vantage addresses (top-coverage first) traffic mixes target.
///
/// Built once by [`service_lab`] and shared by `repro -- serve`,
/// `repro -- traffic`, and the `service_throughput` bench, so all three
/// serve the same world the spoof matrix scored.
pub struct ServiceLab {
    /// The merged population + hosting zone store.
    pub store: Arc<ZoneStore>,
    /// Population domains in rank order (hot-set sampling relies on it).
    pub domains: Vec<spf_types::DomainName>,
    /// Vantage addresses, shared-coverage first — the IPs attacker-burst
    /// traffic queries from.
    pub vantage_ips: Vec<std::net::IpAddr>,
}

/// Build the verdict service's world at `1:denominator` scale: generate
/// the spoof world, run one coverage crawl, and select the overlap
/// engine's vantage addresses.
pub fn service_lab(denominator: u64, seed: u64, workers: usize) -> ServiceLab {
    let world = build_spoof_world(Scale { denominator }, seed);
    let resolver = ZoneResolver::new(Arc::clone(&world.store));
    let walker = Walker::new(resolver);
    let output = crawl(&walker, &world.domains, CrawlConfig::with_workers(workers));
    let weighted = output.coverage.into_weighted();
    let provider_vantages: Vec<ProviderVantage> = world
        .providers
        .iter()
        .map(|p| ProviderVantage {
            label: format!("hosting{}", p.id),
            web: p.web_ip,
            mta: p.mta_ip,
        })
        .collect();
    let vantages = select_vantages(
        &weighted,
        &provider_vantages,
        DEFAULT_TOP_COVERAGE,
        DEFAULT_CONTROLS,
        seed,
    );
    ServiceLab {
        store: Arc::clone(&world.store),
        domains: world.domains,
        vantage_ips: vantages
            .iter()
            .map(|v| std::net::IpAddr::V4(v.ip))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Repro {
        prepare(5_000, 0x5bf1_2023, 4)
    }

    #[test]
    fn all_pipelines_run_at_tiny_scale() {
        let r = quick();
        let (t1, e1) = table1(&r);
        assert!(t1.render().contains("Our study (measured)"));
        assert!(e1.rows.len() >= 4);
        let (f1, _) = figure1(&r);
        assert!(f1.render().contains("SPF"));
        let (f2, e2) = figure2(&r);
        assert!(f2.contains("Syntax Error"));
        assert_eq!(e2.rows.len(), 9);
        let (f3, _) = figure3(&r);
        assert!(f3.contains("No SPF Record"));
        let (f4, e4) = figure4(&r);
        assert!(f4.render().contains("fathost"));
        assert!(e4.rows.len() >= 3);
        let (t3, _) = table3(&r);
        assert!(t3.render().contains("/16"));
        let (t4, e4b) = table4(&r);
        assert!(t4.render().contains("spf.protection.outlook.com"));
        assert!(e4b.rows.len() == 40);
        let (f5, e5) = figure5(&r);
        assert!(f5.contains("2^19"));
        assert!(e5.rows.len() == 3);
        let (f6, _) = figure6(&r);
        assert!(f6.contains(">10"));
        let (f7, e7) = figure7(&r);
        assert!(f7.contains("/32"));
        assert!(
            e7.worst_relative_error() < 1e-9,
            "figure 7 shape flags must hold"
        );
        let (f8, _) = figure8(&r);
        assert!(f8.contains("2^20"));
        let (ex, _) = extras(&r);
        assert!(ex.render().contains("PTR mechanism"));
        let (ov, eov) = overlap(&r);
        assert!(ov.contains("most-spoofable address"));
        assert!(ov.contains("Provider concentration"));
        assert!(
            eov.worst_relative_error() < 1e-9,
            "overlap consistency flags must hold"
        );
    }

    #[test]
    fn overlap_profile_survives_the_scan() {
        let r = quick();
        assert!(r.overlap_boundaries > 0);
        let report =
            OverlapReport::compute(&r.overlap, &r.eco, r.all.with_spf, DEFAULT_PROVIDER_ROWS);
        // The calibrated population's biggest include trees dominate the
        // union, and plenty of domains share the hottest address.
        assert!(report.max_coverage_domains > 100);
        assert!(report.total_covered > 1_000_000);
        assert_eq!(report.providers.len(), DEFAULT_PROVIDER_ROWS);
        assert!(report.providers[0].covered_ips >= report.providers[1].covered_ips);
    }

    #[test]
    fn table2_reduces_errors() {
        let r = quick();
        let before = r.all.total_errors();
        let (t2, _, outcome, rescan_stats) = table2(&r, 4);
        assert!(rescan_stats.domains > 0);
        assert!(t2.render().contains("Total Errors"));
        assert!(outcome.sent > 0);
        // Rescan must show fewer or equal errors.
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&r.population.store)));
        let rescan = crawl(&walker, &r.population.domains, CrawlConfig::with_workers(4));
        let after = ScanAggregates::compute(&rescan.reports);
        assert!(after.total_errors() <= before);
    }

    #[test]
    fn wire_mode_prepare_matches_in_memory() {
        let mem = quick();
        for backend in [Backend::wire(2), Backend::wire_async(2)] {
            let wire = prepare_with(
                5_000,
                0x5bf1_2023,
                CrawlConfig::with_workers(4).backend(backend),
            );
            let run = wire.wire.as_ref().expect("wire mode carries its substrate");
            let snap = run.snapshot();
            assert!(
                snap.wire_queries > 0,
                "{backend}: crawl must hit the sockets: {snap:?}"
            );
            assert!(run.fleet.answered() > 0);
            // The `[wire]` line renders through the shared formatter.
            let line = run.stats(wire.stats.domains).render();
            assert!(line.starts_with("[wire] amplification="), "{line}");
            assert!(line.contains("fleet_udp="), "{line}");
            // Every substrate produces byte-identical report streams.
            assert_eq!(
                serde_json::to_string(&mem.reports).unwrap(),
                serde_json::to_string(&wire.reports).unwrap(),
                "{backend} diverged from memory"
            );
        }
    }

    #[test]
    fn table2_rescan_honors_wire_mode() {
        let r = prepare_with(
            20_000,
            0x5bf1_2023,
            CrawlConfig::with_workers(2).backend(Backend::wire(2)),
        );
        let before = r.all.total_errors();
        let (t2, _, outcome, rescan_stats) = table2(&r, 2);
        assert!(t2.render().contains("Total Errors"));
        assert!(outcome.sent > 0);
        assert_eq!(rescan_stats.domains, r.reports.len() as u64);
        let _ = before;
    }

    #[test]
    fn spoof_matrix_runs_and_matches_table5_labels() {
        let (section, exp) = spoof_matrix(20_000, 0x5bf1_2023, CrawlConfig::with_workers(4));
        assert!(section.contains("Spoof matrix"));
        assert!(section.contains("lazy-gatekeeper rate"));
        assert!(section.contains("Verdicts by vantage"));
        assert!(section.contains("Table 5 replay"));
        // Every flag (five Table 5 labels + the three consistency
        // checks) must hold exactly.
        assert!(
            exp.worst_relative_error() < 1e-9,
            "spoof-matrix flags must hold"
        );
    }

    #[test]
    fn spoof_matrix_compiled_backend_reports_and_agrees() {
        let (section, exp) = spoof_matrix(
            20_000,
            0x5bf1_2023,
            CrawlConfig::with_workers(4).backend(Backend::memory().evaluator(Evaluator::Compiled)),
        );
        assert!(section.contains("[compiler]"));
        assert!(section.contains("compiled backend:"));
        // The compiled run carries every plain-run flag plus the
        // compiled-vs-interpreted sample identity; all must hold.
        assert!(
            exp.rows
                .iter()
                .any(|c| c.label.contains("Compiled and interpreted")),
            "compiled run must pin backend equality"
        );
        assert!(
            exp.worst_relative_error() < 1e-9,
            "compiled spoof-matrix flags must hold"
        );
    }

    #[test]
    fn spoof_matrix_honors_wire_mode() {
        let (section, exp) = spoof_matrix(
            100_000,
            0x5bf1_2023,
            CrawlConfig::with_workers(2).backend(Backend::wire(2)),
        );
        assert!(section.contains("Spoof matrix"));
        assert!(exp.worst_relative_error() < 1e-9);
    }

    #[test]
    fn table5_runs_over_tcp() {
        let (t5, e5) = table5(1_000);
        let rendered = t5.render();
        assert!(rendered.contains("SMTP, MTA"));
        assert!(rendered.contains("None"));
        // All five success labels must match the paper exactly.
        let label_rows: Vec<&Comparison> = e5
            .rows
            .iter()
            .filter(|c| c.label.contains("success matches"))
            .collect();
        assert_eq!(label_rows.len(), 5);
        assert!(label_rows.iter().all(|c| c.measured == 1.0));
    }

    use spf_report::Comparison;
}
