//! The bench-regression guard: compare a fresh quick-mode bench run
//! against the committed `BENCH_*.json` baselines.
//!
//! Every bench report carries `quick_points` — throughput measurements of
//! a small fixed configuration set at quick scale, taken with the same
//! plain best-of-N loop in both full and quick runs, so a CI smoke run is
//! directly comparable to the committed artifact. `scripts/bench_guard.sh`
//! re-runs the quick benches with `BENCH_GUARD_BASELINE` pointing at the
//! committed JSON; a matched configuration more than
//! [`DEFAULT_TOLERANCE`] below its baseline fails the job.
//!
//! The tolerance is deliberately loose (30 %): quick populations are
//! small and shared CI hosts are noisy, so the gate catches structural
//! regressions (a lock back on the hot path, dispatch gone quadratic),
//! not single-digit jitter. Override with `BENCH_GUARD_TOLERANCE`.

use serde::{Deserialize, Serialize};

/// A regression is flagged when fresh throughput drops more than this
/// fraction below the committed baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// One comparable quick-mode measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardPoint {
    /// Configuration key, e.g. `w4_s16_b64` (crawl) or `w4_v2` (wire).
    pub key: String,
    /// Crawl throughput measured for that configuration.
    pub domains_per_sec: f64,
}

/// The slice of a bench report the guard reads (unknown fields in the
/// JSON are ignored).
#[derive(Debug, Deserialize)]
struct BaselineDoc {
    quick_points: Vec<GuardPoint>,
}

/// Parse a `BENCH_GUARD_TOLERANCE`-style override; out-of-range or
/// unparsable values fall back to [`DEFAULT_TOLERANCE`].
pub fn parse_tolerance(raw: Option<&str>) -> f64 {
    raw.and_then(|v| v.parse().ok())
        .filter(|t: &f64| *t > 0.0 && *t < 1.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// The tolerance, honoring a `BENCH_GUARD_TOLERANCE` override.
pub fn tolerance_from_env() -> f64 {
    parse_tolerance(std::env::var("BENCH_GUARD_TOLERANCE").ok().as_deref())
}

/// Best-of-`runs` guard point for one configuration: the benches hand
/// every timed crawl through this one helper so the committed baselines
/// and fresh CI runs are comparable by construction.
pub fn quick_point(
    key: impl Into<String>,
    runs: usize,
    mut domains_per_sec: impl FnMut() -> f64,
) -> GuardPoint {
    let best = (0..runs.max(1))
        .map(|_| domains_per_sec())
        .fold(0.0f64, f64::max);
    GuardPoint {
        key: key.into(),
        domains_per_sec: best,
    }
}

/// Compare `fresh` quick points against the baseline file at
/// `baseline_path`.
///
/// Returns `Ok(log_lines)` when every matched configuration is within
/// `tolerance` of its baseline (configurations present on only one side
/// are reported, not failed, so the matrix can evolve), and
/// `Err(failures)` listing each regressed configuration otherwise. A
/// missing or unreadable baseline is `Ok` with a note — the first run on
/// a branch bootstraps the artifact instead of failing it.
pub fn check_against_baseline(
    baseline_path: &str,
    fresh: &[GuardPoint],
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let raw = match std::fs::read_to_string(baseline_path) {
        Ok(raw) => raw,
        Err(e) => {
            return Ok(vec![format!(
                "bench_guard: no baseline at {baseline_path} ({e}); nothing to compare"
            )])
        }
    };
    let baseline: BaselineDoc = match serde_json::from_str(&raw) {
        Ok(doc) => doc,
        Err(e) => {
            // A baseline from before the guard existed has no
            // quick_points; treat it like a missing baseline.
            return Ok(vec![format!(
                "bench_guard: {baseline_path} has no readable quick_points ({e}); skipping"
            )]);
        }
    };
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for point in fresh {
        let Some(base) = baseline.quick_points.iter().find(|b| b.key == point.key) else {
            lines.push(format!(
                "bench_guard: {} has no baseline point (new configuration)",
                point.key
            ));
            continue;
        };
        let floor = base.domains_per_sec * (1.0 - tolerance);
        let verdict = format!(
            "bench_guard: {}: {:.0} domains/s vs baseline {:.0} (floor {:.0})",
            point.key, point.domains_per_sec, base.domains_per_sec, floor
        );
        if point.domains_per_sec < floor {
            failures.push(format!("{verdict} — REGRESSION"));
        } else {
            lines.push(format!("{verdict} — ok"));
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

/// Guard entry point for the benches: when `BENCH_GUARD_BASELINE` names a
/// baseline file, compare `fresh` against it and *exit the process* with
/// status 1 on a regression. Without the variable this is a no-op, so
/// plain bench runs never gate themselves.
pub fn enforce_from_env(fresh: &[GuardPoint]) {
    let Ok(baseline_path) = std::env::var("BENCH_GUARD_BASELINE") else {
        return;
    };
    let tolerance = tolerance_from_env();
    match check_against_baseline(&baseline_path, fresh, tolerance) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
        }
        Err(failures) => {
            for line in &failures {
                eprintln!("{line}");
            }
            eprintln!(
                "bench_guard: {} configuration(s) regressed more than {:.0} % below {}",
                failures.len(),
                tolerance * 100.0,
                baseline_path
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_baseline(name: &str, points: &[GuardPoint]) -> std::path::PathBuf {
        #[derive(Serialize)]
        struct Doc {
            bench: String,
            quick_points: Vec<GuardPoint>,
        }
        let path = std::env::temp_dir().join(name);
        let doc = Doc {
            bench: "test".into(),
            quick_points: points.to_vec(),
        };
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();
        path
    }

    fn point(key: &str, dps: f64) -> GuardPoint {
        GuardPoint {
            key: key.into(),
            domains_per_sec: dps,
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let path = write_baseline(
            "bench_guard_ok.json",
            &[point("w1_s1_b1", 100_000.0), point("w4_s16_b64", 300_000.0)],
        );
        let fresh = [point("w1_s1_b1", 80_000.0), point("w4_s16_b64", 290_000.0)];
        let lines = check_against_baseline(path.to_str().unwrap(), &fresh, 0.30).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.ends_with("ok")));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let path = write_baseline("bench_guard_reg.json", &[point("w4_s16_b64", 300_000.0)]);
        let fresh = [point("w4_s16_b64", 150_000.0)];
        let failures = check_against_baseline(path.to_str().unwrap(), &fresh, 0.30).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("REGRESSION"));
        // The same drop passes under a looser tolerance.
        assert!(check_against_baseline(path.to_str().unwrap(), &fresh, 0.60).is_ok());
    }

    #[test]
    fn missing_baseline_and_unmatched_keys_do_not_fail() {
        let fresh = [point("w1_s1_b1", 1.0)];
        let lines = check_against_baseline("/nonexistent/base.json", &fresh, 0.30).unwrap();
        assert!(lines[0].contains("no baseline"));
        let path = write_baseline("bench_guard_other.json", &[point("other_key", 10.0)]);
        let lines = check_against_baseline(path.to_str().unwrap(), &fresh, 0.30).unwrap();
        assert!(lines[0].contains("new configuration"));
    }

    #[test]
    fn pre_guard_baseline_without_quick_points_is_skipped() {
        let path = std::env::temp_dir().join("bench_guard_old.json");
        std::fs::write(&path, r#"{"bench":"old","results":[]}"#).unwrap();
        let fresh = [point("w1_s1_b1", 1.0)];
        let lines = check_against_baseline(path.to_str().unwrap(), &fresh, 0.30).unwrap();
        assert!(lines[0].contains("skipping"));
    }

    #[test]
    fn tolerance_parsing_bounds() {
        // The pure parser is tested directly so the suite stays
        // independent of whatever BENCH_GUARD_TOLERANCE the ambient
        // environment carries (e.g. a user running ci_local.sh with an
        // override exported).
        assert_eq!(parse_tolerance(None), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("0.5")), 0.5);
        assert_eq!(parse_tolerance(Some("1.5")), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("0")), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("nope")), DEFAULT_TOLERANCE);
    }

    #[test]
    fn quick_point_keeps_the_best_run() {
        let mut runs = [100.0, 300.0, 200.0].into_iter();
        let p = quick_point("w1_s1_b1", 3, move || runs.next().unwrap());
        assert_eq!(p.key, "w1_s1_b1");
        assert_eq!(p.domains_per_sec, 300.0);
        // A degenerate run count still measures once.
        assert_eq!(quick_point("k", 0, || 42.0).domains_per_sec, 42.0);
    }
}
