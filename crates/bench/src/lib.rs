//! # spf-bench — experiment regeneration pipelines and criterion benches
//!
//! [`experiments`] holds one pipeline per table/figure of the paper; the
//! `repro` binary (workspace root) drives them and writes EXPERIMENTS.md,
//! while the criterion benches in `benches/` measure the building blocks
//! (parser, evaluator, IP-set arithmetic, DNS codec, crawl, SMTP) and the
//! ablations called out in DESIGN.md §5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod guard;

#[allow(deprecated)]
pub use experiments::spoof_matrix_with;
pub use experiments::{
    build_resolver, extras, figure1, figure2, figure3, figure4, figure5, figure6, figure7, figure8,
    overlap, prepare, prepare_with, service_lab, spoof_matrix, spoof_matrix_stacked, table1,
    table2, table3, table4, table5, trends, Repro, ServiceLab, WireRun, WireRunStats,
};
