//! The multi-worker crawl loop (§4.1 of the paper).
//!
//! The study distributed DNS requests across 150 rate-limited servers and
//! deduplicated work through a record cache. Here a pool of worker threads
//! pulls rank-indexed *batches* of domains from a bounded crossbeam
//! channel and runs the full per-domain analysis; the [`Walker`]'s sharded
//! memo cache is shared across workers, so each provider include is
//! resolved exactly once no matter how many customers reference it.
//!
//! Dispatch is *batched and bounded*: a feeder thread slices the domain
//! list into [`CrawlConfig::batch_size`]-sized chunks and blocks once
//! `2 × workers` batches are queued. Compared to the old design — which
//! preloaded a clone of the entire domain list into an unbounded channel —
//! queued work is O(workers × batch) instead of O(population), and channel
//! synchronization is paid once per batch instead of once per domain.
//! Results are placed by rank into a preallocated slot table as they
//! arrive, so reports come back in input order and are bit-identical for
//! every worker/shard/batch configuration (each report is a deterministic
//! function of the zone alone).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use serde::{Deserialize, Serialize};
use spf_analyzer::{analyze_domain, DomainReport, Walker};
use spf_dns::Resolver;
use spf_types::{Backend, CoverageMap, DomainName, StatItem, Stats, Transport};

/// Default work-batch size; the `crawl_scaling` bench sweep (BENCH_2.json)
/// showed throughput flat from 16 upward with the knee below 16, so 64
/// keeps per-batch channel overhead negligible without hurting tail
/// balance at small populations.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// Default server-shard count for wire-mode crawls (re-exported from
/// `spf-types`, where the [`Backend`] selection now lives).
pub use spf_types::DEFAULT_WIRE_SERVERS;

/// Which resolver substrate a crawl runs against.
///
/// Superseded by [`Transport`] inside [`Backend`]: the old two-way
/// memory/wire split cannot name the epoll reactor engine. Kept only so
/// pre-Backend call sites keep compiling through the deprecated
/// [`CrawlConfig::mode`] shim.
#[deprecated(note = "use spf_types::Transport via CrawlConfig::backend")]
#[allow(deprecated)] // the derives reference the deprecated variants
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlMode {
    /// Resolve in-process against the `ZoneStore` (no sockets) — the
    /// fastest path and the default.
    #[default]
    InMemory,
    /// Resolve over real UDP/TCP sockets against a hash-sharded
    /// authoritative server fleet (`spf_dns::fleet`), exercising the
    /// socket pool, single-flight coalescing, TTL cache, truncation
    /// fallback and retry budget at crawl scale.
    Wire,
}

/// Crawl configuration.
///
/// The crawl loop itself is transport-agnostic (it only sees a
/// [`Resolver`] through the walker); the [`Backend`] travels here so the
/// pipeline assemblers — `bench::prepare`, the `repro` CLI, the stress
/// suites — build the right stack. Under a zero-fault profile every
/// transport produces byte-identical report streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// Number of worker threads (the paper used 150 query endpoints; CPU
    /// workers are the in-process analogue).
    pub workers: usize,
    /// Domains handed to a worker per channel operation (clamped to ≥ 1).
    /// Larger batches amortize channel locking; smaller batches balance
    /// the tail better. Default [`DEFAULT_BATCH_SIZE`].
    pub batch_size: usize,
    /// The engine selection (transport × shard count × evaluator) the
    /// pipeline assembles for this crawl.
    pub backend: Backend,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            workers: 8,
            batch_size: DEFAULT_BATCH_SIZE,
            backend: Backend::default(),
        }
    }
}

impl CrawlConfig {
    /// A config with `workers` threads and the default batch size.
    pub fn with_workers(workers: usize) -> Self {
        CrawlConfig {
            workers,
            ..CrawlConfig::default()
        }
    }

    /// Builder-style override of [`CrawlConfig::backend`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style override of [`CrawlConfig::batch_size`].
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// A blocking-wire config with `workers` threads and `servers`
    /// shards. Thin shim over [`CrawlConfig::backend`].
    #[deprecated(note = "use CrawlConfig::with_workers(w).backend(Backend::wire(servers))")]
    pub fn wire(workers: usize, servers: usize) -> Self {
        CrawlConfig::with_workers(workers).backend(Backend::wire(servers))
    }

    /// Builder-style override of the resolver substrate. Thin shim over
    /// [`CrawlConfig::backend`]; the mode maps onto [`Transport`]
    /// (`Wire` means the blocking engine).
    #[deprecated(note = "use CrawlConfig::backend with a spf_types::Transport")]
    #[allow(deprecated)]
    pub fn mode(mut self, mode: CrawlMode) -> Self {
        self.backend.transport = match mode {
            CrawlMode::InMemory => Transport::Memory,
            CrawlMode::Wire => Transport::WireBlocking,
        };
        self
    }

    /// Builder-style override of the wire shard count. Thin shim over
    /// [`CrawlConfig::backend`].
    #[deprecated(note = "use CrawlConfig::backend with Backend::servers")]
    pub fn wire_servers(mut self, servers: usize) -> Self {
        self.backend.servers = servers.max(1);
        self
    }
}

/// Observability counters for one crawl, printed by the `repro` CLI's
/// throughput line and recorded by the `crawl_scaling` bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Domains crawled.
    pub domains: u64,
    /// Wall-clock seconds the crawl took.
    pub elapsed_secs: f64,
    /// Walker memo-cache hits during this crawl (delta, not lifetime).
    pub cache_hits: u64,
    /// Walker memo-cache misses during this crawl (delta, not lifetime).
    pub cache_misses: u64,
    /// Highest number of dispatched-but-unfinished domains observed —
    /// bounded by `(2 × workers + workers + 1) × batch_size`, the proof
    /// that dispatch memory no longer grows with population size.
    pub peak_queue_depth: usize,
    /// Batches the feeder dispatched.
    pub batches: u64,
}

impl CrawlStats {
    /// Crawl throughput in domains per second.
    pub fn domains_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.domains as f64 / self.elapsed_secs
        }
    }

    /// Memo-cache hits as a fraction of probes during this crawl.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

impl Stats for CrawlStats {
    fn scope(&self) -> &'static str {
        "throughput"
    }

    fn items(&self) -> Vec<StatItem> {
        vec![
            StatItem::per_sec("domains", self.domains_per_sec()),
            StatItem::count("crawled", self.domains),
            StatItem::float("elapsed_s", self.elapsed_secs),
            StatItem::percent("cache_hit", self.cache_hit_rate()),
            StatItem::count("hits", self.cache_hits),
            StatItem::count("misses", self.cache_misses),
            StatItem::count("peak_queue", self.peak_queue_depth as u64),
            StatItem::count("batches", self.batches),
        ]
    }
}

/// A crawl's output: per-domain reports in input (rank) order plus timing.
#[derive(Debug)]
pub struct CrawlOutput {
    /// One report per input domain, in input order (index = Tranco rank-1).
    pub reports: Vec<DomainReport>,
    /// Wall-clock duration of the crawl.
    pub elapsed: Duration,
    /// Throughput and queue counters for this crawl.
    pub stats: CrawlStats,
    /// The population's address-space coverage, accumulated per worker
    /// during the crawl and merged on the way out: every SPF-bearing
    /// domain's flattened range set contributes its boundary deltas, so
    /// `coverage.into_weighted()` answers "how many domains authorize
    /// each address" without revisiting a single report (see
    /// [`crate::overlap`]).
    pub coverage: CoverageMap,
}

/// Crawl `domains` through `walker` with a worker pool.
///
/// Reports come back in input order, so the caller can treat the index as
/// the Tranco rank (the top-1M cut of Table 1 is `&reports[..1_000_000]`).
/// The report vector is bit-identical across every `workers`/`batch_size`/
/// cache-shard configuration.
pub fn crawl<R: Resolver>(
    walker: &Walker<R>,
    domains: &[DomainName],
    config: CrawlConfig,
) -> CrawlOutput {
    let started = Instant::now();
    let workers = config.workers.max(1);
    let batch_size = config.batch_size.max(1);
    let cache_before = walker.cache_stats();

    // In-flight work accounting (dispatched, not yet analyzed).
    let queue_depth = AtomicUsize::new(0);
    let peak_depth = AtomicUsize::new(0);
    let batches = AtomicUsize::new(0);

    let mut slots: Vec<Option<DomainReport>> = (0..domains.len()).map(|_| None).collect();
    let mut coverage = CoverageMap::new();

    {
        // Feeder blocks once 2×workers batches queue up, so dispatched-but-
        // unprocessed work stays O(workers × batch) however large the
        // population is.
        let (work_tx, work_rx) = channel::bounded::<Vec<(usize, DomainName)>>(workers * 2);
        // Results travel in batches too: one channel operation per work
        // batch instead of per domain, drained live by the collector below.
        let (result_tx, result_rx) = channel::unbounded::<Vec<(usize, DomainReport)>>();
        // Each worker folds the flattened range sets it analyzes into a
        // bounded local accumulator and ships it exactly once, at worker
        // exit. Deltas form a commutative monoid, so the merged coverage
        // is identical however domains were batched across workers
        // (DESIGN.md §7).
        let (coverage_tx, coverage_rx) = channel::unbounded::<CoverageMap>();
        let queue_depth = &queue_depth;
        let peak_depth = &peak_depth;
        let batches = &batches;

        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut next_rank = 0usize;
                for chunk in domains.chunks(batch_size) {
                    let batch: Vec<(usize, DomainName)> = chunk
                        .iter()
                        .cloned()
                        .enumerate()
                        .map(|(i, d)| (next_rank + i, d))
                        .collect();
                    next_rank += chunk.len();
                    let depth = queue_depth.fetch_add(batch.len(), Ordering::Relaxed) + batch.len();
                    peak_depth.fetch_max(depth, Ordering::Relaxed);
                    batches.fetch_add(1, Ordering::Relaxed);
                    if work_tx.send(batch).is_err() {
                        return;
                    }
                }
            });
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let result_tx = result_tx.clone();
                let coverage_tx = coverage_tx.clone();
                scope.spawn(move || {
                    let mut local_coverage = CoverageMap::new();
                    while let Ok(batch) = work_rx.recv() {
                        let mut results = Vec::with_capacity(batch.len());
                        for (index, domain) in batch {
                            let report = analyze_domain(walker, &domain);
                            queue_depth.fetch_sub(1, Ordering::Relaxed);
                            // Only SPF-bearing domains authorize space —
                            // the same population Figure 5 counts.
                            if report.has_spf {
                                if let Some(record) = report.record.as_ref() {
                                    local_coverage.add_set(&record.ips);
                                }
                            }
                            results.push((index, report));
                        }
                        if result_tx.send(results).is_err() {
                            return;
                        }
                    }
                    let _ = coverage_tx.send(local_coverage);
                });
            }
            drop(work_rx);
            drop(result_tx);
            drop(coverage_tx);
            // Place results by rank as they arrive; no post-hoc sort.
            for results in result_rx.iter() {
                for (index, report) in results {
                    slots[index] = Some(report);
                }
            }
            // All workers have exited once the result channel closes;
            // merge their accumulators (order-independent).
            for worker_coverage in coverage_rx.iter() {
                coverage.merge(worker_coverage);
            }
        });
    }

    let reports: Vec<DomainReport> = slots
        .into_iter()
        .map(|slot| slot.expect("every dispatched domain reports back"))
        .collect();
    let elapsed = started.elapsed();
    let cache_after = walker.cache_stats();
    let stats = CrawlStats {
        domains: reports.len() as u64,
        elapsed_secs: elapsed.as_secs_f64(),
        cache_hits: cache_after.hits - cache_before.hits,
        cache_misses: cache_after.misses - cache_before.misses,
        peak_queue_depth: peak_depth.load(Ordering::Relaxed),
        batches: batches.load(Ordering::Relaxed) as u64,
    };
    CrawlOutput {
        reports,
        elapsed,
        stats,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_dns::{CountingResolver, ZoneResolver, ZoneStore};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn build_world(n: usize) -> (Arc<ZoneStore>, Vec<DomainName>) {
        let store = Arc::new(ZoneStore::new());
        // One shared provider plus n customers.
        store.add_txt(
            &dom("spf.provider.example"),
            "v=spf1 ip4:198.51.100.0/24 -all",
        );
        let mut domains = Vec::new();
        for i in 0..n {
            let d = dom(&format!("customer{i}.example"));
            store.add_txt(&d, "v=spf1 include:spf.provider.example -all");
            store.add_mx(&d, 10, &dom("mx.provider.example"));
            domains.push(d);
        }
        store.add_a(&dom("mx.provider.example"), Ipv4Addr::new(198, 51, 100, 25));
        (store, domains)
    }

    #[test]
    fn crawl_preserves_input_order() {
        let (store, domains) = build_world(50);
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &domains, CrawlConfig::with_workers(4));
        assert_eq!(out.reports.len(), 50);
        for (i, r) in out.reports.iter().enumerate() {
            assert_eq!(r.domain, domains[i]);
        }
    }

    #[test]
    fn crawl_results_identical_across_worker_counts() {
        let (store, domains) = build_world(40);
        let run = |workers| {
            let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
            crawl(&walker, &domains, CrawlConfig::with_workers(workers))
                .reports
                .iter()
                .map(|r| (r.domain.clone(), r.has_spf, r.allowed_ip_count()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn crawl_results_identical_across_batch_sizes() {
        let (store, domains) = build_world(40);
        let run = |batch: usize| {
            let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
            crawl(
                &walker,
                &domains,
                CrawlConfig::with_workers(4).batch_size(batch),
            )
            .reports
            .iter()
            .map(|r| (r.domain.clone(), r.has_spf, r.allowed_ip_count()))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(7));
        assert_eq!(run(1), run(256)); // one batch larger than the input
    }

    #[test]
    fn shared_cache_deduplicates_provider_lookups() {
        let (store, domains) = build_world(100);
        let counting = CountingResolver::new(ZoneResolver::new(store));
        let stats = counting.stats();
        let walker = Walker::new(counting);
        crawl(&walker, &domains, CrawlConfig::with_workers(4));
        let queries = stats.queries.load(std::sync::atomic::Ordering::Relaxed);
        // Per customer: TXT + MX + SPF(99) + _dmarc TXT = 4 queries, plus a
        // handful for the shared provider (racing workers may fetch it more
        // than once before the first result lands in the cache).
        assert!(queries < 100 * 4 + 20, "queries = {queries}");
    }

    #[test]
    fn crawl_stats_track_cache_and_queue() {
        let (store, domains) = build_world(50);
        let walker = Walker::new(ZoneResolver::new(store));
        let config = CrawlConfig::with_workers(2).batch_size(8);
        let out = crawl(&walker, &domains, config);
        let stats = out.stats;
        assert_eq!(stats.domains, 50);
        // Every domain probes the cache at least once (its own root miss),
        // and the 50 customers share one provider include → hits (racing
        // workers may take a handful of extra misses before the first
        // provider analysis lands).
        assert!(stats.cache_misses >= 50, "misses = {}", stats.cache_misses);
        assert!(stats.cache_hits >= 40, "hits = {}", stats.cache_hits);
        assert!(stats.cache_hit_rate() > 0.0 && stats.cache_hit_rate() < 1.0);
        assert_eq!(stats.batches, 50u64.div_ceil(8));
        // Queue depth is bounded by the dispatch window, not the population:
        // 2×workers queued batches + workers in-hand batches + the feeder's
        // one in-flight batch.
        let bound = (2 * 2 + 2 + 1) * 8;
        assert!(stats.peak_queue_depth >= 1);
        assert!(
            stats.peak_queue_depth <= bound,
            "peak {} > bound {bound}",
            stats.peak_queue_depth
        );
        assert!(stats.domains_per_sec() > 0.0);
    }

    #[test]
    fn stats_are_deltas_not_lifetime_totals() {
        let (store, domains) = build_world(20);
        let walker = Walker::new(ZoneResolver::new(store));
        let first = crawl(&walker, &domains, CrawlConfig::with_workers(1));
        // A warm second pass over the same walker: every root is already
        // cached, so misses stay at zero for the crawl's delta.
        let second = crawl(&walker, &domains, CrawlConfig::with_workers(1));
        assert!(first.stats.cache_misses > 0);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, 20);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_map_onto_backend() {
        // The pre-Backend constructors must keep meaning exactly what
        // they used to: wire() selects the blocking engine, mode()
        // round-trips both CrawlMode arms, wire_servers() clamps.
        assert_eq!(
            CrawlConfig::wire(3, 2),
            CrawlConfig::with_workers(3).backend(Backend::wire(2))
        );
        assert_eq!(
            CrawlConfig::default()
                .mode(CrawlMode::Wire)
                .backend
                .transport,
            Transport::WireBlocking
        );
        assert_eq!(
            CrawlConfig::default()
                .mode(CrawlMode::InMemory)
                .backend
                .transport,
            Transport::Memory
        );
        assert_eq!(CrawlConfig::default().wire_servers(0).backend.servers, 1);
        assert_eq!(DEFAULT_WIRE_SERVERS, spf_types::DEFAULT_WIRE_SERVERS);
    }

    #[test]
    fn empty_input() {
        let store = Arc::new(ZoneStore::new());
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &[], CrawlConfig::default());
        assert!(out.reports.is_empty());
        assert_eq!(out.stats.domains, 0);
        assert_eq!(out.stats.batches, 0);
        assert!(out.coverage.is_empty());
    }

    #[test]
    fn coverage_merges_identically_across_workers() {
        // Every customer includes the same /24, so the merged coverage is
        // one range at weight = population — and it must come out the
        // same whether one worker saw everything or eight split it.
        let (store, domains) = build_world(40);
        let run = |workers: usize| {
            let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
            let out = crawl(
                &walker,
                &domains,
                CrawlConfig::with_workers(workers).batch_size(4),
            );
            assert_eq!(out.coverage.set_count(), 40);
            out.coverage.into_weighted()
        };
        let reference = run(1);
        assert_eq!(reference.max_weight(), 40);
        assert_eq!(reference.total_covered(), 256);
        assert_eq!(reference, run(8));
    }
}
