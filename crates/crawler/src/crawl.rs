//! The multi-worker crawl loop (§4.1 of the paper).
//!
//! The study distributed DNS requests across 150 rate-limited servers and
//! deduplicated work through a record cache. Here a pool of worker threads
//! pulls domains from a crossbeam channel and runs the full per-domain
//! analysis; the [`Walker`]'s memo cache is shared across workers, so each
//! provider include is resolved exactly once no matter how many customers
//! reference it.

use std::time::{Duration, Instant};

use crossbeam::channel;
use serde::{Deserialize, Serialize};
use spf_analyzer::{analyze_domain, DomainReport, Walker};
use spf_dns::Resolver;
use spf_types::DomainName;

/// Crawl configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// Number of worker threads (the paper used 150 query endpoints; CPU
    /// workers are the in-process analogue).
    pub workers: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { workers: 8 }
    }
}

/// A crawl's output: per-domain reports in input (rank) order plus timing.
#[derive(Debug)]
pub struct CrawlOutput {
    /// One report per input domain, in input order (index = Tranco rank-1).
    pub reports: Vec<DomainReport>,
    /// Wall-clock duration of the crawl.
    pub elapsed: Duration,
}

/// Crawl `domains` through `walker` with a worker pool.
///
/// Reports come back in input order, so the caller can treat the index as
/// the Tranco rank (the top-1M cut of Table 1 is `&reports[..1_000_000]`).
pub fn crawl<R: Resolver>(
    walker: &Walker<R>,
    domains: &[DomainName],
    config: CrawlConfig,
) -> CrawlOutput {
    let started = Instant::now();
    let workers = config.workers.max(1);

    let (work_tx, work_rx) = channel::unbounded::<(usize, DomainName)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, DomainReport)>();
    for item in domains.iter().cloned().enumerate() {
        work_tx.send(item).expect("unbounded send");
    }
    drop(work_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok((index, domain)) = work_rx.recv() {
                    let report = analyze_domain(walker, &domain);
                    if result_tx.send((index, report)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);
    });

    let mut indexed: Vec<(usize, DomainReport)> = result_rx.iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    let reports = indexed.into_iter().map(|(_, r)| r).collect();
    CrawlOutput {
        reports,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_dns::{CountingResolver, ZoneResolver, ZoneStore};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn build_world(n: usize) -> (Arc<ZoneStore>, Vec<DomainName>) {
        let store = Arc::new(ZoneStore::new());
        // One shared provider plus n customers.
        store.add_txt(
            &dom("spf.provider.example"),
            "v=spf1 ip4:198.51.100.0/24 -all",
        );
        let mut domains = Vec::new();
        for i in 0..n {
            let d = dom(&format!("customer{i}.example"));
            store.add_txt(&d, "v=spf1 include:spf.provider.example -all");
            store.add_mx(&d, 10, &dom("mx.provider.example"));
            domains.push(d);
        }
        store.add_a(&dom("mx.provider.example"), Ipv4Addr::new(198, 51, 100, 25));
        (store, domains)
    }

    #[test]
    fn crawl_preserves_input_order() {
        let (store, domains) = build_world(50);
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &domains, CrawlConfig { workers: 4 });
        assert_eq!(out.reports.len(), 50);
        for (i, r) in out.reports.iter().enumerate() {
            assert_eq!(r.domain, domains[i]);
        }
    }

    #[test]
    fn crawl_results_identical_across_worker_counts() {
        let (store, domains) = build_world(40);
        let run = |workers| {
            let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
            crawl(&walker, &domains, CrawlConfig { workers })
                .reports
                .iter()
                .map(|r| (r.domain.clone(), r.has_spf, r.allowed_ip_count()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn shared_cache_deduplicates_provider_lookups() {
        let (store, domains) = build_world(100);
        let counting = CountingResolver::new(ZoneResolver::new(store));
        let stats = counting.stats();
        let walker = Walker::new(counting);
        crawl(&walker, &domains, CrawlConfig { workers: 4 });
        let queries = stats.queries.load(std::sync::atomic::Ordering::Relaxed);
        // Per customer: TXT + MX + SPF(99) + _dmarc TXT = 4 queries, plus a
        // handful for the shared provider (racing workers may fetch it more
        // than once before the first result lands in the cache).
        assert!(queries < 100 * 4 + 20, "queries = {queries}");
    }

    #[test]
    fn empty_input() {
        let store = Arc::new(ZoneStore::new());
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &[], CrawlConfig::default());
        assert!(out.reports.is_empty());
    }
}
