//! Scan-level aggregation: every count the paper's Sections 5 and 6 report
//! over the crawled population, computed from the per-domain reports.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use spf_analyzer::{DomainReport, ErrorClass, NotFoundCause};

/// Largest prefix length that counts as a "very large IP range" in
/// Table 3 (/0 through /16).
pub const LARGE_RANGE_MAX_PREFIX: u8 = 16;

/// Aggregated statistics over one scan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanAggregates {
    /// Number of scanned domains.
    pub total_domains: u64,
    /// Domains with ≥1 MX record (Figure 1).
    pub with_mx: u64,
    /// Domains with a (single) SPF record (Figure 1, Table 1).
    pub with_spf: u64,
    /// Domains with a `_dmarc` record (Figure 1, Table 1).
    pub with_dmarc: u64,
    /// Domains whose DMARC record parses.
    pub with_valid_dmarc: u64,
    /// Domains with both MX and SPF ("79.3 % for domains with MX record").
    pub with_mx_and_spf: u64,
    /// §5.1: SPF but no MX (10.4 % of no-MX domains).
    pub spf_without_mx: u64,
    /// §5.1: of those, how many are bare `-all`/`~all` deny-alls (53.1 %).
    pub spf_without_mx_deny_all: u64,
    /// Transient DNS failures excluded from analysis (1,179 in the paper).
    pub dns_transient: u64,
    /// Primary error class per domain (Figure 2).
    pub error_counts: BTreeMap<ErrorClass, u64>,
    /// Figure 3: sub-causes among record-not-found domains.
    pub not_found_causes: BTreeMap<NotFoundCause, u64>,
    /// Per-domain allowed-IP counts, in rank order (Figure 5's CDF input);
    /// only domains with SPF contribute.
    pub allowed_ip_counts: Vec<u64>,
    /// Domains allowing >100,000 IPv4 addresses (34.7 % in the paper).
    pub lax_domains: u64,
    /// Domains allowing fewer than 20 addresses ("one out of three").
    pub tight_domains: u64,
    /// §5.5: records lacking a restrictive all (427,767).
    pub permissive_all: u64,
    /// §5.5: domains whose own record uses `ptr` (233,167). Inherited
    /// ptr terms (e.g. via the ovh include) do not count here.
    pub uses_ptr: u64,
    /// §5.5: domains still publishing the deprecated type-99 RR (107,646).
    pub deprecated_spf_rr: u64,
    /// §5.5: domains using RFC 6652 `ra`/`rp`/`rr` (14).
    pub reporting_modifiers: u64,
    /// Figure 6: histogram of top-level include counts (index 0..=10; the
    /// 12th bucket counts >10).
    pub include_count_histogram: [u64; 12],
    /// Table 3 columns: for each prefix /0../16, how many domains have at
    /// least one network of that size via direct mechanisms vs includes.
    pub large_ranges_direct: BTreeMap<u8, u64>,
    /// See [`ScanAggregates::large_ranges_direct`].
    pub large_ranges_include: BTreeMap<u8, u64>,
    /// §6.2: domains with >100k addresses from direct mechanisms only.
    pub lax_via_direct: u64,
    /// §6.3: domains with >100k addresses arriving through includes.
    pub lax_via_include: u64,
    /// §6.3: domains using the include mechanism at all (67.0 %).
    pub uses_include: u64,
    /// §4.1: domains whose record carries an `ip6` term directly (0.5 %).
    pub uses_ip6: u64,
}

impl ScanAggregates {
    /// Compute all aggregates over a scan's reports (in rank order).
    pub fn compute(reports: &[DomainReport]) -> ScanAggregates {
        let mut agg = ScanAggregates {
            total_domains: reports.len() as u64,
            ..Default::default()
        };
        for report in reports {
            if report.has_mx {
                agg.with_mx += 1;
            }
            if report.has_dmarc {
                agg.with_dmarc += 1;
            }
            if report.dmarc_valid {
                agg.with_valid_dmarc += 1;
            }
            if report.dns_transient {
                agg.dns_transient += 1;
            }
            if report.uses_deprecated_spf_rr {
                agg.deprecated_spf_rr += 1;
            }
            if let Some(class) = report.primary_error {
                *agg.error_counts.entry(class).or_default() += 1;
                if class == ErrorClass::RecordNotFound {
                    let cause = report
                        .record
                        .as_ref()
                        .and_then(|r| {
                            r.errors
                                .iter()
                                .find(|e| e.class == ErrorClass::RecordNotFound)
                                .and_then(|e| e.not_found_cause)
                        })
                        // Multiple records at the root map to the
                        // multiple-SPF-records cause.
                        .unwrap_or(NotFoundCause::MultipleSpfRecords);
                    *agg.not_found_causes.entry(cause).or_default() += 1;
                }
            }
            if !report.has_spf {
                continue;
            }
            agg.with_spf += 1;
            if report.has_mx {
                agg.with_mx_and_spf += 1;
            } else {
                agg.spf_without_mx += 1;
            }
            let Some(record) = report.record.as_ref() else {
                continue;
            };
            if !report.has_mx && record.is_deny_all_only {
                agg.spf_without_mx_deny_all += 1;
            }
            let allowed = record.allowed_ip_count();
            agg.allowed_ip_counts.push(allowed);
            if allowed > crate::LAX_IP_THRESHOLD {
                agg.lax_domains += 1;
            }
            if allowed < 20 {
                agg.tight_domains += 1;
            }
            if !record.has_restrictive_all {
                agg.permissive_all += 1;
            }
            if record.uses_ptr_direct {
                agg.uses_ptr += 1;
            }
            if record.uses_reporting_modifiers {
                agg.reporting_modifiers += 1;
            }
            if record.uses_ip6 {
                agg.uses_ip6 += 1;
            }
            let includes = record.top_level_include_count;
            if includes > 0 {
                agg.uses_include += 1;
            }
            let bucket = includes.min(11);
            agg.include_count_histogram[bucket] += 1;

            // Table 3: domains with at least one very large network per
            // prefix class, split by how the network arrived.
            let mut direct_prefixes: Vec<u8> = record
                .direct_networks
                .iter()
                .map(|c| c.prefix_len())
                .filter(|p| *p <= LARGE_RANGE_MAX_PREFIX)
                .collect();
            direct_prefixes.sort_unstable();
            direct_prefixes.dedup();
            for p in direct_prefixes {
                *agg.large_ranges_direct.entry(p).or_default() += 1;
            }
            let mut include_prefixes: Vec<u8> = record
                .include_networks
                .iter()
                .map(|c| c.prefix_len())
                .filter(|p| *p <= LARGE_RANGE_MAX_PREFIX)
                .collect();
            include_prefixes.sort_unstable();
            include_prefixes.dedup();
            for p in include_prefixes {
                *agg.large_ranges_include.entry(p).or_default() += 1;
            }

            if allowed > crate::LAX_IP_THRESHOLD {
                let direct_only: u64 = record
                    .direct_networks
                    .iter()
                    .map(|c| c.address_count())
                    .sum();
                if direct_only > crate::LAX_IP_THRESHOLD {
                    agg.lax_via_direct += 1;
                }
                let via_include: u64 = record
                    .include_networks
                    .iter()
                    .map(|c| c.address_count())
                    .sum();
                if via_include > crate::LAX_IP_THRESHOLD {
                    agg.lax_via_include += 1;
                }
            }
        }
        agg
    }

    /// Total erroneous domains (Figure 2's population).
    pub fn total_errors(&self) -> u64 {
        self.error_counts.values().sum()
    }

    /// SPF adoption as a fraction of scanned domains.
    pub fn spf_rate(&self) -> f64 {
        self.with_spf as f64 / self.total_domains.max(1) as f64
    }

    /// DMARC adoption as a fraction of scanned domains.
    pub fn dmarc_rate(&self) -> f64 {
        self.with_dmarc as f64 / self.total_domains.max(1) as f64
    }

    /// SPF adoption among MX-bearing domains (the paper's 79.3 %).
    pub fn spf_rate_among_mx(&self) -> f64 {
        self.with_mx_and_spf as f64 / self.with_mx.max(1) as f64
    }

    /// §5.1: share of MX-less domains that still publish SPF (10.4 %).
    pub fn spf_rate_among_no_mx(&self) -> f64 {
        let no_mx = self.total_domains - self.with_mx;
        self.spf_without_mx as f64 / no_mx.max(1) as f64
    }

    /// Share of SPF domains allowing >100k addresses (34.7 %).
    pub fn lax_rate(&self) -> f64 {
        self.lax_domains as f64 / self.with_spf.max(1) as f64
    }

    /// Share of SPF domains with errors (2.9 % of all domains in the
    /// paper; they report it over all domains, so expose both).
    pub fn error_rate_over_all(&self) -> f64 {
        self.total_errors() as f64 / self.total_domains.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{crawl, CrawlConfig};
    use spf_analyzer::Walker;
    use spf_dns::{ZoneResolver, ZoneStore};
    use spf_types::DomainName;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn aggregates_for(build: impl Fn(&ZoneStore) -> Vec<DomainName>) -> ScanAggregates {
        let store = Arc::new(ZoneStore::new());
        let domains = build(&store);
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &domains, CrawlConfig::with_workers(2));
        ScanAggregates::compute(&out.reports)
    }

    #[test]
    fn adoption_rates() {
        let agg = aggregates_for(|store| {
            let mut domains = Vec::new();
            for i in 0..10 {
                let d = dom(&format!("d{i}.example"));
                if i < 6 {
                    store.add_txt(&d, "v=spf1 -all");
                }
                if i < 8 {
                    store.add_mx(&d, 10, &dom("mx.example.net"));
                }
                if i < 2 {
                    store.add_txt(&d.prepend_label("_dmarc").unwrap(), "v=DMARC1; p=none");
                }
                // Every domain must at least exist in DNS.
                store.add_a(&d, Ipv4Addr::new(203, 0, 113, (i + 1) as u8));
                domains.push(d);
            }
            domains
        });
        assert_eq!(agg.total_domains, 10);
        assert_eq!(agg.with_spf, 6);
        assert_eq!(agg.with_mx, 8);
        assert_eq!(agg.with_dmarc, 2);
        assert!((agg.spf_rate() - 0.6).abs() < 1e-9);
        assert!((agg.dmarc_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn spf_without_mx_and_deny_all() {
        let agg = aggregates_for(|store| {
            let parked = dom("parked.example");
            store.add_txt(&parked, "v=spf1 -all");
            let misconfigured = dom("odd.example");
            store.add_txt(&misconfigured, "v=spf1 ip4:192.0.2.1 -all");
            vec![parked, misconfigured]
        });
        assert_eq!(agg.spf_without_mx, 2);
        assert_eq!(agg.spf_without_mx_deny_all, 1);
        assert!((agg.spf_rate_among_no_mx() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_classes_counted_once_per_domain() {
        let agg = aggregates_for(|store| {
            let d = dom("err.example");
            // Both a syntax error and a missing include: the primary-class
            // priority picks record-not-found.
            store.add_txt(&d, "v=spf1 ipv4:1.2.3.4 include:gone.example -all");
            vec![d]
        });
        assert_eq!(agg.total_errors(), 1);
        assert_eq!(agg.error_counts.get(&ErrorClass::RecordNotFound), Some(&1));
        assert_eq!(
            agg.not_found_causes.get(&NotFoundCause::DomainNotFound),
            Some(&1)
        );
    }

    #[test]
    fn lax_and_tight_counts() {
        let agg = aggregates_for(|store| {
            let lax = dom("lax.example");
            store.add_txt(&lax, "v=spf1 ip4:10.0.0.0/8 -all");
            let tight = dom("tight.example");
            store.add_txt(&tight, "v=spf1 ip4:192.0.2.1 ip4:192.0.2.2 -all");
            vec![lax, tight]
        });
        assert_eq!(agg.lax_domains, 1);
        assert_eq!(agg.tight_domains, 1);
        assert_eq!(agg.lax_via_direct, 1);
        assert_eq!(agg.lax_via_include, 0);
        assert!((agg.lax_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn include_histogram_buckets() {
        let agg = aggregates_for(|store| {
            store.add_txt(&dom("p.example"), "v=spf1 ip4:198.51.100.1 -all");
            let zero = dom("zero.example");
            store.add_txt(&zero, "v=spf1 -all");
            let one = dom("one.example");
            store.add_txt(&one, "v=spf1 include:p.example -all");
            let many = dom("many.example");
            let mut rec = String::from("v=spf1");
            for _ in 0..12 {
                rec.push_str(" include:p.example");
            }
            rec.push_str(" -all");
            store.add_txt(&many, &rec);
            vec![zero, one, many]
        });
        assert_eq!(agg.include_count_histogram[0], 1);
        assert_eq!(agg.include_count_histogram[1], 1);
        assert_eq!(agg.include_count_histogram[11], 1); // >10 bucket
        assert_eq!(agg.uses_include, 2);
    }

    #[test]
    fn table3_columns_split_direct_vs_include() {
        let agg = aggregates_for(|store| {
            let direct = dom("direct.example");
            store.add_txt(&direct, "v=spf1 ip4:10.0.0.0/8 -all");
            let via_include = dom("customer.example");
            store.add_txt(&via_include, "v=spf1 include:big.example -all");
            store.add_txt(&dom("big.example"), "v=spf1 ip4:20.0.0.0/8 -all");
            vec![direct, via_include]
        });
        assert_eq!(agg.large_ranges_direct.get(&8), Some(&1));
        assert_eq!(agg.large_ranges_include.get(&8), Some(&1));
    }

    #[test]
    fn permissive_all_and_flags() {
        let agg = aggregates_for(|store| {
            let open = dom("open.example");
            store.add_txt(&open, "v=spf1 ip4:192.0.2.1");
            let ptr = dom("ptr.example");
            store.add_txt(&ptr, "v=spf1 ptr -all");
            let ra = dom("ra.example");
            store.add_txt(&ra, "v=spf1 mx ra=postmaster -all");
            store.add_mx(&ra, 10, &dom("mx.ra.example"));
            store.add_a(&dom("mx.ra.example"), Ipv4Addr::new(192, 0, 2, 77));
            let legacy = dom("legacy.example");
            store.add_txt(&legacy, "v=spf1 -all");
            store.add_spf_type99(&legacy, "v=spf1 -all");
            vec![open, ptr, ra, legacy]
        });
        assert_eq!(agg.permissive_all, 1);
        assert_eq!(agg.uses_ptr, 1);
        assert_eq!(agg.reporting_modifiers, 1);
        assert_eq!(agg.deprecated_spf_rr, 1);
    }
}
