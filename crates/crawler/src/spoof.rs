//! The population-scale spoofability verdict matrix (§6 of the paper).
//!
//! PR 4's overlap engine answers *which addresses the most domains
//! authorize*; this module closes the loop by computing what a receiving
//! MTA would actually decide: it batch-evaluates
//! [`spf_core::check_host`]`(ip, domain, sender)` for every scanned
//! domain × a set of attacker vantage addresses, through the same
//! bounded worker-pool dispatch the crawl engine uses.
//!
//! # Vantage families
//!
//! * [`VantageKind::SharedCoverage`] — the top-K most-authorized
//!   addresses from the population's [`WeightedRanges`] profile: shared
//!   cloud infrastructure an attacker can rent into;
//! * [`VantageKind::ProviderWeb`] / [`VantageKind::ProviderMta`] — the
//!   §6.4 hosting-provider web-space and MTA addresses
//!   (`spf_netsim::hosting`);
//! * [`VantageKind::Control`] — deterministic random addresses *outside*
//!   every authorized range, the matrix's negative baseline (only
//!   `+all`-style records pass from these).
//!
//! # The verdict cache
//!
//! Include-heavy populations would re-walk each shared provider subtree
//! once per customer per vantage; [`SpoofVerdictCache`] memoizes subtree
//! verdicts in the analyzer's lock-striped [`ShardedCache`], keyed by
//! `(domain precomputed-hash, vantage, remaining budget)` — the exact
//! purity domain `spf_core::eval` guarantees, so cached and uncached
//! matrices serialize byte-identically (`tests/spoof_matrix_stress.rs`
//! and the proptests pin this, BENCH_5.json quantifies the speedup).
//!
//! # Determinism
//!
//! Every [`SpoofMatrix`] field is a sum of per-domain facts that are
//! pure functions of `(zone, domain, vantage)`, merged commutatively
//! from per-worker accumulators — so the serialized report is identical
//! across worker counts, batch sizes, cache shard counts, cache on/off,
//! and resolver substrates (in-memory vs wire under zero faults).
//!
//! # Matrix v2: the layered auth stack
//!
//! [`auth_matrix`] is the layered successor (DESIGN.md §13): the same
//! engine shape evaluates each domain's SPF row through the *identical*
//! [`evaluate_matrix_row`] primitive (the byte-identity rail — the v2
//! report embeds a [`SpoofMatrix`] that serializes byte-for-byte like
//! the v1 engine's), then composes the domain's DMARC disposition and
//! MTA-STS mode into a per-cell [`StopLayer`] naming which layer blocks
//! each `(vantage, victim)` pair. The report buckets per-layer stop
//! rates by observed [`DeploymentMix`] tier and carries the residual
//! spoofable set no layer stops. The v1 [`spoof_matrix`] entry point is
//! deprecated in favor of it.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use serde::{Deserialize, Serialize};
use spf_analyzer::{CacheKey, CacheStats, ShardedCache, DEFAULT_CACHE_SHARDS};
use spf_core::{
    check_host, check_host_cached, compile_policy, query_mta_sts, stop_layer, AuthCache,
    AuthCacheStats, BudgetKey, CompileConfig, CompilerStats, DeploymentMix, DmarcDisposition,
    EvalContext, EvalPolicy, Evaluation, MtaStsMode, SpfResult, StopCounts, StopLayer,
    SubtreeVerdict, VerdictCache,
};
use spf_dns::Resolver;
use spf_types::{DomainName, WeightedRanges};

use crate::crawl::DEFAULT_BATCH_SIZE;

/// The MAIL FROM local-part every matrix evaluation claims. A constant:
/// the engine's verdict cache is sound only for session-independent
/// subtrees, and a fixed local-part keeps the rare `%{l}` record from
/// varying within one run.
pub const SPOOF_SENDER_LOCAL: &str = "attacker";

/// Default number of top-coverage vantage addresses.
pub const DEFAULT_TOP_COVERAGE: usize = 5;

/// Default number of control vantage addresses.
pub const DEFAULT_CONTROLS: usize = 3;

/// Which family a vantage address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VantageKind {
    /// A top-K most-authorized address from the overlap profile.
    SharedCoverage,
    /// A hosting provider's shared web-space address.
    ProviderWeb,
    /// A hosting provider's outbound MTA address.
    ProviderMta,
    /// A random address no domain authorizes.
    Control,
}

impl VantageKind {
    /// True for addresses an attacker can plausibly send from (rent the
    /// shared infrastructure, the web space, or the provider MTA) —
    /// i.e. every family except the synthetic controls.
    pub fn attacker_reachable(self) -> bool {
        !matches!(self, VantageKind::Control)
    }
}

/// One attacker vantage address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Human-readable label (rendered by `repro -- spoof-matrix`).
    pub label: String,
    /// The vantage family.
    pub kind: VantageKind,
    /// The connecting address the matrix evaluates from.
    pub ip: Ipv4Addr,
}

/// A hosting provider's two attacker-reachable addresses, as vantage
/// input (built from `spf_netsim::HostingProvider` by the pipeline
/// assemblers — the crawler stays independent of the world generator).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderVantage {
    /// Provider label (e.g. `hosting1`).
    pub label: String,
    /// The shared web-space address.
    pub web: Ipv4Addr,
    /// The provider MTA address.
    pub mta: Ipv4Addr,
}

/// splitmix64: the control sampler's deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Assemble the matrix's vantage set: the `top_k` most-covered addresses
/// from the overlap profile, each provider's web and MTA addresses, and
/// `controls` addresses with the *least* coverage — seeded-random
/// zero-coverage addresses when any exist, falling back to
/// representatives of the lowest-weight ranges when the population
/// covers the whole space (calibrated worlds do: their `+all`-shaped
/// records authorize every address, which is exactly the cohort the
/// control column is meant to isolate). Deterministic in
/// `(weighted, providers, top_k, controls, seed)`.
///
/// A provider address that happens to coincide with a top-coverage
/// address is kept in both rows (each row reports its own family);
/// control selection rejects already-selected addresses.
pub fn select_vantages(
    weighted: &WeightedRanges,
    providers: &[ProviderVantage],
    top_k: usize,
    controls: usize,
    seed: u64,
) -> Vec<VantagePoint> {
    let mut vantages = Vec::new();
    for (rank, (ip, domains)) in weighted.top_coverage(top_k).into_iter().enumerate() {
        vantages.push(VantagePoint {
            label: format!("shared#{} ({domains} domains)", rank + 1),
            kind: VantageKind::SharedCoverage,
            ip,
        });
    }
    for provider in providers {
        vantages.push(VantagePoint {
            label: format!("{}-web", provider.label),
            kind: VantageKind::ProviderWeb,
            ip: provider.web,
        });
        vantages.push(VantagePoint {
            label: format!("{}-mta", provider.label),
            kind: VantageKind::ProviderMta,
            ip: provider.mta,
        });
    }
    let mut state = seed ^ 0x5bf1_2023_0000_0001;
    let mut found = 0usize;
    // Bounded rejection sampling for zero-coverage addresses (when the
    // covered space doesn't swallow the sampler, this converges almost
    // immediately).
    for _ in 0..controls.saturating_mul(512) {
        if found == controls {
            break;
        }
        let candidate = Ipv4Addr::from(splitmix64(&mut state) as u32);
        if weighted.weight_at(candidate) > 0 || vantages.iter().any(|v| v.ip == candidate) {
            continue;
        }
        found += 1;
        vantages.push(VantagePoint {
            label: format!("control#{found}"),
            kind: VantageKind::Control,
            ip: candidate,
        });
    }
    if found < controls {
        // Fully-covered space: take the lowest-weight ranges'
        // representative addresses instead (weight ascending, address
        // ascending — deterministic like top_coverage).
        let mut ranked: Vec<(Ipv4Addr, u64)> = weighted
            .iter()
            .map(|r| (Ipv4Addr::from(r.lo), r.weight))
            .collect();
        ranked.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for (ip, weight) in ranked {
            if found == controls {
                break;
            }
            if vantages.iter().any(|v| v.ip == ip) {
                continue;
            }
            found += 1;
            vantages.push(VantagePoint {
                label: format!("control#{found} (floor {weight} domains)"),
                kind: VantageKind::Control,
                ip,
            });
        }
    }
    vantages
}

/// The verdict-cache key: domain × vantage × remaining budget (see
/// [`spf_core::BudgetKey`] for why the budget is part of it).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct VerdictKey {
    domain: DomainName,
    ip: IpAddr,
    budget: BudgetKey,
}

impl CacheKey for VerdictKey {
    fn shard_hash(&self) -> u64 {
        // The canonical deterministic mixer: DomainName's component
        // feeds its precomputed FNV through write_u64, the ip/budget
        // words follow through the same hasher — one mixing
        // implementation for map and stripe placement alike.
        let mut hasher = spf_types::DomainHasher::default();
        std::hash::Hash::hash(self, &mut hasher);
        std::hash::Hasher::finish(&hasher)
    }
}

/// The engine's lock-striped subtree-verdict memo: the analyzer's
/// [`ShardedCache`] under a `(domain, ip, budget)` key, implementing
/// [`spf_core::VerdictCache`] so `check_host_cached` can share provider
/// subtrees across every customer that includes them.
pub struct SpoofVerdictCache {
    inner: ShardedCache<Arc<SubtreeVerdict>, VerdictKey>,
}

impl SpoofVerdictCache {
    /// A cache with `shards` stripes (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        SpoofVerdictCache {
            inner: ShardedCache::new(shards),
        }
    }

    /// A cache with the analyzer's default stripe count.
    pub fn with_default_shards() -> Self {
        Self::new(DEFAULT_CACHE_SHARDS)
    }

    /// Hit/miss/entry counters summed over all stripes.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Memoized subtree verdicts currently resident.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }
}

impl VerdictCache for SpoofVerdictCache {
    fn get(
        &self,
        domain: &DomainName,
        ip: IpAddr,
        budget: BudgetKey,
    ) -> Option<Arc<SubtreeVerdict>> {
        self.inner.get(&VerdictKey {
            domain: domain.clone(),
            ip,
            budget,
        })
    }

    fn put(
        &self,
        domain: &DomainName,
        ip: IpAddr,
        budget: BudgetKey,
        verdict: Arc<SubtreeVerdict>,
    ) {
        self.inner.insert_if_absent(
            &VerdictKey {
                domain: domain.clone(),
                ip,
                budget,
            },
            verdict,
        );
    }
}

/// Matrix-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpoofMatrixConfig {
    /// Worker threads evaluating `(domain, vantage)` cells.
    pub workers: usize,
    /// Domains per dispatch batch (clamped to ≥ 1).
    pub batch_size: usize,
    /// Whether the shared subtree-verdict cache is consulted.
    pub use_cache: bool,
    /// Verdict-cache stripe count (ignored when `use_cache` is false).
    pub cache_shards: usize,
    /// Whether each domain's tree is compiled to an interval matcher
    /// first, answering vantages from the tables and falling back to the
    /// (cached) evaluator only for residual regions. The matrix stays
    /// byte-identical — compiled verdicts equal `check_host`'s.
    #[serde(default)]
    pub use_compiled: bool,
    /// The `check_host()` limits and accounting mode to evaluate under.
    pub policy: EvalPolicy,
}

impl Default for SpoofMatrixConfig {
    fn default() -> Self {
        SpoofMatrixConfig {
            workers: 8,
            batch_size: DEFAULT_BATCH_SIZE,
            use_cache: true,
            cache_shards: DEFAULT_CACHE_SHARDS,
            use_compiled: false,
            policy: EvalPolicy::default(),
        }
    }
}

impl SpoofMatrixConfig {
    /// A config with `workers` threads and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        SpoofMatrixConfig {
            workers,
            ..SpoofMatrixConfig::default()
        }
    }

    /// Builder-style override of [`SpoofMatrixConfig::batch_size`].
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style override of [`SpoofMatrixConfig::use_cache`].
    pub fn cached(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Builder-style override of [`SpoofMatrixConfig::cache_shards`].
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Builder-style override of [`SpoofMatrixConfig::use_compiled`].
    pub fn compiled(mut self, use_compiled: bool) -> Self {
        self.use_compiled = use_compiled;
        self
    }
}

/// Per-vantage verdict tallies over the whole population.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantageReport {
    /// The vantage's label.
    pub label: String,
    /// The vantage's family.
    pub kind: VantageKind,
    /// The vantage address.
    pub ip: Ipv4Addr,
    /// Domains whose `check_host()` returned `pass` from here.
    pub pass: u64,
    /// … `fail`.
    pub fail: u64,
    /// … `softfail`.
    pub softfail: u64,
    /// … `neutral`.
    pub neutral: u64,
    /// … `none` (no SPF record; identical across vantages).
    pub none: u64,
    /// … `temperror`.
    pub temperror: u64,
    /// … `permerror`.
    pub permerror: u64,
    /// DNS-querying terms charged across all evaluations from here —
    /// cached replays charge exactly what the fresh walks would.
    pub dns_lookups: u64,
    /// Void lookups observed across all evaluations from here.
    pub void_lookups: u64,
}

impl VantageReport {
    fn new(vantage: &VantagePoint) -> Self {
        VantageReport {
            label: vantage.label.clone(),
            kind: vantage.kind,
            ip: vantage.ip,
            pass: 0,
            fail: 0,
            softfail: 0,
            neutral: 0,
            none: 0,
            temperror: 0,
            permerror: 0,
            dns_lookups: 0,
            void_lookups: 0,
        }
    }

    fn add_cell(&mut self, cell: &RowCell) {
        match cell.result {
            SpfResult::Pass => self.pass += 1,
            SpfResult::Fail => self.fail += 1,
            SpfResult::SoftFail => self.softfail += 1,
            SpfResult::Neutral => self.neutral += 1,
            SpfResult::None => self.none += 1,
            SpfResult::TempError => self.temperror += 1,
            SpfResult::PermError => self.permerror += 1,
        }
        self.dns_lookups += cell.dns_lookups;
        self.void_lookups += cell.void_lookups;
    }

    /// The exact inverse of [`VantageReport::add_cell`]; the caller only
    /// retracts cells it previously folded in, so no counter underflows.
    fn remove_cell(&mut self, cell: &RowCell) {
        match cell.result {
            SpfResult::Pass => self.pass -= 1,
            SpfResult::Fail => self.fail -= 1,
            SpfResult::SoftFail => self.softfail -= 1,
            SpfResult::Neutral => self.neutral -= 1,
            SpfResult::None => self.none -= 1,
            SpfResult::TempError => self.temperror -= 1,
            SpfResult::PermError => self.permerror -= 1,
        }
        self.dns_lookups -= cell.dns_lookups;
        self.void_lookups -= cell.void_lookups;
    }

    fn merge(&mut self, other: &VantageReport) {
        self.pass += other.pass;
        self.fail += other.fail;
        self.softfail += other.softfail;
        self.neutral += other.neutral;
        self.none += other.none;
        self.temperror += other.temperror;
        self.permerror += other.permerror;
        self.dns_lookups += other.dns_lookups;
        self.void_lookups += other.void_lookups;
    }
}

/// The distilled verdict matrix: per-vantage tallies plus the §6
/// population summary. Every field is a commutative sum, so the
/// serialized report is byte-identical across engine configurations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpoofMatrix {
    /// Domains evaluated.
    pub domains: u64,
    /// Domains publishing an SPF record (non-`none` verdicts).
    pub spf_domains: u64,
    /// One tally row per vantage, in vantage input order.
    pub vantages: Vec<VantageReport>,
    /// Domains that pass from at least one attacker-reachable vantage
    /// (shared coverage, provider web, provider MTA) — the paper's
    /// spoofable-from-shared-infrastructure population.
    pub spoofable_shared: u64,
    /// Domains that pass from at least one control vantage (essentially
    /// the `+all`-style cohort: the record authorizes everyone).
    pub spoofable_control: u64,
    /// Domains that pass from at least one matrix vantage of any family
    /// — every such address is one the domain owner plausibly does not
    /// (exclusively) control, the paper's lazy-gatekeeper population.
    pub lazy_gatekeepers: u64,
}

impl SpoofMatrix {
    /// Lazy gatekeepers as a fraction of SPF-publishing domains.
    pub fn lazy_gatekeeper_rate(&self) -> f64 {
        if self.spf_domains == 0 {
            0.0
        } else {
            self.lazy_gatekeepers as f64 / self.spf_domains as f64
        }
    }

    /// An all-zero matrix over `domain_count` domains and `vantages` —
    /// the starting point incremental row folding builds from.
    pub fn empty(domain_count: u64, vantages: &[VantagePoint]) -> Self {
        SpoofMatrix {
            domains: domain_count,
            spf_domains: 0,
            vantages: vantages.iter().map(VantageReport::new).collect(),
            spoofable_shared: 0,
            spoofable_control: 0,
            lazy_gatekeepers: 0,
        }
    }

    /// Fold one domain's row into the matrix. Every matrix field is a
    /// commutative sum of per-domain rows, so fold order never matters;
    /// [`SpoofMatrix::fold_out`] is the exact inverse, which is what
    /// lets the churn engine replace a re-published domain's
    /// contribution without recomputing anyone else's. `domains` is the
    /// population size, not a row sum — folding leaves it untouched.
    pub fn fold_in(&mut self, row: &DomainMatrixRow) {
        debug_assert_eq!(row.cells.len(), self.vantages.len());
        self.spf_domains += u64::from(row.has_record);
        self.spoofable_shared += u64::from(row.passes_shared);
        self.spoofable_control += u64::from(row.passes_control);
        self.lazy_gatekeepers += u64::from(row.passes_shared || row.passes_control);
        for (report, cell) in self.vantages.iter_mut().zip(&row.cells) {
            report.add_cell(cell);
        }
    }

    /// Retract one domain's previously folded-in row — the exact
    /// inverse of [`SpoofMatrix::fold_in`].
    pub fn fold_out(&mut self, row: &DomainMatrixRow) {
        debug_assert_eq!(row.cells.len(), self.vantages.len());
        self.spf_domains -= u64::from(row.has_record);
        self.spoofable_shared -= u64::from(row.passes_shared);
        self.spoofable_control -= u64::from(row.passes_control);
        self.lazy_gatekeepers -= u64::from(row.passes_shared || row.passes_control);
        for (report, cell) in self.vantages.iter_mut().zip(&row.cells) {
            report.remove_cell(cell);
        }
    }

    /// Sum another matrix's row-derived counts into this one (worker
    /// merge). `domains` is population metadata, not a row sum — left
    /// untouched.
    fn merge_counts(&mut self, other: &SpoofMatrix) {
        self.spf_domains += other.spf_domains;
        self.spoofable_shared += other.spoofable_shared;
        self.spoofable_control += other.spoofable_control;
        self.lazy_gatekeepers += other.lazy_gatekeepers;
        for (into, from) in self.vantages.iter_mut().zip(&other.vantages) {
            into.merge(from);
        }
    }
}

/// One `(domain, vantage)` cell of a matrix row: the verdict plus the
/// lookup charges the evaluation incurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowCell {
    /// The `check_host()` verdict from this vantage.
    pub result: SpfResult,
    /// DNS-querying terms charged by this evaluation.
    pub dns_lookups: u64,
    /// Void lookups observed by this evaluation.
    pub void_lookups: u64,
}

impl RowCell {
    fn from_eval(eval: &Evaluation) -> Self {
        RowCell {
            result: eval.result,
            dns_lookups: eval.dns_lookups as u64,
            void_lookups: eval.void_lookups as u64,
        }
    }
}

/// One domain's complete row of the verdict matrix: its per-vantage
/// cells plus the derived population-summary facts. A row is a pure
/// function of `(zone, domain, vantages, policy)`; the matrix is the
/// commutative sum of all rows, so retaining rows per domain is exactly
/// what the churn engine needs to fold a re-published domain out and
/// its replacement in (DESIGN.md §12).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainMatrixRow {
    /// Per-vantage cells, in vantage input order.
    pub cells: Vec<RowCell>,
    /// Whether any vantage returned a non-`none` verdict (the domain
    /// publishes SPF).
    pub has_record: bool,
    /// Whether any attacker-reachable vantage returned `pass`.
    pub passes_shared: bool,
    /// Whether any control vantage returned `pass`.
    pub passes_control: bool,
}

/// Engine observability counters (worker-scheduling dependent — kept out
/// of [`SpoofMatrix`] so the report stays byte-identical).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpoofMatrixStats {
    /// `check_host()` evaluations performed (domains × vantages).
    pub evaluations: u64,
    /// Wall-clock seconds the matrix took.
    pub elapsed_secs: f64,
    /// Verdict-cache hits during this run (0 when uncached).
    pub cache_hits: u64,
    /// Verdict-cache misses during this run (0 when uncached).
    pub cache_misses: u64,
    /// Highest dispatched-but-unfinished domain count observed.
    pub peak_queue_depth: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Population compilability counters when the compiled backend ran
    /// (`None` otherwise). Lives here rather than in [`SpoofMatrix`]: the
    /// matrix must serialize identically across backends.
    #[serde(default)]
    pub compiler: Option<CompilerStats>,
}

impl SpoofMatrixStats {
    /// Evaluations per second.
    pub fn evals_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.evaluations as f64 / self.elapsed_secs
        }
    }

    /// Verdict-cache hits as a fraction of probes (0.0 uncached).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

/// Per-worker accumulator: vantage tallies plus the population summary
/// counts, merged commutatively on the way out.
struct WorkerTally {
    vantages: Vec<VantageReport>,
    spf_domains: u64,
    spoofable_shared: u64,
    spoofable_control: u64,
    lazy_gatekeepers: u64,
    compiler: CompilerStats,
}

impl WorkerTally {
    fn new(vantages: &[VantagePoint]) -> Self {
        WorkerTally {
            vantages: vantages.iter().map(VantageReport::new).collect(),
            spf_domains: 0,
            spoofable_shared: 0,
            spoofable_control: 0,
            lazy_gatekeepers: 0,
            compiler: CompilerStats::default(),
        }
    }
}

/// Evaluate the full verdict matrix for `domains` × `vantages` over
/// `resolver`, through a bounded batched worker pool (the crawl engine's
/// dispatch shape). Returns the deterministic [`SpoofMatrix`] and the
/// run's scheduling-dependent [`SpoofMatrixStats`].
///
/// Deprecated: [`auth_matrix`] runs the same SPF engine (its embedded
/// `.spf` report is byte-identical to this one) and layers DMARC /
/// MTA-STS stop attribution on top. The body is intentionally *not* a
/// delegating shim so v2-vs-v1 comparisons stay a genuine differential
/// test.
#[deprecated(note = "use `auth_matrix`; its `.spf` component is byte-identical to this report")]
pub fn spoof_matrix<R: Resolver>(
    resolver: &R,
    domains: &[DomainName],
    vantages: &[VantagePoint],
    config: SpoofMatrixConfig,
) -> (SpoofMatrix, SpoofMatrixStats) {
    let started = Instant::now();
    let workers = config.workers.max(1);
    let batch_size = config.batch_size.max(1);
    let cache = config
        .use_cache
        .then(|| SpoofVerdictCache::new(config.cache_shards));

    let queue_depth = AtomicUsize::new(0);
    let peak_depth = AtomicUsize::new(0);
    let batches = AtomicUsize::new(0);

    let mut merged = WorkerTally::new(vantages);
    {
        let (work_tx, work_rx) = channel::bounded::<Vec<DomainName>>(workers * 2);
        let (tally_tx, tally_rx) = channel::unbounded::<WorkerTally>();
        let queue_depth = &queue_depth;
        let peak_depth = &peak_depth;
        let batches = &batches;
        let cache = cache.as_ref();
        let policy = &config.policy;
        let use_compiled = config.use_compiled;

        std::thread::scope(|scope| {
            scope.spawn(move || {
                for chunk in domains.chunks(batch_size) {
                    let batch: Vec<DomainName> = chunk.to_vec();
                    let depth = queue_depth.fetch_add(batch.len(), Ordering::Relaxed) + batch.len();
                    peak_depth.fetch_max(depth, Ordering::Relaxed);
                    batches.fetch_add(1, Ordering::Relaxed);
                    if work_tx.send(batch).is_err() {
                        return;
                    }
                }
            });
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let tally_tx = tally_tx.clone();
                scope.spawn(move || {
                    let mut tally = WorkerTally::new(vantages);
                    while let Ok(batch) = work_rx.recv() {
                        for domain in batch {
                            evaluate_domain(
                                resolver,
                                &domain,
                                vantages,
                                policy,
                                cache,
                                use_compiled,
                                &mut tally,
                            );
                            queue_depth.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    let _ = tally_tx.send(tally);
                });
            }
            drop(work_rx);
            drop(tally_tx);
            for worker in tally_rx.iter() {
                merged.spf_domains += worker.spf_domains;
                merged.spoofable_shared += worker.spoofable_shared;
                merged.spoofable_control += worker.spoofable_control;
                merged.lazy_gatekeepers += worker.lazy_gatekeepers;
                merged.compiler.merge(&worker.compiler);
                for (into, from) in merged.vantages.iter_mut().zip(&worker.vantages) {
                    into.merge(from);
                }
            }
        });
    }

    let elapsed = started.elapsed();
    let cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let matrix = SpoofMatrix {
        domains: domains.len() as u64,
        spf_domains: merged.spf_domains,
        vantages: merged.vantages,
        spoofable_shared: merged.spoofable_shared,
        spoofable_control: merged.spoofable_control,
        lazy_gatekeepers: merged.lazy_gatekeepers,
    };
    let stats = SpoofMatrixStats {
        evaluations: (domains.len() * vantages.len()) as u64,
        elapsed_secs: elapsed.as_secs_f64(),
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
        peak_queue_depth: peak_depth.load(Ordering::Relaxed),
        batches: batches.load(Ordering::Relaxed) as u64,
        compiler: config.use_compiled.then_some(merged.compiler),
    };
    (matrix, stats)
}

/// Evaluate one domain's complete [`DomainMatrixRow`] from every
/// vantage. With the compiled backend, the tree is compiled once and
/// every vantage answers from the interval tables; residual regions
/// fall back to the same (cached) evaluator path, so the row is
/// byte-identical either way. This is both the batch engine's inner
/// loop and the churn engine's per-delta re-evaluation primitive.
pub fn evaluate_matrix_row<R: Resolver>(
    resolver: &R,
    domain: &DomainName,
    vantages: &[VantagePoint],
    policy: &EvalPolicy,
    cache: Option<&SpoofVerdictCache>,
    use_compiled: bool,
    compiler: &mut CompilerStats,
) -> DomainMatrixRow {
    let compiled = use_compiled.then(|| {
        let compiled = compile_policy(resolver, domain, &CompileConfig::with_policy(*policy));
        compiler.record(&compiled);
        compiled
    });
    let mut row = DomainMatrixRow {
        cells: Vec::with_capacity(vantages.len()),
        has_record: false,
        passes_shared: false,
        passes_control: false,
    };
    for vantage in vantages {
        let fast = compiled
            .as_ref()
            .and_then(|c| c.verdict(IpAddr::V4(vantage.ip)));
        if compiled.is_some() {
            if fast.is_some() {
                compiler.compiled_verdicts += 1;
            } else {
                compiler.fallback_verdicts += 1;
            }
        }
        let eval = match fast {
            Some(eval) => eval,
            None => {
                let ctx = EvalContext::mail_from(
                    IpAddr::V4(vantage.ip),
                    SPOOF_SENDER_LOCAL,
                    domain.clone(),
                );
                match cache {
                    Some(cache) => check_host_cached(resolver, &ctx, domain, policy, cache),
                    None => check_host(resolver, &ctx, domain, policy),
                }
            }
        };
        if eval.result != SpfResult::None {
            row.has_record = true;
        }
        if eval.result == SpfResult::Pass {
            if vantage.kind.attacker_reachable() {
                row.passes_shared = true;
            } else {
                row.passes_control = true;
            }
        }
        row.cells.push(RowCell::from_eval(&eval));
    }
    row
}

/// One domain's row of the matrix: evaluate it from every vantage and
/// fold the results into `tally`.
fn evaluate_domain<R: Resolver>(
    resolver: &R,
    domain: &DomainName,
    vantages: &[VantagePoint],
    policy: &EvalPolicy,
    cache: Option<&SpoofVerdictCache>,
    use_compiled: bool,
    tally: &mut WorkerTally,
) {
    let row = evaluate_matrix_row(
        resolver,
        domain,
        vantages,
        policy,
        cache,
        use_compiled,
        &mut tally.compiler,
    );
    tally.spf_domains += u64::from(row.has_record);
    tally.spoofable_shared += u64::from(row.passes_shared);
    tally.spoofable_control += u64::from(row.passes_control);
    tally.lazy_gatekeepers += u64::from(row.passes_shared || row.passes_control);
    for (report, cell) in tally.vantages.iter_mut().zip(&row.cells) {
        report.add_cell(cell);
    }
}

// ---------------------------------------------------------------------------
// Matrix v2: the layered auth stack (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// One domain's layered row: the *unchanged* v1 SPF row (the
/// byte-identity rail) plus the domain-level DMARC / MTA-STS facts,
/// the [`DeploymentMix`] tier they classify into, and the per-vantage
/// [`StopLayer`] each cell's SPF verdict composes to. Like
/// [`DomainMatrixRow`], a row is a pure function of
/// `(zone, domain, vantages, policy)` and the matrix is the commutative
/// sum of rows, so the churn engine folds layered rows in and out the
/// same way.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthMatrixRow {
    /// The SPF sub-row, byte-identical to [`evaluate_matrix_row`]'s.
    pub spf: DomainMatrixRow,
    /// The domain's DMARC layer (org-domain fallback included).
    pub dmarc: DmarcDisposition,
    /// The domain's MTA-STS layer.
    pub mta_sts: MtaStsMode,
    /// The deployment tier the observed layers classify into.
    pub tier: DeploymentMix,
    /// Which layer stops each vantage's attempt, in vantage input order.
    pub stops: Vec<StopLayer>,
}

impl AuthMatrixRow {
    /// Whether any attacker-reachable vantage reaches [`StopLayer::None`]
    /// — the domain belongs to the residual spoofable set.
    pub fn residual_spoofable(&self, vantages: &[VantageReport]) -> bool {
        self.stops
            .iter()
            .zip(vantages)
            .any(|(stop, v)| v.kind.attacker_reachable() && *stop == StopLayer::None)
    }
}

/// Per-[`DeploymentMix`] tier bucket: how many domains landed in the
/// tier and which layer stopped their attacker-reachable pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierReport {
    /// The tier.
    pub tier: DeploymentMix,
    /// Domains classified into this tier.
    pub domains: u64,
    /// Per-layer stop histogram over this tier's attacker-reachable
    /// `(vantage, domain)` pairs.
    pub stops: StopCounts,
    /// Domains in this tier with at least one attacker-reachable pair
    /// no layer stops.
    pub residual_spoofable: u64,
}

impl TierReport {
    fn new(tier: DeploymentMix) -> Self {
        TierReport {
            tier,
            domains: 0,
            stops: StopCounts::default(),
            residual_spoofable: 0,
        }
    }

    /// Stopped-by-`layer` pairs as a fraction of the tier's
    /// attacker-reachable pairs.
    pub fn stop_rate(&self, layer: StopLayer) -> f64 {
        let total = self.stops.total();
        if total == 0 {
            0.0
        } else {
            self.stops.get(layer) as f64 / total as f64
        }
    }
}

fn tier_index(tier: DeploymentMix) -> usize {
    DeploymentMix::ALL
        .iter()
        .position(|t| *t == tier)
        .expect("tier in ALL")
}

/// The layered spoof matrix (v2). Embeds the v1 [`SpoofMatrix`] —
/// serialized byte-identically to what the deprecated [`spoof_matrix`]
/// engine reports for the same inputs — and layers per-vantage /
/// per-tier stop histograms plus the residual spoofable set on top.
/// Every field is a commutative sum of [`AuthMatrixRow`]s, preserving
/// the determinism contract across workers, batches, shards, caches,
/// and resolver substrates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthMatrix {
    /// The SPF sub-matrix (the v1 report, byte-identical).
    pub spf: SpoofMatrix,
    /// Per-vantage stop histograms over all domains, in vantage input
    /// order (parallel to `spf.vantages`).
    pub vantage_stops: Vec<StopCounts>,
    /// Per-deployment-tier buckets, in [`DeploymentMix::ALL`] order —
    /// every preset is present even at zero domains.
    pub tiers: Vec<TierReport>,
    /// Domains with at least one attacker-reachable pair no layer stops.
    pub residual_spoofable: u64,
    /// Domains publishing a *usable* DMARC record (monitor or enforced).
    pub dmarc_domains: u64,
    /// Domains whose DMARC is enforced (`quarantine`/`reject`, `pct>0`).
    pub dmarc_enforced_domains: u64,
    /// Domains publishing an enforce-mode MTA-STS policy.
    pub mta_sts_enforced_domains: u64,
}

impl AuthMatrix {
    /// An all-zero layered matrix over `domain_count` domains and
    /// `vantages` — the starting point incremental row folding builds
    /// from.
    pub fn empty(domain_count: u64, vantages: &[VantagePoint]) -> Self {
        AuthMatrix {
            spf: SpoofMatrix::empty(domain_count, vantages),
            vantage_stops: vec![StopCounts::default(); vantages.len()],
            tiers: DeploymentMix::ALL
                .iter()
                .copied()
                .map(TierReport::new)
                .collect(),
            residual_spoofable: 0,
            dmarc_domains: 0,
            dmarc_enforced_domains: 0,
            mta_sts_enforced_domains: 0,
        }
    }

    /// The bucket for one tier.
    pub fn tier(&self, tier: DeploymentMix) -> &TierReport {
        &self.tiers[tier_index(tier)]
    }

    /// Residual spoofable domains as a fraction of the population.
    pub fn residual_rate(&self) -> f64 {
        if self.spf.domains == 0 {
            0.0
        } else {
            self.residual_spoofable as f64 / self.spf.domains as f64
        }
    }

    fn layer_facts(row: &AuthMatrixRow) -> (u64, u64, u64) {
        let usable = matches!(
            row.dmarc,
            DmarcDisposition::Monitor | DmarcDisposition::Enforced { .. }
        );
        (
            u64::from(usable),
            u64::from(row.dmarc.is_enforced()),
            u64::from(row.mta_sts == MtaStsMode::Enforce),
        )
    }

    /// Fold one domain's layered row in. Commutative like
    /// [`SpoofMatrix::fold_in`]; [`AuthMatrix::fold_out`] is the exact
    /// inverse.
    pub fn fold_in(&mut self, row: &AuthMatrixRow) {
        debug_assert_eq!(row.stops.len(), self.vantage_stops.len());
        self.spf.fold_in(&row.spf);
        for (counts, stop) in self.vantage_stops.iter_mut().zip(&row.stops) {
            counts.add(*stop);
        }
        let tier = &mut self.tiers[tier_index(row.tier)];
        tier.domains += 1;
        let mut residual = false;
        for (stop, vantage) in row.stops.iter().zip(&self.spf.vantages) {
            if vantage.kind.attacker_reachable() {
                tier.stops.add(*stop);
                residual |= *stop == StopLayer::None;
            }
        }
        tier.residual_spoofable += u64::from(residual);
        self.residual_spoofable += u64::from(residual);
        let (usable, enforced, sts) = Self::layer_facts(row);
        self.dmarc_domains += usable;
        self.dmarc_enforced_domains += enforced;
        self.mta_sts_enforced_domains += sts;
    }

    /// Retract one previously folded-in layered row — the exact inverse
    /// of [`AuthMatrix::fold_in`].
    pub fn fold_out(&mut self, row: &AuthMatrixRow) {
        debug_assert_eq!(row.stops.len(), self.vantage_stops.len());
        self.spf.fold_out(&row.spf);
        for (counts, stop) in self.vantage_stops.iter_mut().zip(&row.stops) {
            counts.remove(*stop);
        }
        let tier = &mut self.tiers[tier_index(row.tier)];
        tier.domains -= 1;
        let mut residual = false;
        for (stop, vantage) in row.stops.iter().zip(&self.spf.vantages) {
            if vantage.kind.attacker_reachable() {
                tier.stops.remove(*stop);
                residual |= *stop == StopLayer::None;
            }
        }
        tier.residual_spoofable -= u64::from(residual);
        self.residual_spoofable -= u64::from(residual);
        let (usable, enforced, sts) = Self::layer_facts(row);
        self.dmarc_domains -= usable;
        self.dmarc_enforced_domains -= enforced;
        self.mta_sts_enforced_domains -= sts;
    }

    /// Sum another layered matrix's row-derived counts in (worker
    /// merge).
    fn merge_counts(&mut self, other: &AuthMatrix) {
        self.spf.merge_counts(&other.spf);
        for (into, from) in self.vantage_stops.iter_mut().zip(&other.vantage_stops) {
            into.merge(from);
        }
        for (into, from) in self.tiers.iter_mut().zip(&other.tiers) {
            into.domains += from.domains;
            into.stops.merge(&from.stops);
            into.residual_spoofable += from.residual_spoofable;
        }
        self.residual_spoofable += other.residual_spoofable;
        self.dmarc_domains += other.dmarc_domains;
        self.dmarc_enforced_domains += other.dmarc_enforced_domains;
        self.mta_sts_enforced_domains += other.mta_sts_enforced_domains;
    }
}

/// v2 engine observability: the v1 scheduling stats plus the DMARC /
/// MTA-STS lookup-cache counters. Worker-scheduling dependent — kept
/// out of [`AuthMatrix`] so the report stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuthMatrixStats {
    /// The SPF engine's scheduling stats.
    pub engine: SpoofMatrixStats,
    /// DMARC / MTA-STS lookup-cache counters.
    pub auth_cache: AuthCacheStats,
}

/// Evaluate one domain's complete [`AuthMatrixRow`]: the SPF sub-row
/// through the *identical* [`evaluate_matrix_row`] primitive (the
/// byte-identity rail), then the domain's DMARC disposition and
/// MTA-STS mode — through `auth_cache` when given, straight to the
/// resolver otherwise — composed into per-vantage stop layers.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_auth_row<R: Resolver>(
    resolver: &R,
    domain: &DomainName,
    vantages: &[VantagePoint],
    policy: &EvalPolicy,
    cache: Option<&SpoofVerdictCache>,
    use_compiled: bool,
    compiler: &mut CompilerStats,
    auth_cache: Option<&AuthCache>,
) -> AuthMatrixRow {
    let spf = evaluate_matrix_row(
        resolver,
        domain,
        vantages,
        policy,
        cache,
        use_compiled,
        compiler,
    );
    let (dmarc, mta_sts) = match auth_cache {
        Some(cache) => (
            cache.dmarc(resolver, domain),
            cache.mta_sts(resolver, domain),
        ),
        None => (
            DmarcDisposition::from_lookup(&spf_core::query_dmarc(resolver, domain)),
            query_mta_sts(resolver, domain),
        ),
    };
    let tier = DeploymentMix::classify(spf.has_record, &dmarc, mta_sts);
    let stops = spf
        .cells
        .iter()
        .map(|cell| stop_layer(cell.result, &dmarc, mta_sts))
        .collect();
    AuthMatrixRow {
        spf,
        dmarc,
        mta_sts,
        tier,
        stops,
    }
}

/// Per-worker v2 accumulator: a zero-`domains` [`AuthMatrix`] rows fold
/// into, merged commutatively on the way out.
struct AuthWorkerTally {
    matrix: AuthMatrix,
    compiler: CompilerStats,
}

/// Evaluate the layered verdict matrix for `domains` × `vantages` over
/// `resolver` — the matrix-v2 engine. Same bounded batched worker-pool
/// dispatch as the deprecated v1 [`spoof_matrix`]; the SPF sub-matrix
/// it embeds serializes byte-identically to the v1 report, and the
/// DMARC / MTA-STS layers ride a shared [`AuthCache`] whose hit rate
/// lands in [`AuthMatrixStats`].
pub fn auth_matrix<R: Resolver>(
    resolver: &R,
    domains: &[DomainName],
    vantages: &[VantagePoint],
    config: SpoofMatrixConfig,
) -> (AuthMatrix, AuthMatrixStats) {
    auth_matrix_with_cache(resolver, domains, vantages, config, &AuthCache::new())
}

/// [`auth_matrix`] with a caller-owned [`AuthCache`]: reusing the cache
/// across runs (epoch re-crawls, repeated benches) is what makes the
/// DMARC / MTA-STS hit rate non-trivial — within one cold run each
/// domain is looked up exactly once. The returned
/// [`AuthMatrixStats::auth_cache`] snapshot is the cache's *cumulative*
/// counters.
pub fn auth_matrix_with_cache<R: Resolver>(
    resolver: &R,
    domains: &[DomainName],
    vantages: &[VantagePoint],
    config: SpoofMatrixConfig,
    auth_cache: &AuthCache,
) -> (AuthMatrix, AuthMatrixStats) {
    let started = Instant::now();
    let workers = config.workers.max(1);
    let batch_size = config.batch_size.max(1);
    let cache = config
        .use_cache
        .then(|| SpoofVerdictCache::new(config.cache_shards));

    let queue_depth = AtomicUsize::new(0);
    let peak_depth = AtomicUsize::new(0);
    let batches = AtomicUsize::new(0);

    let mut merged = AuthWorkerTally {
        matrix: AuthMatrix::empty(0, vantages),
        compiler: CompilerStats::default(),
    };
    {
        let (work_tx, work_rx) = channel::bounded::<Vec<DomainName>>(workers * 2);
        let (tally_tx, tally_rx) = channel::unbounded::<AuthWorkerTally>();
        let queue_depth = &queue_depth;
        let peak_depth = &peak_depth;
        let batches = &batches;
        let cache = cache.as_ref();
        let policy = &config.policy;
        let use_compiled = config.use_compiled;

        std::thread::scope(|scope| {
            scope.spawn(move || {
                for chunk in domains.chunks(batch_size) {
                    let batch: Vec<DomainName> = chunk.to_vec();
                    let depth = queue_depth.fetch_add(batch.len(), Ordering::Relaxed) + batch.len();
                    peak_depth.fetch_max(depth, Ordering::Relaxed);
                    batches.fetch_add(1, Ordering::Relaxed);
                    if work_tx.send(batch).is_err() {
                        return;
                    }
                }
            });
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let tally_tx = tally_tx.clone();
                scope.spawn(move || {
                    let mut tally = AuthWorkerTally {
                        matrix: AuthMatrix::empty(0, vantages),
                        compiler: CompilerStats::default(),
                    };
                    while let Ok(batch) = work_rx.recv() {
                        for domain in batch {
                            let row = evaluate_auth_row(
                                resolver,
                                &domain,
                                vantages,
                                policy,
                                cache,
                                use_compiled,
                                &mut tally.compiler,
                                Some(auth_cache),
                            );
                            tally.matrix.fold_in(&row);
                            queue_depth.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    let _ = tally_tx.send(tally);
                });
            }
            drop(work_rx);
            drop(tally_tx);
            for worker in tally_rx.iter() {
                merged.matrix.merge_counts(&worker.matrix);
                merged.compiler.merge(&worker.compiler);
            }
        });
    }

    let elapsed = started.elapsed();
    let cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let mut matrix = merged.matrix;
    matrix.spf.domains = domains.len() as u64;
    let stats = AuthMatrixStats {
        engine: SpoofMatrixStats {
            evaluations: (domains.len() * vantages.len()) as u64,
            elapsed_secs: elapsed.as_secs_f64(),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            peak_queue_depth: peak_depth.load(Ordering::Relaxed),
            batches: batches.load(Ordering::Relaxed) as u64,
            compiler: config.use_compiled.then_some(merged.compiler),
        },
        auth_cache: auth_cache.stats(),
    };
    (matrix, stats)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use spf_dns::{ZoneResolver, ZoneStore};
    use spf_types::CoverageMap;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    /// Three cohorts: shared-provider customers, an open `+all` domain,
    /// and a tight direct-range domain.
    fn build_world() -> (Arc<ZoneStore>, Vec<DomainName>, WeightedRanges) {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("spf.cloud.example"), "v=spf1 ip4:198.51.100.0/24 -all");
        let mut domains = Vec::new();
        for i in 0..6 {
            let d = dom(&format!("c{i}.example"));
            store.add_txt(&d, "v=spf1 include:spf.cloud.example -all");
            domains.push(d);
        }
        let open = dom("open.example");
        store.add_txt(&open, "v=spf1 +all");
        domains.push(open);
        let tight = dom("tight.example");
        store.add_txt(&tight, "v=spf1 ip4:203.0.113.7 -all");
        domains.push(tight);
        domains.push(dom("norecord.example")); // no SPF at all
        let mut coverage = CoverageMap::new();
        let mut cloud = spf_types::Ipv4Set::new();
        cloud.insert_cidr(&spf_types::Ipv4Cidr::parse("198.51.100.0/24").unwrap());
        for _ in 0..6 {
            coverage.add_set(&cloud);
        }
        let mut own = spf_types::Ipv4Set::new();
        own.insert_addr("203.0.113.7".parse().unwrap());
        coverage.add_set(&own);
        (store, domains, coverage.into_weighted())
    }

    fn vantage_set(weighted: &WeightedRanges, top_k: usize) -> Vec<VantagePoint> {
        let providers = [ProviderVantage {
            label: "hosting1".into(),
            web: "12.0.0.1".parse().unwrap(),
            mta: "12.0.0.2".parse().unwrap(),
        }];
        select_vantages(weighted, &providers, top_k, 2, 0xfeed)
    }

    #[test]
    fn vantage_selection_is_deterministic_and_layered() {
        let (_, _, weighted) = build_world();
        let a = vantage_set(&weighted, 2);
        let b = vantage_set(&weighted, 2);
        assert_eq!(a, b);
        // 2 shared + 2 provider + 2 controls.
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].kind, VantageKind::SharedCoverage);
        assert_eq!(a[0].ip, "198.51.100.0".parse::<Ipv4Addr>().unwrap());
        // The second shared vantage is the weight-1 direct range.
        assert_eq!(a[1].ip, "203.0.113.7".parse::<Ipv4Addr>().unwrap());
        assert!(a.iter().filter(|v| v.kind == VantageKind::Control).count() == 2);
        // Controls are genuinely uncovered.
        for v in a.iter().filter(|v| v.kind == VantageKind::Control) {
            assert_eq!(weighted.weight_at(v.ip), 0);
        }
    }

    #[test]
    fn control_selection_falls_back_on_fully_covered_space() {
        // One +all-style domain covers everything, one /24 stacks on
        // top: no zero-coverage address exists, so controls come from
        // the lowest-weight ranges instead.
        let mut coverage = CoverageMap::new();
        coverage.add_set(&spf_types::Ipv4Set::full());
        let mut hot = spf_types::Ipv4Set::new();
        hot.insert_cidr(&spf_types::Ipv4Cidr::parse("198.51.100.0/24").unwrap());
        coverage.add_set(&hot);
        let weighted = coverage.into_weighted();
        let a = select_vantages(&weighted, &[], 1, 2, 0xfeed);
        let b = select_vantages(&weighted, &[], 1, 2, 0xfeed);
        assert_eq!(a, b);
        let controls: Vec<&VantagePoint> = a
            .iter()
            .filter(|v| v.kind == VantageKind::Control)
            .collect();
        assert_eq!(controls.len(), 2);
        for v in &controls {
            assert!(v.label.contains("floor 1"), "{}", v.label);
            assert_eq!(weighted.weight_at(v.ip), 1);
        }
    }

    #[test]
    fn matrix_counts_the_three_cohorts() {
        let (store, domains, weighted) = build_world();
        let resolver = ZoneResolver::new(store);
        let vantages = vantage_set(&weighted, 1);
        let (matrix, stats) = spoof_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(4),
        );
        assert_eq!(matrix.domains, 9);
        assert_eq!(matrix.spf_domains, 8);
        // The top shared vantage (inside the cloud /24) passes the six
        // customers plus the +all domain.
        assert_eq!(matrix.vantages[0].pass, 7);
        assert_eq!(matrix.vantages[0].none, 1);
        // Every attacker-reachable pass: 6 customers + open.example
        // (tight.example's own /32 is not in this vantage set).
        assert_eq!(matrix.spoofable_shared, 7);
        // Controls only pass the +all record.
        assert_eq!(matrix.spoofable_control, 1);
        assert_eq!(matrix.lazy_gatekeepers, 7);
        assert!((matrix.lazy_gatekeeper_rate() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(stats.evaluations, 9 * 5);
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn cached_and_uncached_matrices_serialize_identically() {
        let (store, domains, weighted) = build_world();
        let vantages = vantage_set(&weighted, 2);
        let run = |config: SpoofMatrixConfig| {
            let resolver = ZoneResolver::new(Arc::clone(&store));
            let (matrix, _) = spoof_matrix(&resolver, &domains, &vantages, config);
            serde_json::to_string(&matrix).unwrap()
        };
        let reference = run(SpoofMatrixConfig::with_workers(1).cached(false));
        for workers in [1usize, 4] {
            for shards in [1usize, 16] {
                assert_eq!(
                    reference,
                    run(SpoofMatrixConfig::with_workers(workers).cache_shards(shards)),
                    "diverged at workers={workers} shards={shards}"
                );
            }
        }
        assert_eq!(
            reference,
            run(SpoofMatrixConfig::with_workers(4).batch_size(1))
        );
        // The compiled backend is the third way to the same bytes.
        for workers in [1usize, 4] {
            assert_eq!(
                reference,
                run(SpoofMatrixConfig::with_workers(workers).compiled(true)),
                "compiled backend diverged at workers={workers}"
            );
        }
        assert_eq!(
            reference,
            run(SpoofMatrixConfig::with_workers(4)
                .compiled(true)
                .cached(false))
        );
    }

    #[test]
    fn compiled_backend_reports_compiler_stats() {
        let (store, domains, weighted) = build_world();
        let resolver = ZoneResolver::new(store);
        let vantages = vantage_set(&weighted, 1);
        let (_, stats) = spoof_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(2).compiled(true),
        );
        let compiler = stats.compiler.expect("compiled backend ran");
        assert_eq!(compiler.domains_compiled, domains.len() as u64);
        // build_world is all-static: everything compiles fully and every
        // verdict answers from the tables.
        assert_eq!(compiler.full, compiler.domains_compiled);
        assert_eq!(
            compiler.compiled_verdicts,
            (domains.len() * vantages.len()) as u64
        );
        assert_eq!(compiler.fallback_verdicts, 0);
        assert!((compiler.compiled_hit_rate() - 1.0).abs() < 1e-12);

        // The uncompiled backends report no compiler stats.
        let (_, plain) = spoof_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(2),
        );
        assert!(plain.compiler.is_none());
    }

    #[test]
    fn verdict_cache_dedupes_shared_subtrees() {
        let (store, domains, weighted) = build_world();
        let resolver = ZoneResolver::new(store);
        let vantages = vantage_set(&weighted, 2);
        let (_, stats) = spoof_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(1),
        );
        // Six customers share one provider subtree per vantage: at least
        // five of the six probes per vantage hit the memo.
        assert!(
            stats.cache_hits >= 5 * vantages.len() as u64,
            "hits = {}",
            stats.cache_hits
        );
    }

    #[test]
    fn folded_rows_reproduce_batch_matrix_and_fold_out_inverts() {
        let (store, domains, weighted) = build_world();
        let resolver = ZoneResolver::new(Arc::clone(&store));
        let vantages = vantage_set(&weighted, 2);
        let (batch, _) = spoof_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(4),
        );
        let mut compiler = CompilerStats::default();
        let rows: Vec<DomainMatrixRow> = domains
            .iter()
            .map(|d| {
                evaluate_matrix_row(
                    &resolver,
                    d,
                    &vantages,
                    &EvalPolicy::default(),
                    None,
                    false,
                    &mut compiler,
                )
            })
            .collect();
        let mut folded = SpoofMatrix::empty(domains.len() as u64, &vantages);
        for row in &rows {
            folded.fold_in(row);
        }
        assert_eq!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&folded).unwrap()
        );
        // fold_out is the exact inverse: retract + re-fold any row and
        // the bytes are unchanged.
        let snapshot = serde_json::to_string(&folded).unwrap();
        for row in &rows {
            folded.fold_out(row);
            folded.fold_in(row);
        }
        assert_eq!(snapshot, serde_json::to_string(&folded).unwrap());
        // Retracting every row returns to the all-zero matrix.
        for row in &rows {
            folded.fold_out(row);
        }
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&SpoofMatrix::empty(domains.len() as u64, &vantages)).unwrap()
        );
    }

    #[test]
    fn empty_inputs() {
        let store = Arc::new(ZoneStore::new());
        let resolver = ZoneResolver::new(store);
        let (matrix, stats) = spoof_matrix(&resolver, &[], &[], SpoofMatrixConfig::default());
        assert_eq!(matrix.domains, 0);
        assert_eq!(matrix.spf_domains, 0);
        assert!(matrix.vantages.is_empty());
        assert_eq!(stats.evaluations, 0);
    }

    /// build_world plus a DMARC / MTA-STS layer: two customers enforce
    /// DMARC (one with enforce-mode MTA-STS on top), one monitors, the
    /// tight domain enforces, the rest publish nothing above SPF.
    fn layer_world(store: &ZoneStore) {
        store.add_txt(
            &dom("_dmarc.c0.example"),
            "v=DMARC1; p=reject; rua=mailto:agg@c0.example",
        );
        store.add_txt(
            &dom("_mta-sts.c0.example"),
            "v=STSv1; id=20230801T000000; mode=enforce",
        );
        store.add_txt(&dom("_dmarc.c1.example"), "v=DMARC1; p=quarantine");
        store.add_txt(&dom("_dmarc.c2.example"), "v=DMARC1; p=none");
        store.add_txt(&dom("_dmarc.tight.example"), "v=DMARC1; p=reject");
        // Testing-mode MTA-STS does not close the residual path.
        store.add_txt(
            &dom("_mta-sts.c1.example"),
            "v=STSv1; id=20230801T000000; mode=testing",
        );
    }

    #[test]
    fn auth_matrix_spf_component_is_byte_identical_to_v1() {
        let (store, domains, weighted) = build_world();
        layer_world(&store);
        let vantages = vantage_set(&weighted, 2);
        let v1 = |config: SpoofMatrixConfig| {
            let resolver = ZoneResolver::new(Arc::clone(&store));
            let (matrix, _) = spoof_matrix(&resolver, &domains, &vantages, config);
            serde_json::to_string(&matrix).unwrap()
        };
        let v2 = |config: SpoofMatrixConfig| {
            let resolver = ZoneResolver::new(Arc::clone(&store));
            let (matrix, _) = auth_matrix(&resolver, &domains, &vantages, config);
            serde_json::to_string(&matrix.spf).unwrap()
        };
        let reference = v1(SpoofMatrixConfig::with_workers(1).cached(false));
        for workers in [1usize, 4] {
            for compiled in [false, true] {
                for cached in [false, true] {
                    let config = SpoofMatrixConfig::with_workers(workers)
                        .compiled(compiled)
                        .cached(cached);
                    assert_eq!(
                        reference,
                        v2(config),
                        "v2 SPF sub-matrix diverged at workers={workers} \
                         compiled={compiled} cached={cached}"
                    );
                }
            }
        }
        // And the full v2 report itself is config-independent.
        let full = |config: SpoofMatrixConfig| {
            let resolver = ZoneResolver::new(Arc::clone(&store));
            let (matrix, _) = auth_matrix(&resolver, &domains, &vantages, config);
            serde_json::to_string(&matrix).unwrap()
        };
        let full_ref = full(SpoofMatrixConfig::with_workers(1).cached(false));
        for workers in [1usize, 4] {
            assert_eq!(
                full_ref,
                full(SpoofMatrixConfig::with_workers(workers).compiled(true)),
                "full v2 report diverged at workers={workers}"
            );
        }
    }

    #[test]
    fn auth_matrix_buckets_tiers_and_attributes_stops() {
        let (store, domains, weighted) = build_world();
        layer_world(&store);
        let resolver = ZoneResolver::new(Arc::clone(&store));
        let vantages = vantage_set(&weighted, 1);
        let (matrix, stats) = auth_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(4),
        );
        // Every preset bucket is present, in ALL order, even when empty.
        assert_eq!(matrix.tiers.len(), DeploymentMix::ALL.len());
        for (bucket, tier) in matrix.tiers.iter().zip(DeploymentMix::ALL) {
            assert_eq!(bucket.tier, tier);
        }
        // norecord.example is the only no-auth domain.
        assert_eq!(matrix.tier(DeploymentMix::NoAuth).domains, 1);
        // c3..c5 + open publish SPF only.
        assert_eq!(matrix.tier(DeploymentMix::SpfOnly).domains, 4);
        // c2 monitors.
        assert_eq!(matrix.tier(DeploymentMix::SpfDmarcNone).domains, 1);
        // c1 (quarantine + testing-mode STS) and tight enforce DMARC.
        assert_eq!(matrix.tier(DeploymentMix::SpfDmarcEnforced).domains, 2);
        // c0 runs the full stack.
        assert_eq!(matrix.tier(DeploymentMix::FullStack).domains, 1);
        // Layer adoption counters: c0 + c1 + c2 + tight publish DMARC,
        // of which all but the monitoring c2 enforce.
        assert_eq!(matrix.dmarc_domains, 4);
        assert_eq!(matrix.dmarc_enforced_domains, 3);
        assert_eq!(matrix.mta_sts_enforced_domains, 1);
        // Per-domain sums reconcile with the population.
        let tier_total: u64 = matrix.tiers.iter().map(|t| t.domains).sum();
        assert_eq!(tier_total, matrix.spf.domains);
        // Stop attribution: from the in-cloud shared vantage every
        // customer passes SPF, so DMARC never gets to stop those pairs —
        // the lazy-gatekeeper story — while tight.example's -all is an
        // SPF stop from everywhere in this vantage set.
        let shared_stops = &matrix.vantage_stops[0];
        assert!(shared_stops.none >= 1, "open.example stays spoofable");
        assert!(shared_stops.spf >= 1, "tight.example hard-fails");
        // c0 passes SPF from the shared vantage (StopLayer::None on an
        // attacker-reachable pair) — the full stack does NOT rescue an
        // SPF pass, so it stays residual-spoofable.
        assert!(matrix.tier(DeploymentMix::FullStack).residual_spoofable >= 1);
        assert!(matrix.residual_spoofable >= 2);
        assert_eq!(
            matrix.residual_rate(),
            matrix.residual_spoofable as f64 / 9.0
        );
        // Per-tier stop histograms cover exactly the attacker-reachable
        // pairs of that tier.
        let attacker_vantages = vantages
            .iter()
            .filter(|v| v.kind.attacker_reachable())
            .count() as u64;
        for bucket in &matrix.tiers {
            assert_eq!(bucket.stops.total(), bucket.domains * attacker_vantages);
        }
        // A cold engine cache resolves each domain exactly once.
        assert_eq!(stats.auth_cache.dmarc_misses, 9);
        assert_eq!(stats.auth_cache.dmarc_hits, 0);
        // SPF engine stats are still reported.
        assert_eq!(stats.engine.evaluations, 9 * 5);
    }

    #[test]
    fn warm_auth_cache_shows_hit_rate() {
        let (store, domains, weighted) = build_world();
        layer_world(&store);
        let resolver = ZoneResolver::new(Arc::clone(&store));
        let vantages = vantage_set(&weighted, 1);
        let cache = AuthCache::new();
        let config = SpoofMatrixConfig::with_workers(2);
        let (cold, _) = auth_matrix_with_cache(&resolver, &domains, &vantages, config, &cache);
        let (warm, stats) = auth_matrix_with_cache(&resolver, &domains, &vantages, config, &cache);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );
        assert_eq!(stats.auth_cache.dmarc_hits, 9);
        assert_eq!(stats.auth_cache.dmarc_misses, 9);
        assert!((stats.auth_cache.dmarc_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auth_rows_fold_identically_to_batch_and_invert() {
        let (store, domains, weighted) = build_world();
        layer_world(&store);
        let resolver = ZoneResolver::new(Arc::clone(&store));
        let vantages = vantage_set(&weighted, 2);
        let (batch, _) = auth_matrix(
            &resolver,
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(4),
        );
        let mut compiler = CompilerStats::default();
        let rows: Vec<AuthMatrixRow> = domains
            .iter()
            .map(|d| {
                evaluate_auth_row(
                    &resolver,
                    d,
                    &vantages,
                    &EvalPolicy::default(),
                    None,
                    false,
                    &mut compiler,
                    None,
                )
            })
            .collect();
        let mut folded = AuthMatrix::empty(domains.len() as u64, &vantages);
        for row in &rows {
            folded.fold_in(row);
        }
        assert_eq!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&folded).unwrap()
        );
        let snapshot = serde_json::to_string(&folded).unwrap();
        for row in &rows {
            folded.fold_out(row);
            folded.fold_in(row);
        }
        assert_eq!(snapshot, serde_json::to_string(&folded).unwrap());
        for row in &rows {
            folded.fold_out(row);
        }
        assert_eq!(
            serde_json::to_string(&folded).unwrap(),
            serde_json::to_string(&AuthMatrix::empty(domains.len() as u64, &vantages)).unwrap()
        );
    }
}
