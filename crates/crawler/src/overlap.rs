//! Population-scale overlap analytics: the first view that treats the
//! crawl output as *one corpus* instead of independent rows.
//!
//! The paper's §6 finding is that laxness is shared: a handful of cloud
//! ranges appear in thousands of SPF trees, so one rented address spoofs
//! whole swaths of the population at once. This module distills the
//! crawl's merged [`spf_types::CoverageMap`] (see
//! [`crate::CrawlOutput::coverage`]) and the include ecosystem into the
//! three §6-shaped answers:
//!
//! * **max coverage** — the single most-spoofable IPv4 address and how
//!   many domains authorize it;
//! * **coverage histogram** — how much address space is authorized by at
//!   least `k` domains, at power-of-two thresholds;
//! * **provider concentration** — the top include trees ranked by
//!   covered space (Table 4 in overlap form).
//!
//! Everything here is a pure function of deterministic inputs, so the
//! serialized report is byte-identical across worker / shard / transport
//! configurations (asserted by the `overlap_stress` suite).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use spf_types::{DomainName, WeightedRanges};

use crate::ecosystem::IncludeStats;

/// How many provider rows an overlap report carries by default.
pub const DEFAULT_PROVIDER_ROWS: usize = 10;

/// One provider-concentration row: an include tree and the space it
/// injects into every customer's authorization set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderConcentration {
    /// The include target (e.g. `spf.protection.outlook.com`).
    pub domain: DomainName,
    /// Scanned domains referencing it at top level.
    pub used_by: u64,
    /// IPv4 addresses its subtree authorizes.
    pub covered_ips: u64,
    /// Its covered space as a fraction of the population's total covered
    /// space (0 when nothing is covered).
    pub share_of_union: f64,
}

/// The population's address-space overlap profile, ready for rendering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapReport {
    /// SPF-bearing domains whose range sets were folded in.
    pub spf_domains: u64,
    /// Distinct weighted ranges in the profile (the sweep's output size).
    pub weighted_ranges: u64,
    /// Addresses authorized by at least one domain.
    pub total_covered: u64,
    /// The most-spoofable address: lowest address authorized by the most
    /// domains (`None` when no domain authorizes anything).
    pub max_coverage_addr: Option<Ipv4Addr>,
    /// How many domains authorize [`OverlapReport::max_coverage_addr`].
    pub max_coverage_domains: u64,
    /// `(k, addresses authorized by ≥ k domains)` at power-of-two `k`.
    pub histogram: Vec<(u64, u64)>,
    /// Top include trees by covered space.
    pub providers: Vec<ProviderConcentration>,
}

impl OverlapReport {
    /// Distill the crawl's weighted coverage profile and include
    /// ecosystem into the overlap report, keeping the `top_n` largest
    /// include trees by covered space.
    pub fn compute(
        weighted: &WeightedRanges,
        eco: &[IncludeStats],
        spf_domains: u64,
        top_n: usize,
    ) -> OverlapReport {
        let total_covered = weighted.total_covered();
        let (max_coverage_addr, max_coverage_domains) = match weighted.max_coverage() {
            Some((addr, domains)) => (Some(addr), domains),
            None => (None, 0),
        };
        let mut by_space: Vec<&IncludeStats> = eco.iter().collect();
        // Rank by covered space; ties break on the name so the report is
        // independent of the ecosystem's usage-ranked input order.
        by_space.sort_by(|a, b| {
            b.allowed_ips
                .cmp(&a.allowed_ips)
                .then_with(|| a.domain.cmp(&b.domain))
        });
        let providers = by_space
            .into_iter()
            .take(top_n)
            .map(|s| ProviderConcentration {
                domain: s.domain.clone(),
                used_by: s.used_by,
                covered_ips: s.allowed_ips,
                share_of_union: if total_covered == 0 {
                    0.0
                } else {
                    s.allowed_ips as f64 / total_covered as f64
                },
            })
            .collect();
        OverlapReport {
            spf_domains,
            weighted_ranges: weighted.range_count() as u64,
            total_covered,
            max_coverage_addr,
            max_coverage_domains,
            histogram: weighted.power_of_two_histogram(),
            providers,
        }
    }

    /// The fraction of SPF-bearing domains that authorize the
    /// most-spoofable address — the paper's "one address spoofs them
    /// all" number.
    pub fn max_coverage_share(&self) -> f64 {
        if self.spf_domains == 0 {
            0.0
        } else {
            self.max_coverage_domains as f64 / self.spf_domains as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{crawl, CrawlConfig};
    use crate::ecosystem::include_ecosystem;
    use spf_analyzer::Walker;
    use spf_dns::{ZoneResolver, ZoneStore};
    use std::sync::Arc;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    /// Two providers — a big one used by most domains and a tiny one —
    /// plus one domain with its own direct range overlapping the big
    /// provider.
    fn build_world() -> (Arc<ZoneStore>, Vec<DomainName>) {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("big.provider.example"), "v=spf1 ip4:10.0.0.0/16 -all");
        store.add_txt(
            &dom("small.provider.example"),
            "v=spf1 ip4:198.51.100.0/30 -all",
        );
        let mut domains = Vec::new();
        for i in 0..8 {
            let d = dom(&format!("c{i}.example"));
            let record = if i < 6 {
                "v=spf1 include:big.provider.example -all".to_string()
            } else {
                "v=spf1 include:small.provider.example -all".to_string()
            };
            store.add_txt(&d, &record);
            domains.push(d);
        }
        let own = dom("own.example");
        store.add_txt(&own, "v=spf1 ip4:10.0.1.0/24 -all"); // inside the /16
        domains.push(own);
        (store, domains)
    }

    fn report_for(workers: usize) -> OverlapReport {
        let (store, domains) = build_world();
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &domains, CrawlConfig::with_workers(workers));
        let eco = include_ecosystem(&out.reports, &walker);
        let spf = out.reports.iter().filter(|r| r.has_spf).count() as u64;
        OverlapReport::compute(&out.coverage.into_weighted(), &eco, spf, 5)
    }

    #[test]
    fn max_coverage_and_histogram() {
        let r = report_for(4);
        assert_eq!(r.spf_domains, 9);
        // The /16's most-contested /24 carries 6 provider customers plus
        // own.example's direct range.
        assert_eq!(r.max_coverage_domains, 7);
        assert_eq!(
            r.max_coverage_addr,
            Some("10.0.1.0".parse::<Ipv4Addr>().unwrap())
        );
        assert_eq!(r.total_covered, 65536 + 4);
        // Histogram: ≥1 and ≥2 cover the whole union (the small /30 has
        // two customers too), ≥4 only the /16; the ladder stops at max
        // weight 7.
        assert_eq!(r.histogram, vec![(1, 65540), (2, 65540), (4, 65536)]);
        assert!((r.max_coverage_share() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn providers_ranked_by_covered_space() {
        let r = report_for(2);
        assert_eq!(r.providers.len(), 2);
        assert_eq!(r.providers[0].domain, dom("big.provider.example"));
        assert_eq!(r.providers[0].used_by, 6);
        assert_eq!(r.providers[0].covered_ips, 65536);
        assert!(r.providers[0].share_of_union > 0.99);
        assert_eq!(r.providers[1].domain, dom("small.provider.example"));
        assert_eq!(r.providers[1].covered_ips, 4);
    }

    #[test]
    fn report_identical_across_worker_counts() {
        let reference = serde_json::to_string(&report_for(1)).unwrap();
        for workers in [2usize, 8] {
            assert_eq!(
                reference,
                serde_json::to_string(&report_for(workers)).unwrap(),
                "diverged at workers={workers}"
            );
        }
    }

    #[test]
    fn empty_population() {
        let store = Arc::new(ZoneStore::new());
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &[], CrawlConfig::default());
        let r = OverlapReport::compute(&out.coverage.into_weighted(), &[], 0, 10);
        assert_eq!(r.max_coverage_addr, None);
        assert_eq!(r.total_covered, 0);
        assert_eq!(r.max_coverage_share(), 0.0);
        assert_eq!(r.histogram, vec![(1, 0)]);
        assert!(r.providers.is_empty());
    }
}
