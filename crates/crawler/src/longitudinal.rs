//! The longitudinal layer: TTL-driven incremental re-crawl over a
//! churning zone (DESIGN.md §12).
//!
//! The snapshot pipeline answers "what does SPF look like today"; this
//! module turns the corpus into a time series. A [`ChurnEngine`] holds
//! the last full picture of the population — per-domain
//! [`DomainReport`]s, the live [`CoverageMap`], and (optionally) the
//! per-domain spoof-matrix rows — and advances it one epoch at a time:
//!
//! 1. **Deliver.** Zone deltas ([`ZoneDelta`]) arrive at any time, even
//!    while an epoch's crawl is running, and are only *buffered*. Zone
//!    mutation happens exclusively inside the single-threaded
//!    [`ChurnEngine::step`], so a delta landing mid-crawl deterministically
//!    defers to the next epoch — the scheduler quiesces by construction.
//! 2. **Schedule.** A timer wheel (`RecrawlScheduler`, the reactor's
//!    `DeadlineWheel` idiom over *virtual* time) arms one deadline per
//!    domain at its deterministic per-domain TTL; `step(now)` drains the
//!    domains whose TTL expired plus every delta'd domain.
//! 3. **Re-crawl & fold.** Only the due subset goes through the normal
//!    [`crawl`] worker pool; each due domain's old contribution is folded
//!    *out* of the coverage map (and matrix) and its fresh contribution
//!    folded *in*. Because every aggregate is a commutative sum of pure
//!    per-domain facts, the folded state is **byte-identical** to a full
//!    recompute from scratch — not an approximation
//!    (`tests/proptest_churn.rs` and `tests/churn_stress.rs` pin this).
//!
//! The engine does not own the walker: in-memory backends keep one
//! long-lived walker and rely on [`spf_analyzer::Walker::invalidate`]
//! per churned root (sound under the churn locality contract — see
//! `spf_netsim::churn`), while wire-backed callers rebuild their fleet
//! and walker each epoch because [`spf_dns::ZoneStore::partition`]
//! shards are deep copies that do not see later zone mutations.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use spf_analyzer::{DomainReport, Walker};
use spf_core::{CompilerStats, SpfResult};
use spf_dns::Resolver;
use spf_types::{CoverageMap, DomainHashBuilder, DomainName, WeightedRanges};

use crate::crawl::{crawl, CrawlConfig, CrawlStats};
use crate::spoof::{
    evaluate_matrix_row, DomainMatrixRow, SpoofMatrix, SpoofMatrixConfig, SpoofVerdictCache,
    VantagePoint,
};

/// Wheel slots; one tour spans `slots × tick` of virtual time.
const WHEEL_SLOTS: usize = 512;

/// A batched zone change, delivered to the engine for deterministic
/// application at the next epoch boundary.
///
/// The mutation itself is an opaque closure so the crawler never
/// depends on who generates churn (the `spf_netsim` simulator, a test,
/// a replayed trace): the producer captures its own zone handle and the
/// engine just runs the closure inside `step`, before invalidating and
/// re-crawling `changed`.
pub struct ZoneDelta {
    /// The domains the mutation touches (the invalidation set).
    pub changed: Vec<DomainName>,
    apply: Box<dyn FnOnce() + Send>,
}

impl ZoneDelta {
    /// Package a zone mutation with the set of domains it touches.
    pub fn new(changed: Vec<DomainName>, apply: impl FnOnce() + Send + 'static) -> Self {
        ZoneDelta {
            changed,
            apply: Box::new(apply),
        }
    }
}

impl std::fmt::Debug for ZoneDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZoneDelta")
            .field("changed", &self.changed.len())
            .finish()
    }
}

/// The TTL-driven re-crawl timer wheel: `DeadlineWheel` over virtual
/// [`Duration`] time, with lazy cancellation — re-arming a rank leaves
/// the stale entry in place and the sweep drops any entry whose
/// deadline no longer matches the rank's current one.
struct RecrawlScheduler {
    slots: Vec<Vec<(Duration, usize)>>,
    tick: Duration,
    swept_tick: u64,
    len: usize,
}

impl RecrawlScheduler {
    fn new(tick: Duration) -> Self {
        RecrawlScheduler {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            swept_tick: 0,
            len: 0,
        }
    }

    fn tick_of(&self, t: Duration) -> u64 {
        (t.as_micros() / self.tick.as_micros().max(1)) as u64
    }

    fn arm(&mut self, rank: usize, deadline: Duration) {
        let slot = (self.tick_of(deadline) % WHEEL_SLOTS as u64) as usize;
        self.slots[slot].push((deadline, rank));
        self.len += 1;
    }

    /// Extract every live entry due at or before `now`. `deadline_of`
    /// is the per-rank current deadline: entries that no longer match
    /// were superseded by a re-arm and are dropped unreturned.
    fn expire(&mut self, now: Duration, deadline_of: &[Duration]) -> Vec<usize> {
        let mut due = Vec::new();
        let target = self.tick_of(now);
        if self.len == 0 {
            self.swept_tick = target;
            return due;
        }
        let span = target
            .saturating_sub(self.swept_tick)
            .min(WHEEL_SLOTS as u64 - 1);
        for tick in self.swept_tick..=self.swept_tick + span {
            let slot = (tick % WHEEL_SLOTS as u64) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                let (deadline, rank) = entries[i];
                if deadline != deadline_of[rank] {
                    // Superseded by a re-arm: lazily cancelled.
                    entries.swap_remove(i);
                    self.len -= 1;
                } else if deadline <= now {
                    due.push(rank);
                    entries.swap_remove(i);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.swept_tick = target;
        due
    }
}

/// Engine configuration: how to crawl the due subset and how domain
/// TTLs are assigned.
#[derive(Debug, Clone, Copy)]
pub struct LongitudinalConfig {
    /// Worker-pool / backend configuration for each epoch's re-crawl.
    pub crawl: CrawlConfig,
    /// Base virtual TTL every domain gets.
    pub base_ttl: Duration,
    /// Deterministic per-domain jitter added on top of `base_ttl`
    /// (`domain-hash % jitter`), de-phasing expirations the way real
    /// zone TTLs spread a re-crawl.
    pub ttl_jitter: Duration,
}

impl Default for LongitudinalConfig {
    fn default() -> Self {
        LongitudinalConfig {
            crawl: CrawlConfig::default(),
            // Epochs are "months"; the default TTL re-reads a domain
            // roughly every other epoch.
            base_ttl: Duration::from_secs(45 * 86_400),
            ttl_jitter: Duration::from_secs(30 * 86_400),
        }
    }
}

impl LongitudinalConfig {
    /// Builder-style override of [`LongitudinalConfig::crawl`].
    pub fn crawl(mut self, crawl: CrawlConfig) -> Self {
        self.crawl = crawl;
        self
    }

    /// Builder-style override of the TTL assignment.
    pub fn ttl(mut self, base: Duration, jitter: Duration) -> Self {
        self.base_ttl = base;
        self.ttl_jitter = jitter;
        self
    }
}

/// What one [`ChurnEngine::step`] did (epoch 0 is the bootstrap crawl).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// The epoch this step advanced to.
    pub epoch: u64,
    /// The virtual time the step ran at.
    pub virtual_now_secs: u64,
    /// Domains re-crawled because a delivered delta touched them.
    pub delta_domains: u64,
    /// Domains re-crawled because their TTL expired (deduplicated
    /// against the delta set).
    pub expired_domains: u64,
    /// Total domains re-evaluated this epoch.
    pub recrawled: u64,
    /// The incremental crawl's scheduling/throughput counters.
    pub crawl_stats: CrawlStats,
}

/// The per-domain spoof-matrix state the engine folds deltas through.
struct MatrixState {
    vantages: Vec<VantagePoint>,
    config: SpoofMatrixConfig,
    rows: Vec<DomainMatrixRow>,
    matrix: SpoofMatrix,
}

struct EngineState {
    scheduler: RecrawlScheduler,
    /// Each rank's currently armed deadline (the lazy-cancel witness).
    deadline_of: Vec<Duration>,
    reports: Vec<DomainReport>,
    coverage: CoverageMap,
    matrix: Option<MatrixState>,
    last_crawl_stats: CrawlStats,
    epoch: u64,
}

/// The longitudinal churn engine: the corpus as a time series.
///
/// See the module docs for the deliver/step contract. All mutation is
/// serialized through one internal lock; [`ChurnEngine::deliver`] is
/// safe to call from any thread at any time.
pub struct ChurnEngine {
    domains: Vec<DomainName>,
    index: HashMap<DomainName, usize, DomainHashBuilder>,
    config: LongitudinalConfig,
    inbox: Mutex<Vec<ZoneDelta>>,
    state: Mutex<EngineState>,
}

impl ChurnEngine {
    /// Bootstrap the engine with a full crawl of `domains` at virtual
    /// time zero, arming every domain's TTL deadline.
    pub fn bootstrap<R: Resolver>(
        walker: &Walker<R>,
        domains: Vec<DomainName>,
        config: LongitudinalConfig,
    ) -> ChurnEngine {
        let output = crawl(walker, &domains, config.crawl);
        let index: HashMap<DomainName, usize, DomainHashBuilder> = domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.clone(), i))
            .collect();
        // One wheel tour covers the base TTL + jitter span.
        let horizon = config.base_ttl + config.ttl_jitter;
        let mut scheduler = RecrawlScheduler::new(horizon / WHEEL_SLOTS as u32);
        let mut deadline_of = Vec::with_capacity(domains.len());
        for (rank, domain) in domains.iter().enumerate() {
            let deadline = ttl_of(domain, &config);
            deadline_of.push(deadline);
            scheduler.arm(rank, deadline);
        }
        ChurnEngine {
            domains,
            index,
            config,
            inbox: Mutex::new(Vec::new()),
            state: Mutex::new(EngineState {
                scheduler,
                deadline_of,
                reports: output.reports,
                coverage: output.coverage,
                matrix: None,
                last_crawl_stats: output.stats,
                epoch: 0,
            }),
        }
    }

    /// Attach spoof-matrix tracking: evaluate every domain's row from
    /// the fixed `vantages` set and fold them into a live matrix.
    ///
    /// The vantage set is chosen once (normally from the bootstrap
    /// coverage profile) and held constant across epochs — the right
    /// longitudinal methodology (trends are measured from fixed
    /// observation points) and what makes row folding exact.
    pub fn attach_matrix<R: Resolver>(
        &self,
        resolver: &R,
        vantages: Vec<VantagePoint>,
        config: SpoofMatrixConfig,
    ) {
        let rows = evaluate_rows(resolver, &self.domains, &vantages, &config);
        let mut matrix = SpoofMatrix::empty(self.domains.len() as u64, &vantages);
        for row in &rows {
            matrix.fold_in(row);
        }
        let mut state = self.state.lock().expect("engine state lock");
        state.matrix = Some(MatrixState {
            vantages,
            config,
            rows,
            matrix,
        });
    }

    /// Buffer a zone delta for the next epoch. Never blocks on a
    /// running step for longer than the inbox push; the zone mutation
    /// itself is deferred into [`ChurnEngine::step`], so delivering
    /// mid-crawl is always safe and lands deterministically in the next
    /// epoch.
    pub fn deliver(&self, delta: ZoneDelta) {
        self.inbox.lock().expect("engine inbox lock").push(delta);
    }

    /// Advance one epoch at virtual time `now` (must be monotonically
    /// non-decreasing across calls): apply every buffered delta, then
    /// re-crawl the delta'd and TTL-expired domains through `walker`
    /// and fold their old contributions out and new ones in.
    ///
    /// Memory-backed callers pass the same long-lived walker every
    /// epoch (churned roots are invalidated here); wire-backed callers
    /// pass a freshly rebuilt walker because their server fleets hold
    /// deep copies of the zone.
    pub fn step<R: Resolver>(&self, walker: &Walker<R>, now: Duration) -> EpochReport {
        let deltas: Vec<ZoneDelta> = {
            let mut inbox = self.inbox.lock().expect("engine inbox lock");
            std::mem::take(&mut *inbox)
        };
        let mut state = self.state.lock().expect("engine state lock");
        let state = &mut *state;

        // Apply buffered mutations in delivery order, collecting the
        // delta'd ranks; every churned root's memoized analysis is
        // evicted so the re-crawl reads the live zone.
        let mut delta_ranks: Vec<usize> = Vec::new();
        for delta in deltas {
            let ZoneDelta { changed, apply } = delta;
            apply();
            for domain in changed {
                walker.invalidate(&domain);
                if let Some(&rank) = self.index.get(&domain) {
                    delta_ranks.push(rank);
                }
            }
        }
        delta_ranks.sort_unstable();
        delta_ranks.dedup();

        let expired = state.scheduler.expire(now, &state.deadline_of);
        let delta_count = delta_ranks.len() as u64;
        let mut due = delta_ranks;
        due.extend(expired);
        due.sort_unstable();
        due.dedup();
        let expired_count = due.len() as u64 - delta_count;

        let due_domains: Vec<DomainName> =
            due.iter().map(|&rank| self.domains[rank].clone()).collect();
        let output = crawl(walker, &due_domains, self.config.crawl);

        // Fold the due subset's old coverage out, new coverage in. The
        // crawl already accumulated the new sets under the exact same
        // per-report condition it uses for full crawls.
        for &rank in &due {
            let old = &state.reports[rank];
            if old.has_spf {
                if let Some(record) = old.record.as_ref() {
                    state.coverage.remove_set(&record.ips);
                }
            }
        }
        state.coverage.merge(output.coverage);

        if let Some(matrix) = state.matrix.as_mut() {
            let cache = matrix
                .config
                .use_cache
                .then(|| SpoofVerdictCache::new(matrix.config.cache_shards));
            let mut compiler = CompilerStats::default();
            for (&rank, domain) in due.iter().zip(&due_domains) {
                let row = evaluate_matrix_row(
                    walker.resolver(),
                    domain,
                    &matrix.vantages,
                    &matrix.config.policy,
                    cache.as_ref(),
                    matrix.config.use_compiled,
                    &mut compiler,
                );
                matrix.matrix.fold_out(&matrix.rows[rank]);
                matrix.matrix.fold_in(&row);
                matrix.rows[rank] = row;
            }
        }

        for (&rank, report) in due.iter().zip(output.reports) {
            state.reports[rank] = report;
        }
        for &rank in &due {
            let deadline = now + ttl_of(&self.domains[rank], &self.config);
            state.deadline_of[rank] = deadline;
            state.scheduler.arm(rank, deadline);
        }

        state.epoch += 1;
        state.last_crawl_stats = output.stats;
        EpochReport {
            epoch: state.epoch,
            virtual_now_secs: now.as_secs(),
            delta_domains: delta_count,
            expired_domains: expired_count,
            recrawled: due.len() as u64,
            crawl_stats: output.stats,
        }
    }

    /// The tracked population, in rank order.
    pub fn domains(&self) -> &[DomainName] {
        &self.domains
    }

    /// Epochs stepped so far (0 right after bootstrap).
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("engine state lock").epoch
    }

    /// The bootstrap (or latest incremental) crawl's counters.
    pub fn last_crawl_stats(&self) -> CrawlStats {
        self.state
            .lock()
            .expect("engine state lock")
            .last_crawl_stats
    }

    /// A snapshot of the current per-domain reports, in rank order —
    /// byte-identical to what a from-scratch full crawl of the current
    /// zone would produce.
    pub fn reports(&self) -> Vec<DomainReport> {
        self.state
            .lock()
            .expect("engine state lock")
            .reports
            .clone()
    }

    /// The current population coverage profile, swept to canonical
    /// [`WeightedRanges`] form.
    pub fn weighted(&self) -> WeightedRanges {
        self.state
            .lock()
            .expect("engine state lock")
            .coverage
            .weighted()
    }

    /// The current spoof matrix, if [`ChurnEngine::attach_matrix`] ran.
    pub fn matrix(&self) -> Option<SpoofMatrix> {
        self.state
            .lock()
            .expect("engine state lock")
            .matrix
            .as_ref()
            .map(|m| m.matrix.clone())
    }

    /// The fixed vantage set, if matrix tracking is attached.
    pub fn vantages(&self) -> Option<Vec<VantagePoint>> {
        self.state
            .lock()
            .expect("engine state lock")
            .matrix
            .as_ref()
            .map(|m| m.vantages.clone())
    }

    /// Domains currently publishing SPF (derived from the live reports).
    pub fn spf_domains(&self) -> u64 {
        self.state
            .lock()
            .expect("engine state lock")
            .reports
            .iter()
            .filter(|r| r.has_spf)
            .count() as u64
    }

    /// Pending (delivered but not yet applied) delta batches.
    pub fn pending_deltas(&self) -> usize {
        self.inbox.lock().expect("engine inbox lock").len()
    }
}

/// The deterministic per-domain TTL: base plus hash-spread jitter.
fn ttl_of(domain: &DomainName, config: &LongitudinalConfig) -> Duration {
    let jitter_ms = config.ttl_jitter.as_millis() as u64;
    let jitter = if jitter_ms == 0 {
        0
    } else {
        domain.precomputed_hash() % (jitter_ms + 1)
    };
    config.base_ttl + Duration::from_millis(jitter)
}

/// Evaluate every domain's matrix row, chunked across the configured
/// worker count. Rows land in rank order regardless of scheduling.
fn evaluate_rows<R: Resolver>(
    resolver: &R,
    domains: &[DomainName],
    vantages: &[VantagePoint],
    config: &SpoofMatrixConfig,
) -> Vec<DomainMatrixRow> {
    let workers = config.workers.max(1);
    let cache = config
        .use_cache
        .then(|| SpoofVerdictCache::new(config.cache_shards));
    let cache = cache.as_ref();
    let chunk = domains.len().div_ceil(workers).max(1);
    let mut rows: Vec<Option<DomainMatrixRow>> = vec![None; domains.len()];
    std::thread::scope(|scope| {
        for (slice, out) in domains.chunks(chunk).zip(rows.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut compiler = CompilerStats::default();
                for (domain, slot) in slice.iter().zip(out.iter_mut()) {
                    *slot = Some(evaluate_matrix_row(
                        resolver,
                        domain,
                        vantages,
                        &config.policy,
                        cache,
                        config.use_compiled,
                        &mut compiler,
                    ));
                }
            });
        }
    });
    rows.into_iter()
        .map(|r| r.expect("every rank evaluated"))
        .collect()
}

/// Convenience for trend rendering: the most-covered address of a
/// weighted profile, if any.
pub fn max_coverage_point(weighted: &WeightedRanges) -> Option<(Ipv4Addr, u64)> {
    weighted.max_coverage()
}

/// Count pass verdicts in a matrix row (handy for tests).
pub fn row_pass_count(row: &DomainMatrixRow) -> usize {
    row.cells
        .iter()
        .filter(|c| c.result == SpfResult::Pass)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_dns::{ZoneResolver, ZoneStore};
    use std::sync::Arc;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn world() -> (Arc<ZoneStore>, Vec<DomainName>) {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("spf.cloud.example"), "v=spf1 ip4:198.51.100.0/24 -all");
        let mut domains = Vec::new();
        for i in 0..8 {
            let d = dom(&format!("site{i}.example"));
            store.add_txt(&d, "v=spf1 include:spf.cloud.example -all");
            domains.push(d);
        }
        let open = dom("open.example");
        store.add_txt(&open, "v=spf1 +all");
        domains.push(open);
        domains.push(dom("norecord.example"));
        (store, domains)
    }

    fn full_recompute(
        store: &Arc<ZoneStore>,
        domains: &[DomainName],
        config: CrawlConfig,
    ) -> (String, String) {
        let walker = Walker::new(ZoneResolver::new(Arc::clone(store)));
        let out = crawl(&walker, domains, config);
        (
            serde_json::to_string(&out.reports).unwrap(),
            serde_json::to_string(&out.coverage.weighted()).unwrap(),
        )
    }

    #[test]
    fn incremental_step_matches_full_recompute_bytes() {
        let (store, domains) = world();
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
        let config = LongitudinalConfig::default()
            .crawl(CrawlConfig::with_workers(2))
            .ttl(Duration::from_secs(3600), Duration::from_secs(600));
        let engine = ChurnEngine::bootstrap(&walker, domains.clone(), config);

        // Epoch 1: one domain tightens, one loses its record.
        let s2 = Arc::clone(&store);
        engine.deliver(ZoneDelta::new(
            vec![dom("open.example"), dom("site3.example")],
            move || {
                s2.replace_txt(&dom("open.example"), "v=spf1 ip4:203.0.113.9 -all");
                s2.remove_type(&dom("site3.example"), spf_dns::RecordType::Txt);
            },
        ));
        let report = engine.step(&walker, Duration::from_secs(1));
        assert_eq!(report.delta_domains, 2);
        assert_eq!(report.recrawled, 2);

        let (full_reports, full_weighted) =
            full_recompute(&store, &domains, CrawlConfig::with_workers(2));
        assert_eq!(
            serde_json::to_string(&engine.reports()).unwrap(),
            full_reports
        );
        assert_eq!(
            serde_json::to_string(&engine.weighted()).unwrap(),
            full_weighted
        );

        // Epoch 2: nothing delivered, TTLs all expire far past now + 2h.
        let report = engine.step(&walker, Duration::from_secs(2));
        assert_eq!(report.recrawled, 0);
        assert_eq!(
            serde_json::to_string(&engine.reports()).unwrap(),
            full_reports
        );
    }

    #[test]
    fn ttl_expiry_rescans_without_deltas_and_rearms() {
        let (store, domains) = world();
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
        let config = LongitudinalConfig::default()
            .crawl(CrawlConfig::with_workers(2))
            .ttl(Duration::from_secs(60), Duration::from_secs(30));
        let engine = ChurnEngine::bootstrap(&walker, domains.clone(), config);
        // Everything expires within 90s.
        let report = engine.step(&walker, Duration::from_secs(120));
        assert_eq!(report.expired_domains, domains.len() as u64);
        assert_eq!(report.delta_domains, 0);
        // Re-armed: a second sweep 10s later finds nothing due.
        let report = engine.step(&walker, Duration::from_secs(130));
        assert_eq!(report.recrawled, 0);
        // …but the full TTL later everything is due again.
        let report = engine.step(&walker, Duration::from_secs(240));
        assert_eq!(report.recrawled, domains.len() as u64);
    }

    #[test]
    fn delta_before_ttl_rescans_immediately_and_supersedes_deadline() {
        let (store, _) = world();
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
        let config = LongitudinalConfig::default()
            .crawl(CrawlConfig::with_workers(1))
            .ttl(Duration::from_secs(100), Duration::ZERO);
        // Track only site0 so the assertion isolates ITS deadline.
        let engine = ChurnEngine::bootstrap(&walker, vec![dom("site0.example")], config);
        let s2 = Arc::clone(&store);
        engine.deliver(ZoneDelta::new(vec![dom("site0.example")], move || {
            s2.replace_txt(&dom("site0.example"), "v=spf1 ?all");
        }));
        // Churned at t=10, long before its 100s TTL.
        let report = engine.step(&walker, Duration::from_secs(10));
        assert_eq!(report.recrawled, 1);
        assert!(engine.reports()[0].record.is_some());
        // The superseded 100s deadline must not fire again at t=101 —
        // the re-arm moved it to t=110.
        let report = engine.step(&walker, Duration::from_secs(105));
        assert_eq!(report.recrawled, 0);
        let report = engine.step(&walker, Duration::from_secs(111));
        assert_eq!(report.recrawled, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn matrix_rows_fold_identically_to_fresh_matrix() {
        use crate::spoof::{select_vantages, spoof_matrix};
        let (store, domains) = world();
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
        let config = LongitudinalConfig::default()
            .crawl(CrawlConfig::with_workers(2))
            .ttl(Duration::from_secs(3600), Duration::ZERO);
        let engine = ChurnEngine::bootstrap(&walker, domains.clone(), config);
        let vantages = select_vantages(&engine.weighted(), &[], 3, 2, 0xbeef);
        engine.attach_matrix(
            walker.resolver(),
            vantages.clone(),
            SpoofMatrixConfig::with_workers(2),
        );
        let s2 = Arc::clone(&store);
        engine.deliver(ZoneDelta::new(vec![dom("site5.example")], move || {
            s2.replace_txt(&dom("site5.example"), "v=spf1 +all");
        }));
        engine.step(&walker, Duration::from_secs(5));
        let fresh_walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
        let (fresh, _) = spoof_matrix(
            fresh_walker.resolver(),
            &domains,
            &vantages,
            SpoofMatrixConfig::with_workers(4),
        );
        assert_eq!(
            serde_json::to_string(&engine.matrix().unwrap()).unwrap(),
            serde_json::to_string(&fresh).unwrap()
        );
    }

    #[test]
    fn mid_crawl_delivery_defers_to_next_epoch() {
        let (store, domains) = world();
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&store)));
        let config = LongitudinalConfig::default()
            .crawl(CrawlConfig::with_workers(2))
            .ttl(Duration::from_secs(3600), Duration::ZERO);
        let engine = ChurnEngine::bootstrap(&walker, domains, config);
        // Deliver from another thread while a step may be running: the
        // delta is only buffered, never applied concurrently.
        std::thread::scope(|scope| {
            let engine = &engine;
            let s2 = Arc::clone(&store);
            scope.spawn(move || {
                engine.deliver(ZoneDelta::new(vec![dom("site1.example")], move || {
                    s2.replace_txt(&dom("site1.example"), "v=spf1 -all");
                }));
            });
            let _ = engine.step(&walker, Duration::from_secs(1));
        });
        // Whether the delivery won or lost the race against step's
        // inbox drain, by the next step it must be applied.
        engine.step(&walker, Duration::from_secs(2));
        assert_eq!(engine.pending_deltas(), 0);
        let reports = engine.reports();
        let site1 = reports
            .iter()
            .find(|r| r.domain == dom("site1.example"))
            .unwrap();
        assert!(site1.record.as_ref().unwrap().is_deny_all_only);
    }
}
