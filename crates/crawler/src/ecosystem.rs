//! The include ecosystem: per-include usage and weight statistics behind
//! Table 4 (top-20 includes), Figure 4 (includes exceeding the lookup
//! limit), Figure 7 (subnet sizes inside includes) and Figure 8 (usage ×
//! allowed-IP heatmap).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use spf_analyzer::{DomainReport, Walker};
use spf_dns::Resolver;
use spf_types::{DomainHashBuilder, DomainName};

/// Statistics for one include target across the whole scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncludeStats {
    /// The included domain (e.g. `spf.protection.outlook.com`).
    pub domain: DomainName,
    /// How many scanned domains reference it at top level ("Used by").
    pub used_by: u64,
    /// IPv4 addresses its subtree authorizes ("Allowed IPs").
    pub allowed_ips: u64,
    /// DNS-querying terms its own evaluation needs (Figure 4's x-axis);
    /// `> 10` means every customer inherits a lookup-limit error.
    pub dns_lookups: usize,
    /// Prefix lengths of the IPv4 networks its subtree contributes
    /// (Figure 7's distribution).
    pub subnet_prefixes: Vec<u8>,
    /// The include relies on the discouraged `ptr` mechanism
    /// (Table 4 flags mx.ovh.com for this).
    pub uses_ptr: bool,
}

/// Build the include ecosystem from a scan.
///
/// `reports` supplies the usage counts (top-level `include:` references);
/// the walker's memo cache supplies each include's own analysis without
/// re-resolving anything.
pub fn include_ecosystem<R: Resolver>(
    reports: &[DomainReport],
    walker: &Walker<R>,
) -> Vec<IncludeStats> {
    let mut usage: HashMap<DomainName, u64, DomainHashBuilder> = HashMap::default();
    for report in reports {
        let Some(record) = report.record.as_ref() else {
            continue;
        };
        for target in &record.include_targets {
            *usage.entry(target.clone()).or_default() += 1;
        }
    }
    let mut stats: Vec<IncludeStats> = usage
        .into_iter()
        .map(|(domain, used_by)| {
            let analysis = walker.analyze(&domain);
            let mut subnet_prefixes: Vec<u8> = analysis
                .direct_networks
                .iter()
                .chain(analysis.include_networks.iter())
                .map(|c| c.prefix_len())
                .collect();
            subnet_prefixes.sort_unstable();
            IncludeStats {
                domain,
                used_by,
                allowed_ips: analysis.allowed_ip_count(),
                // The include term itself is one lookup, plus its subtree.
                dns_lookups: 1 + analysis.subtree_lookups,
                subnet_prefixes,
                uses_ptr: analysis.uses_ptr,
            }
        })
        .collect();
    stats.sort_by(|a, b| b.used_by.cmp(&a.used_by).then(a.domain.cmp(&b.domain)));
    stats
}

/// The Table 4 view: top `n` includes by usage.
pub fn top_includes(stats: &[IncludeStats], n: usize) -> &[IncludeStats] {
    &stats[..n.min(stats.len())]
}

/// Figure 4's population: includes whose own evaluation exceeds the DNS
/// lookup limit ("2,408 included SPF records exceeding the DNS lookup
/// limit directly, affecting 85,915 domains").
pub fn includes_exceeding_limit(stats: &[IncludeStats], limit: usize) -> Vec<&IncludeStats> {
    stats.iter().filter(|s| s.dns_lookups > limit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{crawl, CrawlConfig};
    use spf_dns::{ZoneResolver, ZoneStore};
    use std::sync::Arc;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn usage_counts_and_ips() {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("big.provider.example"), "v=spf1 ip4:10.0.0.0/16 -all");
        store.add_txt(
            &dom("small.provider.example"),
            "v=spf1 ip4:198.51.100.1 -all",
        );
        let mut domains = Vec::new();
        for i in 0..10 {
            let d = dom(&format!("c{i}.example"));
            let target = if i < 7 {
                "big.provider.example"
            } else {
                "small.provider.example"
            };
            store.add_txt(&d, &format!("v=spf1 include:{target} -all"));
            domains.push(d);
        }
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &domains, CrawlConfig::with_workers(2));
        let eco = include_ecosystem(&out.reports, &walker);
        assert_eq!(eco.len(), 2);
        assert_eq!(eco[0].domain, dom("big.provider.example"));
        assert_eq!(eco[0].used_by, 7);
        assert_eq!(eco[0].allowed_ips, 65536);
        assert_eq!(eco[1].used_by, 3);
        assert_eq!(eco[1].allowed_ips, 1);
        let top = top_includes(&eco, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].domain, dom("big.provider.example"));
    }

    #[test]
    fn lookup_heavy_include_flagged() {
        let store = Arc::new(ZoneStore::new());
        // A bluehost-style include fanning out to 13 nested includes.
        let mut rec = String::from("v=spf1");
        for i in 0..13 {
            rec.push_str(&format!(" include:n{i}.example"));
        }
        rec.push_str(" -all");
        store.add_txt(&dom("fat.example"), &rec);
        for i in 0..13 {
            store.add_txt(&dom(&format!("n{i}.example")), "v=spf1 ip4:10.9.0.1 -all");
        }
        let customer = dom("victim.example");
        store.add_txt(&customer, "v=spf1 include:fat.example -all");
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &[customer], CrawlConfig::with_workers(1));
        let eco = include_ecosystem(&out.reports, &walker);
        let over = includes_exceeding_limit(&eco, 10);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].dns_lookups, 14); // the include itself + 13 nested
    }

    #[test]
    fn subnet_prefixes_collected() {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(
            &dom("mixed.provider.example"),
            "v=spf1 ip4:192.0.2.1 ip4:198.51.100.0/24 ip4:10.0.0.0/8 -all",
        );
        let customer = dom("c.example");
        store.add_txt(&customer, "v=spf1 include:mixed.provider.example -all");
        let walker = Walker::new(ZoneResolver::new(store));
        let out = crawl(&walker, &[customer], CrawlConfig::with_workers(1));
        let eco = include_ecosystem(&out.reports, &walker);
        assert_eq!(eco[0].subnet_prefixes, vec![8, 24, 32]);
    }
}
