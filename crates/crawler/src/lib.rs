//! # spf-crawler — the scan pipeline of Section 4.1
//!
//! Drives the full measurement: a worker pool crawls a ranked domain list
//! through the shared, memoizing [`spf_analyzer::Walker`], then
//! [`ScanAggregates`] distills every population-level count the paper
//! reports (adoption, error classes, permissiveness) and
//! [`include_ecosystem`] builds the per-include view behind Table 4 and
//! Figures 4/7/8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod crawl;
pub mod ecosystem;

pub use aggregate::{ScanAggregates, LARGE_RANGE_MAX_PREFIX};
pub use crawl::{crawl, CrawlConfig, CrawlOutput};
pub use ecosystem::{include_ecosystem, includes_exceeding_limit, top_includes, IncludeStats};

/// Re-export of the analyzer's lax-authorization threshold (100,000 IPs).
pub use spf_analyzer::LAX_IP_THRESHOLD;
