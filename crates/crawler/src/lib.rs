//! # spf-crawler — the scan pipeline of Section 4.1
//!
//! Drives the full measurement: a worker pool crawls a ranked domain list
//! through the shared, memoizing [`spf_analyzer::Walker`], then
//! [`ScanAggregates`] distills every population-level count the paper
//! reports (adoption, error classes, permissiveness),
//! [`include_ecosystem`] builds the per-include view behind Table 4 and
//! Figures 4/7/8, and [`OverlapReport`] answers the cross-population
//! address-space overlap questions of §6 (most-spoofable address,
//! coverage histogram, provider concentration) from the coverage map the
//! crawl accumulates as it goes. [`spoof_matrix`] closes the §6 loop:
//! real `check_host()` verdicts for the whole population from attacker
//! vantage addresses, deduplicated through a lock-striped subtree
//! verdict cache (see [`mod@spoof`]); [`auth_matrix`] is its layered
//! successor, composing DMARC and MTA-STS stop attribution on top of
//! the byte-identical SPF sub-matrix (matrix v2, DESIGN.md §13).
//!
//! # Crawl engine invariants
//!
//! The engine is sharded at both ends of the hot path (DESIGN.md §3):
//!
//! * **One analysis per include.** All workers share one walker whose
//!   lock-striped memo cache ([`spf_analyzer::cache`]) guarantees each
//!   unique domain's subtree is analyzed once and then served as an `Arc`
//!   handle — the paper's record-cache trick across 150 query endpoints.
//! * **Bounded dispatch memory.** Work is dispatched in
//!   [`CrawlConfig::batch_size`] chunks through a channel capped at
//!   `2 × workers` batches, so in-flight work is O(workers × batch_size)
//!   regardless of population size ([`CrawlStats::peak_queue_depth`]
//!   observes the bound).
//! * **Rank-order determinism.** Reports land in a preallocated slot table
//!   indexed by Tranco rank; because every per-domain analysis is a pure
//!   function of the zone, the report vector is bit-identical across all
//!   worker / cache-shard / batch-size configurations (asserted by the
//!   `crawl_stress` suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod crawl;
pub mod ecosystem;
pub mod longitudinal;
pub mod overlap;
pub mod spoof;

pub use aggregate::{ScanAggregates, LARGE_RANGE_MAX_PREFIX};
#[allow(deprecated)]
pub use crawl::CrawlMode;
pub use crawl::{
    crawl, CrawlConfig, CrawlOutput, CrawlStats, DEFAULT_BATCH_SIZE, DEFAULT_WIRE_SERVERS,
};
pub use ecosystem::{include_ecosystem, includes_exceeding_limit, top_includes, IncludeStats};
pub use longitudinal::{ChurnEngine, EpochReport, LongitudinalConfig, ZoneDelta};
pub use overlap::{OverlapReport, ProviderConcentration, DEFAULT_PROVIDER_ROWS};
/// Re-export of the auth-stack layer types the v2 matrix reports in.
pub use spf_core::{
    AuthCacheStats, DeploymentMix, DmarcDisposition, MtaStsMode, StopCounts, StopLayer,
};
/// Re-export of the engine-selection types every assembler consumes.
pub use spf_types::{Backend, EngineBuilder, Evaluator, Transport};
#[allow(deprecated)]
pub use spoof::spoof_matrix;
pub use spoof::{
    auth_matrix, auth_matrix_with_cache, evaluate_auth_row, evaluate_matrix_row, select_vantages,
    AuthMatrix, AuthMatrixRow, AuthMatrixStats, DomainMatrixRow, ProviderVantage, RowCell,
    SpoofMatrix, SpoofMatrixConfig, SpoofMatrixStats, SpoofVerdictCache, TierReport, VantageKind,
    VantagePoint, VantageReport, DEFAULT_CONTROLS, DEFAULT_TOP_COVERAGE, SPOOF_SENDER_LOCAL,
};

/// Re-export of the analyzer's lax-authorization threshold (100,000 IPs).
pub use spf_analyzer::LAX_IP_THRESHOLD;
