//! A clock abstraction so rate limiting and campaign throttling can run on
//! virtual time in tests/benches and on wall-clock time in live runs.
//!
//! The paper's crawler throttled DNS queries across 150 endpoints and the
//! notification sender to 1 email/second; replaying those policies in a
//! test suite demands a clock that can be advanced instantly.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Monotonic time source.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
    /// Block (or advance virtual time) for `d`.
    fn sleep(&self, d: Duration);
}

/// Wall-clock implementation backed by [`Instant`].
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Deterministic virtual clock: `sleep` advances time instantly.
#[derive(Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<Duration>>,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advance time without sleeping.
    pub fn advance(&self, d: Duration) {
        *self.now.lock() += d;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_on_sleep() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(5));
        clock.advance(Duration::from_millis(500));
        assert_eq!(clock.now(), Duration::from_millis(5500));
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        assert_eq!(b.now(), Duration::from_secs(1));
    }

    #[test]
    fn system_clock_moves_forward() {
        let clock = SystemClock::new();
        let t0 = clock.now();
        clock.sleep(Duration::from_millis(2));
        assert!(clock.now() > t0);
    }
}
