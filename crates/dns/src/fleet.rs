//! The wire-path crawl substrate: a sharded authoritative server fleet
//! plus the production-shaped stub-resolver client the crawler points at
//! it.
//!
//! The paper's measurement pushed 12.8M domains' worth of DNS queries
//! through 150 rate-limited resolver endpoints on the open Internet —
//! timeouts, lost packets and TCP fallback all shaped which domains
//! produced analyzable records. The in-memory
//! [`crate::resolver::ZoneResolver`] path deliberately skips all of that
//! machinery; this module closes the gap so the *entire* pipeline can run
//! over real sockets:
//!
//! * [`WireFleet`] — the authoritative side. The zone is partitioned
//!   across N [`UdpNameServer`] shards by
//!   [`DomainName::precomputed_hash`], the same routing function the
//!   client uses, so every name has exactly one authoritative home and a
//!   correctly routed query never needs referral chasing.
//! * [`WireResolver`] — the client side: a lazily grown socket pool per
//!   shard, single-flight query coalescing (concurrent workers asking for
//!   the same `include:` target share one in-flight datagram), TTL-aware
//!   positive *and* negative caching, RFC 7766 TCP fallback on
//!   truncation, and a retry/timeout budget that degrades to
//!   [`DnsError::Timeout`] — the same `temperror` surface the in-memory
//!   fault path presents, so the walker cannot tell the transports apart.
//! * [`ShardBehavior`] — optional per-shard fault/latency injection, so
//!   the netsim presets can model a degraded slice of the fleet (one slow
//!   resolver out of 150) rather than only uniform failure rates.
//!
//! Under a zero-fault profile the wire path is *observationally
//! identical* to the in-memory path: the façade's `wire_stress` suite
//! serializes both report streams at scale 1:500 and compares them byte
//! for byte across worker × shard matrices.

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use spf_types::{DomainName, StatItem, Stats};

use crate::clock::{Clock, SystemClock};
use crate::record::{Question, RecordType, ResourceRecord};
use crate::resolver::{DnsError, FaultProfile, Resolver};
use crate::udp::{tcp_query, ServerConfig, UdpNameServer};
use crate::wire::{self, Message, Rcode};
use crate::zone::ZoneStore;

/// Client-side knobs of the wire path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireClientConfig {
    /// Per-attempt receive timeout.
    pub timeout: Duration,
    /// UDP attempts before the query degrades to [`DnsError::Timeout`]
    /// (`temperror`), mirroring the in-memory fault path.
    pub attempts: usize,
    /// Cap applied to positive TTLs taken from answer records.
    pub max_record_ttl: Duration,
    /// How long NXDOMAIN / empty / REFUSED answers are cached (RFC
    /// 2308-style negative caching). Transient errors are never cached.
    pub negative_ttl: Duration,
    /// Idle sockets kept per server shard; bursts beyond the cap create
    /// throwaway sockets instead of blocking.
    pub max_pooled_sockets: usize,
    /// Reactor engine only ([`crate::reactor::AsyncWireResolver`]): the
    /// most queries allowed in flight per shard socket before further
    /// submissions queue for a freed DNS message id. The blocking engine
    /// ignores this (it has one outstanding query per socket by
    /// construction).
    pub max_inflight_per_shard: usize,
}

impl Default for WireClientConfig {
    fn default() -> Self {
        WireClientConfig {
            timeout: Duration::from_millis(120),
            attempts: 3,
            max_record_ttl: Duration::from_secs(3600),
            negative_ttl: Duration::from_secs(300),
            max_pooled_sockets: 64,
            max_inflight_per_shard: 512,
        }
    }
}

impl WireClientConfig {
    /// The crawl profile: loopback round trips are tens of microseconds,
    /// so a short per-attempt timeout keeps the population's deliberate
    /// timeout cohorts (server silence) from dominating wall-clock time
    /// while still leaving three orders of magnitude of headroom for a
    /// busy single-threaded server shard.
    pub fn crawl() -> Self {
        WireClientConfig {
            timeout: Duration::from_millis(60),
            attempts: 2,
            ..WireClientConfig::default()
        }
    }
}

/// Fault/latency injection for one server shard, applied on the client's
/// send path (the shard's slice of the Internet is slow or lossy; the
/// zone data itself is untouched). Rolls follow the same accumulation
/// order as [`crate::resolver::FaultInjectingResolver`], so a
/// single-shard fleet with a given profile reproduces that layer's error
/// mix. Injected timeouts are returned directly — they model the
/// *resolver endpoint* giving up, not one lost datagram, so they do not
/// consume the retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardBehavior {
    /// Fault probabilities for queries routed to this shard.
    pub fault: FaultProfile,
    /// Extra latency added to every query routed to this shard (slept on
    /// the resolver's [`Clock`], so virtual-clock tests pay nothing).
    pub latency: Duration,
}

impl ShardBehavior {
    /// No injected faults, no added latency — the determinism profile.
    pub fn none() -> Self {
        ShardBehavior {
            fault: FaultProfile::none(),
            latency: Duration::ZERO,
        }
    }
}

/// Monotonic counters of one wire engine, exposed as a [`WireSnapshot`].
#[derive(Debug, Default)]
pub(crate) struct WireCounters {
    pub(crate) queries: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_expired: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) wire_queries: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) tcp_fallbacks: AtomicU64,
    pub(crate) temp_errors: AtomicU64,
    pub(crate) injected_faults: AtomicU64,
}

/// Point-in-time copy of a [`WireResolver`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSnapshot {
    /// Resolver-level queries received from the walker.
    pub queries: u64,
    /// Queries answered from the TTL cache.
    pub cache_hits: u64,
    /// Cache probes that found an entry past its TTL (counted as misses).
    pub cache_expired: u64,
    /// Queries that joined another caller's in-flight wire query instead
    /// of sending their own (single-flight coalescing).
    pub coalesced: u64,
    /// UDP datagrams actually sent (including retry attempts).
    pub wire_queries: u64,
    /// Retry attempts beyond each query's first datagram.
    pub retries: u64,
    /// Truncated UDP responses retried over TCP (RFC 7766).
    pub tcp_fallbacks: u64,
    /// Queries that exhausted the retry budget and degraded to
    /// [`DnsError::Timeout`].
    pub temp_errors: u64,
    /// Faults injected by [`ShardBehavior`] profiles.
    pub injected_faults: u64,
}

impl WireSnapshot {
    /// Wire datagrams per crawled domain — the paper's query-amplification
    /// figure (how many packets one domain's analysis costs).
    pub fn amplification(&self, domains: u64) -> f64 {
        if domains == 0 {
            0.0
        } else {
            self.wire_queries as f64 / domains as f64
        }
    }

    /// Fraction of resolver queries that coalesced onto another caller's
    /// in-flight wire query.
    pub fn coalesce_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.queries as f64
        }
    }

    /// Fraction of resolver queries served from the TTL cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// This snapshot as a [`Stats`] line: the per-domain amplification
    /// needs the crawl's domain count, so the view binds it in.
    pub fn stats_view(&self, domains: u64) -> WireStatsView {
        WireStatsView {
            snapshot: *self,
            domains,
        }
    }
}

/// A [`WireSnapshot`] bound to a crawl's domain count, rendering the
/// `[wire]` telemetry line through the shared [`Stats`] formatter.
#[derive(Debug, Clone, Copy)]
pub struct WireStatsView {
    /// The counters.
    pub snapshot: WireSnapshot,
    /// Domains the crawl covered (denominator of the amplification).
    pub domains: u64,
}

impl Stats for WireStatsView {
    fn scope(&self) -> &'static str {
        "wire"
    }

    fn items(&self) -> Vec<StatItem> {
        let s = &self.snapshot;
        vec![
            StatItem::float("amplification", s.amplification(self.domains)),
            StatItem::count("datagrams", s.wire_queries),
            StatItem::count("tcp_fallbacks", s.tcp_fallbacks),
            StatItem::percent("coalesced", s.coalesce_rate()),
            StatItem::percent("cache_hit", s.cache_hit_rate()),
            StatItem::count("retries", s.retries),
            StatItem::count("temp_errors", s.temp_errors),
            StatItem::count("injected", s.injected_faults),
        ]
    }
}

/// A sharded authoritative name-server fleet over one logical zone.
///
/// Dropping the fleet shuts the servers down; keep it alive for the whole
/// crawl.
pub struct WireFleet {
    servers: Vec<UdpNameServer>,
    stores: Vec<Arc<ZoneStore>>,
}

impl WireFleet {
    /// Partition `store` into `shards` authoritative shards (see
    /// [`ZoneStore::partition`]) and spawn one [`UdpNameServer`] per
    /// shard, every one with the same `config`.
    pub fn spawn(store: &ZoneStore, shards: usize, config: ServerConfig) -> std::io::Result<Self> {
        let stores: Vec<Arc<ZoneStore>> =
            store.partition(shards).into_iter().map(Arc::new).collect();
        let servers = stores
            .iter()
            .map(|s| UdpNameServer::spawn(Arc::clone(s), config.clone()))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(WireFleet { servers, stores })
    }

    /// Number of server shards.
    pub fn shard_count(&self) -> usize {
        self.servers.len()
    }

    /// The shard addresses, in routing order (index `i` serves names with
    /// `precomputed_hash() % shard_count == i`).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.addr()).collect()
    }

    /// Shard `i`'s server handle.
    pub fn server(&self, i: usize) -> &UdpNameServer {
        &self.servers[i]
    }

    /// Shard `i`'s authoritative store (a deep copy of the source zone's
    /// slice — mutate it to model per-shard zone drift).
    pub fn store(&self, i: usize) -> &Arc<ZoneStore> {
        &self.stores[i]
    }

    /// UDP responses sent, summed over all shards.
    pub fn answered(&self) -> u64 {
        self.servers.iter().map(|s| s.answered()).sum()
    }

    /// TCP responses sent (truncation fallbacks), summed over all shards.
    pub fn tcp_answered(&self) -> u64 {
        self.servers.iter().map(|s| s.tcp_answered()).sum()
    }

    /// A [`WireResolver`] pointed at this fleet, on the system clock.
    pub fn resolver(&self, config: WireClientConfig) -> WireResolver {
        WireResolver::new(self.addrs(), config)
    }

    /// An epoll-reactor [`crate::reactor::AsyncWireResolver`] pointed at
    /// this fleet, on the system clock.
    pub fn async_resolver(&self, config: WireClientConfig) -> crate::reactor::AsyncWireResolver {
        crate::reactor::AsyncWireResolver::new(self.addrs(), config)
    }
}

/// In-flight state of one single-flight wire query. Followers block on
/// the condvar until the leader (or the reactor thread) publishes the
/// shared result.
pub(crate) struct Flight {
    state: std::sync::Mutex<Option<Result<Vec<ResourceRecord>, DnsError>>>,
    ready: std::sync::Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: std::sync::Mutex::new(None),
            ready: std::sync::Condvar::new(),
        }
    }

    /// Park until the result is published, then return a clone of it.
    pub(crate) fn wait(&self) -> Result<Vec<ResourceRecord>, DnsError> {
        let mut st = self.state.lock().expect("flight lock");
        while st.is_none() {
            st = self.ready.wait(st).expect("flight wait");
        }
        st.as_ref().expect("checked above").clone()
    }

    fn complete(&self, result: Result<Vec<ResourceRecord>, DnsError>) {
        *self.state.lock().expect("flight lock") = Some(result);
        self.ready.notify_all();
    }
}

/// One cached answer with its expiry instant (on the resolver's clock).
struct CacheEntry {
    result: Result<Vec<ResourceRecord>, DnsError>,
    expires_at: Duration,
}

/// How a query enters the wire path — the result of [`WireCore::begin`].
pub(crate) enum QueryStart {
    /// Answered from the TTL cache (the hit is already counted).
    Cached(Result<Vec<ResourceRecord>, DnsError>),
    /// Another caller owns the in-flight wire query; wait on its flight.
    Join(Arc<Flight>),
    /// This caller is the leader: resolve over the wire, then publish
    /// through [`WireCore::finish`].
    Lead(Arc<Flight>),
}

/// The engine-independent semantics of the wire client, shared by the
/// blocking [`WireResolver`] and the epoll-reactor
/// [`crate::reactor::AsyncWireResolver`]: the TTL cache, single-flight
/// coalescing, per-shard fault injection, and the counter set behind
/// [`WireSnapshot`]. Both engines funnel every query through
/// [`WireCore::begin`] / [`WireCore::finish`]; only the transport between
/// those two calls differs, which is what keeps their observable behavior
/// byte-identical under the zero-fault profile.
pub(crate) struct WireCore {
    pub(crate) servers: Vec<SocketAddr>,
    pub(crate) config: WireClientConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) counters: WireCounters,
    cache: RwLock<HashMap<Question, CacheEntry>>,
    inflight: std::sync::Mutex<HashMap<Question, Arc<Flight>>>,
    behaviors: Option<Vec<(ShardBehavior, Mutex<StdRng>)>>,
}

impl WireCore {
    /// A core routing to `servers` on the given clock.
    ///
    /// # Panics
    /// Panics when `servers` is empty.
    pub(crate) fn new(
        servers: Vec<SocketAddr>,
        config: WireClientConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(
            !servers.is_empty(),
            "wire resolver needs at least one server"
        );
        WireCore {
            servers,
            config,
            clock,
            counters: WireCounters::default(),
            cache: RwLock::new(HashMap::new()),
            inflight: std::sync::Mutex::new(HashMap::new()),
            behaviors: None,
        }
    }

    /// Attach per-shard fault/latency behaviors (one entry per server, in
    /// routing order). Each shard rolls its own deterministic RNG stream
    /// seeded `seed ^ shard_index`.
    ///
    /// # Panics
    /// Panics when `behaviors.len()` differs from the server count.
    pub(crate) fn set_behaviors(&mut self, behaviors: Vec<ShardBehavior>, seed: u64) {
        assert_eq!(
            behaviors.len(),
            self.servers.len(),
            "one behavior per server shard"
        );
        self.behaviors = Some(
            behaviors
                .into_iter()
                .enumerate()
                .map(|(i, b)| (b, Mutex::new(StdRng::seed_from_u64(seed ^ i as u64))))
                .collect(),
        );
    }

    /// Number of server shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.servers.len()
    }

    /// The shard index `name` routes to.
    pub(crate) fn shard_of(&self, name: &DomainName) -> usize {
        (name.precomputed_hash() % self.servers.len() as u64) as usize
    }

    /// Point-in-time copy of the counters.
    pub(crate) fn snapshot(&self) -> WireSnapshot {
        let c = &self.counters;
        WireSnapshot {
            queries: c.queries.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_expired: c.cache_expired.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            wire_queries: c.wire_queries.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            tcp_fallbacks: c.tcp_fallbacks.load(Ordering::Relaxed),
            temp_errors: c.temp_errors.load(Ordering::Relaxed),
            injected_faults: c.injected_faults.load(Ordering::Relaxed),
        }
    }

    /// Number of live cache entries (expired entries still resident are
    /// not counted).
    pub(crate) fn cache_len(&self) -> usize {
        let now = self.clock.now();
        self.cache
            .read()
            .values()
            .filter(|e| e.expires_at > now)
            .count()
    }

    /// Drop every cached answer and reset the cache-epoch counters
    /// (`queries`, `cache_hits`, `cache_expired`, `coalesced`) so that
    /// post-clear ratios like [`WireSnapshot::cache_hit_rate`] describe
    /// the new epoch instead of mixing epochs. Transport-lifetime
    /// counters (`wire_queries`, `retries`, `tcp_fallbacks`,
    /// `temp_errors`, `injected_faults`) keep accumulating.
    pub(crate) fn clear_cache(&self) {
        self.cache.write().clear();
        let c = &self.counters;
        c.queries.store(0, Ordering::Relaxed);
        c.cache_hits.store(0, Ordering::Relaxed);
        c.cache_expired.store(0, Ordering::Relaxed);
        c.coalesced.store(0, Ordering::Relaxed);
    }

    fn cache_get(&self, q: &Question) -> Option<Result<Vec<ResourceRecord>, DnsError>> {
        let cache = self.cache.read();
        let entry = cache.get(q)?;
        if entry.expires_at <= self.clock.now() {
            self.counters.cache_expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(entry.result.clone())
    }

    fn cache_put(&self, q: &Question, result: &Result<Vec<ResourceRecord>, DnsError>) {
        let ttl = match result {
            Ok(rrs) if !rrs.is_empty() => {
                let min_ttl = rrs.iter().map(|rr| rr.ttl).min().unwrap_or(0);
                Duration::from_secs(min_ttl as u64).min(self.config.max_record_ttl)
            }
            // NOERROR/empty and NXDOMAIN/REFUSED are negative answers.
            Ok(_) => self.config.negative_ttl,
            Err(e) if !e.is_transient() => self.config.negative_ttl,
            // Transient errors are never cached — a rescan may succeed,
            // matching the paper's exclusion of temperror cohorts.
            Err(_) => return,
        };
        if ttl.is_zero() {
            return;
        }
        self.cache.write().insert(
            q.clone(),
            CacheEntry {
                result: result.clone(),
                expires_at: self.clock.now() + ttl,
            },
        );
    }

    /// Roll the routed shard's fault profile; `Some` short-circuits the
    /// wire entirely (the injected outcome is what the endpoint "said").
    fn injected_fault(&self, shard: usize) -> Option<Result<Vec<ResourceRecord>, DnsError>> {
        let (behavior, rng) = match &self.behaviors {
            Some(b) => &b[shard],
            None => return None,
        };
        if !behavior.latency.is_zero() {
            self.clock.sleep(behavior.latency);
        }
        let p = behavior.fault;
        if p == FaultProfile::none() {
            return None;
        }
        let roll: f64 = rng.lock().random();
        let mut acc = p.timeout;
        if roll < acc {
            return Some(Err(DnsError::Timeout));
        }
        acc += p.nxdomain;
        if roll < acc {
            return Some(Err(DnsError::NxDomain));
        }
        acc += p.empty;
        if roll < acc {
            return Some(Ok(Vec::new()));
        }
        acc += p.servfail;
        if roll < acc {
            return Some(Err(DnsError::ServFail));
        }
        None
    }

    /// [`WireCore::injected_fault`] plus counter accounting: an injected
    /// outcome bumps `injected_faults` (and `temp_errors` for timeouts),
    /// matching how real wire outcomes are counted.
    pub(crate) fn try_injected(
        &self,
        shard: usize,
    ) -> Option<Result<Vec<ResourceRecord>, DnsError>> {
        let outcome = self.injected_fault(shard)?;
        self.counters
            .injected_faults
            .fetch_add(1, Ordering::Relaxed);
        if matches!(outcome, Err(DnsError::Timeout)) {
            self.counters.temp_errors.fetch_add(1, Ordering::Relaxed);
        }
        Some(outcome)
    }

    /// Start one resolver-level query: count it, probe the cache, then
    /// make the single-flight leader/follower decision.
    pub(crate) fn begin(&self, q: &Question) -> QueryStart {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(result) = self.cache_get(q) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return QueryStart::Cached(result);
        }
        let mut inflight = self.inflight.lock().expect("inflight lock");
        match inflight.get(q) {
            Some(f) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                QueryStart::Join(Arc::clone(f))
            }
            None => {
                let f = Arc::new(Flight::new());
                inflight.insert(q.clone(), Arc::clone(&f));
                QueryStart::Lead(f)
            }
        }
    }

    /// Publish the leader's (or the reactor's) outcome: cache it, retire
    /// the flight, wake the followers, and hand the result back. The
    /// cache is written *before* the flight is retired so a caller
    /// arriving in between hits the cache instead of re-querying.
    pub(crate) fn finish(
        &self,
        q: &Question,
        result: Result<Vec<ResourceRecord>, DnsError>,
    ) -> Result<Vec<ResourceRecord>, DnsError> {
        self.cache_put(q, &result);
        let flight = self.inflight.lock().expect("inflight lock").remove(q);
        if let Some(f) = flight {
            f.complete(result.clone());
        }
        result
    }
}

/// Lazily grown pool of client sockets for one server shard.
struct SocketPool {
    idle: Mutex<Vec<UdpSocket>>,
}

impl SocketPool {
    fn new() -> Self {
        SocketPool {
            idle: Mutex::new(Vec::new()),
        }
    }

    fn acquire(&self, timeout: Duration) -> Result<UdpSocket, DnsError> {
        if let Some(s) = self.idle.lock().pop() {
            return Ok(s);
        }
        let s = UdpSocket::bind(("127.0.0.1", 0))
            .map_err(|e| DnsError::Network(format!("bind: {e}")))?;
        s.set_read_timeout(Some(timeout))
            .map_err(|e| DnsError::Network(format!("timeout: {e}")))?;
        Ok(s)
    }

    fn release(&self, socket: UdpSocket, cap: usize) {
        let mut idle = self.idle.lock();
        if idle.len() < cap {
            idle.push(socket);
        }
    }
}

/// The blocking wire-path stub resolver: hash-routed sharding, pooled
/// sockets, single-flight coalescing, TTL caching and TCP fallback behind
/// the plain [`Resolver`] interface, so the walker and crawler run
/// unchanged. One wire query occupies one pooled socket for its whole
/// retry budget; for hundreds of concurrent flights on a few sockets see
/// [`crate::reactor::AsyncWireResolver`].
pub struct WireResolver {
    core: WireCore,
    pools: Vec<SocketPool>,
    next_id: AtomicU64,
}

impl WireResolver {
    /// A resolver routing to `servers` (shard `i` of the fleet at index
    /// `i`), on the system clock.
    ///
    /// # Panics
    /// Panics when `servers` is empty.
    pub fn new(servers: Vec<SocketAddr>, config: WireClientConfig) -> Self {
        Self::with_clock(servers, config, Arc::new(SystemClock::new()))
    }

    /// Like [`WireResolver::new`] with an explicit clock (cache TTLs and
    /// injected latency run on it).
    pub fn with_clock(
        servers: Vec<SocketAddr>,
        config: WireClientConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let pools = servers.iter().map(|_| SocketPool::new()).collect();
        WireResolver {
            core: WireCore::new(servers, config, clock),
            pools,
            next_id: AtomicU64::new(1),
        }
    }

    /// Attach per-shard fault/latency behaviors (one entry per server, in
    /// routing order). Each shard rolls its own deterministic RNG stream
    /// seeded `seed ^ shard_index`.
    ///
    /// # Panics
    /// Panics when `behaviors.len()` differs from the server count.
    pub fn with_behaviors(mut self, behaviors: Vec<ShardBehavior>, seed: u64) -> Self {
        self.core.set_behaviors(behaviors, seed);
        self
    }

    /// Number of server shards this resolver routes across.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The shard index `name` routes to.
    pub fn shard_of(&self, name: &DomainName) -> usize {
        self.core.shard_of(name)
    }

    /// Point-in-time copy of the resolver's counters.
    pub fn snapshot(&self) -> WireSnapshot {
        self.core.snapshot()
    }

    /// Number of live cache entries (expired entries still resident are
    /// not counted).
    pub fn cache_len(&self) -> usize {
        self.core.cache_len()
    }

    /// Drop every cached answer and reset the cache-epoch counters
    /// (`queries`, `cache_hits`, `cache_expired`, `coalesced`), so rates
    /// like [`WireSnapshot::cache_hit_rate`] describe the round after the
    /// clear. Transport-lifetime counters (`wire_queries`, `retries`,
    /// `tcp_fallbacks`, `temp_errors`, `injected_faults`) keep
    /// accumulating — used between scan rounds.
    pub fn clear_cache(&self) {
        self.core.clear_cache()
    }

    /// One UDP attempt on `socket`: send, then drain until the matching
    /// response, a garble-free timeout, or a socket error.
    fn attempt(
        &self,
        socket: &UdpSocket,
        server: SocketAddr,
        id: u16,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<Message, DnsError> {
        let msg = Message::query(id, Question::new(name.clone(), rtype));
        let bytes = wire::encode(&msg).map_err(|e| DnsError::Network(e.to_string()))?;
        self.core
            .counters
            .wire_queries
            .fetch_add(1, Ordering::Relaxed);
        socket
            .send_to(&bytes, server)
            .map_err(|e| DnsError::Network(e.to_string()))?;
        let mut buf = [0u8; 4096];
        loop {
            let (len, peer) = socket.recv_from(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                {
                    DnsError::Timeout
                } else {
                    DnsError::Network(e.to_string())
                }
            })?;
            if peer != server {
                continue; // stray packet
            }
            let resp = match wire::decode(&buf[..len]) {
                Ok(m) => m,
                Err(_) => continue, // garbled; keep waiting until timeout
            };
            if resp.header.id != id || !resp.header.is_response {
                // A late response to an earlier query on this pooled
                // socket; discard and keep waiting.
                continue;
            }
            return Ok(resp);
        }
    }

    /// The leader path: retries over UDP, TCP fallback on truncation, and
    /// the budget-exhausted degradation to `temperror`.
    fn resolve_over_wire(
        &self,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<Vec<ResourceRecord>, DnsError> {
        let shard = self.shard_of(name);
        if let Some(outcome) = self.core.try_injected(shard) {
            return outcome;
        }
        let server = self.core.servers[shard];
        let socket = self.pools[shard].acquire(self.core.config.timeout)?;
        let id = (self.next_id.fetch_add(1, Ordering::Relaxed) % 0xFFFF) as u16 + 1;
        let mut outcome = Err(DnsError::Timeout);
        for attempt in 0..self.core.config.attempts.max(1) {
            if attempt > 0 {
                self.core.counters.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self.attempt(&socket, server, id, name, rtype) {
                Ok(resp) => {
                    if resp.header.truncated {
                        // RFC 7766: retry the query over TCP.
                        self.core
                            .counters
                            .tcp_fallbacks
                            .fetch_add(1, Ordering::Relaxed);
                        outcome = tcp_query(server, self.core.config.timeout, id, name, rtype);
                    } else {
                        outcome = match resp.header.rcode {
                            Rcode::NoError => Ok(resp.answers),
                            Rcode::NxDomain => Err(DnsError::NxDomain),
                            Rcode::ServFail => Err(DnsError::ServFail),
                            Rcode::Refused => Err(DnsError::Refused),
                            other => Err(DnsError::Network(format!("unexpected rcode {other:?}"))),
                        };
                    }
                    break;
                }
                Err(DnsError::Timeout) => {
                    outcome = Err(DnsError::Timeout);
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.pools[shard].release(socket, self.core.config.max_pooled_sockets);
        if matches!(outcome, Err(DnsError::Timeout)) {
            self.core
                .counters
                .temp_errors
                .fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }
}

impl Resolver for WireResolver {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        let q = Question::new(name.clone(), rtype);
        match self.core.begin(&q) {
            QueryStart::Cached(result) => result,
            QueryStart::Join(flight) => flight.wait(),
            QueryStart::Lead(_flight) => {
                let result = self.resolve_over_wire(name, rtype);
                self.core.finish(&q, result)
            }
        }
    }
}

/// The telemetry surface shared by the wire engines ([`WireResolver`] and
/// [`crate::reactor::AsyncWireResolver`]), so harness code can hold
/// either behind one `Arc<dyn WireTelemetry>` and read the same counters
/// regardless of transport.
pub trait WireTelemetry: Resolver {
    /// Point-in-time copy of the engine's counters.
    fn snapshot(&self) -> WireSnapshot;

    /// Drop every cached answer and reset the cache-epoch counters
    /// (`queries`, `cache_hits`, `cache_expired`, `coalesced`);
    /// transport-lifetime counters keep accumulating.
    fn clear_cache(&self);

    /// Number of live cache entries.
    fn cache_len(&self) -> usize;

    /// Number of server shards the engine routes across.
    fn shard_count(&self) -> usize;
}

impl WireTelemetry for WireResolver {
    fn snapshot(&self) -> WireSnapshot {
        WireResolver::snapshot(self)
    }

    fn clear_cache(&self) {
        WireResolver::clear_cache(self)
    }

    fn cache_len(&self) -> usize {
        WireResolver::cache_len(self)
    }

    fn shard_count(&self) -> usize {
        WireResolver::shard_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::record::RecordData;
    use crate::zone::ZoneFault;
    use std::net::Ipv4Addr;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn fast_config() -> WireClientConfig {
        WireClientConfig {
            timeout: Duration::from_millis(50),
            attempts: 2,
            ..WireClientConfig::default()
        }
    }

    fn seeded_store(n: usize) -> ZoneStore {
        let store = ZoneStore::new();
        for i in 0..n {
            store.add_txt(
                &dom(&format!("d{i}.example")),
                &format!("v=spf1 ip4:10.0.0.{} -all", i % 250),
            );
        }
        store
    }

    #[test]
    fn routes_across_shards_and_resolves() {
        let store = seeded_store(40);
        let fleet = WireFleet::spawn(&store, 4, ServerConfig::default()).unwrap();
        let resolver = fleet.resolver(fast_config());
        for i in 0..40 {
            let name = dom(&format!("d{i}.example"));
            let rrs = resolver.query(&name, RecordType::Txt).unwrap();
            assert_eq!(rrs.len(), 1, "{name}");
        }
        // Every shard with at least one routed name answered on UDP.
        let mut routed = [0u64; 4];
        for i in 0..40 {
            routed[resolver.shard_of(&dom(&format!("d{i}.example")))] += 1;
        }
        for (i, count) in routed.iter().enumerate() {
            if *count > 0 {
                assert!(fleet.server(i).answered() > 0, "shard {i} never answered");
            }
        }
        assert_eq!(fleet.answered(), 40);
    }

    #[test]
    fn nxdomain_and_empty_answers_flow_through() {
        let store = ZoneStore::new();
        store.add_a(&dom("a-only.example"), Ipv4Addr::new(192, 0, 2, 1));
        let fleet = WireFleet::spawn(&store, 2, ServerConfig::default()).unwrap();
        let resolver = fleet.resolver(fast_config());
        assert_eq!(
            resolver.query(&dom("missing.example"), RecordType::Txt),
            Err(DnsError::NxDomain)
        );
        assert_eq!(
            resolver.query(&dom("a-only.example"), RecordType::Txt),
            Ok(vec![])
        );
    }

    #[test]
    fn cache_serves_repeats_without_new_datagrams() {
        let store = seeded_store(1);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = fleet.resolver(fast_config());
        let name = dom("d0.example");
        for _ in 0..5 {
            resolver.query(&name, RecordType::Txt).unwrap();
        }
        let snap = resolver.snapshot();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.cache_hits, 4);
        assert_eq!(snap.wire_queries, 1);
        assert_eq!(fleet.answered(), 1);
        assert!(snap.cache_hit_rate() > 0.7);
    }

    #[test]
    fn negative_answers_are_cached_with_ttl() {
        let store = ZoneStore::new();
        store.add_a(&dom("exists.example"), Ipv4Addr::new(192, 0, 2, 1));
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let clock = Arc::new(VirtualClock::new());
        let resolver = WireResolver::with_clock(
            fleet.addrs(),
            WireClientConfig {
                negative_ttl: Duration::from_secs(30),
                ..fast_config()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // NXDOMAIN cached…
        for _ in 0..3 {
            assert_eq!(
                resolver.query(&dom("gone.example"), RecordType::Txt),
                Err(DnsError::NxDomain)
            );
        }
        // …and NOERROR/empty cached too.
        for _ in 0..3 {
            assert_eq!(
                resolver.query(&dom("exists.example"), RecordType::Txt),
                Ok(vec![])
            );
        }
        let snap = resolver.snapshot();
        assert_eq!(snap.wire_queries, 2);
        assert_eq!(snap.cache_hits, 4);
        // Past the negative TTL the next probe goes back to the wire.
        clock.advance(Duration::from_secs(31));
        assert_eq!(
            resolver.query(&dom("gone.example"), RecordType::Txt),
            Err(DnsError::NxDomain)
        );
        let snap = resolver.snapshot();
        assert_eq!(snap.wire_queries, 3);
        assert_eq!(snap.cache_expired, 1);
    }

    #[test]
    fn positive_ttl_honors_record_ttl() {
        let store = ZoneStore::new();
        let mut rr = ResourceRecord::new(
            dom("short.example"),
            RecordData::Txt(crate::record::TxtData::from_text("v=spf1 -all")),
        );
        rr.ttl = 10;
        store.add_record(rr);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let clock = Arc::new(VirtualClock::new());
        let resolver = WireResolver::with_clock(
            fleet.addrs(),
            fast_config(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        resolver
            .query(&dom("short.example"), RecordType::Txt)
            .unwrap();
        resolver
            .query(&dom("short.example"), RecordType::Txt)
            .unwrap();
        assert_eq!(resolver.snapshot().wire_queries, 1);
        clock.advance(Duration::from_secs(11));
        resolver
            .query(&dom("short.example"), RecordType::Txt)
            .unwrap();
        assert_eq!(resolver.snapshot().wire_queries, 2);
    }

    #[test]
    fn timeout_budget_degrades_to_temperror_and_is_not_cached() {
        let store = ZoneStore::new();
        store.add_txt(&dom("dead.example"), "v=spf1 -all");
        store.set_fault(&dom("dead.example"), ZoneFault::Timeout);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = fleet.resolver(WireClientConfig {
            timeout: Duration::from_millis(30),
            attempts: 3,
            ..WireClientConfig::default()
        });
        assert_eq!(
            resolver.query(&dom("dead.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
        let snap = resolver.snapshot();
        assert_eq!(snap.wire_queries, 3, "all attempts spent");
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.temp_errors, 1);
        // Transient outcomes are never cached: the next query pays again.
        assert_eq!(
            resolver.query(&dom("dead.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
        assert_eq!(resolver.snapshot().wire_queries, 6);
        assert_eq!(resolver.snapshot().cache_hits, 0);
    }

    #[test]
    fn servfail_and_refused_preserved_over_wire() {
        let store = ZoneStore::new();
        store.set_fault(&dom("sf.example"), ZoneFault::ServFail);
        store.set_fault(&dom("ref.example"), ZoneFault::Refused);
        let fleet = WireFleet::spawn(&store, 2, ServerConfig::default()).unwrap();
        let resolver = fleet.resolver(fast_config());
        assert_eq!(
            resolver.query(&dom("sf.example"), RecordType::Txt),
            Err(DnsError::ServFail)
        );
        assert_eq!(
            resolver.query(&dom("ref.example"), RecordType::Txt),
            Err(DnsError::Refused)
        );
    }

    #[test]
    fn concurrent_same_name_queries_share_one_flight() {
        let store = seeded_store(1);
        // A slow server is not needed: even against a fast shard, 16
        // threads racing one cold name must produce far fewer datagrams
        // than queries. Guarantee at least one coalesce by pre-locking
        // nothing and checking queries == hits + coalesced + leaders.
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = Arc::new(fleet.resolver(fast_config()));
        let name = dom("d0.example");
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let resolver = Arc::clone(&resolver);
                let name = name.clone();
                scope.spawn(move || {
                    let rrs = resolver.query(&name, RecordType::Txt).unwrap();
                    assert_eq!(rrs.len(), 1);
                });
            }
        });
        let snap = resolver.snapshot();
        assert_eq!(snap.queries, 16);
        // Every query was a cache hit, a coalesced follower, or a leader
        // who actually went to the wire.
        assert_eq!(
            snap.cache_hits + snap.coalesced + snap.wire_queries,
            16,
            "{snap:?}"
        );
        assert!(
            snap.wire_queries < 16,
            "single-flight must collapse some of the burst: {snap:?}"
        );
    }

    #[test]
    fn truncated_responses_fall_back_to_tcp() {
        let store = ZoneStore::new();
        let long = "v=spf1 ".to_string() + &"ip4:198.51.100.0/24 ".repeat(40) + "-all";
        store.add_txt(&dom("huge.example"), &long);
        let fleet = WireFleet::spawn(&store, 2, ServerConfig { max_payload: 512 }).unwrap();
        let resolver = fleet.resolver(fast_config());
        let answers = resolver
            .query(&dom("huge.example"), RecordType::Txt)
            .unwrap();
        match &answers[0].data {
            RecordData::Txt(t) => assert_eq!(t.joined(), long),
            other => panic!("unexpected {other:?}"),
        }
        let snap = resolver.snapshot();
        assert_eq!(snap.tcp_fallbacks, 1);
        assert_eq!(fleet.tcp_answered(), 1);
        // The fallback answer is cached like any positive answer.
        resolver
            .query(&dom("huge.example"), RecordType::Txt)
            .unwrap();
        assert_eq!(resolver.snapshot().cache_hits, 1);
        assert_eq!(fleet.tcp_answered(), 1);
    }

    #[test]
    fn per_shard_behavior_injects_faults_only_on_its_shard() {
        let store = seeded_store(40);
        let fleet = WireFleet::spawn(&store, 2, ServerConfig::default()).unwrap();
        // Shard 0 always times out; shard 1 is healthy.
        let behaviors = vec![
            ShardBehavior {
                fault: FaultProfile {
                    timeout: 1.0,
                    nxdomain: 0.0,
                    empty: 0.0,
                    servfail: 0.0,
                },
                latency: Duration::ZERO,
            },
            ShardBehavior::none(),
        ];
        let resolver = fleet.resolver(fast_config()).with_behaviors(behaviors, 7);
        let mut dead = 0;
        let mut alive = 0;
        for i in 0..40 {
            let name = dom(&format!("d{i}.example"));
            let result = resolver.query(&name, RecordType::Txt);
            match resolver.shard_of(&name) {
                0 => {
                    assert_eq!(result, Err(DnsError::Timeout));
                    dead += 1;
                }
                _ => {
                    assert!(result.is_ok());
                    alive += 1;
                }
            }
        }
        assert!(dead > 0 && alive > 0, "hash must spread both shards");
        let snap = resolver.snapshot();
        assert_eq!(snap.injected_faults, dead);
        assert_eq!(snap.temp_errors, dead);
        // Injected faults never touched the wire.
        assert_eq!(snap.wire_queries, alive);
    }

    #[test]
    fn clear_cache_resets_cache_epoch_counters_only() {
        let store = seeded_store(1);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = fleet.resolver(fast_config());
        let name = dom("d0.example");
        for _ in 0..3 {
            resolver.query(&name, RecordType::Txt).unwrap();
        }
        let before = resolver.snapshot();
        assert_eq!((before.queries, before.cache_hits), (3, 2));
        assert_eq!(before.wire_queries, 1);
        resolver.clear_cache();
        let cleared = resolver.snapshot();
        // Cache-epoch counters reset so post-clear rates describe the new
        // round…
        assert_eq!(cleared.queries, 0);
        assert_eq!(cleared.cache_hits, 0);
        assert_eq!(cleared.cache_expired, 0);
        assert_eq!(cleared.coalesced, 0);
        assert_eq!(cleared.cache_hit_rate(), 0.0);
        // …while transport-lifetime counters survive the clear.
        assert_eq!(cleared.wire_queries, 1);
        assert_eq!(resolver.cache_len(), 0);
        // A fresh round computes its hit rate from the new epoch alone.
        resolver.query(&name, RecordType::Txt).unwrap();
        resolver.query(&name, RecordType::Txt).unwrap();
        let after = resolver.snapshot();
        assert_eq!((after.queries, after.cache_hits), (2, 1));
        assert_eq!(after.wire_queries, 2);
        assert_eq!(after.cache_hit_rate(), 0.5);
    }

    #[test]
    fn injected_latency_runs_on_the_clock() {
        let store = seeded_store(8);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let clock = Arc::new(VirtualClock::new());
        let resolver = WireResolver::with_clock(
            fleet.addrs(),
            fast_config(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .with_behaviors(
            vec![ShardBehavior {
                fault: FaultProfile::none(),
                latency: Duration::from_millis(40),
            }],
            1,
        );
        for i in 0..8 {
            resolver
                .query(&dom(&format!("d{i}.example")), RecordType::Txt)
                .unwrap();
        }
        // 8 queries × 40ms of virtual latency, paid instantly.
        assert_eq!(clock.now(), Duration::from_millis(320));
    }
}
