//! An authoritative name server (UDP + TCP) and a matching stub resolver.
//!
//! These put the RFC 1035 codec on real sockets: integration tests run the
//! complete crawl→parse→analyze pipeline against a [`UdpNameServer`] bound
//! to 127.0.0.1, demonstrating that the substrate is wire-compatible and
//! not a shortcut around the network. The server also listens on TCP
//! (RFC 7766, 2-byte length-prefixed messages) on the same port, and the
//! client falls back to TCP when a UDP response arrives truncated — the
//! path big provider records (websitewelcome-scale, dozens of blocks)
//! need under classic 512-byte payloads.

use std::io::{Read, Write};
use std::net::{SocketAddr, SocketAddrV4, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nix::sys::socket::{recv_from_batch, send_to_batch, RecvSlot, SendPacket};
use parking_lot::Mutex;
use spf_types::DomainName;

use crate::record::{Question, RecordType, ResourceRecord};
use crate::resolver::{DnsError, Resolver};
use crate::wire::{self, Message, Rcode};
use crate::zone::{LookupOutcome, ZoneFault, ZoneStore};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest response payload before the server truncates (sets TC and
    /// empties the answer section). 1232 is the EDNS-era conventional safe
    /// size; set 512 to exercise classic truncation.
    pub max_payload: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_payload: 1232 }
    }
}

/// A running authoritative name server on a background thread.
///
/// The server answers from a shared [`ZoneStore`]; names with a
/// [`ZoneFault::Timeout`] fault are silently dropped so clients observe a
/// real timeout.
pub struct UdpNameServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    tcp_handle: Option<JoinHandle<()>>,
    answered: Arc<AtomicU64>,
    tcp_answered: Arc<AtomicU64>,
}

impl UdpNameServer {
    /// Bind to 127.0.0.1 on an ephemeral port and start serving.
    pub fn spawn(store: Arc<ZoneStore>, config: ServerConfig) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(25)))?;
        let addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let answered = Arc::new(AtomicU64::new(0));
        let thread_shutdown = Arc::clone(&shutdown);
        let thread_answered = Arc::clone(&answered);
        let udp_store = Arc::clone(&store);
        let udp_config = config.clone();
        let handle = std::thread::Builder::new()
            .name("udp-nameserver".into())
            .spawn(move || {
                serve_loop(
                    socket,
                    udp_store,
                    udp_config,
                    thread_shutdown,
                    thread_answered,
                );
            })?;
        // RFC 7766 companion listener on the same port. TCP responses are
        // never truncated.
        let tcp_listener = TcpListener::bind(addr)?;
        tcp_listener.set_nonblocking(true)?;
        let tcp_shutdown = Arc::clone(&shutdown);
        let tcp_answered = Arc::new(AtomicU64::new(0));
        let tcp_counter = Arc::clone(&tcp_answered);
        let tcp_handle = std::thread::Builder::new()
            .name("tcp-nameserver".into())
            .spawn(move || {
                serve_tcp_loop(tcp_listener, store, tcp_shutdown, tcp_counter);
            })?;
        Ok(UdpNameServer {
            addr,
            shutdown,
            handle: Some(handle),
            tcp_handle: Some(tcp_handle),
            answered,
            tcp_answered,
        })
    }

    /// The bound address to point clients at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of UDP responses sent.
    pub fn answered(&self) -> u64 {
        self.answered.load(Ordering::Relaxed)
    }

    /// Number of TCP responses sent (truncation fallbacks).
    pub fn tcp_answered(&self) -> u64 {
        self.tcp_answered.load(Ordering::Relaxed)
    }
}

impl Drop for UdpNameServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tcp_handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_tcp_loop(
    listener: TcpListener,
    store: Arc<ZoneStore>,
    shutdown: Arc<AtomicBool>,
    answered: Arc<AtomicU64>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_tcp_connection(stream, &store, &answered);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_tcp_connection(
    mut stream: TcpStream,
    store: &Arc<ZoneStore>,
    answered: &Arc<AtomicU64>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    loop {
        let mut len_buf = [0u8; 2];
        if stream.read_exact(&mut len_buf).is_err() {
            return Ok(()); // connection closed or idle
        }
        let len = u16::from_be_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        stream.read_exact(&mut buf)?;
        let query = match wire::decode(&buf) {
            Ok(m) if !m.header.is_response && !m.questions.is_empty() => m,
            _ => return Ok(()),
        };
        let question = &query.questions[0];
        let (rcode, answers) = match store.lookup_question(question) {
            LookupOutcome::Records(rrs) => (Rcode::NoError, rrs),
            LookupOutcome::NoRecords => (Rcode::NoError, Vec::new()),
            LookupOutcome::NxDomain => (Rcode::NxDomain, Vec::new()),
            LookupOutcome::Fault(ZoneFault::Timeout) => return Ok(()), // silence
            LookupOutcome::Fault(ZoneFault::ServFail) => (Rcode::ServFail, Vec::new()),
            LookupOutcome::Fault(ZoneFault::Refused) => (Rcode::Refused, Vec::new()),
        };
        let response = Message::response(&query, rcode, answers);
        let encoded = match wire::encode(&response) {
            Ok(b) => b,
            Err(_) => return Ok(()),
        };
        let len: u16 = encoded
            .len()
            .try_into()
            .map_err(|_| std::io::Error::other("response exceeds TCP message size"))?;
        // Count before the reply leaves: otherwise a client that has
        // already received the response can observe a stale counter.
        answered.fetch_add(1, Ordering::Relaxed);
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&encoded)?;
        stream.flush()?;
    }
}

/// Datagrams handled per `recvmmsg`/`sendmmsg` batch in [`serve_loop`].
const SERVE_BATCH: usize = 64;

/// Build the reply for one received datagram, or `None` when the server
/// stays silent (malformed query, timeout fault, unencodable response).
fn reply_for(store: &ZoneStore, config: &ServerConfig, payload: &[u8]) -> Option<Vec<u8>> {
    let query = match wire::decode(payload) {
        Ok(m) if !m.header.is_response && !m.questions.is_empty() => m,
        // Malformed packets are dropped like a hardened server would.
        _ => return None,
    };
    let question = &query.questions[0];
    let (rcode, answers) = match store.lookup_question(question) {
        LookupOutcome::Records(rrs) => (Rcode::NoError, rrs),
        LookupOutcome::NoRecords => (Rcode::NoError, Vec::new()),
        LookupOutcome::NxDomain => (Rcode::NxDomain, Vec::new()),
        LookupOutcome::Fault(ZoneFault::Timeout) => return None, // silence = timeout
        LookupOutcome::Fault(ZoneFault::ServFail) => (Rcode::ServFail, Vec::new()),
        LookupOutcome::Fault(ZoneFault::Refused) => (Rcode::Refused, Vec::new()),
    };
    let mut response = Message::response(&query, rcode, answers);
    let mut encoded = wire::encode(&response).ok()?;
    if encoded.len() > config.max_payload {
        response.header.truncated = true;
        response.answers.clear();
        encoded = wire::encode(&response).ok()?;
    }
    Some(encoded)
}

fn serve_loop(
    socket: UdpSocket,
    store: Arc<ZoneStore>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    answered: Arc<AtomicU64>,
) {
    // One `recvmmsg` blocks (bounded by the 25ms read timeout) for the
    // first datagram of a batch, then drains whatever else is queued; one
    // `sendmmsg` pushes all the replies back. Under a reactor client
    // bursting hundreds of queries this collapses 2×N syscalls per batch
    // into 2.
    let mut slots: Vec<RecvSlot> = (0..SERVE_BATCH).map(|_| RecvSlot::new(4096)).collect();
    let mut replies: Vec<(Vec<u8>, SocketAddrV4)> = Vec::with_capacity(SERVE_BATCH);
    while !shutdown.load(Ordering::Relaxed) {
        let n = match recv_from_batch(&socket, &mut slots, false) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        replies.clear();
        for slot in slots.iter().take(n) {
            let peer = match slot.peer {
                Some(p) => p,
                None => continue,
            };
            if let Some(encoded) = reply_for(&store, &config, slot.payload()) {
                replies.push((encoded, peer));
            }
        }
        if replies.is_empty() {
            continue;
        }
        // Count before the replies leave: otherwise a client that has
        // already received a response can observe a stale counter.
        answered.fetch_add(replies.len() as u64, Ordering::Relaxed);
        let pkts: Vec<SendPacket<'_>> = replies
            .iter()
            .map(|(bytes, peer)| SendPacket {
                data: bytes,
                to: *peer,
            })
            .collect();
        let mut off = 0;
        while off < pkts.len() {
            match send_to_batch(&socket, &pkts[off..], false) {
                Ok(0) => break,
                Ok(sent) => off += sent,
                Err(_) => break,
            }
        }
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt receive timeout.
    pub timeout: Duration,
    /// Number of attempts before reporting [`DnsError::Timeout`].
    pub retries: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: Duration::from_millis(120),
            retries: 2,
        }
    }
}

/// A stub resolver speaking RFC 1035 over UDP.
///
/// Queries are serialized through an internal lock so concurrent callers
/// cannot steal each other's responses; the crawler achieves parallelism
/// by cloning one resolver per worker instead.
pub struct UdpResolver {
    server: SocketAddr,
    config: ClientConfig,
    socket: Mutex<UdpSocket>,
    next_id: AtomicU64,
}

impl UdpResolver {
    /// Connect (logically) to a server address.
    pub fn new(server: SocketAddr, config: ClientConfig) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(config.timeout))?;
        Ok(UdpResolver {
            server,
            config,
            socket: Mutex::new(socket),
            next_id: AtomicU64::new(1),
        })
    }

    fn query_once(
        &self,
        socket: &UdpSocket,
        id: u16,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<Message, DnsError> {
        let msg = Message::query(id, Question::new(name.clone(), rtype));
        let bytes = wire::encode(&msg).map_err(|e| DnsError::Network(e.to_string()))?;
        socket
            .send_to(&bytes, self.server)
            .map_err(|e| DnsError::Network(e.to_string()))?;
        let mut buf = [0u8; 4096];
        loop {
            let (len, peer) = socket.recv_from(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                {
                    DnsError::Timeout
                } else {
                    DnsError::Network(e.to_string())
                }
            })?;
            if peer != self.server {
                continue; // stray packet
            }
            let resp = match wire::decode(&buf[..len]) {
                Ok(m) => m,
                Err(_) => continue, // garbled; keep waiting until timeout
            };
            if resp.header.id != id || !resp.header.is_response {
                continue;
            }
            return Ok(resp);
        }
    }
}

/// One length-prefixed RFC 7766 query over TCP — the truncation fallback
/// path shared by [`UdpResolver`] and [`crate::fleet::WireResolver`].
pub(crate) fn tcp_query(
    server: SocketAddr,
    timeout: Duration,
    id: u16,
    name: &DomainName,
    rtype: RecordType,
) -> Result<Vec<ResourceRecord>, DnsError> {
    let to_net = |e: std::io::Error| DnsError::Network(format!("tcp: {e}"));
    let mut stream = TcpStream::connect(server).map_err(to_net)?;
    stream
        .set_read_timeout(Some(timeout.max(Duration::from_millis(250))))
        .map_err(to_net)?;
    let msg = Message::query(id, Question::new(name.clone(), rtype));
    let bytes = wire::encode(&msg).map_err(|e| DnsError::Network(e.to_string()))?;
    let len: u16 = bytes
        .len()
        .try_into()
        .map_err(|_| DnsError::Network("query exceeds TCP message size".into()))?;
    stream.write_all(&len.to_be_bytes()).map_err(to_net)?;
    stream.write_all(&bytes).map_err(to_net)?;
    stream.flush().map_err(to_net)?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            DnsError::Timeout
        } else {
            to_net(e)
        }
    })?;
    let resp_len = u16::from_be_bytes(len_buf) as usize;
    let mut buf = vec![0u8; resp_len];
    stream.read_exact(&mut buf).map_err(to_net)?;
    let resp = wire::decode(&buf).map_err(|e| DnsError::Network(e.to_string()))?;
    if resp.header.id != id || !resp.header.is_response {
        return Err(DnsError::Network("mismatched TCP response".into()));
    }
    match resp.header.rcode {
        Rcode::NoError => Ok(resp.answers),
        Rcode::NxDomain => Err(DnsError::NxDomain),
        Rcode::ServFail => Err(DnsError::ServFail),
        Rcode::Refused => Err(DnsError::Refused),
        other => Err(DnsError::Network(format!("unexpected rcode {other:?}"))),
    }
}

impl UdpResolver {
    /// Length-prefixed query over TCP (the truncation fallback path).
    fn query_tcp(
        &self,
        id: u16,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<Vec<ResourceRecord>, DnsError> {
        tcp_query(self.server, self.config.timeout, id, name, rtype)
    }
}

impl Resolver for UdpResolver {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        let socket = self.socket.lock();
        let id = (self.next_id.fetch_add(1, Ordering::Relaxed) % 0xFFFF) as u16 + 1;
        let mut last_err = DnsError::Timeout;
        for _ in 0..self.config.retries.max(1) {
            match self.query_once(&socket, id, name, rtype) {
                Ok(resp) => {
                    if resp.header.truncated {
                        // RFC 7766: retry the query over TCP.
                        return self.query_tcp(id, name, rtype);
                    }
                    return match resp.header.rcode {
                        Rcode::NoError => Ok(resp.answers),
                        Rcode::NxDomain => Err(DnsError::NxDomain),
                        Rcode::ServFail => Err(DnsError::ServFail),
                        Rcode::Refused => Err(DnsError::Refused),
                        other => Err(DnsError::Network(format!("unexpected rcode {other:?}"))),
                    };
                }
                Err(DnsError::Timeout) => {
                    last_err = DnsError::Timeout;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordData;
    use std::net::Ipv4Addr;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn server_with(store: &Arc<ZoneStore>) -> UdpNameServer {
        UdpNameServer::spawn(Arc::clone(store), ServerConfig::default()).unwrap()
    }

    #[test]
    fn resolves_txt_over_udp() {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("example.com"), "v=spf1 ip4:192.0.2.0/24 -all");
        let server = server_with(&store);
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        let answers = resolver
            .query(&dom("example.com"), RecordType::Txt)
            .unwrap();
        assert_eq!(answers.len(), 1);
        match &answers[0].data {
            RecordData::Txt(t) => assert_eq!(t.joined(), "v=spf1 ip4:192.0.2.0/24 -all"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(server.answered() >= 1);
    }

    #[test]
    fn nxdomain_over_udp() {
        let store = Arc::new(ZoneStore::new());
        let server = server_with(&store);
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        assert_eq!(
            resolver.query(&dom("missing.example"), RecordType::A),
            Err(DnsError::NxDomain)
        );
    }

    #[test]
    fn empty_answer_over_udp() {
        let store = Arc::new(ZoneStore::new());
        store.add_a(&dom("example.com"), Ipv4Addr::new(192, 0, 2, 1));
        let server = server_with(&store);
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        assert_eq!(
            resolver.query(&dom("example.com"), RecordType::Txt),
            Ok(vec![])
        );
    }

    #[test]
    fn timeout_fault_times_out() {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("slow.example"), "v=spf1 -all");
        store.set_fault(&dom("slow.example"), ZoneFault::Timeout);
        let server = server_with(&store);
        let resolver = UdpResolver::new(
            server.addr(),
            ClientConfig {
                timeout: Duration::from_millis(60),
                retries: 2,
            },
        )
        .unwrap();
        assert_eq!(
            resolver.query(&dom("slow.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
    }

    #[test]
    fn servfail_over_udp() {
        let store = Arc::new(ZoneStore::new());
        store.set_fault(&dom("bad.example"), ZoneFault::ServFail);
        // set_fault alone is enough; lookup checks faults before existence.
        store.add_txt(&dom("bad.example"), "v=spf1 -all");
        let server = server_with(&store);
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        assert_eq!(
            resolver.query(&dom("bad.example"), RecordType::Txt),
            Err(DnsError::ServFail)
        );
    }

    #[test]
    fn truncated_udp_response_falls_back_to_tcp() {
        let store = Arc::new(ZoneStore::new());
        let name = dom("huge.example");
        // Enough TXT data to exceed a 512-byte payload.
        let long = "v=spf1 ".to_string() + &"ip4:198.51.100.0/24 ".repeat(40) + "-all";
        store.add_txt(&name, &long);
        let server =
            UdpNameServer::spawn(Arc::clone(&store), ServerConfig { max_payload: 512 }).unwrap();
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        // The UDP answer is truncated; RFC 7766 fallback fetches it whole.
        let answers = resolver.query(&name, RecordType::Txt).unwrap();
        match &answers[0].data {
            crate::record::RecordData::Txt(t) => assert_eq!(t.joined(), long),
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            server.tcp_answered() >= 1,
            "TCP path must have served the retry"
        );
    }

    #[test]
    fn tcp_fallback_preserves_rcode_semantics() {
        // NXDOMAIN over TCP after truncation is impossible (empty answers
        // never truncate), so probe the TCP path directly with a normal
        // record and confirm multiple sequential fallbacks work.
        let store = Arc::new(ZoneStore::new());
        for i in 0..5 {
            let long = "v=spf1 ".to_string() + &"ip4:203.0.113.0/24 ".repeat(40) + "-all";
            store.add_txt(&dom(&format!("big{i}.example")), &long);
        }
        let server =
            UdpNameServer::spawn(Arc::clone(&store), ServerConfig { max_payload: 512 }).unwrap();
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        for i in 0..5 {
            let answers = resolver
                .query(&dom(&format!("big{i}.example")), RecordType::Txt)
                .unwrap();
            assert_eq!(answers.len(), 1);
        }
        assert_eq!(server.tcp_answered(), 5);
    }

    #[test]
    fn many_sequential_queries() {
        let store = Arc::new(ZoneStore::new());
        for i in 0..50 {
            store.add_txt(
                &dom(&format!("d{i}.example")),
                &format!("v=spf1 ip4:10.0.0.{i} -all"),
            );
        }
        let server = server_with(&store);
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        for i in 0..50 {
            let rrs = resolver
                .query(&dom(&format!("d{i}.example")), RecordType::Txt)
                .unwrap();
            assert_eq!(rrs.len(), 1);
        }
        assert_eq!(server.answered(), 50);
    }

    #[test]
    fn deprecated_spf_rr_type_over_udp() {
        let store = Arc::new(ZoneStore::new());
        store.add_spf_type99(&dom("legacy.example"), "v=spf1 mx -all");
        let server = server_with(&store);
        let resolver = UdpResolver::new(server.addr(), ClientConfig::default()).unwrap();
        let rrs = resolver
            .query(&dom("legacy.example"), RecordType::Spf)
            .unwrap();
        match &rrs[0].data {
            RecordData::Spf(t) => assert_eq!(t.joined(), "v=spf1 mx -all"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
