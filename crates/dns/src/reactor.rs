//! The epoll wire engine: hundreds of in-flight queries on a handful of
//! sockets.
//!
//! The blocking [`crate::fleet::WireResolver`] dedicates one pooled
//! socket (and one parked worker thread) to every outstanding query — a
//! faithful model of a classic stub resolver, but four syscalls and two
//! context switches per answer. This module rebuilds the transport the
//! way the paper's measurement infrastructure actually ran: a single
//! reactor thread drives one nonblocking UDP socket per server shard,
//! keys hundreds of concurrent flights by DNS message id, batches
//! datagrams through `sendmmsg`/`recvmmsg`, and retires timeouts from a
//! hashed deadline wheel. Truncated replies fall back to nonblocking TCP
//! connections multiplexed on the same epoll instance.
//!
//! Everything *semantic* — the TTL cache, single-flight coalescing,
//! per-shard fault injection, and the [`WireSnapshot`] counter set —
//! lives in the shared [`crate::fleet`] core, so the async engine is
//! byte-identical to the blocking one under a zero-fault profile; the
//! façade's stress suites compare their report streams at scale.
//!
//! Worker threads keep the synchronous [`Resolver`] interface: a query
//! that has to touch the wire is submitted to the reactor over a channel
//! and the worker parks on its single-flight completion slot until the
//! reactor publishes the outcome. The reactor is woken from `epoll_wait`
//! by a loopback wake datagram, sent only when the submitter observes the
//! reactor's `sleeping` flag — the uncontended fast path is one channel
//! push with no syscall at all.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, SocketAddrV4, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use nix::sys::epoll::{Epoll, EpollCreateFlags, EpollEvent, EpollFlags};
use nix::sys::socket::{recv_from_batch, send_to_batch, RecvSlot, SendPacket};
use parking_lot::Mutex;
use spf_types::DomainName;

use crate::clock::{Clock, SystemClock};
use crate::fleet::{
    QueryStart, ShardBehavior, WireClientConfig, WireCore, WireSnapshot, WireTelemetry,
};
use crate::record::{Question, RecordType, ResourceRecord};
use crate::resolver::{DnsError, Resolver};
use crate::wire::{self, Message, Rcode};

/// Epoll token of the reactor's wake socket.
const TOKEN_WAKE: u64 = 0;
/// Epoll tokens `TOKEN_SHARD_BASE + i` address shard `i`'s UDP socket.
const TOKEN_SHARD_BASE: u64 = 1;
/// Tokens at or above this address TCP fallback connections.
const TOKEN_TCP_BASE: u64 = 1 << 32;
/// Longest the reactor parks in `epoll_wait` regardless of deadlines — a
/// safety net bounding any lost wake-up race.
const MAX_PARK: Duration = Duration::from_millis(50);
/// Datagrams sent/received per `sendmmsg`/`recvmmsg` call.
const BATCH: usize = 64;
/// Receive buffer size per batched slot (matches the blocking engine's
/// stack buffer).
const RECV_BUF: usize = 4096;

/// One leader query handed from a worker thread to the reactor.
struct Submission {
    q: Question,
    shard: usize,
}

/// Flags shared between worker threads and the reactor thread.
struct ReactorShared {
    /// True while the reactor is (about to be) parked in `epoll_wait`;
    /// submitters only pay the wake-datagram syscall when they see it.
    sleeping: AtomicBool,
    /// Set by [`AsyncWireResolver::drop`]; the reactor drains and exits.
    shutdown: AtomicBool,
    /// Submissions that had to queue behind the in-flight cap or an
    /// exhausted id space before launching.
    deferrals: AtomicU64,
}

/// The live reactor: submission channel, wake route and join handle.
struct ReactorHandle {
    tx: Sender<Submission>,
    wake_tx: UdpSocket,
    wake_addr: SocketAddr,
    shared: Arc<ReactorShared>,
    join: Mutex<Option<JoinHandle<()>>>,
}

/// The epoll-reactor wire engine behind the plain blocking [`Resolver`]
/// interface.
///
/// Construction is cheap and does not open sockets; the reactor thread
/// spawns lazily on the first query that has to touch the wire. Dropping
/// the resolver shuts the reactor down and joins it.
pub struct AsyncWireResolver {
    core: Arc<WireCore>,
    reactor: OnceLock<Result<ReactorHandle, String>>,
}

impl AsyncWireResolver {
    /// An engine routing to `servers` (shard `i` of the fleet at index
    /// `i`), on the system clock.
    ///
    /// # Panics
    /// Panics when `servers` is empty.
    pub fn new(servers: Vec<SocketAddr>, config: WireClientConfig) -> Self {
        Self::with_clock(servers, config, Arc::new(SystemClock::new()))
    }

    /// Like [`AsyncWireResolver::new`] with an explicit clock (cache TTLs
    /// and injected latency run on it; socket deadlines always run on
    /// real time, as they do for the blocking engine).
    pub fn with_clock(
        servers: Vec<SocketAddr>,
        config: WireClientConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        AsyncWireResolver {
            core: Arc::new(WireCore::new(servers, config, clock)),
            reactor: OnceLock::new(),
        }
    }

    /// Attach per-shard fault/latency behaviors (one entry per server, in
    /// routing order), exactly as
    /// [`crate::fleet::WireResolver::with_behaviors`].
    ///
    /// # Panics
    /// Panics when `behaviors.len()` differs from the server count, or
    /// when called after the engine has started resolving (the reactor
    /// holds a reference to the core from its first query on).
    pub fn with_behaviors(mut self, behaviors: Vec<ShardBehavior>, seed: u64) -> Self {
        Arc::get_mut(&mut self.core)
            .expect("with_behaviors must be called before the first query")
            .set_behaviors(behaviors, seed);
        self
    }

    /// Number of server shards this engine routes across.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The shard index `name` routes to.
    pub fn shard_of(&self, name: &DomainName) -> usize {
        self.core.shard_of(name)
    }

    /// Point-in-time copy of the engine's counters.
    pub fn snapshot(&self) -> WireSnapshot {
        self.core.snapshot()
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.core.cache_len()
    }

    /// Drop every cached answer and reset the cache-epoch counters; see
    /// [`crate::fleet::WireResolver::clear_cache`] for the exact counter
    /// partition.
    pub fn clear_cache(&self) {
        self.core.clear_cache()
    }

    /// Submissions that queued behind the per-shard in-flight cap
    /// ([`WireClientConfig::max_inflight_per_shard`]) or an exhausted
    /// message-id space before being launched. Purely a backpressure
    /// gauge; deferred queries still complete normally.
    pub fn deferrals(&self) -> u64 {
        match self.reactor.get() {
            Some(Ok(h)) => h.shared.deferrals.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    fn handle(&self) -> Result<&ReactorHandle, DnsError> {
        self.reactor
            .get_or_init(|| spawn_reactor(Arc::clone(&self.core)))
            .as_ref()
            .map_err(|e| DnsError::Network(format!("reactor: {e}")))
    }
}

impl Resolver for AsyncWireResolver {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        let q = Question::new(name.clone(), rtype);
        match self.core.begin(&q) {
            QueryStart::Cached(result) => result,
            QueryStart::Join(flight) => flight.wait(),
            QueryStart::Lead(flight) => {
                let shard = self.core.shard_of(name);
                // Fault injection happens on the submitting thread (it
                // may sleep on the virtual clock), exactly as the
                // blocking leader does.
                if let Some(outcome) = self.core.try_injected(shard) {
                    return self.core.finish(&q, outcome);
                }
                let handle = match self.handle() {
                    Ok(h) => h,
                    Err(e) => return self.core.finish(&q, Err(e)),
                };
                let sub = Submission {
                    q: q.clone(),
                    shard,
                };
                if handle.tx.send(sub).is_err() {
                    let err = DnsError::Network("reactor unavailable".into());
                    return self.core.finish(&q, Err(err));
                }
                if handle.shared.sleeping.load(Ordering::SeqCst) {
                    let _ = handle.wake_tx.send_to(b"w", handle.wake_addr);
                }
                flight.wait()
            }
        }
    }
}

impl WireTelemetry for AsyncWireResolver {
    fn snapshot(&self) -> WireSnapshot {
        AsyncWireResolver::snapshot(self)
    }

    fn clear_cache(&self) {
        AsyncWireResolver::clear_cache(self)
    }

    fn cache_len(&self) -> usize {
        AsyncWireResolver::cache_len(self)
    }

    fn shard_count(&self) -> usize {
        AsyncWireResolver::shard_count(self)
    }
}

impl Drop for AsyncWireResolver {
    fn drop(&mut self) {
        if let Some(Ok(h)) = self.reactor.get() {
            h.shared.shutdown.store(true, Ordering::SeqCst);
            let _ = h.wake_tx.send_to(b"w", h.wake_addr);
            if let Some(join) = h.join.lock().take() {
                let _ = join.join();
            }
        }
    }
}

fn spawn_reactor(core: Arc<WireCore>) -> Result<ReactorHandle, String> {
    let err = |what: &str, e: std::io::Error| format!("{what}: {e}");
    let wake_rx = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| err("wake bind", e))?;
    wake_rx
        .set_nonblocking(true)
        .map_err(|e| err("wake nonblocking", e))?;
    let wake_addr = wake_rx.local_addr().map_err(|e| err("wake addr", e))?;
    let wake_tx = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| err("wake tx bind", e))?;
    let epoll = Epoll::new(EpollCreateFlags::EPOLL_CLOEXEC).map_err(|e| err("epoll", e))?;
    epoll
        .add(&wake_rx, EpollEvent::new(EpollFlags::EPOLLIN, TOKEN_WAKE))
        .map_err(|e| err("wake register", e))?;
    let mut shards = Vec::with_capacity(core.servers.len());
    for (i, server) in core.servers.iter().enumerate() {
        let server = match server {
            SocketAddr::V4(a) => *a,
            SocketAddr::V6(a) => return Err(format!("IPv6 server unsupported: {a}")),
        };
        let socket = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| err("shard bind", e))?;
        socket
            .set_nonblocking(true)
            .map_err(|e| err("shard nonblocking", e))?;
        epoll
            .add(
                &socket,
                EpollEvent::new(EpollFlags::EPOLLIN, TOKEN_SHARD_BASE + i as u64),
            )
            .map_err(|e| err("shard register", e))?;
        shards.push(ShardState::new(server, socket));
    }
    let (tx, rx) = channel::unbounded();
    let shared = Arc::new(ReactorShared {
        sleeping: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        deferrals: AtomicU64::new(0),
    });
    let reactor = Reactor {
        core,
        epoll,
        wake_rx,
        rx,
        shared: Arc::clone(&shared),
        shards,
        wheel: DeadlineWheel::new(),
        tcp_ops: HashMap::new(),
        next_tcp_token: TOKEN_TCP_BASE,
        next_seq: 0,
        recv_slots: (0..BATCH).map(|_| RecvSlot::new(RECV_BUF)).collect(),
    };
    let join = std::thread::Builder::new()
        .name("wire-reactor".into())
        .spawn(move || reactor.run())
        .map_err(|e| err("spawn", e))?;
    Ok(ReactorHandle {
        tx,
        wake_tx,
        wake_addr,
        shared,
        join: Mutex::new(Some(join)),
    })
}

/// Whether an in-flight query is waiting on UDP or on a TCP fallback.
enum FlightState {
    Udp,
    Tcp(u64),
}

/// One query owned by the reactor, keyed by DNS message id within its
/// shard.
struct Inflight {
    q: Question,
    /// The encoded query datagram, kept for retries.
    bytes: Vec<u8>,
    /// UDP attempts remaining after the one currently in flight.
    attempts_left: u32,
    /// Monotonic stamp validating deadline-wheel entries: every re-arm
    /// bumps it, so stale wheel entries from earlier attempts are inert.
    seq: u64,
    state: FlightState,
}

/// Per-shard reactor state: one nonblocking socket, the in-flight table,
/// the message-id allocator and the backpressure queue.
struct ShardState {
    server: SocketAddrV4,
    socket: UdpSocket,
    inflight: HashMap<u16, Inflight>,
    /// Ids returned by completed queries, reused FIFO so a freed id rests
    /// as long as possible before reuse (late duplicate replies for it
    /// go stale in the meantime).
    free_ids: VecDeque<u16>,
    /// Next never-used id (1..=0xFFFF); the free list takes over once
    /// the space has been toured.
    next_fresh: u32,
    /// Submissions waiting for capacity or an id.
    pending: VecDeque<Submission>,
    /// Encoded datagrams awaiting the next `sendmmsg` flush.
    sendq: VecDeque<(u16, Vec<u8>)>,
    /// True while EPOLLOUT interest is registered (kernel buffer was
    /// full at the last flush).
    wants_writable: bool,
}

impl ShardState {
    fn new(server: SocketAddrV4, socket: UdpSocket) -> Self {
        ShardState {
            server,
            socket,
            inflight: HashMap::new(),
            free_ids: VecDeque::new(),
            next_fresh: 1,
            pending: VecDeque::new(),
            sendq: VecDeque::new(),
            wants_writable: false,
        }
    }

    fn alloc_id(&mut self) -> Option<u16> {
        if self.next_fresh <= 0xFFFF {
            let id = self.next_fresh as u16;
            self.next_fresh += 1;
            return Some(id);
        }
        self.free_ids.pop_front()
    }
}

/// A TCP fallback in progress: write the length-prefixed query, read the
/// length-prefixed response, all nonblocking on the reactor's epoll.
struct TcpOp {
    shard: usize,
    id: u16,
    stream: TcpStream,
    state: TcpState,
}

enum TcpState {
    Writing { buf: Vec<u8>, off: usize },
    ReadingLen { buf: [u8; 2], off: usize },
    ReadingBody { buf: Vec<u8>, off: usize },
}

/// What a TCP state-machine step decided.
enum TcpStep {
    /// Would block; wait for the next readiness event.
    Pending,
    /// Writing finished; switch epoll interest to EPOLLIN.
    SwitchToRead,
    /// The fallback produced the query's final outcome.
    Done(Result<Vec<ResourceRecord>, DnsError>),
}

struct Reactor {
    core: Arc<WireCore>,
    epoll: Epoll,
    wake_rx: UdpSocket,
    rx: Receiver<Submission>,
    shared: Arc<ReactorShared>,
    shards: Vec<ShardState>,
    wheel: DeadlineWheel,
    tcp_ops: HashMap<u64, TcpOp>,
    next_tcp_token: u64,
    next_seq: u64,
    recv_slots: Vec<RecvSlot>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = [EpollEvent::empty(); BATCH];
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain_shutdown();
                return;
            }
            let mut admitted = false;
            while let Ok(sub) = self.rx.try_recv() {
                self.admit(sub);
                admitted = true;
            }
            let now = Instant::now();
            for entry in self.wheel.expire(now) {
                self.on_deadline(entry);
            }
            for i in 0..self.shards.len() {
                self.flush_shard(i);
            }
            let timeout = self
                .wheel
                .next_deadline()
                .map(|d| d.saturating_duration_since(now))
                .unwrap_or(MAX_PARK)
                .min(MAX_PARK);
            // Wake-race closure: declare we are going to sleep, then
            // re-drain the channel. A submitter that enqueued before this
            // drain is picked up here; one that enqueues after it reads
            // `sleeping == true` and sends a wake datagram epoll will see.
            self.shared.sleeping.store(true, Ordering::SeqCst);
            let mut late = false;
            while let Ok(sub) = self.rx.try_recv() {
                self.admit(sub);
                late = true;
            }
            let timeout_ms = if late || admitted {
                0
            } else {
                timeout.as_millis() as i32
            };
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => 0,
                Err(_) => 0,
            };
            self.shared.sleeping.store(false, Ordering::SeqCst);
            for ev in events.iter().take(n) {
                match ev.data() {
                    TOKEN_WAKE => self.drain_wake(),
                    t if t >= TOKEN_TCP_BASE => self.on_tcp_event(t),
                    t => self.on_udp_readable((t - TOKEN_SHARD_BASE) as usize),
                }
            }
        }
    }

    /// Launch `sub` now, or queue it when the shard is at its in-flight
    /// cap or out of message ids.
    fn admit(&mut self, sub: Submission) {
        let shard = sub.shard;
        let state = &mut self.shards[shard];
        if state.inflight.len() >= self.core.config.max_inflight_per_shard {
            self.shared.deferrals.fetch_add(1, Ordering::Relaxed);
            state.pending.push_back(sub);
            return;
        }
        match state.alloc_id() {
            Some(id) => self.launch(shard, id, sub),
            None => {
                self.shared.deferrals.fetch_add(1, Ordering::Relaxed);
                state.pending.push_back(sub);
            }
        }
    }

    fn launch(&mut self, shard: usize, id: u16, sub: Submission) {
        let msg = Message::query(id, sub.q.clone());
        let bytes = match wire::encode(&msg) {
            Ok(b) => b,
            Err(e) => {
                self.shards[shard].free_ids.push_back(id);
                let _ = self
                    .core
                    .finish(&sub.q, Err(DnsError::Network(e.to_string())));
                return;
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let attempts = self.core.config.attempts.max(1) as u32;
        self.shards[shard].inflight.insert(
            id,
            Inflight {
                q: sub.q,
                bytes: bytes.clone(),
                attempts_left: attempts - 1,
                seq,
                state: FlightState::Udp,
            },
        );
        self.core
            .counters
            .wire_queries
            .fetch_add(1, Ordering::Relaxed);
        self.shards[shard].sendq.push_back((id, bytes));
        self.wheel
            .insert(Instant::now() + self.core.config.timeout, shard, id, seq);
    }

    /// Push the shard's queued datagrams to the kernel in `sendmmsg`
    /// batches, keeping EPOLLOUT interest only while the buffer is full.
    fn flush_shard(&mut self, shard: usize) {
        let state = &mut self.shards[shard];
        while !state.sendq.is_empty() {
            let batch: Vec<&(u16, Vec<u8>)> = state.sendq.iter().take(BATCH).collect();
            let pkts: Vec<SendPacket<'_>> = batch
                .iter()
                .map(|(_, bytes)| SendPacket {
                    data: bytes,
                    to: state.server,
                })
                .collect();
            match send_to_batch(&state.socket, &pkts, true) {
                Ok(sent) => {
                    drop(pkts);
                    drop(batch);
                    for _ in 0..sent {
                        state.sendq.pop_front();
                    }
                    if sent == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    drop(pkts);
                    drop(batch);
                    if !state.wants_writable {
                        state.wants_writable = true;
                        let _ = self.epoll.modify(
                            &state.socket,
                            EpollEvent::new(
                                EpollFlags::EPOLLIN | EpollFlags::EPOLLOUT,
                                TOKEN_SHARD_BASE + shard as u64,
                            ),
                        );
                    }
                    return;
                }
                Err(_) => {
                    // Socket-level send failure: drop the datagram; the
                    // deadline wheel will retry or time the query out,
                    // the same surface a lost packet presents.
                    drop(pkts);
                    drop(batch);
                    state.sendq.pop_front();
                }
            }
        }
        if state.wants_writable {
            state.wants_writable = false;
            let _ = self.epoll.modify(
                &state.socket,
                EpollEvent::new(EpollFlags::EPOLLIN, TOKEN_SHARD_BASE + shard as u64),
            );
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while let Ok((_, _)) = self.wake_rx.recv_from(&mut buf) {}
    }

    /// Drain the shard socket in `recvmmsg` batches and route each
    /// datagram to its in-flight query by message id. Strays, garbled
    /// packets, and duplicate or late replies are discarded — same rules
    /// as the blocking engine's receive loop.
    fn on_udp_readable(&mut self, shard: usize) {
        loop {
            let state = &mut self.shards[shard];
            let n = match recv_from_batch(&state.socket, &mut self.recv_slots, true) {
                Ok(0) => break,
                Ok(n) => n,
                Err(_) => break, // WouldBlock or transient socket error
            };
            let server = state.server;
            for i in 0..n {
                if self.recv_slots[i].peer != Some(server) {
                    continue; // stray packet
                }
                let resp = match wire::decode(self.recv_slots[i].payload()) {
                    Ok(m) => m,
                    Err(_) => continue, // garbled
                };
                if !resp.header.is_response {
                    continue;
                }
                let id = resp.header.id;
                let entry = match self.shards[shard].inflight.get(&id) {
                    Some(e) => e,
                    None => continue, // late or duplicate reply
                };
                if matches!(entry.state, FlightState::Tcp(_)) {
                    continue; // duplicate UDP reply after TCP fallback began
                }
                if resp.header.truncated {
                    self.core
                        .counters
                        .tcp_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    self.start_tcp(shard, id);
                } else {
                    let outcome = match resp.header.rcode {
                        Rcode::NoError => Ok(resp.answers),
                        Rcode::NxDomain => Err(DnsError::NxDomain),
                        Rcode::ServFail => Err(DnsError::ServFail),
                        Rcode::Refused => Err(DnsError::Refused),
                        other => Err(DnsError::Network(format!("unexpected rcode {other:?}"))),
                    };
                    self.complete(shard, id, outcome);
                }
            }
            if n < self.recv_slots.len() {
                break; // drained the queue
            }
        }
    }

    /// Begin a nonblocking TCP fallback for the truncated query
    /// `(shard, id)`. The message id stays reserved until the fallback
    /// completes, so a late duplicate UDP reply cannot be misattributed.
    fn start_tcp(&mut self, shard: usize, id: u16) {
        let server = SocketAddr::V4(self.shards[shard].server);
        // Loopback connects complete synchronously in-kernel; the
        // nonblocking part that matters is the write/read exchange.
        let stream = match TcpStream::connect(server).and_then(|s| {
            s.set_nonblocking(true)?;
            Ok(s)
        }) {
            Ok(s) => s,
            Err(e) => {
                self.complete(shard, id, Err(DnsError::Network(format!("tcp: {e}"))));
                return;
            }
        };
        let entry = self.shards[shard]
            .inflight
            .get_mut(&id)
            .expect("truncated reply matched in-flight entry");
        let mut buf = Vec::with_capacity(entry.bytes.len() + 2);
        buf.extend_from_slice(&(entry.bytes.len() as u16).to_be_bytes());
        buf.extend_from_slice(&entry.bytes);
        let token = self.next_tcp_token;
        self.next_tcp_token += 1;
        if let Err(e) = self
            .epoll
            .add(&stream, EpollEvent::new(EpollFlags::EPOLLOUT, token))
        {
            self.complete(shard, id, Err(DnsError::Network(format!("tcp: {e}"))));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        entry.state = FlightState::Tcp(token);
        entry.seq = seq;
        // Mirror the blocking tcp_query's read-timeout floor.
        let deadline = Instant::now() + self.core.config.timeout.max(Duration::from_millis(250));
        self.wheel.insert(deadline, shard, id, seq);
        self.tcp_ops.insert(
            token,
            TcpOp {
                shard,
                id,
                stream,
                state: TcpState::Writing { buf, off: 0 },
            },
        );
    }

    fn on_tcp_event(&mut self, token: u64) {
        let op = match self.tcp_ops.get_mut(&token) {
            Some(op) => op,
            None => return, // already retired (e.g. by a deadline)
        };
        match step_tcp(op) {
            TcpStep::Pending => {}
            TcpStep::SwitchToRead => {
                let _ = self
                    .epoll
                    .modify(&op.stream, EpollEvent::new(EpollFlags::EPOLLIN, token));
                // The response may already be readable; poll once more.
                self.on_tcp_event(token);
            }
            TcpStep::Done(outcome) => {
                let op = self.tcp_ops.remove(&token).expect("op present");
                // Dropping the stream closes the fd, which also removes
                // it from the epoll interest set.
                let (shard, id) = (op.shard, op.id);
                drop(op);
                self.complete(shard, id, outcome);
            }
        }
    }

    /// A deadline fired. Stale entries (the query completed or re-armed
    /// since) are recognized by their `seq` stamp and ignored.
    fn on_deadline(&mut self, entry: WheelEntry) {
        let shard = entry.shard;
        let state = match self.shards[shard].inflight.get_mut(&entry.id) {
            Some(e) if e.seq == entry.seq => e,
            _ => return,
        };
        match state.state {
            FlightState::Udp => {
                if state.attempts_left > 0 {
                    state.attempts_left -= 1;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    state.seq = seq;
                    let bytes = state.bytes.clone();
                    self.core.counters.retries.fetch_add(1, Ordering::Relaxed);
                    self.core
                        .counters
                        .wire_queries
                        .fetch_add(1, Ordering::Relaxed);
                    self.shards[shard].sendq.push_back((entry.id, bytes));
                    self.wheel.insert(
                        Instant::now() + self.core.config.timeout,
                        shard,
                        entry.id,
                        seq,
                    );
                } else {
                    self.core
                        .counters
                        .temp_errors
                        .fetch_add(1, Ordering::Relaxed);
                    self.complete(shard, entry.id, Err(DnsError::Timeout));
                }
            }
            FlightState::Tcp(token) => {
                self.tcp_ops.remove(&token);
                self.core
                    .counters
                    .temp_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.complete(shard, entry.id, Err(DnsError::Timeout));
            }
        }
    }

    /// Publish a query's outcome through the shared core, recycle its
    /// message id, and pull queued submissions into the freed capacity.
    fn complete(&mut self, shard: usize, id: u16, outcome: Result<Vec<ResourceRecord>, DnsError>) {
        let entry = match self.shards[shard].inflight.remove(&id) {
            Some(e) => e,
            None => return,
        };
        self.shards[shard].free_ids.push_back(id);
        let _ = self.core.finish(&entry.q, outcome);
        // Promote deferred submissions into the freed slot.
        while self.shards[shard].inflight.len() < self.core.config.max_inflight_per_shard {
            let sub = match self.shards[shard].pending.pop_front() {
                Some(s) => s,
                None => break,
            };
            match self.shards[shard].alloc_id() {
                Some(id) => self.launch(shard, id, sub),
                None => {
                    self.shards[shard].pending.push_front(sub);
                    break;
                }
            }
        }
    }

    /// Complete everything still owed before the reactor thread exits,
    /// so no worker is left parked on a flight.
    fn drain_shutdown(&mut self) {
        let err = || Err(DnsError::Network("wire reactor shut down".into()));
        for shard in &mut self.shards {
            for (_, entry) in shard.inflight.drain() {
                let _ = self.core.finish(&entry.q, err());
            }
            for sub in shard.pending.drain(..) {
                let _ = self.core.finish(&sub.q, err());
            }
        }
        while let Ok(sub) = self.rx.try_recv() {
            let _ = self.core.finish(&sub.q, err());
        }
    }
}

/// Drive a TCP fallback as far as the socket allows without blocking.
fn step_tcp(op: &mut TcpOp) -> TcpStep {
    let fail = |e: std::io::Error| TcpStep::Done(Err(DnsError::Network(format!("tcp: {e}"))));
    loop {
        match &mut op.state {
            TcpState::Writing { buf, off } => {
                while *off < buf.len() {
                    match op.stream.write(&buf[*off..]) {
                        Ok(0) => {
                            return TcpStep::Done(Err(DnsError::Network(
                                "tcp: connection closed".into(),
                            )))
                        }
                        Ok(n) => *off += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return TcpStep::Pending
                        }
                        Err(e) => return fail(e),
                    }
                }
                let _ = op.stream.flush();
                op.state = TcpState::ReadingLen {
                    buf: [0u8; 2],
                    off: 0,
                };
                return TcpStep::SwitchToRead;
            }
            TcpState::ReadingLen { buf, off } => {
                while *off < 2 {
                    match op.stream.read(&mut buf[*off..]) {
                        Ok(0) => {
                            return TcpStep::Done(Err(DnsError::Network(
                                "tcp: connection closed".into(),
                            )))
                        }
                        Ok(n) => *off += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return TcpStep::Pending
                        }
                        Err(e) => return fail(e),
                    }
                }
                let len = u16::from_be_bytes(*buf) as usize;
                op.state = TcpState::ReadingBody {
                    buf: vec![0u8; len],
                    off: 0,
                };
            }
            TcpState::ReadingBody { buf, off } => {
                while *off < buf.len() {
                    match op.stream.read(&mut buf[*off..]) {
                        Ok(0) => {
                            return TcpStep::Done(Err(DnsError::Network(
                                "tcp: connection closed".into(),
                            )))
                        }
                        Ok(n) => *off += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return TcpStep::Pending
                        }
                        Err(e) => return fail(e),
                    }
                }
                let resp = match wire::decode(buf) {
                    Ok(m) => m,
                    Err(e) => return TcpStep::Done(Err(DnsError::Network(e.to_string()))),
                };
                if resp.header.id != op.id || !resp.header.is_response {
                    return TcpStep::Done(Err(DnsError::Network("mismatched TCP response".into())));
                }
                return TcpStep::Done(match resp.header.rcode {
                    Rcode::NoError => Ok(resp.answers),
                    Rcode::NxDomain => Err(DnsError::NxDomain),
                    Rcode::ServFail => Err(DnsError::ServFail),
                    Rcode::Refused => Err(DnsError::Refused),
                    other => Err(DnsError::Network(format!("unexpected rcode {other:?}"))),
                });
            }
        }
    }
}

/// One armed deadline: `(shard, id)` addresses the in-flight query, `seq`
/// validates that the query has not completed or re-armed since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WheelEntry {
    pub(crate) deadline: Instant,
    pub(crate) shard: usize,
    pub(crate) id: u16,
    pub(crate) seq: u64,
}

/// A hashed timer wheel: 256 slots of [`WheelEntry`]s, 4ms per slot.
///
/// Insertion hashes the deadline into a slot; expiry sweeps only the
/// slots the cursor passed since the last sweep and extracts entries
/// whose deadline has arrived, leaving wrapped-around (not yet due)
/// entries in place for a later tour. Entries are never lost: every
/// inserted entry is returned by exactly one [`DeadlineWheel::expire`]
/// call whose `now` is at or past its deadline.
pub(crate) struct DeadlineWheel {
    slots: Vec<Vec<WheelEntry>>,
    created: Instant,
    /// Absolute tick (created-relative) up to which slots are swept.
    swept_tick: u64,
    len: usize,
}

/// Wheel tick width.
const WHEEL_TICK: Duration = Duration::from_millis(4);
/// Number of wheel slots; `slots × tick = 1.024s` per tour.
const WHEEL_SLOTS: usize = 256;

impl DeadlineWheel {
    pub(crate) fn new() -> Self {
        DeadlineWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            created: Instant::now(),
            swept_tick: 0,
            len: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.created).as_micros() / WHEEL_TICK.as_micros()) as u64
    }

    /// Arm a deadline for `(shard, id, seq)`.
    pub(crate) fn insert(&mut self, deadline: Instant, shard: usize, id: u16, seq: u64) {
        let slot = (self.tick_of(deadline) % WHEEL_SLOTS as u64) as usize;
        self.slots[slot].push(WheelEntry {
            deadline,
            shard,
            id,
            seq,
        });
        self.len += 1;
    }

    /// Number of armed entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Extract every entry whose deadline is at or before `now`.
    pub(crate) fn expire(&mut self, now: Instant) -> Vec<WheelEntry> {
        let mut due = Vec::new();
        if self.len == 0 {
            self.swept_tick = self.tick_of(now);
            return due;
        }
        let target = self.tick_of(now);
        // Sweep at most one full tour; beyond that the slots repeat.
        let span = (target.saturating_sub(self.swept_tick)).min(WHEEL_SLOTS as u64 - 1);
        for tick in self.swept_tick..=self.swept_tick + span {
            let slot = (tick % WHEEL_SLOTS as u64) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].deadline <= now {
                    due.push(entries.swap_remove(i));
                } else {
                    i += 1; // wrapped entry from a later tour
                }
            }
        }
        self.swept_tick = target;
        self.len -= due.len();
        due
    }

    /// The earliest armed deadline, if any (a full scan — the entry count
    /// is bounded by the in-flight caps).
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flat_map(|s| s.iter())
            .map(|e| e.deadline)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordData;
    use crate::udp::ServerConfig;
    use crate::zone::{ZoneFault, ZoneStore};
    use crate::WireFleet;

    use proptest::prelude::*;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn fast_config() -> WireClientConfig {
        WireClientConfig {
            timeout: Duration::from_millis(50),
            attempts: 2,
            ..WireClientConfig::default()
        }
    }

    fn seeded_store(n: usize) -> ZoneStore {
        let store = ZoneStore::new();
        for i in 0..n {
            store.add_txt(
                &dom(&format!("d{i}.example")),
                &format!("v=spf1 ip4:10.0.0.{} -all", i % 250),
            );
        }
        store
    }

    #[test]
    fn resolves_across_shards_with_matching_counters() {
        let store = seeded_store(40);
        let fleet = WireFleet::spawn(&store, 4, ServerConfig::default()).unwrap();
        let resolver = fleet.async_resolver(fast_config());
        for i in 0..40 {
            let name = dom(&format!("d{i}.example"));
            let rrs = resolver.query(&name, RecordType::Txt).unwrap();
            assert_eq!(rrs.len(), 1, "{name}");
        }
        let snap = resolver.snapshot();
        assert_eq!(snap.queries, 40);
        assert_eq!(snap.wire_queries, 40);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(fleet.answered(), 40);
        // Cached repeats stay off the wire.
        for i in 0..40 {
            resolver
                .query(&dom(&format!("d{i}.example")), RecordType::Txt)
                .unwrap();
        }
        let snap = resolver.snapshot();
        assert_eq!(snap.cache_hits, 40);
        assert_eq!(snap.wire_queries, 40);
    }

    #[test]
    fn nxdomain_and_empty_flow_through() {
        let store = ZoneStore::new();
        store.add_a(
            &dom("a-only.example"),
            std::net::Ipv4Addr::new(192, 0, 2, 1),
        );
        let fleet = WireFleet::spawn(&store, 2, ServerConfig::default()).unwrap();
        let resolver = fleet.async_resolver(fast_config());
        assert_eq!(
            resolver.query(&dom("missing.example"), RecordType::Txt),
            Err(DnsError::NxDomain)
        );
        assert_eq!(
            resolver.query(&dom("a-only.example"), RecordType::Txt),
            Ok(vec![])
        );
    }

    #[test]
    fn timeout_budget_degrades_with_blocking_engine_counters() {
        let store = ZoneStore::new();
        store.add_txt(&dom("dead.example"), "v=spf1 -all");
        store.set_fault(&dom("dead.example"), ZoneFault::Timeout);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = fleet.async_resolver(WireClientConfig {
            timeout: Duration::from_millis(30),
            attempts: 3,
            ..WireClientConfig::default()
        });
        assert_eq!(
            resolver.query(&dom("dead.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
        let snap = resolver.snapshot();
        assert_eq!(snap.wire_queries, 3, "all attempts spent: {snap:?}");
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.temp_errors, 1);
        // Transient outcomes are never cached.
        assert_eq!(
            resolver.query(&dom("dead.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
        assert_eq!(resolver.snapshot().wire_queries, 6);
    }

    #[test]
    fn truncated_responses_fall_back_to_nonblocking_tcp() {
        let store = ZoneStore::new();
        let long = "v=spf1 ".to_string() + &"ip4:198.51.100.0/24 ".repeat(40) + "-all";
        store.add_txt(&dom("huge.example"), &long);
        let fleet = WireFleet::spawn(&store, 2, ServerConfig { max_payload: 512 }).unwrap();
        let resolver = fleet.async_resolver(fast_config());
        let answers = resolver
            .query(&dom("huge.example"), RecordType::Txt)
            .unwrap();
        match &answers[0].data {
            RecordData::Txt(t) => assert_eq!(t.joined(), long),
            other => panic!("unexpected {other:?}"),
        }
        let snap = resolver.snapshot();
        assert_eq!(snap.tcp_fallbacks, 1);
        assert_eq!(fleet.tcp_answered(), 1);
        // The fallback answer is cached like any positive answer.
        resolver
            .query(&dom("huge.example"), RecordType::Txt)
            .unwrap();
        assert_eq!(resolver.snapshot().cache_hits, 1);
        assert_eq!(fleet.tcp_answered(), 1);
    }

    #[test]
    fn concurrent_burst_coalesces_and_batches() {
        let store = seeded_store(64);
        let fleet = WireFleet::spawn(&store, 2, ServerConfig::default()).unwrap();
        let resolver = Arc::new(fleet.async_resolver(fast_config()));
        std::thread::scope(|scope| {
            for w in 0..8 {
                let resolver = Arc::clone(&resolver);
                scope.spawn(move || {
                    for i in 0..64 {
                        let name = dom(&format!("d{}.example", (i + w) % 64));
                        let rrs = resolver.query(&name, RecordType::Txt).unwrap();
                        assert_eq!(rrs.len(), 1);
                    }
                });
            }
        });
        let snap = resolver.snapshot();
        assert_eq!(snap.queries, 8 * 64);
        // Every query was served by cache, coalescing, or the wire.
        assert_eq!(
            snap.cache_hits + snap.coalesced + snap.wire_queries,
            8 * 64,
            "{snap:?}"
        );
        assert!(snap.wire_queries < 8 * 64, "bursts must collapse: {snap:?}");
    }

    #[test]
    fn tiny_inflight_cap_defers_but_completes_everything() {
        let store = seeded_store(48);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = Arc::new(fleet.async_resolver(WireClientConfig {
            max_inflight_per_shard: 2,
            ..fast_config()
        }));
        std::thread::scope(|scope| {
            for w in 0..16 {
                let resolver = Arc::clone(&resolver);
                scope.spawn(move || {
                    for i in 0..3 {
                        let name = dom(&format!("d{}.example", w * 3 + i));
                        let rrs = resolver.query(&name, RecordType::Txt).unwrap();
                        assert_eq!(rrs.len(), 1, "{name}");
                    }
                });
            }
        });
        let snap = resolver.snapshot();
        assert_eq!(snap.queries, 48);
        assert_eq!(snap.temp_errors, 0, "{snap:?}");
        assert!(
            resolver.deferrals() > 0,
            "a 2-deep cap under a 16-thread burst must defer submissions"
        );
    }

    #[test]
    fn injected_faults_and_clear_cache_match_blocking_semantics() {
        let store = seeded_store(8);
        let fleet = WireFleet::spawn(&store, 1, ServerConfig::default()).unwrap();
        let resolver = fleet
            .async_resolver(fast_config())
            .with_behaviors(vec![ShardBehavior::none()], 7);
        for i in 0..8 {
            resolver
                .query(&dom(&format!("d{i}.example")), RecordType::Txt)
                .unwrap();
        }
        for i in 0..8 {
            resolver
                .query(&dom(&format!("d{i}.example")), RecordType::Txt)
                .unwrap();
        }
        let snap = resolver.snapshot();
        assert_eq!((snap.queries, snap.cache_hits), (16, 8));
        resolver.clear_cache();
        let snap = resolver.snapshot();
        assert_eq!((snap.queries, snap.cache_hits), (0, 0));
        assert_eq!(snap.wire_queries, 8, "lifetime counters survive the clear");
    }

    #[test]
    fn wheel_expires_in_deadline_order_within_resolution() {
        let mut wheel = DeadlineWheel::new();
        let base = Instant::now();
        for i in 0..10u64 {
            wheel.insert(base + Duration::from_millis(10 * (i + 1)), 0, i as u16, i);
        }
        assert_eq!(wheel.len(), 10);
        // Nothing due yet.
        assert!(wheel.expire(base).is_empty());
        // Half due.
        let due = wheel.expire(base + Duration::from_millis(50));
        let mut ids: Vec<u16> = due.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        // The rest.
        let due = wheel.expire(base + Duration::from_millis(100));
        assert_eq!(due.len(), 5);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn wheel_handles_wrap_around_deadlines() {
        let mut wheel = DeadlineWheel::new();
        let base = Instant::now();
        // Far beyond one tour (256 slots × 4ms ≈ 1.02s).
        wheel.insert(base + Duration::from_millis(2500), 3, 42, 7);
        // Sweeping a full tour early must not surface it.
        assert!(wheel.expire(base + Duration::from_millis(1200)).is_empty());
        assert_eq!(wheel.len(), 1);
        let due = wheel.expire(base + Duration::from_millis(2600));
        assert_eq!(due.len(), 1);
        assert_eq!((due[0].shard, due[0].id, due[0].seq), (3, 42, 7));
    }

    proptest! {
        /// No entry is lost, none fires early, and every entry fires by
        /// the first sweep at or past its deadline — under arbitrary
        /// interleavings of inserts and sweeps.
        #[test]
        fn wheel_never_loses_or_rushes_entries(
            ops in proptest::collection::vec((0u64..3000, 0u64..3000), 1..60)
        ) {
            let mut wheel = DeadlineWheel::new();
            let base = Instant::now();
            let mut now_ms = 0u64;
            let mut armed: Vec<(u64, u64)> = Vec::new(); // (deadline_ms, seq)
            let mut fired: Vec<u64> = Vec::new();
            for (seq, (deadline_ms, advance_ms)) in ops.iter().enumerate() {
                let deadline_ms = now_ms + deadline_ms;
                wheel.insert(base + Duration::from_millis(deadline_ms), 0, 0, seq as u64);
                armed.push((deadline_ms, seq as u64));
                now_ms += advance_ms;
                for e in wheel.expire(base + Duration::from_millis(now_ms)) {
                    let (dl, _) = armed.iter().find(|(_, s)| *s == e.seq)
                        .expect("fired entry was armed");
                    prop_assert!(*dl <= now_ms, "fired {}ms before its deadline", dl - now_ms);
                    prop_assert!(!fired.contains(&e.seq), "entry fired twice");
                    fired.push(e.seq);
                }
            }
            // Final sweep far past every deadline drains the wheel.
            now_ms += 10_000;
            for e in wheel.expire(base + Duration::from_millis(now_ms)) {
                prop_assert!(!fired.contains(&e.seq));
                fired.push(e.seq);
            }
            prop_assert_eq!(fired.len(), armed.len(), "every armed entry fired exactly once");
            prop_assert_eq!(wheel.len(), 0);
        }
    }
}
