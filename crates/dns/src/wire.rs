//! RFC 1035 wire-format codec: message header, name compression,
//! resource-record encoding/decoding.
//!
//! This gives the DNS substrate a real network representation — the UDP
//! name server and client resolver in [`crate::udp`] speak this format,
//! and the integration tests drive the whole SPF pipeline over actual
//! sockets. Name compression is optional at encode time so the
//! `dns_codec` bench can quantify its payoff (DESIGN.md §5).

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, BytesMut};
use spf_types::DomainName;

use crate::record::{Question, RecordData, RecordType, ResourceRecord, TxtData};

/// Maximum size of a classic UDP DNS message (RFC 1035 §4.2.1).
pub const MAX_UDP_PAYLOAD: usize = 512;

/// Response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The query was malformed.
    FormErr,
    /// Server failure — the paper's crawler maps this to `temperror`.
    ServFail,
    /// Name does not exist — maps to `permerror` contexts / void lookups.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
}

impl Rcode {
    /// The 4-bit wire value.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// Decode a 4-bit wire value, defaulting unknown codes to ServFail.
    pub fn from_code(code: u8) -> Rcode {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => Rcode::ServFail,
        }
    }
}

/// Decoded message header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction ID, echoed by the server.
    pub id: u16,
    /// True for responses.
    pub is_response: bool,
    /// Opcode (0 = standard query; the only one we use).
    pub opcode: u8,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation flag: set when a response exceeded the UDP limit.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A standard query header.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            is_response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    /// A response header answering `query` with `rcode`.
    pub fn response_to(query: &Header, rcode: Rcode) -> Self {
        Header {
            id: query.id,
            is_response: true,
            opcode: query.opcode,
            authoritative: true,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: false,
            rcode,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section.
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// A single-question query message.
    pub fn query(id: u16, question: Question) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A response to `query` carrying `answers`.
    pub fn response(query: &Message, rcode: Rcode, answers: Vec<ResourceRecord>) -> Self {
        Message {
            header: Header::response_to(&query.header, rcode),
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }
}

/// Errors from the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes while decoding.
    Truncated,
    /// A label exceeded 63 octets or a name 255 octets.
    NameTooLong,
    /// A compression pointer chain looped or pointed forward.
    BadPointer,
    /// An unsupported or malformed record was encountered.
    BadRecord {
        /// What was malformed.
        reason: &'static str,
    },
    /// The label bytes were not valid presentation characters.
    BadLabel,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::NameTooLong => write!(f, "name exceeds RFC 1035 limits"),
            WireError::BadPointer => write!(f, "invalid compression pointer"),
            WireError::BadRecord { reason } => write!(f, "malformed record: {reason}"),
            WireError::BadLabel => write!(f, "invalid label bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Message encoder with optional name compression.
pub struct Encoder {
    buf: BytesMut,
    compress: bool,
    /// Offsets of previously written names, keyed by their textual suffix.
    name_offsets: HashMap<String, u16>,
}

impl Encoder {
    /// A compressing encoder (the default for the UDP server).
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(512),
            compress: true,
            name_offsets: HashMap::new(),
        }
    }

    /// An encoder that never emits compression pointers; used by the
    /// `dns_codec` ablation bench.
    pub fn without_compression() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(512),
            compress: false,
            name_offsets: HashMap::new(),
        }
    }

    /// Encode a full message to bytes.
    pub fn encode(mut self, msg: &Message) -> Result<Vec<u8>, WireError> {
        self.put_header(&msg.header, msg)?;
        for q in &msg.questions {
            self.put_name(&q.name)?;
            self.buf.put_u16(q.rtype.code());
            self.buf.put_u16(1); // class IN
        }
        for rr in msg
            .answers
            .iter()
            .chain(&msg.authorities)
            .chain(&msg.additionals)
        {
            self.put_record(rr)?;
        }
        Ok(self.buf.to_vec())
    }

    fn put_header(&mut self, h: &Header, msg: &Message) -> Result<(), WireError> {
        self.buf.put_u16(h.id);
        let mut flags: u16 = 0;
        if h.is_response {
            flags |= 1 << 15;
        }
        flags |= (h.opcode as u16 & 0xF) << 11;
        if h.authoritative {
            flags |= 1 << 10;
        }
        if h.truncated {
            flags |= 1 << 9;
        }
        if h.recursion_desired {
            flags |= 1 << 8;
        }
        if h.recursion_available {
            flags |= 1 << 7;
        }
        flags |= h.rcode.code() as u16;
        self.buf.put_u16(flags);
        let counts = [
            msg.questions.len(),
            msg.answers.len(),
            msg.authorities.len(),
            msg.additionals.len(),
        ];
        for c in counts {
            let c: u16 = c.try_into().map_err(|_| WireError::BadRecord {
                reason: "section too large",
            })?;
            self.buf.put_u16(c);
        }
        Ok(())
    }

    fn put_name(&mut self, name: &DomainName) -> Result<(), WireError> {
        let labels: Vec<&str> = name.labels().collect();
        for i in 0..labels.len() {
            let suffix = labels[i..].join(".");
            if self.compress {
                if let Some(&offset) = self.name_offsets.get(&suffix) {
                    self.buf.put_u16(0xC000 | offset);
                    return Ok(());
                }
                // Only offsets addressable by a 14-bit pointer can be reused.
                if self.buf.len() <= 0x3FFF {
                    self.name_offsets.insert(suffix, self.buf.len() as u16);
                }
            }
            let label = labels[i];
            if label.len() > 63 {
                return Err(WireError::NameTooLong);
            }
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label.as_bytes());
        }
        self.buf.put_u8(0);
        Ok(())
    }

    fn put_record(&mut self, rr: &ResourceRecord) -> Result<(), WireError> {
        self.put_name(&rr.name)?;
        self.buf.put_u16(rr.record_type().code());
        self.buf.put_u16(1); // class IN
        self.buf.put_u32(rr.ttl);
        // Reserve rdlength, fill in after writing rdata.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let rdata_start = self.buf.len();
        match &rr.data {
            RecordData::A(a) => self.buf.put_slice(&a.octets()),
            RecordData::Aaaa(a) => self.buf.put_slice(&a.octets()),
            RecordData::Mx {
                preference,
                exchange,
            } => {
                self.buf.put_u16(*preference);
                self.put_name(exchange)?;
            }
            RecordData::Txt(t) | RecordData::Spf(t) => {
                for s in t.strings() {
                    // Strings from lossy wire decoding can exceed 255
                    // bytes in memory; re-split them at UTF-8 boundaries.
                    let bytes = s.as_bytes();
                    let mut start = 0;
                    loop {
                        let mut end = (start + 255).min(bytes.len());
                        while end > start && end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                            end -= 1;
                        }
                        self.buf.put_u8((end - start) as u8);
                        self.buf.put_slice(&bytes[start..end]);
                        if end == bytes.len() {
                            break;
                        }
                        start = end;
                    }
                }
            }
            RecordData::Ptr(d) | RecordData::Ns(d) | RecordData::Cname(d) => self.put_name(d)?,
        }
        let rdlen = (self.buf.len() - rdata_start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        Ok(())
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

/// Encode a message with compression enabled.
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    Encoder::new().encode(msg)
}

/// Encode a message without compression (ablation path).
pub fn encode_uncompressed(msg: &Message) -> Result<Vec<u8>, WireError> {
    Encoder::without_compression().encode(msg)
}

/// Decode a full message from bytes.
pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
    let mut dec = Decoder { bytes, pos: 0 };
    dec.message()
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn message(&mut self) -> Result<Message, WireError> {
        let mut h = self.take(12)?;
        let id = h.get_u16();
        let flags = h.get_u16();
        let qdcount = h.get_u16();
        let ancount = h.get_u16();
        let nscount = h.get_u16();
        let arcount = h.get_u16();
        let header = Header {
            id,
            is_response: flags & (1 << 15) != 0,
            opcode: ((flags >> 11) & 0xF) as u8,
            authoritative: flags & (1 << 10) != 0,
            truncated: flags & (1 << 9) != 0,
            recursion_desired: flags & (1 << 8) != 0,
            recursion_available: flags & (1 << 7) != 0,
            rcode: Rcode::from_code((flags & 0xF) as u8),
        };
        let mut questions = Vec::with_capacity(qdcount as usize);
        for _ in 0..qdcount {
            let name = self.name()?;
            let mut r = self.take(4)?;
            let tcode = r.get_u16();
            let _class = r.get_u16();
            let rtype = RecordType::from_code(tcode).ok_or(WireError::BadRecord {
                reason: "unknown question type",
            })?;
            questions.push(Question::new(name, rtype));
        }
        let mut sections = [Vec::new(), Vec::new(), Vec::new()];
        for (i, count) in [ancount, nscount, arcount].into_iter().enumerate() {
            for _ in 0..count {
                sections[i].push(self.record()?);
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn name(&mut self) -> Result<DomainName, WireError> {
        let (name, next) = read_name_at(self.bytes, self.pos)?;
        self.pos = next;
        Ok(name)
    }

    fn record(&mut self) -> Result<ResourceRecord, WireError> {
        let name = self.name()?;
        let mut r = self.take(10)?;
        let tcode = r.get_u16();
        let _class = r.get_u16();
        let ttl = r.get_u32();
        let rdlen = r.get_u16() as usize;
        let rdata_start = self.pos;
        let rdata = self.take(rdlen)?;
        let rtype = RecordType::from_code(tcode).ok_or(WireError::BadRecord {
            reason: "unknown record type",
        })?;
        let data = match rtype {
            RecordType::A => {
                if rdata.len() != 4 {
                    return Err(WireError::BadRecord {
                        reason: "A rdata length",
                    });
                }
                RecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
            }
            RecordType::Aaaa => {
                if rdata.len() != 16 {
                    return Err(WireError::BadRecord {
                        reason: "AAAA rdata length",
                    });
                }
                let mut o = [0u8; 16];
                o.copy_from_slice(rdata);
                RecordData::Aaaa(Ipv6Addr::from(o))
            }
            RecordType::Mx => {
                if rdata.len() < 3 {
                    return Err(WireError::BadRecord {
                        reason: "MX rdata length",
                    });
                }
                let preference = u16::from_be_bytes([rdata[0], rdata[1]]);
                // Exchange name may contain a compression pointer into the
                // full message, so decode against the whole buffer.
                let (exchange, _) = read_name_at(self.bytes, rdata_start + 2)?;
                RecordData::Mx {
                    preference,
                    exchange,
                }
            }
            RecordType::Txt | RecordType::Spf => {
                let mut strings = Vec::new();
                let mut p = 0;
                while p < rdata.len() {
                    let len = rdata[p] as usize;
                    p += 1;
                    if p + len > rdata.len() {
                        return Err(WireError::BadRecord {
                            reason: "TXT char-string length",
                        });
                    }
                    strings.push(String::from_utf8_lossy(&rdata[p..p + len]).into_owned());
                    p += len;
                }
                if strings.is_empty() {
                    strings.push(String::new());
                }
                let txt = TxtData::from_decoded(strings);
                if rtype == RecordType::Txt {
                    RecordData::Txt(txt)
                } else {
                    RecordData::Spf(txt)
                }
            }
            RecordType::Ptr | RecordType::Ns | RecordType::Cname => {
                let (target, _) = read_name_at(self.bytes, rdata_start)?;
                match rtype {
                    RecordType::Ptr => RecordData::Ptr(target),
                    RecordType::Ns => RecordData::Ns(target),
                    _ => RecordData::Cname(target),
                }
            }
        };
        Ok(ResourceRecord { name, ttl, data })
    }
}

/// Read a (possibly compressed) name starting at `pos`; returns the name
/// and the position just after it in the *linear* stream (pointers do not
/// advance the linear position beyond the 2 pointer bytes).
fn read_name_at(bytes: &[u8], mut pos: usize) -> Result<(DomainName, usize), WireError> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumps = 0usize;
    let mut after: Option<usize> = None;
    let mut total_len = 0usize;
    loop {
        let len_byte = *bytes.get(pos).ok_or(WireError::Truncated)?;
        if len_byte & 0xC0 == 0xC0 {
            let second = *bytes.get(pos + 1).ok_or(WireError::Truncated)?;
            let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
            if after.is_none() {
                after = Some(pos + 2);
            }
            // Pointers must point strictly backwards; cap the chain to
            // guard against loops in hostile input.
            if target >= pos {
                return Err(WireError::BadPointer);
            }
            jumps += 1;
            if jumps > 64 {
                return Err(WireError::BadPointer);
            }
            pos = target;
            continue;
        }
        if len_byte & 0xC0 != 0 {
            return Err(WireError::BadLabel);
        }
        pos += 1;
        if len_byte == 0 {
            break;
        }
        let len = len_byte as usize;
        if len > 63 {
            return Err(WireError::NameTooLong);
        }
        let raw = bytes.get(pos..pos + len).ok_or(WireError::Truncated)?;
        total_len += len + 1;
        if total_len > 255 {
            return Err(WireError::NameTooLong);
        }
        let label = std::str::from_utf8(raw).map_err(|_| WireError::BadLabel)?;
        labels.push(label.to_string());
        pos += len;
    }
    if labels.is_empty() {
        // The root name; we don't use it as an owner, but decode defensively.
        return Err(WireError::BadRecord {
            reason: "root owner name",
        });
    }
    let name = DomainName::parse(&labels.join(".")).map_err(|_| WireError::BadLabel)?;
    Ok((name, after.unwrap_or(pos)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxtData;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn sample_response() -> Message {
        let q = Message::query(0x1234, Question::new(dom("example.com"), RecordType::Txt));
        Message::response(
            &q,
            Rcode::NoError,
            vec![
                ResourceRecord::new(
                    dom("example.com"),
                    RecordData::Txt(TxtData::from_text("v=spf1 include:_spf.example.com -all")),
                ),
                ResourceRecord::new(
                    dom("mail.example.com"),
                    RecordData::A("192.0.2.10".parse().unwrap()),
                ),
                ResourceRecord::new(
                    dom("example.com"),
                    RecordData::Mx {
                        preference: 10,
                        exchange: dom("mail.example.com"),
                    },
                ),
            ],
        )
    }

    #[test]
    fn query_round_trip() {
        let msg = Message::query(7, Question::new(dom("_spf.google.com"), RecordType::Txt));
        let bytes = encode(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn response_round_trip_with_compression() {
        let msg = sample_response();
        let bytes = encode(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn response_round_trip_without_compression() {
        let msg = sample_response();
        let bytes = encode_uncompressed(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let msg = sample_response();
        let compressed = encode(&msg).unwrap();
        let plain = encode_uncompressed(&msg).unwrap();
        assert!(
            compressed.len() < plain.len(),
            "compression should shrink: {} vs {}",
            compressed.len(),
            plain.len()
        );
    }

    #[test]
    fn long_txt_round_trips_multiple_char_strings() {
        let long = "v=spf1 ".to_string() + &"ip4:198.51.100.0/24 ".repeat(30) + "~all";
        let msg = Message::response(
            &Message::query(1, Question::new(dom("big.example"), RecordType::Txt)),
            Rcode::NoError,
            vec![ResourceRecord::new(
                dom("big.example"),
                RecordData::Txt(TxtData::from_text(&long)),
            )],
        );
        let bytes = encode(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        match &back.answers[0].data {
            RecordData::Txt(t) => {
                assert!(t.strings().len() > 1);
                assert_eq!(t.joined(), long);
            }
            other => panic!("unexpected rdata {other:?}"),
        }
    }

    #[test]
    fn nxdomain_header_round_trips() {
        let q = Message::query(9, Question::new(dom("missing.example"), RecordType::A));
        let resp = Message::response(&q, Rcode::NxDomain, vec![]);
        let back = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back.header.rcode, Rcode::NxDomain);
        assert!(back.header.is_response);
        assert!(back.answers.is_empty());
    }

    #[test]
    fn truncated_input_rejected() {
        let msg = sample_response();
        let bytes = encode(&msg).unwrap();
        for cut in [0, 5, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn forward_pointer_rejected() {
        // Header + a question whose name is a pointer to itself.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&[0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]);
        bytes.extend_from_slice(&[0xC0, 12]); // pointer to its own offset
        bytes.extend_from_slice(&[0, 16, 0, 1]);
        assert_eq!(decode(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn deprecated_spf_type_round_trips() {
        let msg = Message::response(
            &Message::query(3, Question::new(dom("old.example"), RecordType::Spf)),
            Rcode::NoError,
            vec![ResourceRecord::new(
                dom("old.example"),
                RecordData::Spf(TxtData::from_text("v=spf1 mx -all")),
            )],
        );
        let back = decode(&encode(&msg).unwrap()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn mx_exchange_uses_compression_pointer() {
        // The MX exchange repeats the owner suffix; with compression the
        // encoded form must still decode to the same exchange name.
        let msg = Message::response(
            &Message::query(4, Question::new(dom("example.org"), RecordType::Mx)),
            Rcode::NoError,
            vec![ResourceRecord::new(
                dom("example.org"),
                RecordData::Mx {
                    preference: 5,
                    exchange: dom("mx1.example.org"),
                },
            )],
        );
        let bytes = encode(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        match &back.answers[0].data {
            RecordData::Mx {
                preference,
                exchange,
            } => {
                assert_eq!(*preference, 5);
                assert_eq!(exchange, &dom("mx1.example.org"));
            }
            other => panic!("unexpected rdata {other:?}"),
        }
    }

    #[test]
    fn header_flag_bits() {
        let mut h = Header::query(42);
        h.truncated = true;
        let msg = Message {
            header: h,
            questions: vec![],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        let back = decode(&encode(&msg).unwrap()).unwrap();
        assert!(back.header.truncated);
        assert!(back.header.recursion_desired);
        assert!(!back.header.is_response);
        assert_eq!(back.header.id, 42);
    }
}
