//! In-memory authoritative zone data.
//!
//! The [`ZoneStore`] is the substrate standing in for "the DNS of the
//! Internet": the netsim crate publishes millions of synthetic records into
//! it, and the crawler/analyzer resolve against it — either in-process via
//! [`crate::resolver::ZoneResolver`] or over real UDP via
//! [`crate::udp::UdpNameServer`].
//!
//! Besides record data, a name can carry a [`ZoneFault`], which reproduces
//! the DNS-level failures the paper observed inside SPF evaluations
//! (timeouts → `temperror`, NXDOMAIN and empty answers → void lookups).

use std::collections::HashMap;

use parking_lot::RwLock;
use spf_types::{DomainHashBuilder, DomainName};

use crate::record::{Question, RecordData, RecordType, ResourceRecord, TxtData};

/// A simulated per-name DNS failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneFault {
    /// The server never answers; resolvers observe a timeout
    /// (`temperror` in SPF terms).
    Timeout,
    /// The server answers SERVFAIL.
    ServFail,
    /// The server refuses the query.
    Refused,
}

/// Outcome of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// NOERROR with answer records.
    Records(Vec<ResourceRecord>),
    /// NOERROR but the name owns no records of the asked type
    /// (a "void lookup" of the empty-answer kind when it happens inside
    /// SPF processing).
    NoRecords,
    /// The name does not exist at all.
    NxDomain,
    /// A configured failure.
    Fault(ZoneFault),
}

/// Everything the store knows about one owner name. Keeping the fault next
/// to the records means the hot-path lookup is a *single* map probe, and
/// the outer map hashes via the name's precomputed hash
/// ([`DomainHashBuilder`]) instead of re-running SipHash per query.
#[derive(Default, Clone)]
struct NameEntry {
    types: HashMap<RecordType, Vec<ResourceRecord>>,
    fault: Option<ZoneFault>,
}

#[derive(Default)]
struct ZoneInner {
    records: HashMap<DomainName, NameEntry, DomainHashBuilder>,
}

/// Thread-safe in-memory zone data for the whole simulated Internet.
///
/// ```
/// use spf_dns::{ZoneStore, RecordType, LookupOutcome};
/// use spf_types::DomainName;
///
/// let store = ZoneStore::new();
/// let name = DomainName::parse("example.com").unwrap();
/// store.add_txt(&name, "v=spf1 -all");
/// match store.lookup(&name, RecordType::Txt) {
///     LookupOutcome::Records(rrs) => assert_eq!(rrs.len(), 1),
///     other => panic!("unexpected {other:?}"),
/// }
/// assert_eq!(store.lookup(&name, RecordType::Mx), LookupOutcome::NoRecords);
/// ```
#[derive(Default)]
pub struct ZoneStore {
    inner: RwLock<ZoneInner>,
}

impl ZoneStore {
    /// An empty store.
    pub fn new() -> Self {
        ZoneStore::default()
    }

    /// Insert a fully formed record.
    pub fn add_record(&self, rr: ResourceRecord) {
        let mut inner = self.inner.write();
        inner
            .records
            .entry(rr.name.clone())
            .or_default()
            .types
            .entry(rr.record_type())
            .or_default()
            .push(rr);
    }

    /// Add a TXT record with the given text (split into char-strings).
    pub fn add_txt(&self, name: &DomainName, text: &str) {
        self.add_record(ResourceRecord::new(
            name.clone(),
            RecordData::Txt(TxtData::from_text(text)),
        ));
    }

    /// Add a record of the deprecated SPF type 99.
    pub fn add_spf_type99(&self, name: &DomainName, text: &str) {
        self.add_record(ResourceRecord::new(
            name.clone(),
            RecordData::Spf(TxtData::from_text(text)),
        ));
    }

    /// Add an A record.
    pub fn add_a(&self, name: &DomainName, addr: std::net::Ipv4Addr) {
        self.add_record(ResourceRecord::new(name.clone(), RecordData::A(addr)));
    }

    /// Add an AAAA record.
    pub fn add_aaaa(&self, name: &DomainName, addr: std::net::Ipv6Addr) {
        self.add_record(ResourceRecord::new(name.clone(), RecordData::Aaaa(addr)));
    }

    /// Add an MX record.
    pub fn add_mx(&self, name: &DomainName, preference: u16, exchange: &DomainName) {
        self.add_record(ResourceRecord::new(
            name.clone(),
            RecordData::Mx {
                preference,
                exchange: exchange.clone(),
            },
        ));
    }

    /// Add a PTR record (owner should be the in-addr.arpa name).
    pub fn add_ptr(&self, name: &DomainName, target: &DomainName) {
        self.add_record(ResourceRecord::new(
            name.clone(),
            RecordData::Ptr(target.clone()),
        ));
    }

    /// Register the reverse-mapping PTR for an IPv4 address.
    pub fn add_reverse_v4(&self, addr: std::net::Ipv4Addr, target: &DomainName) {
        let o = addr.octets();
        let rev = DomainName::parse(&format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0]))
            .expect("reverse name is always valid");
        self.add_ptr(&rev, target);
    }

    /// Register a name that exists in the DNS but owns no records at all —
    /// queries return NOERROR with an empty answer ("Empty Result" in the
    /// paper's Figure 3).
    pub fn add_empty_name(&self, name: &DomainName) {
        self.inner.write().records.entry(name.clone()).or_default();
    }

    /// Configure a failure mode for a name (applies to all record types).
    pub fn set_fault(&self, name: &DomainName, fault: ZoneFault) {
        self.inner
            .write()
            .records
            .entry(name.clone())
            .or_default()
            .fault = Some(fault);
    }

    /// Remove all records and faults for a name. Used by the remediation
    /// model when an operator "fixes" a record.
    pub fn remove_name(&self, name: &DomainName) {
        self.inner.write().records.remove(name);
    }

    /// Remove every record of one type from a name, leaving the name
    /// (and its other RRsets, faults, or empty registration) intact.
    /// The churn simulator's MX-failover flip swaps a domain's exchange
    /// set this way without destroying its TXT policy.
    pub fn remove_type(&self, name: &DomainName, rtype: RecordType) {
        let mut inner = self.inner.write();
        if let Some(entry) = inner.records.get_mut(name) {
            entry.types.remove(&rtype);
        }
    }

    /// Replace the TXT records of a name with a single new text.
    pub fn replace_txt(&self, name: &DomainName, text: &str) {
        {
            let mut inner = self.inner.write();
            if let Some(entry) = inner.records.get_mut(name) {
                entry.types.remove(&RecordType::Txt);
            }
        }
        self.add_txt(name, text);
    }

    /// Authoritative lookup.
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> LookupOutcome {
        let inner = self.inner.read();
        match inner.records.get(name) {
            None => LookupOutcome::NxDomain,
            Some(entry) => {
                if let Some(fault) = entry.fault {
                    return LookupOutcome::Fault(fault);
                }
                match entry.types.get(&rtype) {
                    Some(rrs) if !rrs.is_empty() => LookupOutcome::Records(rrs.clone()),
                    _ => LookupOutcome::NoRecords,
                }
            }
        }
    }

    /// Lookup by question.
    pub fn lookup_question(&self, q: &Question) -> LookupOutcome {
        self.lookup(&q.name, q.rtype)
    }

    /// True if the name is present in the store (owns records, was
    /// registered empty, or carries a fault).
    pub fn name_exists(&self, name: &DomainName) -> bool {
        self.inner.read().records.contains_key(name)
    }

    /// Total number of names in the store.
    pub fn name_count(&self) -> usize {
        self.inner.read().records.len()
    }

    /// Total number of records in the store.
    pub fn record_count(&self) -> usize {
        self.inner
            .read()
            .records
            .values()
            .flat_map(|e| e.types.values())
            .map(|v| v.len())
            .sum()
    }

    /// Split the store into `shards` independent authoritative stores,
    /// shard `i` holding every name with `precomputed_hash() % shards == i`
    /// — the same routing function [`crate::fleet::WireResolver`] applies
    /// on the client side, so after partitioning every name has exactly
    /// one authoritative home and a correctly routed query never crosses
    /// shards. Faults and empty-name registrations travel with their name.
    ///
    /// The shards are deep copies: later mutations of `self` are *not*
    /// reflected in them (re-partition after remediation-style zone
    /// edits).
    pub fn partition(&self, shards: usize) -> Vec<ZoneStore> {
        let shards = shards.max(1);
        let out: Vec<ZoneStore> = (0..shards).map(|_| ZoneStore::new()).collect();
        let inner = self.inner.read();
        for (name, entry) in &inner.records {
            let idx = (name.precomputed_hash() % shards as u64) as usize;
            out[idx]
                .inner
                .write()
                .records
                .insert(name.clone(), entry.clone());
        }
        out
    }

    /// The joined TXT strings of every TXT record at `name`, in insertion
    /// order. Convenience for tests and the analyzer's multi-record check.
    pub fn txt_strings(&self, name: &DomainName) -> Vec<String> {
        match self.lookup(name, RecordType::Txt) {
            LookupOutcome::Records(rrs) => rrs
                .iter()
                .filter_map(|rr| match &rr.data {
                    RecordData::Txt(t) => Some(t.joined()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn remove_type_leaves_other_rrsets_intact() {
        let store = ZoneStore::new();
        let name = dom("mail.example");
        store.add_txt(&name, "v=spf1 mx -all");
        store.add_mx(&name, 10, &dom("mx1.example"));
        store.add_mx(&name, 20, &dom("mx2.example"));
        store.remove_type(&name, RecordType::Mx);
        assert_eq!(
            store.lookup(&name, RecordType::Mx),
            LookupOutcome::NoRecords
        );
        assert_eq!(store.txt_strings(&name), vec!["v=spf1 mx -all".to_string()]);
        // The name itself survives: still NOERROR, not NXDOMAIN.
        assert!(store.name_exists(&name));
        // Removing a type the name never had is a no-op.
        store.remove_type(&dom("absent.example"), RecordType::Mx);
        assert!(!store.name_exists(&dom("absent.example")));
    }

    #[test]
    fn nxdomain_vs_no_records() {
        let store = ZoneStore::new();
        let name = dom("exists.example");
        store.add_a(&name, Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(
            store.lookup(&name, RecordType::Txt),
            LookupOutcome::NoRecords
        );
        assert_eq!(
            store.lookup(&dom("missing.example"), RecordType::Txt),
            LookupOutcome::NxDomain
        );
    }

    #[test]
    fn multiple_records_of_same_type() {
        let store = ZoneStore::new();
        let name = dom("multi.example");
        store.add_txt(&name, "v=spf1 -all");
        store.add_txt(&name, "v=spf1 +all");
        match store.lookup(&name, RecordType::Txt) {
            LookupOutcome::Records(rrs) => assert_eq!(rrs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(store.txt_strings(&name).len(), 2);
    }

    #[test]
    fn faults_override_records() {
        let store = ZoneStore::new();
        let name = dom("flaky.example");
        store.add_txt(&name, "v=spf1 -all");
        store.set_fault(&name, ZoneFault::Timeout);
        assert_eq!(
            store.lookup(&name, RecordType::Txt),
            LookupOutcome::Fault(ZoneFault::Timeout)
        );
    }

    #[test]
    fn remove_and_replace() {
        let store = ZoneStore::new();
        let name = dom("fixme.example");
        store.add_txt(&name, "v=spf1 ipv4:1.2.3.4 -all");
        store.replace_txt(&name, "v=spf1 ip4:1.2.3.4 -all");
        assert_eq!(store.txt_strings(&name), vec!["v=spf1 ip4:1.2.3.4 -all"]);
        store.remove_name(&name);
        assert_eq!(
            store.lookup(&name, RecordType::Txt),
            LookupOutcome::NxDomain
        );
    }

    #[test]
    fn reverse_v4_owner_name() {
        let store = ZoneStore::new();
        store.add_reverse_v4(Ipv4Addr::new(192, 0, 2, 7), &dom("mail.example.com"));
        let rev = dom("7.2.0.192.in-addr.arpa");
        match store.lookup(&rev, RecordType::Ptr) {
            LookupOutcome::Records(rrs) => match &rrs[0].data {
                RecordData::Ptr(t) => assert_eq!(t, &dom("mail.example.com")),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partition_routes_every_name_to_its_hash_shard() {
        let store = ZoneStore::new();
        for i in 0..64 {
            let name = dom(&format!("d{i}.example"));
            store.add_txt(&name, "v=spf1 -all");
            if i % 7 == 0 {
                store.set_fault(&name, ZoneFault::ServFail);
            }
        }
        store.add_empty_name(&dom("hollow.example"));
        let shards = store.partition(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.name_count()).sum();
        assert_eq!(total, store.name_count());
        for i in 0..64 {
            let name = dom(&format!("d{i}.example"));
            let idx = (name.precomputed_hash() % 4) as usize;
            // The owning shard answers authoritatively (records or fault)…
            let owned = shards[idx].lookup(&name, RecordType::Txt);
            if i % 7 == 0 {
                assert_eq!(owned, LookupOutcome::Fault(ZoneFault::ServFail));
            } else {
                assert_eq!(owned, store.lookup(&name, RecordType::Txt));
            }
            // …and every other shard says NXDOMAIN.
            for (j, shard) in shards.iter().enumerate() {
                if j != idx {
                    assert_eq!(
                        shard.lookup(&name, RecordType::Txt),
                        LookupOutcome::NxDomain
                    );
                }
            }
        }
        // Empty-name registrations travel too (NoRecords, not NXDOMAIN).
        let hollow = dom("hollow.example");
        let idx = (hollow.precomputed_hash() % 4) as usize;
        assert_eq!(
            shards[idx].lookup(&hollow, RecordType::Txt),
            LookupOutcome::NoRecords
        );
    }

    #[test]
    fn partition_is_a_deep_copy() {
        let store = ZoneStore::new();
        let name = dom("mutate.example");
        store.add_txt(&name, "v=spf1 -all");
        let shards = store.partition(2);
        store.replace_txt(&name, "v=spf1 +all");
        let idx = (name.precomputed_hash() % 2) as usize;
        assert_eq!(shards[idx].txt_strings(&name), vec!["v=spf1 -all"]);
    }

    #[test]
    fn counts() {
        let store = ZoneStore::new();
        store.add_a(&dom("a.example"), Ipv4Addr::new(1, 1, 1, 1));
        store.add_a(&dom("a.example"), Ipv4Addr::new(1, 1, 1, 2));
        store.add_txt(&dom("b.example"), "hello");
        assert_eq!(store.name_count(), 2);
        assert_eq!(store.record_count(), 3);
        assert!(store.name_exists(&dom("a.example")));
        assert!(!store.name_exists(&dom("c.example")));
    }
}
