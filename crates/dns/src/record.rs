//! DNS resource-record model: the record types the paper's crawler touches
//! (TXT for SPF/DMARC, the deprecated SPF type 99, A/AAAA, MX, PTR) plus
//! the glue types (NS, CNAME) a zone needs.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use spf_types::DomainName;

/// DNS record types with their IANA numeric codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 host address (1).
    A,
    /// Authoritative name server (2).
    Ns,
    /// Canonical name alias (5).
    Cname,
    /// Reverse-mapping pointer (12).
    Ptr,
    /// Mail exchange (15).
    Mx,
    /// Free-form text; carrier of SPF and DMARC policies (16).
    Txt,
    /// IPv6 host address (28).
    Aaaa,
    /// The deprecated SPF record type (99). RFC 7208 retired it in 2014;
    /// the paper still found 107,646 domains publishing it (§5.5).
    Spf,
}

impl RecordType {
    /// IANA type code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Spf => 99,
        }
    }

    /// Reverse lookup from an IANA type code.
    pub fn from_code(code: u16) -> Option<RecordType> {
        match code {
            1 => Some(RecordType::A),
            2 => Some(RecordType::Ns),
            5 => Some(RecordType::Cname),
            12 => Some(RecordType::Ptr),
            15 => Some(RecordType::Mx),
            16 => Some(RecordType::Txt),
            28 => Some(RecordType::Aaaa),
            99 => Some(RecordType::Spf),
            _ => None,
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Ptr => "PTR",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
            RecordType::Spf => "SPF",
        };
        f.write_str(s)
    }
}

/// TXT record data: a sequence of character-strings, each at most 255
/// octets on the wire. Long SPF records are split across several strings
/// and the verifier concatenates them *without* separators (RFC 7208 §3.3).
///
/// The strings live behind an `Arc` so that cloning a TXT resource record
/// — which the zone store does on every lookup and the crawl hot path
/// performs twice per domain (SPF TXT + `_dmarc` TXT) — bumps a reference
/// count instead of deep-copying record text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxtData {
    strings: Arc<[String]>,
}

impl TxtData {
    /// Maximum length of a single character-string on the wire.
    pub const MAX_CHAR_STRING: usize = 255;

    /// Build from pre-split character strings. Panics if any exceeds 255
    /// octets (construct via [`TxtData::from_text`] to auto-split).
    pub fn new(strings: Vec<String>) -> Self {
        assert!(
            strings.iter().all(|s| s.len() <= Self::MAX_CHAR_STRING),
            "character-string longer than 255 octets"
        );
        TxtData {
            strings: strings.into(),
        }
    }

    /// Split arbitrary text into ≤255-octet character-strings, the way
    /// operators publish long SPF records.
    pub fn from_text(text: &str) -> Self {
        if text.is_empty() {
            return TxtData {
                strings: vec![String::new()].into(),
            };
        }
        let bytes = text.as_bytes();
        let mut strings = Vec::new();
        let mut start = 0;
        while start < bytes.len() {
            let mut end = (start + Self::MAX_CHAR_STRING).min(bytes.len());
            // Do not split inside a UTF-8 sequence.
            while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                end -= 1;
            }
            strings.push(String::from_utf8_lossy(&bytes[start..end]).into_owned());
            start = end;
        }
        TxtData {
            strings: strings.into(),
        }
    }

    /// The character-strings as published.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// RFC 7208 §3.3 concatenation: join character-strings with no
    /// separator to recover the logical record.
    pub fn joined(&self) -> String {
        self.strings.concat()
    }

    /// Build from wire-decoded strings without the 255-octet assertion:
    /// each string was ≤255 bytes on the wire, but lossy UTF-8 decoding
    /// replaces invalid bytes with U+FFFD (3 bytes), which can expand the
    /// in-memory length past 255. The encoder re-splits as needed.
    pub(crate) fn from_decoded(strings: Vec<String>) -> Self {
        TxtData {
            strings: strings.into(),
        }
    }
}

impl Serialize for TxtData {
    fn to_value(&self) -> Value {
        Value::Seq(self.strings.iter().map(|s| Value::Str(s.clone())).collect())
    }
}

impl Deserialize for TxtData {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let strings = Vec::<String>::from_value(v)?;
        Ok(TxtData::from_decoded(strings))
    }
}

impl fmt::Display for TxtData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.strings.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s:?}")?;
        }
        Ok(())
    }
}

/// Typed RDATA for the supported record types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Mail exchange: preference and exchange host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// The mail host name.
        exchange: DomainName,
    },
    /// TXT character-strings.
    Txt(TxtData),
    /// Deprecated SPF type 99 payload (same shape as TXT).
    Spf(TxtData),
    /// Reverse-mapping target name.
    Ptr(DomainName),
    /// Delegation.
    Ns(DomainName),
    /// Alias.
    Cname(DomainName),
}

impl RecordData {
    /// The record type this data belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Aaaa(_) => RecordType::Aaaa,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Spf(_) => RecordType::Spf,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Cname(_) => RecordType::Cname,
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DomainName,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed record data.
    pub data: RecordData,
}

impl ResourceRecord {
    /// Convenience constructor with a default 1-hour TTL.
    pub fn new(name: DomainName, data: RecordData) -> Self {
        ResourceRecord {
            name,
            ttl: 3600,
            data,
        }
    }

    /// The record's type.
    pub fn record_type(&self) -> RecordType {
        self.data.record_type()
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {} ", self.name, self.ttl, self.record_type())?;
        match &self.data {
            RecordData::A(a) => write!(f, "{a}"),
            RecordData::Aaaa(a) => write!(f, "{a}"),
            RecordData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RecordData::Txt(t) | RecordData::Spf(t) => write!(f, "{t}"),
            RecordData::Ptr(d) | RecordData::Ns(d) | RecordData::Cname(d) => write!(f, "{d}"),
        }
    }
}

/// A DNS question: name + type (class is always IN here).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// The name being queried.
    pub name: DomainName,
    /// The record type being queried.
    pub rtype: RecordType,
}

impl Question {
    /// Convenience constructor.
    pub fn new(name: DomainName, rtype: RecordType) -> Self {
        Question { name, rtype }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IN {}", self.name, self.rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Spf,
        ] {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(0), None);
        assert_eq!(RecordType::from_code(257), None);
    }

    #[test]
    fn spf_type_is_99() {
        assert_eq!(RecordType::Spf.code(), 99);
    }

    #[test]
    fn txt_split_and_join() {
        let long = "v=spf1 ".to_string() + &"ip4:192.0.2.1 ".repeat(40) + "-all";
        assert!(long.len() > 255);
        let txt = TxtData::from_text(&long);
        assert!(txt.strings().len() >= 2);
        assert!(txt.strings().iter().all(|s| s.len() <= 255));
        assert_eq!(txt.joined(), long);
    }

    #[test]
    fn txt_short_single_string() {
        let txt = TxtData::from_text("v=spf1 -all");
        assert_eq!(txt.strings().len(), 1);
        assert_eq!(txt.joined(), "v=spf1 -all");
    }

    #[test]
    fn txt_empty() {
        let txt = TxtData::from_text("");
        assert_eq!(txt.strings().len(), 1);
        assert_eq!(txt.joined(), "");
    }

    #[test]
    #[should_panic(expected = "255")]
    fn txt_new_rejects_oversized() {
        TxtData::new(vec!["x".repeat(256)]);
    }

    #[test]
    fn record_data_types() {
        let d = DomainName::parse("example.com").unwrap();
        assert_eq!(
            RecordData::A("1.2.3.4".parse().unwrap()).record_type(),
            RecordType::A
        );
        assert_eq!(
            RecordData::Mx {
                preference: 10,
                exchange: d.clone()
            }
            .record_type(),
            RecordType::Mx
        );
        assert_eq!(
            RecordData::Txt(TxtData::from_text("hi")).record_type(),
            RecordType::Txt
        );
        assert_eq!(RecordData::Ptr(d).record_type(), RecordType::Ptr);
    }

    #[test]
    fn display_forms() {
        let rr = ResourceRecord::new(
            DomainName::parse("mail.example.com").unwrap(),
            RecordData::A("192.0.2.5".parse().unwrap()),
        );
        assert_eq!(rr.to_string(), "mail.example.com 3600 IN A 192.0.2.5");
        let q = Question::new(DomainName::parse("example.com").unwrap(), RecordType::Txt);
        assert_eq!(q.to_string(), "example.com IN TXT");
    }
}
