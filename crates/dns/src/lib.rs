//! # spf-dns — the DNS substrate for the Lazy Gatekeepers reproduction
//!
//! The paper's measurement runs against the live DNS; this crate provides
//! the synthetic equivalent the whole pipeline resolves against:
//!
//! * [`record`]: the resource-record model (TXT, deprecated SPF type 99,
//!   A/AAAA, MX, PTR, NS, CNAME);
//! * [`wire`]: an RFC 1035 message codec with name compression;
//! * [`zone`]: the in-memory authoritative store, including per-name fault
//!   configuration (timeouts, SERVFAIL) used to reproduce the paper's DNS
//!   error cohorts;
//! * [`resolver`]: the [`Resolver`] trait plus caching, rate-limiting,
//!   counting and fault-injecting layers mirroring the crawler design in
//!   Section 4.1 of the paper;
//! * [`udp`]: a real UDP name server + stub resolver over the wire codec;
//! * [`fleet`]: the wire-path crawl substrate — a hash-sharded
//!   authoritative server fleet plus the coalescing, TTL-caching
//!   [`WireResolver`] client the crawler's wire mode runs on;
//! * [`reactor`]: the epoll wire engine — the same semantics as
//!   [`WireResolver`] driven by a single reactor thread multiplexing
//!   hundreds of in-flight queries over a few nonblocking sockets;
//! * [`clock`]: virtual/wall clock abstraction for the throttling layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fleet;
pub mod reactor;
pub mod record;
pub mod resolver;
pub mod udp;
pub mod wire;
pub mod zone;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use fleet::{
    ShardBehavior, WireClientConfig, WireFleet, WireResolver, WireSnapshot, WireStatsView,
    WireTelemetry,
};
pub use reactor::AsyncWireResolver;
pub use record::{Question, RecordData, RecordType, ResourceRecord, TxtData};
pub use resolver::{
    CachingResolver, CountingResolver, DnsError, FaultInjectingResolver, FaultProfile, QueryStats,
    RateLimitedResolver, Resolver, ZoneResolver,
};
pub use udp::{ClientConfig, ServerConfig, UdpNameServer, UdpResolver};
pub use wire::{decode, encode, encode_uncompressed, Header, Message, Rcode, WireError};
pub use zone::{LookupOutcome, ZoneFault, ZoneStore};
