//! The resolver abstraction and the composable layers the crawler stacks
//! on top of it, mirroring Section 4.1 of the paper:
//!
//! * a **cache** so "only for the first domain the include mechanism is
//!   processed, all others hit the cache",
//! * **rate limiting** "across 150 servers",
//! * **fault injection** so the error cohorts (timeouts, NXDOMAIN, empty
//!   answers) arise from the DNS layer exactly as in the wild.
//!
//! All layers implement [`Resolver`] and can be stacked in any order.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spf_types::DomainName;

use crate::clock::Clock;
use crate::record::{Question, RecordType, ResourceRecord};
use crate::zone::{LookupOutcome, ZoneFault, ZoneStore};

/// DNS-level errors as seen by a stub resolver.
///
/// `Ok(vec![])` from [`Resolver::query`] means NOERROR with an empty answer
/// section; it is *not* an error here, but SPF evaluation counts it as a
/// void lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// The name does not exist (NXDOMAIN). A void lookup in SPF terms.
    NxDomain,
    /// No answer arrived in time — SPF `temperror`.
    Timeout,
    /// The server failed (SERVFAIL) — SPF `temperror`.
    ServFail,
    /// The server refused the query.
    Refused,
    /// Transport-level failure (socket errors in the UDP resolver).
    Network(String),
}

impl DnsError {
    /// True for transient errors (`temperror` in RFC 7208 terms): the
    /// paper excludes these 1,179 cases from its error analysis because a
    /// rescan may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DnsError::Timeout | DnsError::ServFail | DnsError::Network(_)
        )
    }
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::NxDomain => write!(f, "NXDOMAIN"),
            DnsError::Timeout => write!(f, "query timed out"),
            DnsError::ServFail => write!(f, "SERVFAIL"),
            DnsError::Refused => write!(f, "REFUSED"),
            DnsError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// A stub resolver: one question in, records (or a DNS error) out.
pub trait Resolver: Send + Sync {
    /// Resolve `name`/`rtype`. `Ok(vec![])` is NOERROR with no answers.
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError>;
}

impl<R: Resolver + ?Sized> Resolver for Arc<R> {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        (**self).query(name, rtype)
    }
}

/// Direct, in-process resolution against a [`ZoneStore`].
pub struct ZoneResolver {
    store: Arc<ZoneStore>,
}

impl ZoneResolver {
    /// Resolve against the given store.
    pub fn new(store: Arc<ZoneStore>) -> Self {
        ZoneResolver { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<ZoneStore> {
        &self.store
    }
}

impl Resolver for ZoneResolver {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        match self.store.lookup(name, rtype) {
            LookupOutcome::Records(rrs) => Ok(rrs),
            LookupOutcome::NoRecords => Ok(Vec::new()),
            LookupOutcome::NxDomain => Err(DnsError::NxDomain),
            LookupOutcome::Fault(ZoneFault::Timeout) => Err(DnsError::Timeout),
            LookupOutcome::Fault(ZoneFault::ServFail) => Err(DnsError::ServFail),
            LookupOutcome::Fault(ZoneFault::Refused) => Err(DnsError::Refused),
        }
    }
}

/// Counters shared by the observability layers.
#[derive(Debug, Default)]
pub struct QueryStats {
    /// Queries answered from the cache.
    pub cache_hits: AtomicU64,
    /// Queries forwarded to the inner resolver.
    pub cache_misses: AtomicU64,
    /// Total queries seen.
    pub queries: AtomicU64,
    /// Errors returned (any [`DnsError`]).
    pub errors: AtomicU64,
}

impl QueryStats {
    /// Snapshot of (hits, misses, queries, errors).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// A memoizing cache layer.
///
/// Caches both positive answers and NXDOMAIN, but never transient errors —
/// matching the paper's decision to exclude transient DNS errors from the
/// analysis (they "may change on subsequent scans").
pub struct CachingResolver<R> {
    inner: R,
    cache: RwLock<HashMap<Question, Result<Vec<ResourceRecord>, DnsError>>>,
    stats: Arc<QueryStats>,
}

impl<R: Resolver> CachingResolver<R> {
    /// Wrap `inner` with a cache.
    pub fn new(inner: R) -> Self {
        CachingResolver {
            inner,
            cache: RwLock::new(HashMap::new()),
            stats: Arc::new(QueryStats::default()),
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<QueryStats> {
        Arc::clone(&self.stats)
    }

    /// Drop all cached entries (used between scan rounds).
    pub fn clear(&self) {
        self.cache.write().clear();
    }

    /// Number of cached questions.
    pub fn len(&self) -> usize {
        self.cache.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.read().is_empty()
    }
}

impl<R: Resolver> Resolver for CachingResolver<R> {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        let q = Question::new(name.clone(), rtype);
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(cached) = self.cache.read().get(&q) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.query(name, rtype);
        if result.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        let cacheable = match &result {
            Ok(_) => true,
            Err(e) => !e.is_transient(),
        };
        if cacheable {
            self.cache.write().insert(q, result.clone());
        }
        result
    }
}

/// A pure counting layer, used to measure DNS load in the cache ablation.
pub struct CountingResolver<R> {
    inner: R,
    stats: Arc<QueryStats>,
}

impl<R: Resolver> CountingResolver<R> {
    /// Wrap `inner` with counters.
    pub fn new(inner: R) -> Self {
        CountingResolver {
            inner,
            stats: Arc::new(QueryStats::default()),
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<QueryStats> {
        Arc::clone(&self.stats)
    }
}

impl<R: Resolver> Resolver for CountingResolver<R> {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.query(name, rtype);
        if result.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }
}

/// Token-bucket rate limiter modelling the paper's "distribute and rate
/// limit the DNS requests across 150 servers".
///
/// Each of the `endpoints` buckets refills at `per_endpoint_rate` tokens
/// per second; a query consumes one token from the least-loaded bucket,
/// sleeping on the configured [`Clock`] when all buckets are dry. With a
/// [`crate::clock::VirtualClock`] the wait is instantaneous but the
/// *accumulated wait time* is still observable.
pub struct RateLimitedResolver<R> {
    inner: R,
    clock: Arc<dyn Clock>,
    state: Mutex<BucketState>,
    per_endpoint_rate: f64,
    burst: f64,
    endpoints: usize,
    total_wait: Mutex<Duration>,
}

struct BucketState {
    tokens: Vec<f64>,
    last_refill: Duration,
}

impl<R: Resolver> RateLimitedResolver<R> {
    /// Wrap `inner`, allowing `per_endpoint_rate` queries/second on each of
    /// `endpoints` simulated resolver endpoints.
    pub fn new(inner: R, clock: Arc<dyn Clock>, endpoints: usize, per_endpoint_rate: f64) -> Self {
        assert!(endpoints > 0 && per_endpoint_rate > 0.0);
        let burst = per_endpoint_rate.max(1.0);
        RateLimitedResolver {
            inner,
            state: Mutex::new(BucketState {
                tokens: vec![burst; endpoints],
                last_refill: clock.now(),
            }),
            clock,
            per_endpoint_rate,
            burst,
            endpoints,
            total_wait: Mutex::new(Duration::ZERO),
        }
    }

    /// Total time spent waiting for tokens.
    pub fn total_wait(&self) -> Duration {
        *self.total_wait.lock()
    }

    /// Number of simulated endpoints.
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    fn acquire(&self) {
        loop {
            let wait = {
                let mut st = self.state.lock();
                let now = self.clock.now();
                let elapsed = now.saturating_sub(st.last_refill).as_secs_f64();
                if elapsed > 0.0 {
                    for t in st.tokens.iter_mut() {
                        *t = (*t + elapsed * self.per_endpoint_rate).min(self.burst);
                    }
                    st.last_refill = now;
                }
                // Pick the fullest bucket (the scheduler spreading load).
                let (best, best_tokens) =
                    st.tokens
                        .iter()
                        .cloned()
                        .enumerate()
                        .fold(
                            (0, f64::MIN),
                            |acc, (i, t)| if t > acc.1 { (i, t) } else { acc },
                        );
                if best_tokens >= 1.0 {
                    st.tokens[best] -= 1.0;
                    None
                } else {
                    // Time until the fullest bucket reaches one token.
                    let deficit = 1.0 - best_tokens;
                    Some(Duration::from_secs_f64(deficit / self.per_endpoint_rate))
                }
            };
            match wait {
                None => return,
                Some(d) => {
                    *self.total_wait.lock() += d;
                    self.clock.sleep(d);
                }
            }
        }
    }
}

impl<R: Resolver> Resolver for RateLimitedResolver<R> {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        self.acquire();
        self.inner.query(name, rtype)
    }
}

/// Probabilities for the fault-injecting layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a query times out.
    pub timeout: f64,
    /// Probability a query returns NXDOMAIN regardless of zone content.
    pub nxdomain: f64,
    /// Probability a query returns an empty NOERROR answer.
    pub empty: f64,
    /// Probability a query returns SERVFAIL.
    pub servfail: f64,
}

impl FaultProfile {
    /// No injected faults.
    pub fn none() -> Self {
        FaultProfile {
            timeout: 0.0,
            nxdomain: 0.0,
            empty: 0.0,
            servfail: 0.0,
        }
    }
}

/// Randomly injects DNS failures in front of `inner` (smoltcp-style fault
/// injection, applied at the resolver boundary).
pub struct FaultInjectingResolver<R> {
    inner: R,
    profile: FaultProfile,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
}

impl<R: Resolver> FaultInjectingResolver<R> {
    /// Wrap `inner` with the given fault profile and RNG seed.
    pub fn new(inner: R, profile: FaultProfile, seed: u64) -> Self {
        let total = profile.timeout + profile.nxdomain + profile.empty + profile.servfail;
        assert!((0.0..=1.0).contains(&total), "fault probabilities exceed 1");
        FaultInjectingResolver {
            inner,
            profile,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<R: Resolver> Resolver for FaultInjectingResolver<R> {
    fn query(&self, name: &DomainName, rtype: RecordType) -> Result<Vec<ResourceRecord>, DnsError> {
        let roll: f64 = self.rng.lock().random();
        let p = &self.profile;
        let mut acc = p.timeout;
        if roll < acc {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(DnsError::Timeout);
        }
        acc += p.nxdomain;
        if roll < acc {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(DnsError::NxDomain);
        }
        acc += p.empty;
        if roll < acc {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Ok(Vec::new());
        }
        acc += p.servfail;
        if roll < acc {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(DnsError::ServFail);
        }
        self.inner.query(name, rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::net::Ipv4Addr;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn store_with_basics() -> Arc<ZoneStore> {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("example.com"), "v=spf1 -all");
        store.add_a(&dom("mail.example.com"), Ipv4Addr::new(192, 0, 2, 10));
        store
    }

    #[test]
    fn zone_resolver_maps_outcomes() {
        let store = store_with_basics();
        store.set_fault(&dom("broken.example"), ZoneFault::Timeout);
        let r = ZoneResolver::new(Arc::clone(&store));
        assert_eq!(
            r.query(&dom("example.com"), RecordType::Txt).unwrap().len(),
            1
        );
        assert_eq!(
            r.query(&dom("example.com"), RecordType::Mx).unwrap().len(),
            0
        );
        assert_eq!(
            r.query(&dom("nope.example"), RecordType::Txt),
            Err(DnsError::NxDomain)
        );
        assert_eq!(
            r.query(&dom("broken.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
    }

    #[test]
    fn cache_hits_after_first_query() {
        let store = store_with_basics();
        let r = CachingResolver::new(ZoneResolver::new(store));
        let stats = r.stats();
        for _ in 0..5 {
            r.query(&dom("example.com"), RecordType::Txt).unwrap();
        }
        let (hits, misses, queries, _) = stats.snapshot();
        assert_eq!(queries, 5);
        assert_eq!(misses, 1);
        assert_eq!(hits, 4);
    }

    #[test]
    fn cache_stores_nxdomain_but_not_timeouts() {
        let store = store_with_basics();
        store.set_fault(&dom("flaky.example"), ZoneFault::Timeout);
        let r = CachingResolver::new(ZoneResolver::new(Arc::clone(&store)));
        // NXDOMAIN cached:
        assert_eq!(
            r.query(&dom("gone.example"), RecordType::Txt),
            Err(DnsError::NxDomain)
        );
        assert_eq!(
            r.query(&dom("gone.example"), RecordType::Txt),
            Err(DnsError::NxDomain)
        );
        // Timeout NOT cached: fix the fault and the next query succeeds.
        assert_eq!(
            r.query(&dom("flaky.example"), RecordType::Txt),
            Err(DnsError::Timeout)
        );
        store.remove_name(&dom("flaky.example"));
        store.add_txt(&dom("flaky.example"), "v=spf1 -all");
        // remove_name also removed the fault:
        assert!(r.query(&dom("flaky.example"), RecordType::Txt).is_ok());
        let (hits, misses, _, _) = r.stats().snapshot();
        assert_eq!(hits, 1); // the second NXDOMAIN
        assert_eq!(misses, 3);
    }

    #[test]
    fn counting_resolver_counts() {
        let r = CountingResolver::new(ZoneResolver::new(store_with_basics()));
        let stats = r.stats();
        r.query(&dom("example.com"), RecordType::Txt).unwrap();
        let _ = r.query(&dom("missing.example"), RecordType::Txt);
        assert_eq!(stats.queries.load(Ordering::Relaxed), 2);
        assert_eq!(stats.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rate_limiter_waits_on_virtual_clock() {
        let clock = Arc::new(VirtualClock::new());
        // 1 endpoint, 2 q/s, burst 2: the 3rd immediate query must wait.
        let r = RateLimitedResolver::new(
            ZoneResolver::new(store_with_basics()),
            clock.clone(),
            1,
            2.0,
        );
        for _ in 0..5 {
            r.query(&dom("example.com"), RecordType::Txt).unwrap();
        }
        assert!(r.total_wait() > Duration::ZERO);
        // Virtual time advanced instead of real sleeping.
        assert!(clock.now() > Duration::ZERO);
    }

    #[test]
    fn rate_limiter_many_endpoints_less_waiting() {
        let clock_a = Arc::new(VirtualClock::new());
        let slow =
            RateLimitedResolver::new(ZoneResolver::new(store_with_basics()), clock_a, 1, 1.0);
        let clock_b = Arc::new(VirtualClock::new());
        let fast =
            RateLimitedResolver::new(ZoneResolver::new(store_with_basics()), clock_b, 150, 1.0);
        for _ in 0..20 {
            slow.query(&dom("example.com"), RecordType::Txt).unwrap();
            fast.query(&dom("example.com"), RecordType::Txt).unwrap();
        }
        assert!(fast.total_wait() < slow.total_wait());
    }

    #[test]
    fn fault_injection_rates_are_plausible() {
        let profile = FaultProfile {
            timeout: 0.2,
            nxdomain: 0.2,
            empty: 0.1,
            servfail: 0.0,
        };
        let r = FaultInjectingResolver::new(ZoneResolver::new(store_with_basics()), profile, 42);
        let mut timeouts = 0;
        let mut nx = 0;
        let mut empty = 0;
        let mut ok = 0;
        for _ in 0..2000 {
            match r.query(&dom("example.com"), RecordType::Txt) {
                Ok(v) if v.is_empty() => empty += 1,
                Ok(_) => ok += 1,
                Err(DnsError::Timeout) => timeouts += 1,
                Err(DnsError::NxDomain) => nx += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(r.injected() as usize, timeouts + nx + empty);
        // Loose 3-sigma style bounds.
        assert!((300..=500).contains(&timeouts), "timeouts={timeouts}");
        assert!((300..=500).contains(&nx), "nx={nx}");
        assert!((120..=280).contains(&empty), "empty={empty}");
        assert!((800..=1200).contains(&ok), "ok={ok}");
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let profile = FaultProfile {
            timeout: 0.5,
            nxdomain: 0.0,
            empty: 0.0,
            servfail: 0.0,
        };
        let results: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let r =
                    FaultInjectingResolver::new(ZoneResolver::new(store_with_basics()), profile, 7);
                (0..64)
                    .map(|_| r.query(&dom("example.com"), RecordType::Txt).is_ok())
                    .collect()
            })
            .collect();
        assert_eq!(results[0], results[1]);
    }
}
