//! Property tests for the RFC 1035 codec: decoding must never panic on
//! arbitrary bytes (the server feeds it raw network input), and every
//! well-formed message must round-trip both with and without compression.

use proptest::prelude::*;
use spf_dns::{
    decode, encode, encode_uncompressed, Message, Question, RecordData, RecordType, ResourceRecord,
    TxtData,
};
use spf_types::DomainName;

fn arb_domain() -> impl Strategy<Value = DomainName> {
    proptest::collection::vec("[a-z][a-z0-9-]{0,14}[a-z0-9]", 1..4)
        .prop_map(|labels| DomainName::parse(&labels.join(".")).expect("generated labels valid"))
}

fn arb_record_type() -> impl Strategy<Value = RecordType> {
    prop_oneof![
        Just(RecordType::A),
        Just(RecordType::Aaaa),
        Just(RecordType::Mx),
        Just(RecordType::Txt),
        Just(RecordType::Ptr),
        Just(RecordType::Ns),
        Just(RecordType::Cname),
        Just(RecordType::Spf),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_domain(), 0u32..86_400).prop_flat_map(|(name, ttl)| {
        prop_oneof![
            any::<u32>().prop_map({
                let name = name.clone();
                move |v| ResourceRecord {
                    name: name.clone(),
                    ttl,
                    data: RecordData::A(v.into()),
                }
            }),
            any::<u128>().prop_map({
                let name = name.clone();
                move |v| ResourceRecord {
                    name: name.clone(),
                    ttl,
                    data: RecordData::Aaaa(v.into()),
                }
            }),
            (any::<u16>(), arb_domain()).prop_map({
                let name = name.clone();
                move |(preference, exchange)| ResourceRecord {
                    name: name.clone(),
                    ttl,
                    data: RecordData::Mx {
                        preference,
                        exchange,
                    },
                }
            }),
            "[ -~]{0,600}".prop_map({
                let name = name.clone();
                move |text| ResourceRecord {
                    name: name.clone(),
                    ttl,
                    data: RecordData::Txt(TxtData::from_text(&text)),
                }
            }),
            arb_domain().prop_map({
                let name = name.clone();
                move |target| ResourceRecord {
                    name: name.clone(),
                    ttl,
                    data: RecordData::Ptr(target),
                }
            }),
        ]
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_domain(),
        arb_record_type(),
        proptest::collection::vec(arb_record(), 0..6),
    )
        .prop_map(|(id, qname, qtype, answers)| {
            let query = Message::query(id, Question::new(qname, qtype));
            Message::response(&query, spf_dns::Rcode::NoError, answers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // must return, never panic
    }

    #[test]
    fn decode_never_panics_on_mutated_valid_messages(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let mut bytes = encode(&msg).unwrap();
        for (idx, value) in flips {
            if !bytes.is_empty() {
                let i = idx.index(bytes.len());
                bytes[i] ^= value;
            }
        }
        let _ = decode(&bytes);
    }

    #[test]
    fn round_trip_compressed(msg in arb_message()) {
        let bytes = encode(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn round_trip_uncompressed(msg in arb_message()) {
        let bytes = encode_uncompressed(&msg).unwrap();
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn compression_never_grows_the_message(msg in arb_message()) {
        let compressed = encode(&msg).unwrap().len();
        let plain = encode_uncompressed(&msg).unwrap().len();
        prop_assert!(compressed <= plain);
    }
}
