//! The receiving MTA under concurrent load: parallel spoofing attempts
//! (like the case study's per-provider probes) must not interleave
//! sessions or corrupt verdicts.

use std::sync::Arc;

use spf_dns::{ZoneResolver, ZoneStore};
use spf_smtp::{MtaConfig, SmtpClient, SmtpServer, SpfEnforcement};
use spf_types::DomainName;

fn dom(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

#[test]
fn parallel_sessions_keep_their_own_verdicts() {
    let store = Arc::new(ZoneStore::new());
    // Ten victim domains, each authorizing its own distinct /32.
    for i in 0..10u8 {
        let d = dom(&format!("victim{i}.example"));
        store.add_txt(&d, &format!("v=spf1 ip4:198.51.100.{i} -all"));
    }
    let server = SmtpServer::spawn(
        Arc::new(ZoneResolver::new(Arc::clone(&store))),
        MtaConfig {
            enforcement: SpfEnforcement::MarkOnly,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for i in 0..10u8 {
            scope.spawn(move || {
                let mut client = SmtpClient::connect(addr).unwrap();
                client.ehlo("sender.example").unwrap();
                // Even sessions use the matching IP (pass), odd ones a
                // mismatched IP (fail).
                let ip = if i % 2 == 0 {
                    format!("198.51.100.{i}")
                } else {
                    format!("203.0.113.{i}")
                };
                client.xclient(ip.parse().unwrap()).unwrap();
                let reply = client.mail_from(&format!("ceo@victim{i}.example")).unwrap();
                let expected = if i % 2 == 0 { "spf=pass" } else { "spf=fail" };
                assert!(reply.text.contains(expected), "session {i}: {reply}");
                client.rcpt_to("inbox@receiver.example").unwrap();
                client.data(&format!("marker-{i}")).unwrap();
                client.quit().unwrap();
            });
        }
    });

    let msgs = server.received();
    assert_eq!(msgs.len(), 10);
    for msg in &msgs {
        // Every stored message's verdict matches its own envelope.
        let i: u8 = msg.mail_from["ceo@victim".len()..]
            .split('.')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let expected = if i.is_multiple_of(2) { "pass" } else { "fail" };
        assert_eq!(msg.spf_result.to_string(), expected, "message {i}");
        assert!(msg.body.contains(&format!("marker-{i}")));
    }
}

#[test]
fn session_survives_rset_and_reuse() {
    let store = Arc::new(ZoneStore::new());
    store.add_txt(&dom("v.example"), "v=spf1 ip4:192.0.2.1 -all");
    let server = SmtpServer::spawn(
        Arc::new(ZoneResolver::new(Arc::clone(&store))),
        MtaConfig::default(),
    )
    .unwrap();
    let mut client = SmtpClient::connect(server.addr()).unwrap();
    client.ehlo("h.example").unwrap();
    client.xclient("192.0.2.1".parse().unwrap()).unwrap();
    // First transaction, then RSET, then a second one on the same socket.
    client.mail_from("a@v.example").unwrap();
    client.rcpt_to("x@r.example").unwrap();
    let rset_code = {
        // RSET via a NOOP-like path: reuse mail_from after reset.
        let mut c2 = client;
        let reply = c2.data("first message").unwrap();
        assert!(reply.is_positive());
        c2.mail_from("b@v.example").unwrap();
        c2.rcpt_to("y@r.example").unwrap();
        c2.data("second message").unwrap().code
    };
    assert_eq!(rset_code, 250);
    let msgs = server.received();
    assert_eq!(msgs.len(), 2);
    assert_eq!(msgs[0].mail_from, "a@v.example");
    assert_eq!(msgs[1].mail_from, "b@v.example");
}
