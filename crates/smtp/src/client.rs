//! A minimal SMTP client — the sending side of the case study (both the
//! direct-SMTP-from-web-space method and the provider-MTA relay are
//! client sessions against the receiving MTA).

use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, SocketAddr, TcpStream};
use std::time::Duration;

use crate::codec::Reply;

/// Errors from a client session.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's reply could not be parsed.
    BadReply {
        /// The raw line.
        line: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::BadReply { line } => write!(f, "unparsable reply {line:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected SMTP client.
pub struct SmtpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// The server banner received on connect.
    pub banner: Reply,
}

impl SmtpClient {
    /// Connect and read the banner.
    pub fn connect(addr: SocketAddr) -> Result<SmtpClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let banner = read_reply(&mut reader)?;
        Ok(SmtpClient {
            writer,
            reader,
            banner,
        })
    }

    fn command(&mut self, line: &str) -> Result<Reply, ClientError> {
        write!(self.writer, "{line}\r\n")?;
        self.writer.flush()?;
        read_reply(&mut self.reader)
    }

    /// Send `EHLO`.
    pub fn ehlo(&mut self, domain: &str) -> Result<Reply, ClientError> {
        self.command(&format!("EHLO {domain}"))
    }

    /// Declare the simulated client address (server must trust XCLIENT).
    pub fn xclient(&mut self, addr: IpAddr) -> Result<Reply, ClientError> {
        self.command(&format!("XCLIENT ADDR={addr}"))
    }

    /// Send `MAIL FROM`.
    pub fn mail_from(&mut self, path: &str) -> Result<Reply, ClientError> {
        self.command(&format!("MAIL FROM:<{path}>"))
    }

    /// Send `RCPT TO`.
    pub fn rcpt_to(&mut self, path: &str) -> Result<Reply, ClientError> {
        self.command(&format!("RCPT TO:<{path}>"))
    }

    /// Send the message body via `DATA`, dot-stuffing as required.
    pub fn data(&mut self, body: &str) -> Result<Reply, ClientError> {
        let reply = self.command("DATA")?;
        if reply.code != 354 {
            return Ok(reply);
        }
        for line in body.lines() {
            if line.starts_with('.') {
                write!(self.writer, ".{line}\r\n")?;
            } else {
                write!(self.writer, "{line}\r\n")?;
            }
        }
        write!(self.writer, ".\r\n")?;
        self.writer.flush()?;
        read_reply(&mut self.reader)
    }

    /// Send `QUIT`.
    pub fn quit(&mut self) -> Result<Reply, ClientError> {
        self.command("QUIT")
    }
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Result<Reply, ClientError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Reply::parse(&line).ok_or(ClientError::BadReply { line })
}

#[cfg(test)]
mod tests {
    // The client is exercised end-to-end in `server.rs` and `spoof.rs`
    // tests; here only the pure helpers are covered.
    use crate::codec::Reply;

    #[test]
    fn reply_parse_handles_multiline_markers() {
        let r = Reply::parse("250-mx.receiver.example greets you").unwrap();
        assert_eq!(r.code, 250);
        assert_eq!(r.text, "mx.receiver.example greets you");
    }
}
