//! # spf-smtp — the mail-flow substrate behind the case study
//!
//! A minimal but real SMTP implementation over TCP: a command/reply
//! [`codec`], a receiving-MTA [`server`] that runs `check_host()` at
//! `MAIL FROM` (rejecting on `fail`), a [`client`], and the [`spoof`]
//! harness that reproduces the Section 6.4 case study (Table 5) by
//! actually connecting, declaring the simulated source address via
//! `XCLIENT`, and letting the SPF gate decide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod server;
pub mod spoof;

pub use client::{ClientError, SmtpClient};
pub use codec::{Command, Reply};
pub use server::{DmarcResult, MtaConfig, ReceivedMessage, SmtpServer, SpfEnforcement};
/// Re-export of the layer the spoof harness attributes stops to.
pub use spf_core::StopLayer;
pub use spoof::{run_case_study, total_spoofable, CaseStudyRow, SpoofSuccess};
