//! The Section 6.4 spoofing harness: reproduce Table 5 end-to-end.
//!
//! For each hosting provider the harness plays the attacker who rented
//! web space and tries both delivery paths the paper used:
//!
//! 1. **Direct SMTP** — open a TCP connection to the victim's receiving
//!    MTA straight from the shared web space (simulated source address =
//!    the provider's web IP). Blocked when the provider filters outbound
//!    port 25 (§7.2).
//! 2. **Provider MTA** — hand the message to the provider's local MTA
//!    (PHP `mail()`), which relays it from the MTA's own address. Blocked
//!    when the MTA authenticates senders against the claimed domain.
//!
//! Every attempt is a *real TCP session* against an [`SmtpServer`] whose
//! SPF gate runs `check_host()`; a spoof succeeds iff the gate computes
//! `pass` for the spoofed domain and accepts the message.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use spf_core::StopLayer;
use spf_dns::Resolver;
use spf_netsim::{HostingProvider, HostingWorld};

use crate::client::SmtpClient;
use crate::server::{MtaConfig, SmtpServer};

/// Outcome labels matching Table 5's "Success" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpoofSuccess {
    /// Both delivery paths worked.
    SmtpAndMta,
    /// Only the provider-MTA path worked.
    MtaOnly,
    /// Only the direct SMTP path worked.
    SmtpOnly,
    /// Neither worked.
    None,
}

impl SpoofSuccess {
    /// The Table 5 label for a pair of delivery-path outcomes: direct
    /// SMTP from the web space, and relay through the provider MTA. The
    /// spoofability-matrix engine reuses this to label per-provider
    /// verdict pairs exactly like the live case study does.
    #[deprecated(note = "use `from_stops`; the layered pipeline reports which layer closed a path")]
    pub fn from_paths(smtp_ok: bool, mta_ok: bool) -> SpoofSuccess {
        match (smtp_ok, mta_ok) {
            (true, true) => SpoofSuccess::SmtpAndMta,
            (false, true) => SpoofSuccess::MtaOnly,
            (true, false) => SpoofSuccess::SmtpOnly,
            (false, false) => SpoofSuccess::None,
        }
    }

    /// The Table 5 label from per-path stop layers (the layered
    /// pipeline's spelling of [`SpoofSuccess::from_paths`]): `None`
    /// means the delivery path is unavailable at the infrastructure
    /// level (outbound port 25 filtered, MTA sender auth), and a path
    /// only counts as open when no auth layer stopped it —
    /// [`StopLayer::None`].
    pub fn from_stops(smtp: Option<StopLayer>, mta: Option<StopLayer>) -> SpoofSuccess {
        #[allow(deprecated)]
        SpoofSuccess::from_paths(smtp == Some(StopLayer::None), mta == Some(StopLayer::None))
    }

    /// True when at least one delivery path produced an SPF-passing
    /// spoof.
    pub fn any(self) -> bool {
        self != SpoofSuccess::None
    }
}

impl std::fmt::Display for SpoofSuccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SpoofSuccess::SmtpAndMta => "SMTP, MTA",
            SpoofSuccess::MtaOnly => "MTA",
            SpoofSuccess::SmtpOnly => "SMTP",
            SpoofSuccess::None => "None",
        };
        f.write_str(s)
    }
}

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseStudyRow {
    /// Provider number (1–5).
    pub provider: usize,
    /// Which delivery paths produced an SPF-passing spoof.
    pub success: SpoofSuccess,
    /// Number of spoofable domains (0 when `success` is `None`).
    pub domains: u64,
    /// Addresses the provider's recommended record authorizes.
    pub allowed_ips: u64,
}

/// Run the full case study against a receiving MTA backed by `resolver`.
///
/// The resolver must serve the hosting world's zone data (customer
/// records and provider includes).
pub fn run_case_study<R: Resolver + 'static>(
    world: &HostingWorld,
    resolver: Arc<R>,
) -> std::io::Result<Vec<CaseStudyRow>> {
    let server = SmtpServer::spawn(resolver, MtaConfig::default())?;
    let mut rows = Vec::with_capacity(world.providers.len());
    for provider in &world.providers {
        let victim = provider
            .customers
            .first()
            .expect("providers have customers");
        let smtp_stop = if provider.blocks_port25 {
            // The web space cannot reach port 25 at all.
            None
        } else {
            Some(attempt(
                server.addr(),
                provider,
                victim.as_str(),
                provider.web_ip.into(),
            )?)
        };
        let mta_stop = if provider.mta_requires_auth {
            // The MTA refuses to relay for domains the account does not own.
            None
        } else {
            Some(attempt(
                server.addr(),
                provider,
                victim.as_str(),
                provider.mta_ip.into(),
            )?)
        };
        let success = SpoofSuccess::from_stops(smtp_stop, mta_stop);
        let domains = if success.any() {
            provider.customers.len() as u64
        } else {
            0
        };
        rows.push(CaseStudyRow {
            provider: provider.id,
            success,
            domains,
            allowed_ips: provider.allowed_ips,
        });
    }
    Ok(rows)
}

/// One spoofed delivery attempt from `source_ip` claiming
/// `spoofed_domain`, reporting which auth layer stopped it:
///
/// * rejected at `MAIL FROM` → [`StopLayer::Spf`];
/// * rejected at end-of-data by the From domain's enforced DMARC policy
///   → [`StopLayer::Dmarc`];
/// * delivered with an SPF `pass` → [`StopLayer::None`] (a successful
///   spoof);
/// * delivered *without* a pass (a tolerated `neutral`/`softfail`) —
///   the spoof does not count in Table 5's terms because SPF denied
///   the authorization, so it is attributed to [`StopLayer::Spf`].
///
/// The message carries a `From:` header aligned with the spoofed
/// envelope (the aligned-attacker model of DESIGN.md §13), so the
/// receiver's DMARC gate evaluates the same identifier pair the matrix
/// engine models.
fn attempt(
    server: std::net::SocketAddr,
    provider: &HostingProvider,
    spoofed_domain: &str,
    source_ip: std::net::IpAddr,
) -> std::io::Result<StopLayer> {
    let run = || -> Result<StopLayer, crate::client::ClientError> {
        let mut client = SmtpClient::connect(server)?;
        client.ehlo(&format!("web.hosting{}.example", provider.id))?;
        client.xclient(source_ip)?;
        let reply = client.mail_from(&format!("ceo@{spoofed_domain}"))?;
        if !reply.is_positive() {
            let _ = client.quit();
            return Ok(StopLayer::Spf);
        }
        // The spoof only counts when it passes SPF, not merely when the
        // server tolerates a neutral result.
        let passed = reply.text.contains("spf=pass");
        client.rcpt_to("victim@receiver.example")?;
        let data = client.data(&format!(
            "From: CEO <ceo@{spoofed_domain}>\nSubject: urgent wire transfer\n\nplease"
        ))?;
        let _ = client.quit();
        if !data.is_positive() {
            return Ok(if data.text.contains("DMARC") {
                StopLayer::Dmarc
            } else {
                StopLayer::Spf
            });
        }
        Ok(if passed {
            StopLayer::None
        } else {
            StopLayer::Spf
        })
    };
    run().map_err(|e| std::io::Error::other(e.to_string()))
}

/// Total spoofable domains across all rows (the paper's 26,095).
pub fn total_spoofable(rows: &[CaseStudyRow]) -> u64 {
    rows.iter().map(|r| r.domains).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_dns::ZoneResolver;
    use spf_netsim::{build_hosting, Scale};

    #[test]
    fn table5_shape_reproduced() {
        let world = build_hosting(Scale { denominator: 100 });
        let resolver = Arc::new(ZoneResolver::new(Arc::clone(&world.store)));
        let rows = run_case_study(&world, resolver).unwrap();
        assert_eq!(rows.len(), 5);
        // Table 5: provider 1 MTA, 2 SMTP+MTA, 3 MTA, 4 SMTP, 5 None.
        assert_eq!(rows[0].success, SpoofSuccess::MtaOnly);
        assert_eq!(rows[1].success, SpoofSuccess::SmtpAndMta);
        assert_eq!(rows[2].success, SpoofSuccess::MtaOnly);
        assert_eq!(rows[3].success, SpoofSuccess::SmtpOnly);
        assert_eq!(rows[4].success, SpoofSuccess::None);
        assert_eq!(rows[4].domains, 0);
        // 4 of 5 providers enable spoofing.
        let exploitable = rows
            .iter()
            .filter(|r| r.success != SpoofSuccess::None)
            .count();
        assert_eq!(exploitable, 4);
        // Allowed-IP column matches Table 5 exactly.
        let allowed: Vec<u64> = rows.iter().map(|r| r.allowed_ips).collect();
        assert_eq!(allowed, vec![177_168, 514, 2_052, 3_074, 672]);
        // Spoofable domain counts scale with the provider customer bases.
        assert_eq!(rows[0].domains, 250); // 24,959 / 100
        assert!(total_spoofable(&rows) >= 250);
    }
}
