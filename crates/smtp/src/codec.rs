//! SMTP command/reply grammar (the RFC 5321 subset the case study needs),
//! plus the `XCLIENT` attribute extension the harness uses to carry the
//! simulated client address across a loopback TCP connection.

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use spf_types::DomainName;

/// A parsed SMTP command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `HELO <domain>`
    Helo {
        /// The client's claimed identity.
        domain: String,
    },
    /// `EHLO <domain>`
    Ehlo {
        /// The client's claimed identity.
        domain: String,
    },
    /// `MAIL FROM:<reverse-path>`
    MailFrom {
        /// The reverse path without angle brackets (may be empty).
        path: String,
    },
    /// `RCPT TO:<forward-path>`
    RcptTo {
        /// The forward path without angle brackets.
        path: String,
    },
    /// `DATA`
    Data,
    /// `RSET`
    Rset,
    /// `NOOP`
    Noop,
    /// `QUIT`
    Quit,
    /// `XCLIENT ADDR=<ip>` — postfix-style attribute command letting a
    /// trusted upstream declare the original client address. The spoofing
    /// harness uses it to carry the simulated source IP over loopback;
    /// the server honours it only when explicitly configured to.
    XClient {
        /// The declared source address.
        addr: IpAddr,
    },
    /// Anything unrecognized (server answers 500).
    Unknown {
        /// The raw line.
        line: String,
    },
}

impl Command {
    /// Parse one CRLF-stripped command line.
    pub fn parse(line: &str) -> Command {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        let upper = trimmed.to_ascii_uppercase();
        if let Some(rest) = strip_verb(&upper, trimmed, "HELO") {
            return Command::Helo {
                domain: rest.trim().to_string(),
            };
        }
        if let Some(rest) = strip_verb(&upper, trimmed, "EHLO") {
            return Command::Ehlo {
                domain: rest.trim().to_string(),
            };
        }
        if upper.starts_with("MAIL FROM:") {
            let path = trimmed["MAIL FROM:".len()..].trim();
            return Command::MailFrom {
                path: strip_brackets(path),
            };
        }
        if upper.starts_with("RCPT TO:") {
            let path = trimmed["RCPT TO:".len()..].trim();
            return Command::RcptTo {
                path: strip_brackets(path),
            };
        }
        if upper.starts_with("XCLIENT") {
            for attr in trimmed["XCLIENT".len()..].split_whitespace() {
                if let Some(value) = attr
                    .to_ascii_uppercase()
                    .strip_prefix("ADDR=")
                    .map(|_| &attr["ADDR=".len()..])
                {
                    if let Ok(addr) = value.parse::<IpAddr>() {
                        return Command::XClient { addr };
                    }
                }
            }
            return Command::Unknown {
                line: trimmed.to_string(),
            };
        }
        match upper.as_str() {
            "DATA" => Command::Data,
            "RSET" => Command::Rset,
            "NOOP" => Command::Noop,
            "QUIT" => Command::Quit,
            _ => Command::Unknown {
                line: trimmed.to_string(),
            },
        }
    }

    /// The MAIL FROM domain part, when this is a MAIL command with a
    /// non-empty path.
    pub fn sender_parts(&self) -> Option<(String, DomainName)> {
        match self {
            Command::MailFrom { path } if !path.is_empty() => {
                let (local, domain) = path.rsplit_once('@')?;
                let domain = DomainName::parse(domain).ok()?;
                Some((local.to_string(), domain))
            }
            _ => None,
        }
    }
}

fn strip_verb<'a>(upper: &str, original: &'a str, verb: &str) -> Option<&'a str> {
    if upper.starts_with(verb)
        && (original.len() == verb.len() || original.as_bytes()[verb.len()] == b' ')
    {
        Some(&original[verb.len().min(original.len())..])
    } else {
        None
    }
}

fn strip_brackets(path: &str) -> String {
    path.trim()
        .strip_prefix('<')
        .and_then(|p| p.strip_suffix('>'))
        .unwrap_or(path)
        .to_string()
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Helo { domain } => write!(f, "HELO {domain}"),
            Command::Ehlo { domain } => write!(f, "EHLO {domain}"),
            Command::MailFrom { path } => write!(f, "MAIL FROM:<{path}>"),
            Command::RcptTo { path } => write!(f, "RCPT TO:<{path}>"),
            Command::Data => write!(f, "DATA"),
            Command::Rset => write!(f, "RSET"),
            Command::Noop => write!(f, "NOOP"),
            Command::Quit => write!(f, "QUIT"),
            Command::XClient { addr } => write!(f, "XCLIENT ADDR={addr}"),
            Command::Unknown { line } => write!(f, "{line}"),
        }
    }
}

/// An SMTP reply: status code plus text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// Three-digit status code.
    pub code: u16,
    /// Reply text (single line).
    pub text: String,
}

impl Reply {
    /// Build a reply.
    pub fn new(code: u16, text: impl Into<String>) -> Self {
        Reply {
            code,
            text: text.into(),
        }
    }

    /// 2xx/3xx replies continue the transaction.
    pub fn is_positive(&self) -> bool {
        self.code < 400
    }

    /// Parse "250 OK" style lines.
    pub fn parse(line: &str) -> Option<Reply> {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.len() < 3 {
            return None;
        }
        let code: u16 = trimmed[..3].parse().ok()?;
        let text = trimmed[3..].trim_start_matches([' ', '-']).to_string();
        Some(Reply { code, text })
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_commands() {
        assert_eq!(
            Command::parse("HELO mail.example.com\r\n"),
            Command::Helo {
                domain: "mail.example.com".into()
            }
        );
        assert_eq!(Command::parse("DATA"), Command::Data);
        assert_eq!(Command::parse("quit"), Command::Quit);
        assert_eq!(Command::parse("RSET"), Command::Rset);
    }

    #[test]
    fn mail_from_strips_brackets() {
        assert_eq!(
            Command::parse("MAIL FROM:<ceo@bank.example>"),
            Command::MailFrom {
                path: "ceo@bank.example".into()
            }
        );
        assert_eq!(
            Command::parse("mail from:<>"),
            Command::MailFrom { path: "".into() }
        );
    }

    #[test]
    fn sender_parts_extracts_local_and_domain() {
        let cmd = Command::parse("MAIL FROM:<ceo@bank.example>");
        let (local, domain) = cmd.sender_parts().unwrap();
        assert_eq!(local, "ceo");
        assert_eq!(domain.as_str(), "bank.example");
        assert_eq!(Command::parse("MAIL FROM:<>").sender_parts(), None);
    }

    #[test]
    fn xclient_parses_addr() {
        assert_eq!(
            Command::parse("XCLIENT ADDR=192.0.2.55"),
            Command::XClient {
                addr: "192.0.2.55".parse().unwrap()
            }
        );
        assert!(matches!(
            Command::parse("XCLIENT NAME=x"),
            Command::Unknown { .. }
        ));
    }

    #[test]
    fn unknown_commands() {
        assert!(matches!(
            Command::parse("BDAT 100"),
            Command::Unknown { .. }
        ));
        assert!(matches!(Command::parse(""), Command::Unknown { .. }));
    }

    #[test]
    fn command_display_round_trips() {
        for line in [
            "HELO h.example",
            "MAIL FROM:<a@b.c>",
            "RCPT TO:<x@y.z>",
            "DATA",
            "QUIT",
        ] {
            let cmd = Command::parse(line);
            assert_eq!(Command::parse(&cmd.to_string()), cmd);
        }
    }

    #[test]
    fn reply_parse_and_predicates() {
        let r = Reply::parse("250 OK\r\n").unwrap();
        assert_eq!(r.code, 250);
        assert!(r.is_positive());
        let r = Reply::parse("550 5.7.23 SPF fail").unwrap();
        assert_eq!(r.code, 550);
        assert!(!r.is_positive());
        assert!(Reply::parse("xx").is_none());
    }
}
