//! A receiving MTA with an SPF gate at `MAIL FROM`.
//!
//! This is the "our site" end of the case study: the paper sent spoofed
//! mails to themselves and "examined how the emails are received on our
//! site and whether they pass the SPF checks". The server runs real
//! `check_host()` against its resolver for every `MAIL FROM`, stamps the
//! result into the stored message (Received-SPF style) and — depending on
//! policy — rejects on `fail`.

use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spf_core::{check_host, received_spf_header, EvalContext, EvalPolicy, SpfResult};
use spf_dns::Resolver;
use spf_types::DomainName;

use crate::codec::{Command, Reply};

/// How the gate treats each SPF outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpfEnforcement {
    /// Reject `fail` at MAIL FROM (550); accept everything else.
    RejectFail,
    /// Accept everything, only annotate the result (monitoring mode).
    MarkOnly,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct MtaConfig {
    /// The server's own hostname (used in the banner and `%{r}`).
    pub hostname: String,
    /// SPF enforcement policy.
    pub enforcement: SpfEnforcement,
    /// Honour `XCLIENT ADDR=` from connecting clients. The spoofing
    /// harness needs this to carry the simulated source address across a
    /// loopback socket; production servers only enable it for trusted
    /// proxies.
    pub trust_xclient: bool,
}

impl Default for MtaConfig {
    fn default() -> Self {
        MtaConfig {
            hostname: "mx.receiver.example".into(),
            enforcement: SpfEnforcement::RejectFail,
            trust_xclient: true,
        }
    }
}

/// A message the server accepted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedMessage {
    /// Envelope sender.
    pub mail_from: String,
    /// Envelope recipients.
    pub rcpt_to: Vec<String>,
    /// Message body.
    pub body: String,
    /// The (possibly XCLIENT-declared) client address.
    pub client_ip: IpAddr,
    /// The SPF verdict computed at MAIL FROM.
    pub spf_result: SpfResult,
}

/// A running receiving MTA.
pub struct SmtpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    received: Arc<Mutex<Vec<ReceivedMessage>>>,
}

impl SmtpServer {
    /// Bind to 127.0.0.1 on an ephemeral port and serve connections, using
    /// `resolver` for SPF checks.
    pub fn spawn<R: Resolver + 'static>(
        resolver: Arc<R>,
        config: MtaConfig,
    ) -> std::io::Result<SmtpServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let received = Arc::new(Mutex::new(Vec::new()));
        let t_shutdown = Arc::clone(&shutdown);
        let t_received = Arc::clone(&received);
        let handle = std::thread::Builder::new()
            .name("smtp-server".into())
            .spawn(move || {
                let mut sessions: Vec<JoinHandle<()>> = Vec::new();
                while !t_shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            let resolver = Arc::clone(&resolver);
                            let config = config.clone();
                            let received = Arc::clone(&t_received);
                            sessions.push(
                                std::thread::Builder::new()
                                    .name("smtp-session".into())
                                    .spawn(move || {
                                        let _ =
                                            serve_session(stream, peer, resolver, config, received);
                                    })
                                    .expect("spawn session"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for s in sessions {
                    let _ = s.join();
                }
            })?;
        Ok(SmtpServer {
            addr,
            shutdown,
            handle: Some(handle),
            received,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Messages accepted so far.
    pub fn received(&self) -> Vec<ReceivedMessage> {
        self.received.lock().clone()
    }
}

impl Drop for SmtpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct SessionState {
    client_ip: IpAddr,
    helo: Option<String>,
    mail_from: Option<String>,
    spf_result: Option<SpfResult>,
    spf_header: Option<String>,
    rcpt_to: Vec<String>,
}

fn serve_session<R: Resolver>(
    stream: TcpStream,
    peer: SocketAddr,
    resolver: Arc<R>,
    config: MtaConfig,
    received: Arc<Mutex<Vec<ReceivedMessage>>>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let send = |w: &mut TcpStream, reply: Reply| -> std::io::Result<()> {
        write!(w, "{reply}\r\n")?;
        w.flush()
    };
    send(
        &mut writer,
        Reply::new(220, format!("{} ESMTP", config.hostname)),
    )?;

    let mut state = SessionState {
        client_ip: peer.ip(),
        helo: None,
        mail_from: None,
        spf_result: None,
        spf_header: None,
        rcpt_to: Vec::new(),
    };

    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        match Command::parse(&line) {
            Command::Helo { domain } | Command::Ehlo { domain } => {
                state.helo = Some(domain);
                send(&mut writer, Reply::new(250, config.hostname.clone()))?;
            }
            Command::XClient { addr } => {
                if config.trust_xclient {
                    state.client_ip = addr;
                    send(&mut writer, Reply::new(220, "XCLIENT accepted"))?;
                } else {
                    send(&mut writer, Reply::new(550, "XCLIENT not trusted"))?;
                }
            }
            cmd @ Command::MailFrom { .. } => {
                let Command::MailFrom { path } = &cmd else {
                    unreachable!()
                };
                let (verdict, header) = match cmd.sender_parts() {
                    Some((local, domain)) => {
                        let helo = state
                            .helo
                            .as_deref()
                            .and_then(|h| DomainName::parse(h).ok())
                            .unwrap_or_else(|| domain.clone());
                        let ctx = EvalContext {
                            ip: state.client_ip,
                            sender_local: local,
                            sender_domain: domain.clone(),
                            helo,
                            receiver: DomainName::parse(&config.hostname).ok(),
                        };
                        let eval =
                            check_host(resolver.as_ref(), &ctx, &domain, &EvalPolicy::default());
                        let header = received_spf_header(&eval, &ctx);
                        (eval.result, Some(header))
                    }
                    // Null sender / unparsable domain → none.
                    None => (SpfResult::None, None),
                };
                if verdict == SpfResult::Fail && config.enforcement == SpfEnforcement::RejectFail {
                    send(
                        &mut writer,
                        Reply::new(550, format!("5.7.23 SPF check failed ({verdict})")),
                    )?;
                    continue;
                }
                state.mail_from = Some(path.clone());
                state.spf_result = Some(verdict);
                state.spf_header = header;
                state.rcpt_to.clear();
                send(&mut writer, Reply::new(250, format!("OK spf={verdict}")))?;
            }
            Command::RcptTo { path } => {
                if state.mail_from.is_none() {
                    send(&mut writer, Reply::new(503, "need MAIL first"))?;
                } else {
                    state.rcpt_to.push(path);
                    send(&mut writer, Reply::new(250, "OK"))?;
                }
            }
            Command::Data => {
                if state.rcpt_to.is_empty() {
                    send(&mut writer, Reply::new(503, "need RCPT first"))?;
                    continue;
                }
                send(&mut writer, Reply::new(354, "end with <CRLF>.<CRLF>"))?;
                let mut body = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        return Ok(());
                    }
                    let stripped = line.trim_end_matches(['\r', '\n']);
                    if stripped == "." {
                        break;
                    }
                    // Dot-unstuffing (RFC 5321 §4.5.2).
                    body.push_str(stripped.strip_prefix('.').unwrap_or(stripped));
                    body.push('\n');
                }
                // Prepend the Received-SPF header the way an MTA stamps
                // accepted mail (RFC 7208 §9.1).
                let stored_body = match &state.spf_header {
                    Some(h) => format!("{h}\n{body}"),
                    None => body,
                };
                received.lock().push(ReceivedMessage {
                    mail_from: state.mail_from.clone().unwrap_or_default(),
                    rcpt_to: state.rcpt_to.clone(),
                    body: stored_body,
                    client_ip: state.client_ip,
                    spf_result: state.spf_result.unwrap_or(SpfResult::None),
                });
                state.mail_from = None;
                state.rcpt_to.clear();
                send(&mut writer, Reply::new(250, "OK message accepted"))?;
            }
            Command::Rset => {
                state.mail_from = None;
                state.spf_result = None;
                state.rcpt_to.clear();
                send(&mut writer, Reply::new(250, "OK"))?;
            }
            Command::Noop => send(&mut writer, Reply::new(250, "OK"))?,
            Command::Quit => {
                send(&mut writer, Reply::new(221, "bye"))?;
                return Ok(());
            }
            Command::Unknown { .. } => {
                send(&mut writer, Reply::new(500, "command unrecognized"))?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SmtpClient;
    use spf_dns::{ZoneResolver, ZoneStore};
    use std::net::Ipv4Addr;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn world() -> Arc<ZoneStore> {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("good.example"), "v=spf1 ip4:198.51.100.7 -all");
        store
    }

    fn server(store: &Arc<ZoneStore>) -> SmtpServer {
        SmtpServer::spawn(
            Arc::new(ZoneResolver::new(Arc::clone(store))),
            MtaConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn accepts_mail_from_authorized_ip() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("webhost.example").unwrap();
        client
            .xclient(Ipv4Addr::new(198, 51, 100, 7).into())
            .unwrap();
        let reply = client.mail_from("ceo@good.example").unwrap();
        assert!(reply.is_positive(), "{reply}");
        assert!(reply.text.contains("spf=pass"));
        client.rcpt_to("victim@receiver.example").unwrap();
        client.data("Subject: hi\n\nhello").unwrap();
        client.quit().unwrap();
        let msgs = server.received();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].spf_result, SpfResult::Pass);
        assert_eq!(msgs[0].mail_from, "ceo@good.example");
        assert_eq!(
            msgs[0].client_ip,
            IpAddr::from(Ipv4Addr::new(198, 51, 100, 7))
        );
    }

    #[test]
    fn rejects_mail_from_unauthorized_ip() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("attacker.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        let reply = client.mail_from("ceo@good.example").unwrap();
        assert_eq!(reply.code, 550);
        assert!(server.received().is_empty());
    }

    #[test]
    fn mark_only_mode_accepts_failures() {
        let store = world();
        let server = SmtpServer::spawn(
            Arc::new(ZoneResolver::new(Arc::clone(&store))),
            MtaConfig {
                enforcement: SpfEnforcement::MarkOnly,
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("attacker.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        let reply = client.mail_from("ceo@good.example").unwrap();
        assert!(reply.is_positive());
        assert!(reply.text.contains("spf=fail"));
        client.rcpt_to("victim@receiver.example").unwrap();
        client.data("spoofed").unwrap();
        assert_eq!(server.received()[0].spf_result, SpfResult::Fail);
    }

    #[test]
    fn no_spf_record_yields_none() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("host.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        let reply = client.mail_from("user@nospf.example").unwrap();
        assert!(reply.is_positive());
        assert!(reply.text.contains("spf=none"));
    }

    #[test]
    fn rcpt_before_mail_rejected() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("h.example").unwrap();
        let reply = client.rcpt_to("x@y.example").unwrap();
        assert_eq!(reply.code, 503);
    }

    #[test]
    fn dot_stuffed_body_round_trips() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("h.example").unwrap();
        client
            .xclient(Ipv4Addr::new(198, 51, 100, 7).into())
            .unwrap();
        client.mail_from("ceo@good.example").unwrap();
        client.rcpt_to("v@r.example").unwrap();
        client.data("line one\n.leading dot\nlast").unwrap();
        let msgs = server.received();
        // The stored body carries the stamped Received-SPF header first.
        let (header, body) = msgs[0].body.split_once('\n').unwrap();
        assert!(header.starts_with("Received-SPF: pass"));
        assert_eq!(body, "line one\n.leading dot\nlast\n");
    }
}
