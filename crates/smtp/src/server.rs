//! A receiving MTA with an SPF gate at `MAIL FROM` and a DMARC gate at
//! `DATA`.
//!
//! This is the "our site" end of the case study: the paper sent spoofed
//! mails to themselves and "examined how the emails are received on our
//! site and whether they pass the SPF checks". The server runs real
//! `check_host()` against its resolver for every `MAIL FROM`, stamps the
//! result into the stored message (Received-SPF style) and — depending on
//! policy — rejects on `fail`. On top of the SPF gate, the layered
//! pipeline (DESIGN.md §13) checks DMARC at end-of-data: the `From:`
//! header domain is aligned against the envelope sender under relaxed
//! (organizational-domain) alignment, DMARC passes only for an aligned
//! SPF `pass`, and an enforced policy (`quarantine`/`reject`) on the
//! From domain rejects failing mail.

use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spf_core::{
    check_host, organizational_domain, query_dmarc, received_spf_header, DmarcDisposition,
    EvalContext, EvalPolicy, SpfResult,
};
use spf_dns::Resolver;
use spf_types::DomainName;

use crate::codec::{Command, Reply};

/// How the gate treats each SPF outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpfEnforcement {
    /// Reject `fail` at MAIL FROM (550); accept everything else.
    RejectFail,
    /// Accept everything, only annotate the result (monitoring mode).
    MarkOnly,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct MtaConfig {
    /// The server's own hostname (used in the banner and `%{r}`).
    pub hostname: String,
    /// SPF enforcement policy.
    pub enforcement: SpfEnforcement,
    /// Honour the From-header domain's enforced DMARC policy at
    /// end-of-data (reject failing mail under `p=quarantine`/`reject`).
    /// When `false` the DMARC verdict is only annotated.
    pub enforce_dmarc: bool,
    /// Honour `XCLIENT ADDR=` from connecting clients. The spoofing
    /// harness needs this to carry the simulated source address across a
    /// loopback socket; production servers only enable it for trusted
    /// proxies.
    pub trust_xclient: bool,
}

impl Default for MtaConfig {
    fn default() -> Self {
        MtaConfig {
            hostname: "mx.receiver.example".into(),
            enforcement: SpfEnforcement::RejectFail,
            enforce_dmarc: true,
            trust_xclient: true,
        }
    }
}

/// The receiver's DMARC verdict for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmarcResult {
    /// An aligned identifier authenticated (here: SPF `pass` with the
    /// `From:` domain org-aligned to the envelope sender).
    Pass,
    /// The From domain publishes a usable DMARC record and no aligned
    /// identifier authenticated.
    Fail,
    /// No usable DMARC record on the From domain (or no From domain).
    None,
}

impl std::fmt::Display for DmarcResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DmarcResult::Pass => "pass",
            DmarcResult::Fail => "fail",
            DmarcResult::None => "none",
        };
        f.write_str(s)
    }
}

/// A message the server accepted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedMessage {
    /// Envelope sender.
    pub mail_from: String,
    /// Envelope recipients.
    pub rcpt_to: Vec<String>,
    /// Message body.
    pub body: String,
    /// The (possibly XCLIENT-declared) client address.
    pub client_ip: IpAddr,
    /// The SPF verdict computed at MAIL FROM.
    pub spf_result: SpfResult,
    /// The `From:` header domain the DMARC check evaluated (absent when
    /// the message carries no parsable From header).
    pub from_domain: Option<String>,
    /// The DMARC verdict computed at end-of-data.
    pub dmarc_result: DmarcResult,
}

/// A running receiving MTA.
pub struct SmtpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    received: Arc<Mutex<Vec<ReceivedMessage>>>,
}

impl SmtpServer {
    /// Bind to 127.0.0.1 on an ephemeral port and serve connections, using
    /// `resolver` for SPF checks.
    pub fn spawn<R: Resolver + 'static>(
        resolver: Arc<R>,
        config: MtaConfig,
    ) -> std::io::Result<SmtpServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let received = Arc::new(Mutex::new(Vec::new()));
        let t_shutdown = Arc::clone(&shutdown);
        let t_received = Arc::clone(&received);
        let handle = std::thread::Builder::new()
            .name("smtp-server".into())
            .spawn(move || {
                let mut sessions: Vec<JoinHandle<()>> = Vec::new();
                while !t_shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            let resolver = Arc::clone(&resolver);
                            let config = config.clone();
                            let received = Arc::clone(&t_received);
                            sessions.push(
                                std::thread::Builder::new()
                                    .name("smtp-session".into())
                                    .spawn(move || {
                                        let _ =
                                            serve_session(stream, peer, resolver, config, received);
                                    })
                                    .expect("spawn session"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for s in sessions {
                    let _ = s.join();
                }
            })?;
        Ok(SmtpServer {
            addr,
            shutdown,
            handle: Some(handle),
            received,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Messages accepted so far.
    pub fn received(&self) -> Vec<ReceivedMessage> {
        self.received.lock().clone()
    }
}

impl Drop for SmtpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct SessionState {
    client_ip: IpAddr,
    helo: Option<String>,
    mail_from: Option<String>,
    mail_from_domain: Option<DomainName>,
    spf_result: Option<SpfResult>,
    spf_header: Option<String>,
    rcpt_to: Vec<String>,
}

/// Extract the domain of the first `From:` header in `body` (the
/// RFC 5322 identifier DMARC aligns). Handles `Name <a@b>` and bare
/// `a@b` shapes; header scanning stops at the first empty line.
fn from_header_domain(body: &str) -> Option<DomainName> {
    for line in body.lines() {
        if line.is_empty() {
            break;
        }
        let Some(value) = line
            .get(..5)
            .filter(|p| p.eq_ignore_ascii_case("from:"))
            .map(|_| line[5..].trim())
        else {
            continue;
        };
        let addr = match (value.find('<'), value.find('>')) {
            (Some(open), Some(close)) if open < close => &value[open + 1..close],
            _ => value,
        };
        return addr
            .rsplit_once('@')
            .and_then(|(_, domain)| DomainName::parse(domain).ok());
    }
    None
}

/// The receiver-side DMARC check (DESIGN.md §13): relaxed alignment of
/// the From domain against the envelope sender, SPF `pass` as the only
/// authenticating mechanism (the replay world has no DKIM), enforced
/// dispositions rejecting failures.
fn dmarc_verdict<R: Resolver>(
    resolver: &R,
    spf: SpfResult,
    mail_from_domain: Option<&DomainName>,
    from_domain: &DomainName,
) -> (DmarcResult, DmarcDisposition) {
    let disposition = DmarcDisposition::from_lookup(&query_dmarc(resolver, from_domain));
    let usable = matches!(
        disposition,
        DmarcDisposition::Monitor | DmarcDisposition::Enforced { .. }
    );
    if !usable {
        return (DmarcResult::None, disposition);
    }
    let aligned = mail_from_domain
        .is_some_and(|mf| organizational_domain(mf) == organizational_domain(from_domain));
    let result = if aligned && spf == SpfResult::Pass {
        DmarcResult::Pass
    } else {
        DmarcResult::Fail
    };
    (result, disposition)
}

fn serve_session<R: Resolver>(
    stream: TcpStream,
    peer: SocketAddr,
    resolver: Arc<R>,
    config: MtaConfig,
    received: Arc<Mutex<Vec<ReceivedMessage>>>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let send = |w: &mut TcpStream, reply: Reply| -> std::io::Result<()> {
        write!(w, "{reply}\r\n")?;
        w.flush()
    };
    send(
        &mut writer,
        Reply::new(220, format!("{} ESMTP", config.hostname)),
    )?;

    let mut state = SessionState {
        client_ip: peer.ip(),
        helo: None,
        mail_from: None,
        mail_from_domain: None,
        spf_result: None,
        spf_header: None,
        rcpt_to: Vec::new(),
    };

    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        match Command::parse(&line) {
            Command::Helo { domain } | Command::Ehlo { domain } => {
                state.helo = Some(domain);
                send(&mut writer, Reply::new(250, config.hostname.clone()))?;
            }
            Command::XClient { addr } => {
                if config.trust_xclient {
                    state.client_ip = addr;
                    send(&mut writer, Reply::new(220, "XCLIENT accepted"))?;
                } else {
                    send(&mut writer, Reply::new(550, "XCLIENT not trusted"))?;
                }
            }
            cmd @ Command::MailFrom { .. } => {
                let Command::MailFrom { path } = &cmd else {
                    unreachable!()
                };
                let (verdict, header, sender_domain) = match cmd.sender_parts() {
                    Some((local, domain)) => {
                        let helo = state
                            .helo
                            .as_deref()
                            .and_then(|h| DomainName::parse(h).ok())
                            .unwrap_or_else(|| domain.clone());
                        let ctx = EvalContext {
                            ip: state.client_ip,
                            sender_local: local,
                            sender_domain: domain.clone(),
                            helo,
                            receiver: DomainName::parse(&config.hostname).ok(),
                        };
                        let eval =
                            check_host(resolver.as_ref(), &ctx, &domain, &EvalPolicy::default());
                        let header = received_spf_header(&eval, &ctx);
                        (eval.result, Some(header), Some(domain))
                    }
                    // Null sender / unparsable domain → none.
                    None => (SpfResult::None, None, None),
                };
                if verdict == SpfResult::Fail && config.enforcement == SpfEnforcement::RejectFail {
                    send(
                        &mut writer,
                        Reply::new(550, format!("5.7.23 SPF check failed ({verdict})")),
                    )?;
                    continue;
                }
                state.mail_from = Some(path.clone());
                state.mail_from_domain = sender_domain;
                state.spf_result = Some(verdict);
                state.spf_header = header;
                state.rcpt_to.clear();
                send(&mut writer, Reply::new(250, format!("OK spf={verdict}")))?;
            }
            Command::RcptTo { path } => {
                if state.mail_from.is_none() {
                    send(&mut writer, Reply::new(503, "need MAIL first"))?;
                } else {
                    state.rcpt_to.push(path);
                    send(&mut writer, Reply::new(250, "OK"))?;
                }
            }
            Command::Data => {
                if state.rcpt_to.is_empty() {
                    send(&mut writer, Reply::new(503, "need RCPT first"))?;
                    continue;
                }
                send(&mut writer, Reply::new(354, "end with <CRLF>.<CRLF>"))?;
                let mut body = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        return Ok(());
                    }
                    let stripped = line.trim_end_matches(['\r', '\n']);
                    if stripped == "." {
                        break;
                    }
                    // Dot-unstuffing (RFC 5321 §4.5.2).
                    body.push_str(stripped.strip_prefix('.').unwrap_or(stripped));
                    body.push('\n');
                }
                // The DMARC gate: evaluated against the From header at
                // end-of-data, where real receivers apply it.
                let spf_result = state.spf_result.unwrap_or(SpfResult::None);
                let from_domain = from_header_domain(&body);
                let (dmarc_result, disposition) = match &from_domain {
                    Some(fd) => dmarc_verdict(
                        resolver.as_ref(),
                        spf_result,
                        state.mail_from_domain.as_ref(),
                        fd,
                    ),
                    None => (DmarcResult::None, DmarcDisposition::Absent),
                };
                if config.enforce_dmarc
                    && dmarc_result == DmarcResult::Fail
                    && disposition.is_enforced()
                {
                    send(
                        &mut writer,
                        Reply::new(550, "5.7.1 rejected by DMARC policy".to_string()),
                    )?;
                    state.mail_from = None;
                    state.mail_from_domain = None;
                    state.rcpt_to.clear();
                    continue;
                }
                // Prepend the Received-SPF header the way an MTA stamps
                // accepted mail (RFC 7208 §9.1), then the combined
                // Authentication-Results line (RFC 8601).
                let auth_results = format!(
                    "Authentication-Results: {}; spf={}; dmarc={}{}",
                    config.hostname,
                    spf_result,
                    dmarc_result,
                    from_domain
                        .as_ref()
                        .map(|d| format!(" header.from={}", d.as_str()))
                        .unwrap_or_default(),
                );
                let mut stored_body = String::new();
                if let Some(h) = &state.spf_header {
                    stored_body.push_str(h);
                    stored_body.push('\n');
                }
                stored_body.push_str(&auth_results);
                stored_body.push('\n');
                stored_body.push_str(&body);
                received.lock().push(ReceivedMessage {
                    mail_from: state.mail_from.clone().unwrap_or_default(),
                    rcpt_to: state.rcpt_to.clone(),
                    body: stored_body,
                    client_ip: state.client_ip,
                    spf_result,
                    from_domain: from_domain.map(|d| d.as_str().to_string()),
                    dmarc_result,
                });
                state.mail_from = None;
                state.mail_from_domain = None;
                state.rcpt_to.clear();
                send(&mut writer, Reply::new(250, "OK message accepted"))?;
            }
            Command::Rset => {
                state.mail_from = None;
                state.mail_from_domain = None;
                state.spf_result = None;
                state.rcpt_to.clear();
                send(&mut writer, Reply::new(250, "OK"))?;
            }
            Command::Noop => send(&mut writer, Reply::new(250, "OK"))?,
            Command::Quit => {
                send(&mut writer, Reply::new(221, "bye"))?;
                return Ok(());
            }
            Command::Unknown { .. } => {
                send(&mut writer, Reply::new(500, "command unrecognized"))?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SmtpClient;
    use spf_dns::{ZoneResolver, ZoneStore};
    use std::net::Ipv4Addr;

    fn dom(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn world() -> Arc<ZoneStore> {
        let store = Arc::new(ZoneStore::new());
        store.add_txt(&dom("good.example"), "v=spf1 ip4:198.51.100.7 -all");
        store
    }

    fn server(store: &Arc<ZoneStore>) -> SmtpServer {
        SmtpServer::spawn(
            Arc::new(ZoneResolver::new(Arc::clone(store))),
            MtaConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn accepts_mail_from_authorized_ip() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("webhost.example").unwrap();
        client
            .xclient(Ipv4Addr::new(198, 51, 100, 7).into())
            .unwrap();
        let reply = client.mail_from("ceo@good.example").unwrap();
        assert!(reply.is_positive(), "{reply}");
        assert!(reply.text.contains("spf=pass"));
        client.rcpt_to("victim@receiver.example").unwrap();
        client.data("Subject: hi\n\nhello").unwrap();
        client.quit().unwrap();
        let msgs = server.received();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].spf_result, SpfResult::Pass);
        assert_eq!(msgs[0].mail_from, "ceo@good.example");
        assert_eq!(
            msgs[0].client_ip,
            IpAddr::from(Ipv4Addr::new(198, 51, 100, 7))
        );
    }

    #[test]
    fn rejects_mail_from_unauthorized_ip() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("attacker.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        let reply = client.mail_from("ceo@good.example").unwrap();
        assert_eq!(reply.code, 550);
        assert!(server.received().is_empty());
    }

    #[test]
    fn mark_only_mode_accepts_failures() {
        let store = world();
        let server = SmtpServer::spawn(
            Arc::new(ZoneResolver::new(Arc::clone(&store))),
            MtaConfig {
                enforcement: SpfEnforcement::MarkOnly,
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("attacker.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        let reply = client.mail_from("ceo@good.example").unwrap();
        assert!(reply.is_positive());
        assert!(reply.text.contains("spf=fail"));
        client.rcpt_to("victim@receiver.example").unwrap();
        client.data("spoofed").unwrap();
        assert_eq!(server.received()[0].spf_result, SpfResult::Fail);
    }

    #[test]
    fn no_spf_record_yields_none() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("host.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        let reply = client.mail_from("user@nospf.example").unwrap();
        assert!(reply.is_positive());
        assert!(reply.text.contains("spf=none"));
    }

    #[test]
    fn rcpt_before_mail_rejected() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("h.example").unwrap();
        let reply = client.rcpt_to("x@y.example").unwrap();
        assert_eq!(reply.code, 503);
    }

    #[test]
    fn dot_stuffed_body_round_trips() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("h.example").unwrap();
        client
            .xclient(Ipv4Addr::new(198, 51, 100, 7).into())
            .unwrap();
        client.mail_from("ceo@good.example").unwrap();
        client.rcpt_to("v@r.example").unwrap();
        client.data("line one\n.leading dot\nlast").unwrap();
        let msgs = server.received();
        // The stored body carries the stamped Received-SPF header first,
        // then the combined Authentication-Results line.
        let (header, rest) = msgs[0].body.split_once('\n').unwrap();
        assert!(header.starts_with("Received-SPF: pass"));
        let (auth, body) = rest.split_once('\n').unwrap();
        assert!(auth.starts_with("Authentication-Results:"), "{auth}");
        assert!(auth.contains("spf=pass"));
        assert_eq!(body, "line one\n.leading dot\nlast\n");
    }

    fn dmarc_world() -> Arc<ZoneStore> {
        let store = world();
        // victim.example: permissive SPF (the lazy-gatekeeper shape) but
        // an enforced DMARC policy on top.
        store.add_txt(&dom("victim.example"), "v=spf1 ?all");
        store.add_txt(&dom("_dmarc.victim.example"), "v=DMARC1; p=reject");
        store.add_txt(&dom("_dmarc.good.example"), "v=DMARC1; p=reject");
        store
    }

    #[test]
    fn dmarc_gate_rejects_unaligned_spoof_at_data() {
        let store = dmarc_world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("attacker.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        // The envelope claims the attacker's own (recordless) domain, so
        // SPF is `none` and the MAIL FROM gate lets it through…
        let reply = client.mail_from("ceo@attacker.example").unwrap();
        assert!(reply.is_positive());
        client.rcpt_to("victim@receiver.example").unwrap();
        // …but the From header spoofs the DMARC-enforced victim.
        let reply = client
            .data("From: CEO <ceo@victim.example>\nSubject: wire\n\npay up")
            .unwrap();
        assert_eq!(reply.code, 550, "{reply}");
        assert!(reply.text.contains("DMARC"));
        assert!(server.received().is_empty());
    }

    #[test]
    fn aligned_spf_pass_yields_dmarc_pass() {
        let store = dmarc_world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("webhost.example").unwrap();
        client
            .xclient(Ipv4Addr::new(198, 51, 100, 7).into())
            .unwrap();
        client.mail_from("ceo@good.example").unwrap();
        client.rcpt_to("victim@receiver.example").unwrap();
        let reply = client
            .data("From: ceo@good.example\nSubject: hi\n\nhello")
            .unwrap();
        assert!(reply.is_positive(), "{reply}");
        let msgs = server.received();
        assert_eq!(msgs[0].dmarc_result, DmarcResult::Pass);
        assert_eq!(msgs[0].from_domain.as_deref(), Some("good.example"));
        assert!(msgs[0].body.contains("dmarc=pass header.from=good.example"));
    }

    #[test]
    fn dmarc_mark_only_annotates_failures() {
        let store = dmarc_world();
        let server = SmtpServer::spawn(
            Arc::new(ZoneResolver::new(Arc::clone(&store))),
            MtaConfig {
                enforce_dmarc: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("attacker.example").unwrap();
        client
            .xclient(Ipv4Addr::new(203, 0, 113, 99).into())
            .unwrap();
        client.mail_from("ceo@attacker.example").unwrap();
        client.rcpt_to("victim@receiver.example").unwrap();
        let reply = client.data("From: ceo@victim.example\n\nspoofed").unwrap();
        assert!(reply.is_positive());
        let msgs = server.received();
        assert_eq!(msgs[0].dmarc_result, DmarcResult::Fail);
        assert!(msgs[0].body.contains("dmarc=fail"));
    }

    #[test]
    fn no_dmarc_record_yields_dmarc_none() {
        let store = world();
        let server = server(&store);
        let mut client = SmtpClient::connect(server.addr()).unwrap();
        client.ehlo("webhost.example").unwrap();
        client
            .xclient(Ipv4Addr::new(198, 51, 100, 7).into())
            .unwrap();
        client.mail_from("ceo@good.example").unwrap();
        client.rcpt_to("v@r.example").unwrap();
        client.data("From: ceo@good.example\n\nhi").unwrap();
        let msgs = server.received();
        assert_eq!(msgs[0].dmarc_result, DmarcResult::None);
    }

    #[test]
    fn from_header_domain_parses_both_shapes() {
        assert_eq!(
            from_header_domain("From: CEO <ceo@victim.example>\n\nbody"),
            Some(dom("victim.example"))
        );
        assert_eq!(
            from_header_domain("Subject: x\nfrom: ceo@victim.example\n\nbody"),
            Some(dom("victim.example"))
        );
        // Headers stop at the first empty line.
        assert_eq!(from_header_domain("Subject: x\n\nFrom: a@b.example"), None);
        assert_eq!(from_header_domain("no headers here"), None);
    }
}
