//! # spf-netsim — the synthetic Internet the study is re-run against
//!
//! The paper measured the live DNS of 12.8M Tranco domains; this crate
//! generates the closest synthetic equivalent: a ranked population whose
//! cohort composition embeds the paper's published marginals (adoption,
//! error classes and causes, include ecosystem, CIDR distributions) so
//! that *re-measuring the population through the real pipeline* reproduces
//! every table and figure. See DESIGN.md §2 for the substitution argument
//! and `population::cohort_table` for the calibration arithmetic.
//!
//! * [`scale`] — deterministic 1:N scaling with largest-remainder
//!   apportionment;
//! * [`blocks`] — disjoint aligned CIDR allocation and exact-count
//!   decomposition;
//! * [`providers`] — Table 4's top-20 includes, fat includes (Figure 4),
//!   the multi-record target, the Table 3 long tail;
//! * [`population`] — the cohort-calibrated domain population;
//! * [`churn`] — deterministic seeded zone churn (record add/remove,
//!   tightenings, provider migrations, BLBFO MX failover) for the
//!   longitudinal engine;
//! * [`hosting`] — the five-provider case-study world (Table 5);
//! * [`spooflab`] — the spoofability-matrix worlds: population + hosting
//!   merged into one zone, plus the include-heavy cache stress shape;
//! * [`tenancy`] — cloud-tenancy presets (mega-providers vs long tail)
//!   for sweeping the overlap engine's shape variable;
//! * [`wirelab`] — per-shard fault/latency presets for the wire-path
//!   crawl's server fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod churn;
pub mod deployment;
pub mod hosting;
pub mod population;
pub mod providers;
pub mod scale;
pub mod spooflab;
pub mod tenancy;
pub mod wirelab;

pub use blocks::AddressAllocator;
pub use churn::{
    ChurnBatch, ChurnConfig, ChurnEvent, ChurnKind, ChurnPreset, ChurnSimulator, CHURN_PROVIDERS,
};
pub use deployment::{assign_mta_sts, mta_sts_record, MTA_STS_ENFORCED_STRIDE};
pub use hosting::{
    build_hosting, build_hosting_into, HostingProvider, HostingWorld, SPOOFABLE_TOTAL_FULL,
};
pub use population::{
    Population, PopulationConfig, DEPRECATED_RR_FULL, TOP_DMARC_FULL, TOP_SEGMENT_FULL,
    TOP_SPF_FULL, TOTAL_DOMAINS_FULL, WITH_DMARC_FULL, WITH_MX_FULL, WITH_SPF_FULL,
};
pub use providers::{
    build_providers, ProviderEntry, ProviderSpec, ProviderWorld, FAT_INCLUDE_COUNT_FULL,
    TABLE3_INCLUDE_COLUMN, TABLE4,
};
pub use scale::{apportion, Scale};
/// Re-export of the deployment-tier enum the presets model.
pub use spf_core::DeploymentMix;
pub use spooflab::{
    build_include_heavy, build_spoof_world, IncludeHeavyWorld, SpoofWorld, INCLUDE_HEAVY_CHAINS,
    INCLUDE_HEAVY_DEPTH,
};
pub use tenancy::{build_tenancy, TenancyConfig, TenancyPreset, TenancyWorld};
