//! Deterministic scaling of the paper's full-size population.
//!
//! The study scanned 12,823,598 domains. Re-running every experiment at
//! that size is possible but slow, so the generator works at a configurable
//! scale (default 1:100). Cohort sizes are derived with largest-remainder
//! apportionment, which keeps partitions exact: the scaled parts of a
//! partition always sum to the scaled total, so measured percentages match
//! the paper at any scale.

use serde::{Deserialize, Serialize};

/// A scale factor 1:`denominator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Divide all full-scale counts by this.
    pub denominator: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { denominator: 100 }
    }
}

impl Scale {
    /// Full paper scale (1:1).
    pub fn full() -> Self {
        Scale { denominator: 1 }
    }

    /// The `crawl_scaling` bench preset (1:200 ≈ 64k domains): large enough
    /// that crawl throughput is cache- and dispatch-bound rather than
    /// startup-bound, small enough to sweep workers × shards × batch in one
    /// bench run. BENCH_2.json and DESIGN.md §6 are measured at this scale.
    pub fn crawl_sweep() -> Self {
        Scale { denominator: 200 }
    }

    /// The crawl determinism stress preset (1:500 ≈ 25.6k domains), used by
    /// the façade's `crawl_stress` suite to assert bit-identical reports
    /// across worker/shard/batch configurations.
    pub fn stress() -> Self {
        Scale { denominator: 500 }
    }

    /// The quick-iteration bench preset (1:20,000 ≈ 641 domains) used by
    /// the per-building-block pipelines and the CI bench smoke job.
    pub fn quick_bench() -> Self {
        Scale {
            denominator: 20_000,
        }
    }

    /// Approximate number of domains a population at this scale generates
    /// (the paper's 12,823,598 divided by the denominator, half-up).
    pub fn approx_domains(&self) -> u64 {
        self.of(crate::population::TOTAL_DOMAINS_FULL)
    }

    /// Round a single full-scale count to this scale (half-up).
    pub fn of(&self, full: u64) -> u64 {
        (full + self.denominator / 2) / self.denominator
    }

    /// Like [`Scale::of`] but never rounds a non-zero cohort away — used
    /// for rare-but-load-bearing cohorts (the 58 redirect loops must
    /// exist at any scale).
    pub fn of_min1(&self, full: u64) -> u64 {
        if full == 0 {
            0
        } else {
            self.of(full).max(1)
        }
    }

    /// Scale the parts of a partition so they sum exactly to
    /// `self.of(parts.sum())`, using largest-remainder apportionment.
    pub fn apportion(&self, parts: &[u64]) -> Vec<u64> {
        let total_full: u64 = parts.iter().sum();
        let total_scaled = self.of(total_full);
        apportion(total_scaled, parts)
    }
}

/// Largest-remainder apportionment of `total` units across `weights`.
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    let weight_sum: u64 = weights.iter().sum();
    if weight_sum == 0 || weights.is_empty() {
        return vec![0; weights.len()];
    }
    // Floor shares plus remainders.
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact_num = (total as u128) * (w as u128);
        let floor = (exact_num / weight_sum as u128) as u64;
        let rem = exact_num % weight_sum as u128;
        out.push(floor);
        assigned += floor;
        remainders.push((rem, i));
    }
    // Distribute leftovers to the largest remainders (ties: lower index).
    let mut leftover = total - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, idx) in remainders {
        if leftover == 0 {
            break;
        }
        out[idx] += 1;
        leftover -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_rounds_half_up() {
        let s = Scale { denominator: 100 };
        assert_eq!(s.of(12_823_598), 128_236);
        assert_eq!(s.of(49), 0);
        assert_eq!(s.of(50), 1);
        assert_eq!(s.of(149), 1);
        assert_eq!(s.of(150), 2);
    }

    #[test]
    fn of_min1_keeps_rare_cohorts() {
        let s = Scale { denominator: 100 };
        assert_eq!(s.of_min1(58), 1); // the 58 redirect loops
        assert_eq!(s.of_min1(14), 1); // the 14 ra/rp/rr domains
        assert_eq!(s.of_min1(0), 0);
    }

    #[test]
    fn presets_and_approx_domains() {
        assert_eq!(Scale::crawl_sweep().approx_domains(), 64_118);
        assert_eq!(Scale::stress().approx_domains(), 25_647);
        assert_eq!(Scale::quick_bench().approx_domains(), 641);
        assert_eq!(Scale::full().approx_domains(), 12_823_598);
    }

    #[test]
    fn full_scale_is_identity() {
        let s = Scale::full();
        assert_eq!(s.of(12_823_598), 12_823_598);
        assert_eq!(s.apportion(&[3, 5, 7]), vec![3, 5, 7]);
    }

    #[test]
    fn apportion_sums_exactly() {
        let weights = [38_296u64, 49_421, 5_308, 58, 19_356, 90_697, 7_882];
        let total: u64 = weights.iter().sum();
        assert_eq!(total, 211_018); // the paper's error population
        for denom in [1u64, 10, 100, 1000, 5000] {
            let s = Scale { denominator: denom };
            let parts = s.apportion(&weights);
            assert_eq!(parts.iter().sum::<u64>(), s.of(total), "denom={denom}");
        }
    }

    #[test]
    fn apportion_is_proportional() {
        let parts = apportion(1000, &[1, 1, 2]);
        assert_eq!(parts, vec![250, 250, 500]);
    }

    #[test]
    fn apportion_handles_zero_weights() {
        assert_eq!(apportion(10, &[0, 0]), vec![0, 0]);
        assert_eq!(apportion(10, &[]), Vec::<u64>::new());
        let parts = apportion(5, &[0, 10, 0]);
        assert_eq!(parts, vec![0, 5, 0]);
    }
}
