//! Deterministic scaling of the paper's full-size population.
//!
//! The study scanned 12,823,598 domains. Re-running every experiment at
//! that size is possible but slow, so the generator works at a configurable
//! scale (default 1:100). Cohort sizes are derived with largest-remainder
//! apportionment, which keeps partitions exact: the scaled parts of a
//! partition always sum to the scaled total, so measured percentages match
//! the paper at any scale.

use serde::{Deserialize, Serialize};

/// A scale factor 1:`denominator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Divide all full-scale counts by this.
    pub denominator: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { denominator: 100 }
    }
}

impl Scale {
    /// Full paper scale (1:1).
    pub fn full() -> Self {
        Scale { denominator: 1 }
    }

    /// Round a single full-scale count to this scale (half-up).
    pub fn of(&self, full: u64) -> u64 {
        (full + self.denominator / 2) / self.denominator
    }

    /// Like [`Scale::of`] but never rounds a non-zero cohort away — used
    /// for rare-but-load-bearing cohorts (the 58 redirect loops must
    /// exist at any scale).
    pub fn of_min1(&self, full: u64) -> u64 {
        if full == 0 {
            0
        } else {
            self.of(full).max(1)
        }
    }

    /// Scale the parts of a partition so they sum exactly to
    /// `self.of(parts.sum())`, using largest-remainder apportionment.
    pub fn apportion(&self, parts: &[u64]) -> Vec<u64> {
        let total_full: u64 = parts.iter().sum();
        let total_scaled = self.of(total_full);
        apportion(total_scaled, parts)
    }
}

/// Largest-remainder apportionment of `total` units across `weights`.
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    let weight_sum: u64 = weights.iter().sum();
    if weight_sum == 0 || weights.is_empty() {
        return vec![0; weights.len()];
    }
    // Floor shares plus remainders.
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact_num = (total as u128) * (w as u128);
        let floor = (exact_num / weight_sum as u128) as u64;
        let rem = exact_num % weight_sum as u128;
        out.push(floor);
        assigned += floor;
        remainders.push((rem, i));
    }
    // Distribute leftovers to the largest remainders (ties: lower index).
    let mut leftover = total - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, idx) in remainders {
        if leftover == 0 {
            break;
        }
        out[idx] += 1;
        leftover -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_rounds_half_up() {
        let s = Scale { denominator: 100 };
        assert_eq!(s.of(12_823_598), 128_236);
        assert_eq!(s.of(49), 0);
        assert_eq!(s.of(50), 1);
        assert_eq!(s.of(149), 1);
        assert_eq!(s.of(150), 2);
    }

    #[test]
    fn of_min1_keeps_rare_cohorts() {
        let s = Scale { denominator: 100 };
        assert_eq!(s.of_min1(58), 1); // the 58 redirect loops
        assert_eq!(s.of_min1(14), 1); // the 14 ra/rp/rr domains
        assert_eq!(s.of_min1(0), 0);
    }

    #[test]
    fn full_scale_is_identity() {
        let s = Scale::full();
        assert_eq!(s.of(12_823_598), 12_823_598);
        assert_eq!(s.apportion(&[3, 5, 7]), vec![3, 5, 7]);
    }

    #[test]
    fn apportion_sums_exactly() {
        let weights = [38_296u64, 49_421, 5_308, 58, 19_356, 90_697, 7_882];
        let total: u64 = weights.iter().sum();
        assert_eq!(total, 211_018); // the paper's error population
        for denom in [1u64, 10, 100, 1000, 5000] {
            let s = Scale { denominator: denom };
            let parts = s.apportion(&weights);
            assert_eq!(parts.iter().sum::<u64>(), s.of(total), "denom={denom}");
        }
    }

    #[test]
    fn apportion_is_proportional() {
        let parts = apportion(1000, &[1, 1, 2]);
        assert_eq!(parts, vec![250, 250, 500]);
    }

    #[test]
    fn apportion_handles_zero_weights() {
        assert_eq!(apportion(10, &[0, 0]), vec![0, 0]);
        assert_eq!(apportion(10, &[]), Vec::<u64>::new());
        let parts = apportion(5, &[0, 10, 0]);
        assert_eq!(parts, vec![0, 5, 0]);
    }
}
