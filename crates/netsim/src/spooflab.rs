//! The spoofability-matrix world: one zone combining the calibrated
//! population with the Table 5 hosting providers.
//!
//! The verdict-matrix engine (§6 at population scale) asks "which domains
//! does `check_host()` authorize from attacker-reachable addresses?".
//! That needs three vantage families in a single evaluable world:
//!
//! * **shared-coverage addresses** — the top-K most-authorized addresses
//!   from the population's overlap profile;
//! * **hosting provider web/MTA addresses** — the rented-web-space attack
//!   of §6.4, which only bites when the providers' *customers* are part
//!   of the scanned population ([`build_hosting_into`] merges them in);
//! * **control addresses** — uniformly sampled addresses no domain
//!   authorizes, the matrix's negative baseline.
//!
//! [`build_spoof_world`] assembles the first world; [`build_include_heavy`]
//! builds the bench's include-heavy stress shape, where every tenant's
//! record is a deep shared include chain — the configuration in which the
//! subtree verdict cache pays off hardest (BENCH_5.json quantifies it).

use std::net::Ipv4Addr;
use std::sync::Arc;

use spf_dns::ZoneStore;
use spf_types::DomainName;

use crate::blocks::AddressAllocator;
use crate::hosting::{build_hosting_into, HostingProvider};
use crate::population::{Population, PopulationConfig};
use crate::scale::Scale;

/// The combined population + hosting world the spoofability matrix runs
/// over.
pub struct SpoofWorld {
    /// Zone data for the whole world (population and hosting records).
    pub store: Arc<ZoneStore>,
    /// Every scanned domain: the ranked population first, then the
    /// hosting customers (their ranks start at
    /// [`SpoofWorld::population_len`]).
    pub domains: Vec<DomainName>,
    /// How many of [`SpoofWorld::domains`] belong to the calibrated
    /// population.
    pub population_len: usize,
    /// The five Table 5 hosting providers (web/MTA vantage addresses,
    /// port-25 and MTA-auth behaviour flags).
    pub providers: Vec<HostingProvider>,
}

/// Build the spoofability world at `scale` from `seed`: the calibrated
/// population plus the five hosting providers and their customer bases,
/// all in one zone. Deterministic in `(scale, seed)`.
pub fn build_spoof_world(scale: Scale, seed: u64) -> SpoofWorld {
    let population = Population::build(PopulationConfig { scale, seed });
    let providers = build_hosting_into(&population.store, scale);
    let mut domains = population.domains;
    let population_len = domains.len();
    for provider in &providers {
        domains.extend(provider.customers.iter().cloned());
    }
    SpoofWorld {
        store: population.store,
        domains,
        population_len,
        providers,
    }
}

/// Include chains in the include-heavy world (each chain is a distinct
/// shared provider tree).
pub const INCLUDE_HEAVY_CHAINS: usize = 4;

/// Include hops per chain. A tenant evaluation charges one `include:`
/// per hop — the tenant's own plus the `INCLUDE_HEAVY_DEPTH - 1`
/// internal hop-to-hop links — and the leaf's `mx` and `a` terms:
/// `INCLUDE_HEAVY_DEPTH + 2 = 8` of the 10-lookup budget (pinned by the
/// module test), so every tenant evaluates cleanly end to end.
pub const INCLUDE_HEAVY_DEPTH: usize = 6;

/// An include-heavy tenant world: `tenants` domains whose records are
/// nothing but a deep include chain shared chain-wide.
///
/// Every tenant's evaluation re-walks its whole chain — fetch, parse and
/// mechanism scan at each hop — unless a subtree verdict cache replays
/// it, which makes this the adversarial shape for the cached-vs-uncached
/// comparison in the `spoof_matrix_scaling` bench.
pub struct IncludeHeavyWorld {
    /// Zone data.
    pub store: Arc<ZoneStore>,
    /// The tenant domains, rank-ordered.
    pub domains: Vec<DomainName>,
    /// The chain-head include targets (`chain0.heavy.example`, …).
    pub chain_heads: Vec<DomainName>,
}

/// Build an include-heavy world with `tenants` domains. Tenant `i`
/// includes chain `i % INCLUDE_HEAVY_CHAINS`; each chain is
/// [`INCLUDE_HEAVY_DEPTH`] hops deep, every hop carrying its own `ip4`
/// range and the leaf resolving real `mx`/`a` names. Deterministic in
/// `tenants` alone (the zone has no sampled content).
pub fn build_include_heavy(tenants: usize) -> IncludeHeavyWorld {
    let store = Arc::new(ZoneStore::new());
    // Chain space: 96.0.0.0/6, clear of both the population regions and
    // the hosting case-study space.
    let mut alloc = AddressAllocator::new(Ipv4Addr::new(96, 0, 0, 0), 6);
    let mut chain_heads = Vec::with_capacity(INCLUDE_HEAVY_CHAINS);
    for chain in 0..INCLUDE_HEAVY_CHAINS {
        for hop in 0..INCLUDE_HEAVY_DEPTH {
            let name = DomainName::parse(&format!("hop{hop}.chain{chain}.heavy.example")).unwrap();
            let block = alloc.alloc_block(24);
            let record = if hop + 1 < INCLUDE_HEAVY_DEPTH {
                format!(
                    "v=spf1 ip4:{block} include:hop{}.chain{chain}.heavy.example -all",
                    hop + 1
                )
            } else {
                // The leaf does real address resolution: one mx and one
                // a term against names with published records.
                format!(
                    "v=spf1 ip4:{block} mx:relay.chain{chain}.heavy.example \
                     a:www.chain{chain}.heavy.example -all"
                )
            };
            store.add_txt(&name, &record);
            if hop == 0 {
                chain_heads.push(name);
            }
        }
        let relay = DomainName::parse(&format!("relay.chain{chain}.heavy.example")).unwrap();
        let mx_host = DomainName::parse(&format!("mx.chain{chain}.heavy.example")).unwrap();
        store.add_mx(&relay, 10, &mx_host);
        store.add_a(&mx_host, alloc.alloc_host());
        let www = DomainName::parse(&format!("www.chain{chain}.heavy.example")).unwrap();
        store.add_a(&www, alloc.alloc_host());
    }
    let mut domains = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let d = DomainName::parse(&format!("tenant{i}.heavy.example")).unwrap();
        store.add_txt(
            &d,
            &format!(
                "v=spf1 include:hop0.chain{}.heavy.example -all",
                i % INCLUDE_HEAVY_CHAINS
            ),
        );
        domains.push(d);
    }
    IncludeHeavyWorld {
        store,
        domains,
        chain_heads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::{check_host, EvalContext, EvalPolicy, SpfResult};
    use spf_dns::ZoneResolver;

    #[test]
    fn spoof_world_merges_population_and_hosting() {
        let world = build_spoof_world(
            Scale {
                denominator: 20_000,
            },
            0x5bf1_2023,
        );
        assert!(world.population_len > 0);
        assert!(world.domains.len() > world.population_len);
        assert_eq!(world.providers.len(), 5);
        // Hosted customers evaluate against the shared store: provider
        // 2's web IP is in its include, so a spoof from it passes.
        let resolver = ZoneResolver::new(Arc::clone(&world.store));
        let p2 = &world.providers[1];
        let victim = &p2.customers[0];
        let ctx = EvalContext::mail_from(p2.web_ip.into(), "ceo", victim.clone());
        let eval = check_host(&resolver, &ctx, victim, &EvalPolicy::default());
        assert_eq!(eval.result, SpfResult::Pass);
    }

    #[test]
    fn include_heavy_world_evaluates_cleanly() {
        let world = build_include_heavy(16);
        assert_eq!(world.domains.len(), 16);
        assert_eq!(world.chain_heads.len(), INCLUDE_HEAVY_CHAINS);
        let resolver = ZoneResolver::new(Arc::clone(&world.store));
        for d in &world.domains {
            let ctx = EvalContext::mail_from("203.0.113.99".parse().unwrap(), "ceo", d.clone());
            let eval = check_host(&resolver, &ctx, d, &EvalPolicy::default());
            // Outside every chain range: a clean fail, never permerror.
            assert_eq!(eval.result, SpfResult::Fail, "{d}");
            // The whole chain was walked: one include charge per hop
            // (tenant → hop0 → … → leaf) plus the leaf's mx and a.
            assert_eq!(eval.dns_lookups, INCLUDE_HEAVY_DEPTH + 2);
        }
    }
}
