//! The provider ecosystem: Table 4's top-20 includes (exact allowed-IP
//! counts), the lookup-heavy "fat" includes behind Figure 4 (bluehost's
//! recommended record needed 14 DNS lookups), the cafe24-style target
//! publishing multiple SPF records, and the long tail of small includes
//! whose network-size distribution reproduces Table 3's include column.

use std::net::Ipv4Addr;
use std::sync::Arc;

use spf_dns::ZoneStore;
use spf_types::{DomainName, Ipv4Cidr};

use crate::blocks::AddressAllocator;
use crate::scale::Scale;

/// One Table 4 row: include domain, full-scale user count, allowed IPs.
#[derive(Debug, Clone, Copy)]
pub struct ProviderSpec {
    /// The include target name.
    pub name: &'static str,
    /// "Used by" — full-scale customer count from Table 4.
    pub used_by: u64,
    /// "Allowed IPs" — exact address count from Table 4.
    pub allowed_ips: u64,
    /// Table 4 footnote: the provider relies on the `ptr` mechanism.
    pub uses_ptr: bool,
}

/// Table 4 of the paper, verbatim.
pub const TABLE4: [ProviderSpec; 20] = [
    ProviderSpec {
        name: "spf.protection.outlook.com",
        used_by: 2_456_916,
        allowed_ips: 491_520,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "_spf.google.com",
        used_by: 1_418_705,
        allowed_ips: 328_960,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "websitewelcome.com",
        used_by: 414_695,
        allowed_ips: 1_088_784,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "secureserver.net",
        used_by: 374_986,
        allowed_ips: 505_104,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "relay.mailchannels.net",
        used_by: 289_112,
        allowed_ips: 4_358,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "servers.mcsv.net",
        used_by: 263_343,
        allowed_ips: 22_528,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "spf.mandrillapp.com",
        used_by: 236_293,
        allowed_ips: 4_608,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "sendgrid.net",
        used_by: 215_497,
        allowed_ips: 220_672,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "_spf.mailspamprotection.com",
        used_by: 212_418,
        allowed_ips: 1_049,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "spf.efwd.registrar-servers.com",
        used_by: 196_465,
        allowed_ips: 264,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "amazonses.com",
        used_by: 183_184,
        allowed_ips: 64_512,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "mx.ovh.com",
        used_by: 176_191,
        allowed_ips: 2,
        uses_ptr: true,
    },
    ProviderSpec {
        name: "mailgun.org",
        used_by: 172_499,
        allowed_ips: 36_312,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "_spf.mail.hostinger.com",
        used_by: 139_423,
        allowed_ips: 4_358,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "zoho.com",
        used_by: 138_227,
        allowed_ips: 6_209,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "mail.zendesk.com",
        used_by: 114_026,
        allowed_ips: 26_112,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "spf.mailjet.com",
        used_by: 111_760,
        allowed_ips: 5_120,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "spf.web-hosting.com",
        used_by: 111_405,
        allowed_ips: 10_492,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "spf.sendinblue.com",
        used_by: 102_004,
        allowed_ips: 87_040,
        uses_ptr: false,
    },
    ProviderSpec {
        name: "spf.sender.xserver.jp",
        used_by: 92_411,
        allowed_ips: 15,
        uses_ptr: false,
    },
];

/// The paper's count of includes whose own evaluation exceeds the
/// 10-lookup limit (Figure 4: 2,408 such includes).
pub const FAT_INCLUDE_COUNT_FULL: u64 = 2_408;

/// Table 3's include column: (prefix, number of include records carrying a
/// network of that size).
pub const TABLE3_INCLUDE_COLUMN: [(u8, u64); 17] = [
    (0, 0),
    (1, 2),
    (2, 10),
    (3, 7),
    (4, 3),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 110),
    (9, 3),
    (10, 27),
    (11, 50),
    (12, 137),
    (13, 210),
    (14, 5_419),
    (15, 5_389),
    (16, 14_243),
];

/// A catalog entry ready for weighted selection.
#[derive(Debug, Clone)]
pub struct ProviderEntry {
    /// The include target.
    pub domain: DomainName,
    /// Selection weight (full-scale used_by).
    pub weight: u64,
    /// Allowed IPv4 addresses of the include's subtree.
    pub allowed_ips: u64,
}

/// The published provider world.
pub struct ProviderWorld {
    /// Table 4 providers in row order.
    pub catalog: Vec<ProviderEntry>,
    /// Indices into `catalog` of providers authorizing ≤100k addresses.
    pub small: Vec<usize>,
    /// Lookup-heavy includes; `fat[0]` is the bluehost-style record with
    /// exactly 14 DNS lookups that 79.6 % of affected domains used.
    pub fat: Vec<DomainName>,
    /// The cafe24-style include target publishing two SPF records.
    pub multi_record: DomainName,
    /// Long-tail include targets per Table 3 include-column class
    /// (prefix, target) — each carries exactly one network of that size.
    pub longtail: Vec<(u8, DomainName)>,
}

/// Publish all provider zones and return the world description.
pub fn build_providers(store: &Arc<ZoneStore>, scale: Scale) -> ProviderWorld {
    // Providers draw from 16.0.0.0/4 — disjoint from everything else the
    // generator allocates, so per-domain unions stay exact.
    let mut alloc = AddressAllocator::new(Ipv4Addr::new(16, 0, 0, 0), 4);
    let mut catalog = Vec::with_capacity(TABLE4.len());
    let mut small = Vec::new();
    for (i, spec) in TABLE4.iter().enumerate() {
        let domain = DomainName::parse(spec.name).expect("static name valid");
        let mut terms: Vec<String> = Vec::new();
        if spec.uses_ptr {
            terms.push("ptr".to_string());
        }
        for block in alloc.alloc_mail_style(spec.allowed_ips) {
            terms.push(format!("ip4:{block}"));
        }
        let record = format!("v=spf1 {} -all", terms.join(" "));
        store.add_txt(&domain, &record);
        if spec.allowed_ips <= 100_000 {
            small.push(i);
        }
        catalog.push(ProviderEntry {
            domain,
            weight: spec.used_by,
            allowed_ips: spec.allowed_ips,
        });
    }

    // Fat includes: each needs >10 lookups on its own. fat[0] mirrors the
    // bluehost recommendation (14 lookups = the include itself + 13 nested).
    let fat_count = scale.of_min1(FAT_INCLUDE_COUNT_FULL) as usize;
    let mut fat = Vec::with_capacity(fat_count);
    for i in 0..fat_count {
        let nested = if i == 0 { 13 } else { 10 + (i % 6) }; // 10..15 nested
        let name = DomainName::parse(&format!("spf.fathost{i}.example")).unwrap();
        let mut terms = Vec::with_capacity(nested);
        for j in 0..nested {
            let child = DomainName::parse(&format!("n{j}.spf.fathost{i}.example")).unwrap();
            // 100.64.0.0/10 region, one host per (i, j); deterministic.
            let host = Ipv4Addr::from(0x6440_0000u32 + (i as u32) * 64 + j as u32);
            store.add_txt(&child, &format!("v=spf1 ip4:{host} -all"));
            terms.push(format!("include:{child}"));
        }
        store.add_txt(&name, &format!("v=spf1 {} -all", terms.join(" ")));
        fat.push(name);
    }

    // cafe24-style target: two SPF records ⇒ every customer gets a
    // record-not-found (multiple records) error.
    let multi_record = DomainName::parse("cafe24.com").unwrap();
    store.add_txt(&multi_record, "v=spf1 ip4:203.0.113.20 -all");
    store.add_txt(&multi_record, "v=spf1 ip4:203.0.113.21 ~all");

    // Long tail: one include target per Table 3 include-column entry.
    // Huge networks (/1../7) cannot all be disjoint — that is fine because
    // each long-tail include is used by a single customer, so no union ever
    // spans two of them. Block addresses cycle deterministically.
    let mut longtail = Vec::new();
    let include_counts: Vec<u64> = TABLE3_INCLUDE_COLUMN.iter().map(|(_, c)| *c).collect();
    let scaled_counts = scale.apportion(&include_counts);
    for ((prefix, _), count) in TABLE3_INCLUDE_COLUMN.iter().zip(scaled_counts) {
        // Keep rare classes present at any scale.
        let count = if *TABLE3_INCLUDE_COLUMN
            .iter()
            .find(|(p, _)| p == prefix)
            .map(|(_, c)| c)
            .unwrap()
            > 0
        {
            count.max(1)
        } else {
            count
        };
        for i in 0..count {
            let name = DomainName::parse(&format!("spf.tail-p{prefix}-{i}.example")).unwrap();
            let size = 1u64 << (32 - *prefix as u32);
            let base = Ipv4Addr::from(((i * size) % (1u64 << 32)) as u32);
            let block = Ipv4Cidr::new(base, *prefix).unwrap();
            store.add_txt(&name, &format!("v=spf1 ip4:{block} -all"));
            longtail.push((*prefix, name));
        }
    }

    ProviderWorld {
        catalog,
        small,
        fat,
        multi_record,
        longtail,
    }
}

impl ProviderWorld {
    /// Weighted pick over the full Table 4 catalog.
    pub fn pick_weighted(&self, roll: u64) -> &ProviderEntry {
        let total: u64 = self.catalog.iter().map(|e| e.weight).sum();
        let mut target = roll % total;
        for entry in &self.catalog {
            if target < entry.weight {
                return entry;
            }
            target -= entry.weight;
        }
        self.catalog.last().expect("catalog non-empty")
    }

    /// Weighted pick restricted to small (≤100k IPs) providers.
    pub fn pick_small(&self, roll: u64) -> &ProviderEntry {
        let total: u64 = self.small.iter().map(|&i| self.catalog[i].weight).sum();
        let mut target = roll % total;
        for &i in &self.small {
            let entry = &self.catalog[i];
            if target < entry.weight {
                return entry;
            }
            target -= entry.weight;
        }
        &self.catalog[*self.small.last().expect("small non-empty")]
    }

    /// Weighted pick restricted to large (>100k IPs) providers — the five
    /// Table 4 rows whose inclusion makes a domain "lax".
    pub fn pick_big(&self, roll: u64) -> &ProviderEntry {
        let big: Vec<&ProviderEntry> = self
            .catalog
            .iter()
            .filter(|e| e.allowed_ips > 100_000)
            .collect();
        let total: u64 = big.iter().map(|e| e.weight).sum();
        let mut target = roll % total;
        for entry in &big {
            if target < entry.weight {
                return entry;
            }
            target -= entry.weight;
        }
        big.last().expect("big providers exist")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_analyzer::Walker;
    use spf_dns::ZoneResolver;

    fn world(scale: Scale) -> (Arc<ZoneStore>, ProviderWorld) {
        let store = Arc::new(ZoneStore::new());
        let world = build_providers(&store, scale);
        (store, world)
    }

    #[test]
    fn provider_allowed_ips_match_table4_exactly() {
        let (store, w) = world(Scale { denominator: 100 });
        let walker = Walker::new(ZoneResolver::new(store));
        for (entry, spec) in w.catalog.iter().zip(TABLE4.iter()) {
            let analysis = walker.analyze(&entry.domain);
            assert_eq!(
                analysis.allowed_ip_count(),
                spec.allowed_ips,
                "{} must authorize exactly {} addresses",
                spec.name,
                spec.allowed_ips
            );
            assert!(
                analysis.errors.is_empty(),
                "{}: {:?}",
                spec.name,
                analysis.errors
            );
        }
    }

    #[test]
    fn ovh_uses_ptr() {
        let (store, w) = world(Scale { denominator: 100 });
        let walker = Walker::new(ZoneResolver::new(store));
        let ovh = w
            .catalog
            .iter()
            .find(|e| e.domain.as_str() == "mx.ovh.com")
            .unwrap();
        let analysis = walker.analyze(&ovh.domain);
        assert!(analysis.uses_ptr);
        assert_eq!(analysis.allowed_ip_count(), 2);
    }

    #[test]
    fn bluehost_style_fat_include_needs_14_lookups() {
        let (store, w) = world(Scale { denominator: 100 });
        let walker = Walker::new(ZoneResolver::new(store));
        let analysis = walker.analyze(&w.fat[0]);
        // 13 nested includes; +1 when a customer references the record.
        assert_eq!(analysis.subtree_lookups, 13);
        // Every fat include exceeds the limit once referenced.
        for f in &w.fat {
            let a = walker.analyze(f);
            assert!(
                1 + a.subtree_lookups > 10,
                "{f} has only {}",
                a.subtree_lookups
            );
        }
    }

    #[test]
    fn fat_include_count_scales() {
        let (_, w100) = world(Scale { denominator: 100 });
        assert_eq!(w100.fat.len(), 24); // round(2408/100)
        let (_, w1000) = world(Scale { denominator: 1000 });
        assert_eq!(w1000.fat.len(), 2);
    }

    #[test]
    fn multi_record_target_has_two_records() {
        let (store, w) = world(Scale { denominator: 100 });
        assert_eq!(store.txt_strings(&w.multi_record).len(), 2);
    }

    #[test]
    fn longtail_covers_table3_classes() {
        let (store, w) = world(Scale { denominator: 100 });
        let walker = Walker::new(ZoneResolver::new(store));
        // Every non-zero Table 3 include class must be represented.
        for (prefix, count) in TABLE3_INCLUDE_COLUMN {
            let have = w.longtail.iter().filter(|(p, _)| *p == prefix).count();
            if count > 0 {
                assert!(have >= 1, "missing /{prefix} long-tail includes");
            } else {
                assert_eq!(have, 0);
            }
        }
        // Spot-check one /8 target authorizes 2^24 addresses.
        let (_, t) = w.longtail.iter().find(|(p, _)| *p == 8).unwrap();
        assert_eq!(walker.analyze(t).allowed_ip_count(), 1 << 24);
    }

    #[test]
    fn weighted_pick_prefers_heavy_providers() {
        let (_, w) = world(Scale { denominator: 100 });
        let mut outlook = 0;
        for roll in 0..10_000u64 {
            // Spread rolls uniformly across the weight space.
            let total: u64 = w.catalog.iter().map(|e| e.weight).sum();
            let pick = w.pick_weighted(roll * (total / 10_000));
            if pick.domain.as_str() == "spf.protection.outlook.com" {
                outlook += 1;
            }
        }
        // outlook holds ~33 % of the total weight.
        assert!(
            (2_800..=3_800).contains(&outlook),
            "outlook picks: {outlook}"
        );
    }

    #[test]
    fn small_picks_never_exceed_100k() {
        let (_, w) = world(Scale { denominator: 100 });
        for roll in (0..50_000u64).step_by(997) {
            assert!(w.pick_small(roll).allowed_ips <= 100_000);
        }
    }
}
