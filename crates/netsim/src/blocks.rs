//! Address-space allocation for the synthetic Internet.
//!
//! Every provider and cohort must authorize *disjoint* address blocks —
//! overlapping allocations would silently shrink the unions the analyzer
//! counts and skew Figure 5 / Table 4. The [`AddressAllocator`] hands out
//! aligned, never-reused CIDR blocks from a private slice of the address
//! space, and [`AddressAllocator::alloc_exact`] decomposes an arbitrary
//! address count into its binary power-of-two blocks so a provider's
//! "Allowed IPs" figure can be matched to the address.

use std::net::Ipv4Addr;

use spf_types::Ipv4Cidr;

/// Sequential, aligned allocator over a region of IPv4 space.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    next: u64,
    end: u64,
}

impl AddressAllocator {
    /// Allocate from the block starting at `base` with the given prefix.
    pub fn new(base: Ipv4Addr, prefix_len: u8) -> Self {
        let cidr = Ipv4Cidr::new(base, prefix_len).expect("valid prefix");
        let (lo, hi) = cidr.range_u32();
        AddressAllocator {
            next: lo as u64,
            end: hi as u64 + 1,
        }
    }

    /// Allocate one aligned block of the given prefix length.
    ///
    /// Panics if the region is exhausted — generation is deterministic, so
    /// exhaustion is a build-time sizing bug, not a runtime condition.
    pub fn alloc_block(&mut self, prefix_len: u8) -> Ipv4Cidr {
        let size = 1u64 << (32 - prefix_len as u32);
        // Align upward to the block size.
        let aligned = self.next.div_ceil(size) * size;
        assert!(
            aligned + size <= self.end,
            "address region exhausted allocating /{prefix_len}"
        );
        self.next = aligned + size;
        Ipv4Cidr::new(Ipv4Addr::from(aligned as u32), prefix_len).expect("valid prefix")
    }

    /// Allocate a single host address (/32).
    pub fn alloc_host(&mut self) -> Ipv4Addr {
        self.alloc_block(32).raw_address()
    }

    /// Allocate disjoint blocks covering exactly `count` addresses
    /// (the binary decomposition of `count`, largest block first).
    pub fn alloc_exact(&mut self, count: u64) -> Vec<Ipv4Cidr> {
        assert!(count > 0 && count <= 1 << 32, "count out of range");
        let mut blocks = Vec::new();
        for bit in (0..=32u32).rev() {
            if count & (1u64 << bit) != 0 {
                let prefix = (32 - bit) as u8;
                blocks.push(self.alloc_block(prefix));
            }
        }
        blocks
    }

    /// Addresses still available.
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }

    /// Allocate blocks covering exactly `count` addresses the way real
    /// mail providers write their records: a handful of single hosts
    /// (/32) and office networks (/24) first, then larger aggregates.
    /// This is what gives Figure 7 its characteristic shape — the /32
    /// peak and the second peak at /24.
    pub fn alloc_mail_style(&mut self, count: u64) -> Vec<Ipv4Cidr> {
        assert!(count > 0 && count <= 1 << 32, "count out of range");
        let mut blocks = Vec::new();
        let mut remaining = count;
        // Up to 24 single hosts…
        for _ in 0..24 {
            if remaining > (1 << 24) || remaining == 0 {
                break; // huge providers aggregate; nothing left otherwise
            }
            blocks.push(self.alloc_block(32));
            remaining -= 1;
        }
        // …up to 14 /24 networks…
        for _ in 0..14 {
            if remaining < 256 {
                break;
            }
            blocks.push(self.alloc_block(24));
            remaining -= 256;
        }
        // …and the rest as the binary decomposition.
        if remaining > 0 {
            blocks.extend(self.alloc_exact(remaining));
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_types::Ipv4Set;

    #[test]
    fn blocks_are_aligned_and_disjoint() {
        let mut alloc = AddressAllocator::new(Ipv4Addr::new(16, 0, 0, 0), 4);
        let mut set = Ipv4Set::new();
        let mut total = 0u64;
        for prefix in [24, 30, 16, 28, 12].iter().cycle().take(20) {
            let block = alloc.alloc_block(*prefix as u8);
            // Aligned: network address equals the raw address.
            assert_eq!(block.network(), block.raw_address());
            let before = set.address_count();
            set.insert_cidr(&block);
            assert_eq!(
                set.address_count(),
                before + block.address_count(),
                "overlap at {block}"
            );
            total += block.address_count();
        }
        assert_eq!(set.address_count(), total);
    }

    #[test]
    fn alloc_exact_matches_count() {
        let mut alloc = AddressAllocator::new(Ipv4Addr::new(40, 0, 0, 0), 8);
        for count in [1u64, 2, 15, 491_520, 328_960, 1_088_784, 4_358, 264] {
            let blocks = alloc.alloc_exact(count);
            let set: Ipv4Set = blocks.iter().copied().collect();
            assert_eq!(set.address_count(), count, "decomposition of {count}");
        }
    }

    #[test]
    fn table4_provider_sizes_decompose() {
        // Every "Allowed IPs" value in Table 4 must be representable.
        let sizes = [
            491_520u64, 328_960, 1_088_784, 505_104, 4_358, 22_528, 4_608, 220_672, 1_049, 264,
            64_512, 2, 36_312, 4_358, 6_209, 26_112, 5_120, 10_492, 87_040, 15,
        ];
        let mut alloc = AddressAllocator::new(Ipv4Addr::new(20, 0, 0, 0), 6);
        for size in sizes {
            let blocks = alloc.alloc_exact(size);
            let set: Ipv4Set = blocks.iter().copied().collect();
            assert_eq!(set.address_count(), size);
            // Decomposition is the binary representation: popcount blocks.
            assert_eq!(blocks.len() as u32, size.count_ones());
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut alloc = AddressAllocator::new(Ipv4Addr::new(192, 0, 2, 0), 24);
        alloc.alloc_block(23); // bigger than the region
    }

    #[test]
    fn remaining_decreases() {
        let mut alloc = AddressAllocator::new(Ipv4Addr::new(198, 51, 100, 0), 24);
        assert_eq!(alloc.remaining(), 256);
        alloc.alloc_block(25);
        assert_eq!(alloc.remaining(), 128);
        alloc.alloc_host();
        assert_eq!(alloc.remaining(), 127);
    }
}
