//! Per-domain auth-stack deployment modeling: which DMARC / MTA-STS
//! records a population domain publishes on top of its SPF cohort.
//!
//! The population builder assigns each SPF-publishing domain a
//! [`DeploymentMix`] tier (DESIGN.md §13). The DMARC *budget* and
//! policy mix ride the calibrated rng stream exactly as before (the
//! paper's Table 1 marginals); the MTA-STS layer is derived from the
//! domain's precomputed hash so adding it never shifts the rng stream
//! — every pre-existing population byte stays identical.
//!
//! **Modeling approximation**: real MTA-STS publishes only `v=STSv1;
//! id=…` in DNS and serves the policy (with its `mode=`) over HTTPS.
//! The netsim has no HTTPS fetcher, so the discovery TXT carries the
//! mode inline — `spf_core::query_mta_sts` parses exactly this shape.

use spf_core::DeploymentMix;
use spf_dns::ZoneStore;
use spf_types::DomainName;

/// Of the domains whose DMARC policy came out enforced, one in
/// [`MTA_STS_ENFORCED_STRIDE`] also publishes an enforce-mode MTA-STS
/// policy, and the next hash slot publishes a testing-mode one.
/// Hash-derived, not rng-derived — see the module docs.
pub const MTA_STS_ENFORCED_STRIDE: u64 = 5;

/// The MTA-STS discovery TXT the netsim publishes for `mode`.
pub fn mta_sts_record(mode: &str) -> String {
    format!("v=STSv1; id=20230801T000000; mode={mode}")
}

/// Decide the MTA-STS layer for a domain whose DMARC policy is already
/// decided, and publish the discovery TXT when the tier calls for one.
/// Returns the resulting deployment tier given `dmarc_enforced`.
pub fn assign_mta_sts(
    store: &ZoneStore,
    domain: &DomainName,
    dmarc_enforced: bool,
) -> DeploymentMix {
    if !dmarc_enforced {
        return DeploymentMix::SpfDmarcNone;
    }
    let Ok(name) = domain.prepend_label("_mta-sts") else {
        return DeploymentMix::SpfDmarcEnforced;
    };
    match domain.precomputed_hash() % MTA_STS_ENFORCED_STRIDE {
        0 => {
            store.add_txt(&name, &mta_sts_record("enforce"));
            DeploymentMix::FullStack
        }
        1 => {
            // Testing mode exists in the zone but does not close the
            // residual path — classified as SpfDmarcEnforced.
            store.add_txt(&name, &mta_sts_record("testing"));
            DeploymentMix::SpfDmarcEnforced
        }
        _ => DeploymentMix::SpfDmarcEnforced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_core::{query_mta_sts, MtaStsMode};
    use spf_dns::ZoneResolver;
    use std::sync::Arc;

    #[test]
    fn assignment_is_hash_deterministic_and_parseable() {
        let store = Arc::new(ZoneStore::new());
        let resolver = ZoneResolver::new(Arc::clone(&store));
        let mut tiers = std::collections::BTreeMap::new();
        for i in 0..64u64 {
            let d = DomainName::parse(&format!("d{i}.example")).unwrap();
            let tier = assign_mta_sts(&store, &d, true);
            *tiers.entry(tier).or_insert(0u64) += 1;
            let mode = query_mta_sts(&resolver, &d);
            match tier {
                DeploymentMix::FullStack => assert_eq!(mode, MtaStsMode::Enforce),
                DeploymentMix::SpfDmarcEnforced => {
                    assert_ne!(mode, MtaStsMode::Enforce)
                }
                other => panic!("unexpected tier {other:?}"),
            }
        }
        // Both tiers occur at this sample size.
        assert!(tiers.len() >= 2, "expected a mixed assignment: {tiers:?}");
        // Unenforced DMARC never gets an MTA-STS record.
        let lax = DomainName::parse("lax.example").unwrap();
        assert_eq!(
            assign_mta_sts(&store, &lax, false),
            DeploymentMix::SpfDmarcNone
        );
        assert_eq!(query_mta_sts(&resolver, &lax), MtaStsMode::Absent);
    }
}
