//! The web-hosting world behind the Section 6.4 case study (Table 5).
//!
//! The authors rented web space at five providers and tried to send
//! SPF-valid spoofed mail two ways: opening an SMTP connection straight
//! from the shared web space, and handing the mail to the provider's local
//! MTA via PHP `mail()`. Whether either works is decided by three provider
//! properties, reproduced here:
//!
//! * does the recommended SPF record authorize the *shared web-space IP*
//!   (the `a`-mechanism-on-shared-hosting risk of §7.1)?
//! * does it authorize the *provider MTA IP*?
//! * does the provider block outbound port 25 from the web space, and does
//!   its MTA require authentication before relaying?
//!
//! The spoofing harness in `spf-smtp` connects through real TCP and lets
//! the receiving MTA's `check_host()` decide — nothing here shortcuts the
//! verdict.

use std::net::Ipv4Addr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use spf_dns::ZoneStore;
use spf_types::DomainName;

use crate::blocks::AddressAllocator;
use crate::scale::Scale;

/// Behavioural profile of one hosting provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostingProvider {
    /// Provider index (1-based, like Table 5).
    pub id: usize,
    /// The include target the provider tells customers to add.
    pub include_domain: DomainName,
    /// Customer domains hosted (and configured as recommended).
    pub customers: Vec<DomainName>,
    /// The shared web-space address an attacker's rented account sits on.
    pub web_ip: Ipv4Addr,
    /// The provider MTA used by `mail()`-style submission.
    pub mta_ip: Ipv4Addr,
    /// Total addresses the recommended record authorizes (Table 5).
    pub allowed_ips: u64,
    /// Outbound port 25 from the web space is blocked (§7.2's
    /// recommendation).
    pub blocks_port25: bool,
    /// The MTA relays only for authenticated senders of the claimed
    /// domain (§7.2's recommendation).
    pub mta_requires_auth: bool,
}

/// The five-provider world.
pub struct HostingWorld {
    /// Shared zone data for the case study.
    pub store: Arc<ZoneStore>,
    /// Providers 1–5 in Table 5 order.
    pub providers: Vec<HostingProvider>,
}

struct ProviderSpec {
    affected_full: u64,
    allowed_ips: u64,
    web_in_spf: bool,
    mta_in_spf: bool,
    blocks_port25: bool,
    mta_requires_auth: bool,
}

/// Table 5, decomposed into the causal flags:
///
/// | # | Success    | Domains | Allowed IPs | reproduced by |
/// |---|-----------|---------|-------------|----------------|
/// | 1 | MTA       | 24,959  | 177,168     | port 25 blocked, open MTA in SPF |
/// | 2 | SMTP, MTA | 713     | 514         | web IP in SPF, open MTA in SPF |
/// | 3 | MTA       | 264     | 2,052       | port 25 blocked, open MTA in SPF |
/// | 4 | SMTP      | 159     | 3,074       | web IP in SPF, MTA requires auth |
/// | 5 | None      | 0       | 672         | port 25 blocked, MTA requires auth |
const SPECS: [ProviderSpec; 5] = [
    ProviderSpec {
        affected_full: 24_959,
        allowed_ips: 177_168,
        web_in_spf: false,
        mta_in_spf: true,
        blocks_port25: true,
        mta_requires_auth: false,
    },
    ProviderSpec {
        affected_full: 713,
        allowed_ips: 514,
        web_in_spf: true,
        mta_in_spf: true,
        blocks_port25: false,
        mta_requires_auth: false,
    },
    ProviderSpec {
        affected_full: 264,
        allowed_ips: 2_052,
        web_in_spf: false,
        mta_in_spf: true,
        blocks_port25: true,
        mta_requires_auth: false,
    },
    ProviderSpec {
        affected_full: 159,
        allowed_ips: 3_074,
        web_in_spf: true,
        mta_in_spf: false,
        blocks_port25: false,
        mta_requires_auth: true,
    },
    ProviderSpec {
        affected_full: 120,
        allowed_ips: 672,
        web_in_spf: false,
        mta_in_spf: false,
        blocks_port25: true,
        mta_requires_auth: true,
    },
];

/// Total spoofable domains in the paper's case study.
pub const SPOOFABLE_TOTAL_FULL: u64 = 26_095;

/// Build the hosting world at the given scale (provider 5's customer base
/// is sized arbitrarily — none of them are spoofable).
pub fn build_hosting(scale: Scale) -> HostingWorld {
    let store = Arc::new(ZoneStore::new());
    let providers = build_hosting_into(&store, scale);
    HostingWorld { store, providers }
}

/// Build the five hosting providers *into an existing zone store* — the
/// spoofability-matrix world (`crate::spooflab`) co-locates them with the
/// calibrated population so provider web/MTA vantage points evaluate
/// against real hosted customers. The case-study address space
/// (12.0.0.0/6) is disjoint from every population region by
/// construction, so the merge never collides.
pub fn build_hosting_into(store: &Arc<ZoneStore>, scale: Scale) -> Vec<HostingProvider> {
    // Case-study space: 12.0.0.0/6, disjoint from the population regions.
    let mut alloc = AddressAllocator::new(Ipv4Addr::new(12, 0, 0, 0), 6);
    let mut providers = Vec::with_capacity(SPECS.len());
    for (idx, spec) in SPECS.iter().enumerate() {
        let id = idx + 1;
        let include_domain = DomainName::parse(&format!("spf.hosting{id}.example")).unwrap();
        let web_ip = alloc.alloc_host();
        let mta_ip = alloc.alloc_host();
        // Fill the record up to the exact Table 5 address count.
        let special = u64::from(spec.web_in_spf) + u64::from(spec.mta_in_spf);
        let filler = spec.allowed_ips - special;
        let mut terms: Vec<String> = Vec::new();
        if spec.mta_in_spf {
            terms.push(format!("ip4:{mta_ip}"));
        }
        if spec.web_in_spf {
            terms.push(format!("ip4:{web_ip}"));
        }
        for block in alloc.alloc_exact(filler) {
            terms.push(format!("ip4:{block}"));
        }
        store.add_txt(&include_domain, &format!("v=spf1 {} -all", terms.join(" ")));

        let customer_count = scale.of_min1(spec.affected_full).max(2) as usize;
        let mut customers = Vec::with_capacity(customer_count);
        for c in 0..customer_count {
            let d = DomainName::parse(&format!("shop{c}.hosted{id}.example")).unwrap();
            store.add_txt(&d, &format!("v=spf1 include:{include_domain} -all"));
            store.add_mx(
                &d,
                10,
                &DomainName::parse(&format!("mx.hosting{id}.example")).unwrap(),
            );
            customers.push(d);
        }
        providers.push(HostingProvider {
            id,
            include_domain,
            customers,
            web_ip,
            mta_ip,
            allowed_ips: spec.allowed_ips,
            blocks_port25: spec.blocks_port25,
            mta_requires_auth: spec.mta_requires_auth,
        });
    }
    providers
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_analyzer::Walker;
    use spf_dns::ZoneResolver;

    #[test]
    fn allowed_ips_match_table5() {
        let world = build_hosting(Scale { denominator: 100 });
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&world.store)));
        for (provider, spec) in world.providers.iter().zip(SPECS.iter()) {
            let analysis = walker.analyze(&provider.include_domain);
            assert_eq!(
                analysis.allowed_ip_count(),
                spec.allowed_ips,
                "provider {} allowed IPs",
                provider.id
            );
            assert!(analysis.errors.is_empty());
        }
    }

    #[test]
    fn inclusion_flags_reflected_in_records() {
        let world = build_hosting(Scale { denominator: 100 });
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&world.store)));
        for (provider, spec) in world.providers.iter().zip(SPECS.iter()) {
            let analysis = walker.analyze(&provider.include_domain);
            assert_eq!(
                analysis.ips.contains(provider.web_ip),
                spec.web_in_spf,
                "provider {} web ip",
                provider.id
            );
            assert_eq!(
                analysis.ips.contains(provider.mta_ip),
                spec.mta_in_spf,
                "provider {} mta ip",
                provider.id
            );
        }
    }

    #[test]
    fn customers_pass_from_authorized_ips_only() {
        use spf_core::{check_host, EvalContext, EvalPolicy, SpfResult};
        let world = build_hosting(Scale { denominator: 1000 });
        let resolver = ZoneResolver::new(Arc::clone(&world.store));
        // Provider 2 includes both the web and MTA IPs.
        let p2 = &world.providers[1];
        let victim = &p2.customers[0];
        for ip in [p2.web_ip, p2.mta_ip] {
            let ctx = EvalContext::mail_from(ip.into(), "ceo", victim.clone());
            let eval = check_host(&resolver, &ctx, victim, &EvalPolicy::default());
            assert_eq!(eval.result, SpfResult::Pass, "provider 2 ip {ip}");
        }
        // Provider 5 includes neither.
        let p5 = &world.providers[4];
        let victim5 = &p5.customers[0];
        for ip in [p5.web_ip, p5.mta_ip] {
            let ctx = EvalContext::mail_from(ip.into(), "ceo", victim5.clone());
            let eval = check_host(&resolver, &ctx, victim5, &EvalPolicy::default());
            assert_eq!(eval.result, SpfResult::Fail, "provider 5 ip {ip}");
        }
    }

    #[test]
    fn customer_counts_scale() {
        let world = build_hosting(Scale { denominator: 100 });
        assert_eq!(world.providers[0].customers.len(), 250); // 24,959 / 100
        assert_eq!(world.providers[1].customers.len(), 7);
        assert!(world.providers[4].customers.len() >= 2);
    }
}
