//! The synthetic Internet: a ranked, Tranco-like population of domains
//! whose SPF/DMARC/MX configuration reproduces every marginal the paper
//! measures.
//!
//! Each domain belongs to exactly one **cohort**; the full-scale cohort
//! sizes below are derived from the paper's published counts (Figures 1–6,
//! Tables 1–4, Sections 5–6), so that re-measuring the generated population
//! through the real crawl→parse→analyze pipeline reproduces the paper's
//! numbers at any scale. The derivation is documented inline; the grand
//! total is asserted to equal the paper's 12,823,598 scanned domains.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use spf_dns::ZoneStore;
use spf_types::{DomainName, Ipv4Cidr};

use crate::providers::{build_providers, ProviderWorld};
use crate::scale::Scale;

/// The paper's scan size.
pub const TOTAL_DOMAINS_FULL: u64 = 12_823_598;
/// Domains with an MX record (Figure 1).
pub const WITH_MX_FULL: u64 = 9_148_000;
/// Domains with SPF — the sum of Figure 6's histogram.
pub const WITH_SPF_FULL: u64 = 7_251_736;
/// The ranked "top 1 million" segment.
pub const TOP_SEGMENT_FULL: u64 = 1_000_000;
/// SPF domains inside the top segment (60.2 % of 1M, Table 1).
pub const TOP_SPF_FULL: u64 = 602_000;
/// DMARC domains overall (13.6 %) and in the top segment (22.6 %).
pub const WITH_DMARC_FULL: u64 = 1_744_009;
/// DMARC domains inside the top segment.
pub const TOP_DMARC_FULL: u64 = 226_000;
/// Domains still publishing the deprecated type-99 SPF RR (§5.5).
pub const DEPRECATED_RR_FULL: u64 = 107_646;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// Scale factor (1:100 by default → ≈128k domains).
    pub scale: Scale,
    /// RNG seed; the population is a pure function of (scale, seed).
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            scale: Scale::default(),
            seed: 0x5bf1_2023,
        }
    }
}

/// The generated world.
pub struct Population {
    /// All zone data (SPF/DMARC/MX/A records, faults).
    pub store: Arc<ZoneStore>,
    /// Scanned domains in rank order (index 0 = rank 1).
    pub domains: Vec<DomainName>,
    /// Length of the "top 1M" segment at this scale.
    pub top_len: usize,
    /// The provider world (Table 4 catalog, fat includes, long tail).
    pub providers: ProviderWorld,
    /// Scaled cohort counts, for calibration checks and EXPERIMENTS.md.
    pub manifest: BTreeMap<String, u64>,
}

/// The cohorts. Counts in [`cohort_table`] are FULL-SCALE and sum to
/// [`TOTAL_DOMAINS_FULL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cohort {
    /// MX but no SPF.
    NoSpfMx,
    /// Neither MX nor SPF (the name does not even resolve).
    NoSpfNoMx,
    /// Root TXT lookup times out (the paper's 1,179 excluded DNS errors).
    DnsTransient,
    /// §5.1: no MX, record is exactly `-all`/`~all`.
    DenyAllNoMx,
    /// §5.1: no MX but a real sending policy — likely misconfigured.
    MiscSpfNoMx,
    /// Clean, tight, direct-only record (`mx` + a couple of `ip4` hosts).
    DirectClean,
    /// Over 100k addresses via several /17 blocks — direct-lax domains beyond
    /// Table 3's /0../16 classes (§6.2's 9,994 minus the ≤/15 rows).
    DirectLaxMulti,
    /// §5.5: record without a restrictive `all` (427,767).
    PermissiveAll,
    /// §5.5: record built on the deprecated `ptr` mechanism (233,167).
    PtrOnly,
    /// §5.5: the 14 RFC 6652 `ra`/`rp`/`rr` users (fixed count).
    ReportingMod,
    /// §5.5: the single XSS-in-SPF record (fixed count).
    Xss,
    /// Figure 2 error cohorts.
    ErrSyntax,
    /// Invalid IP argument (Figure 2).
    ErrInvalidIp,
    /// Lookup-limit violation via a fat include (Figures 2 and 4).
    ErrTooManyLookups,
    /// Void-lookup-limit violation (Figure 2).
    ErrVoid,
    /// Include loop (Figure 2; 71.6 % direct self-inclusion).
    ErrIncludeLoop,
    /// Redirect loop (Figure 2, 58 domains).
    ErrRedirectLoop,
    /// Figure 3 record-not-found causes.
    ErrNotFoundNoSpf,
    /// Include target with multiple SPF records (75.6 % via cafe24).
    ErrNotFoundMultiple,
    /// Include target NXDOMAIN.
    ErrNotFoundNx,
    /// Include target with an empty DNS answer.
    ErrNotFoundEmpty,
    /// Include target timing out.
    ErrNotFoundTimeout,
    /// Oversized-label/name include targets (3 domains, fixed).
    ErrNotFoundOther,
    /// Table 3 direct column: one `ip4:<block>/p` range. The payload is
    /// the prefix; 255 encodes the "specific host with /0" misread.
    DirectLarge(u8),
    /// One user of each long-tail include (Table 3 include column).
    LongtailUser,
    /// Clean record with `k` provider includes (Figure 6). 11 = ">10".
    IncludeClean(u8),
}

/// Count rounding behaviour per cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rounding {
    /// Largest-remainder share of the population.
    Scaled,
    /// Scaled but never rounded to zero.
    ScaledMin1,
    /// Absolute count at any scale (rare curiosities like the XSS record).
    Fixed,
}

/// The calibrated full-scale cohort table. See the module docs; the
/// arithmetic is asserted in `tests::full_scale_table_sums_to_paper_total`.
fn cohort_table() -> Vec<(Cohort, u64, Rounding)> {
    use Cohort::*;
    use Rounding::*;
    let mut t = vec![
        (NoSpfMx, 2_277_347, Scaled),
        (NoSpfNoMx, 3_293_336, Scaled),
        (DnsTransient, 1_179, ScaledMin1),
        (DenyAllNoMx, 203_341, Scaled),
        (MiscSpfNoMx, 178_921, Scaled),
        (DirectClean, 1_279_154, Scaled),
        (DirectLaxMulti, 4_603, ScaledMin1),
        (PermissiveAll, 427_767, Scaled),
        (PtrOnly, 233_167, Scaled),
        (ReportingMod, 14, Fixed),
        (Xss, 1, Fixed),
        (ErrSyntax, 38_296, Scaled),
        (ErrInvalidIp, 7_882, ScaledMin1),
        (ErrTooManyLookups, 49_421, Scaled),
        (ErrVoid, 5_308, ScaledMin1),
        (ErrIncludeLoop, 19_356, Scaled),
        (ErrRedirectLoop, 58, ScaledMin1),
        (ErrNotFoundNoSpf, 48_824, Scaled),
        (ErrNotFoundMultiple, 2_263, ScaledMin1),
        (ErrNotFoundNx, 36_743, Scaled),
        (ErrNotFoundEmpty, 173, ScaledMin1),
        (ErrNotFoundTimeout, 2_691, ScaledMin1),
        (ErrNotFoundOther, 3, Fixed),
    ];
    // Table 3 direct column. 255 encodes the 15 "specific host with /0"
    // entries the paper distinguishes from deliberate 0.0.0.0/0.
    let direct_large: [(u8, u64); 18] = [
        (0, 39),
        (255, 15),
        (1, 29),
        (2, 47),
        (3, 16),
        (4, 7),
        (5, 6),
        (6, 4),
        (7, 4),
        (8, 2_162),
        (9, 23),
        (10, 131),
        (11, 44),
        (12, 313),
        (13, 228),
        (14, 1_178),
        (15, 1_145),
        (16, 11_126),
    ];
    for (p, count) in direct_large {
        t.push((DirectLarge(p), count, ScaledMin1));
    }
    // Long-tail include users: one per long-tail include; the include
    // count is itself scaled, so the full-scale figure here is the Table 3
    // include-column sum.
    t.push((LongtailUser, 25_600, Scaled));
    // Figure 6 histogram, minus the cohorts that already carry includes:
    // k=1 minus (too-many-lookups 49,421 + include loops 19,356 +
    // record-not-found 90,697 + long-tail users 25,600).
    let include_clean: [(u8, u64); 11] = [
        (1, 3_413_790),
        (2, 765_073),
        (3, 286_108),
        (4, 118_405),
        (5, 53_526),
        (6, 22_618),
        (7, 8_240),
        (8, 2_744),
        (9, 784),
        (10, 195),
        (11, 150), // ">10"
    ];
    for (k, count) in include_clean {
        t.push((
            IncludeClean(k),
            count,
            if count < 500 { ScaledMin1 } else { Scaled },
        ));
    }
    t
}

fn is_spf_cohort(c: Cohort) -> bool {
    !matches!(
        c,
        Cohort::NoSpfMx | Cohort::NoSpfNoMx | Cohort::DnsTransient
    )
}

fn has_mx(c: Cohort) -> bool {
    !matches!(
        c,
        Cohort::NoSpfNoMx | Cohort::DenyAllNoMx | Cohort::MiscSpfNoMx | Cohort::DnsTransient
    )
}

impl Population {
    /// Build the world for `config`.
    pub fn build(config: PopulationConfig) -> Population {
        Builder::new(config).run()
    }
}

struct Builder {
    config: PopulationConfig,
    store: Arc<ZoneStore>,
    rng: StdRng,
    providers: ProviderWorld,
    mx_pool: Vec<DomainName>,
    manifest: BTreeMap<String, u64>,
    // Overlay budgets, consumed while building.
    dmarc_budget: u64,
    deprecated_rr_budget: u64,
    // Single-include domains that must become lax: §6.3's 2,507,097 lax
    // include users minus the (always-lax) multi-include cohorts and the
    // lax long-tail users. Full-scale: 2,507,097 − 1,257,843 − 132.
    lax_k1_budget: u64,
    // §4.1: "Only 0.5 % of the domains use IPv6 directly" — overlay an
    // ip6 term on that share of clean records. Full-scale: 36,259.
    ip6_budget: u64,
    // Shared error-target pools.
    nospf_targets: Vec<DomainName>,
    multi_targets: Vec<DomainName>,
    empty_targets: Vec<DomainName>,
    slow_targets: Vec<DomainName>,
}

impl Builder {
    fn new(config: PopulationConfig) -> Builder {
        let store = Arc::new(ZoneStore::new());
        let providers = build_providers(&store, config.scale);
        Builder {
            config,
            store,
            rng: StdRng::seed_from_u64(config.seed),
            providers,
            mx_pool: Vec::new(),
            manifest: BTreeMap::new(),
            dmarc_budget: 0,
            deprecated_rr_budget: 0,
            lax_k1_budget: 0,
            ip6_budget: 0,
            nospf_targets: Vec::new(),
            multi_targets: Vec::new(),
            empty_targets: Vec::new(),
            slow_targets: Vec::new(),
        }
    }

    fn run(mut self) -> Population {
        let scale = self.config.scale;
        self.build_shared_infrastructure();

        // Scaled cohort counts.
        let table = cohort_table();
        let weights: Vec<u64> = table.iter().map(|(_, c, _)| *c).collect();
        let mut scaled = scale.apportion(&weights);
        let mut largest = 0usize;
        for (i, ((_, _, rounding), count)) in table.iter().zip(scaled.iter_mut()).enumerate() {
            match rounding {
                Rounding::Scaled => {}
                Rounding::ScaledMin1 => {
                    if *count == 0 {
                        *count = 1;
                    }
                }
                Rounding::Fixed => *count = weights[i],
            }
        }
        // Keep the grand total exact by adjusting the largest cohort.
        let target_total = scale.of(TOTAL_DOMAINS_FULL);
        for (i, c) in scaled.iter().enumerate() {
            if *c > scaled[largest] {
                largest = i;
            }
        }
        let current: u64 = scaled.iter().sum();
        scaled[largest] = scaled[largest] + target_total
            - current.min(target_total)
            - current.saturating_sub(target_total).min(scaled[largest]);
        // (equivalent to += target-current with saturation; recompute cleanly)
        let current: u64 = scaled.iter().sum();
        if current != target_total {
            let diff = target_total as i64 - current as i64;
            scaled[largest] = (scaled[largest] as i64 + diff).max(0) as u64;
        }

        // Long-tail user count must match the scaled include count.
        let longtail_users = self.providers.longtail.len() as u64;
        let lt_idx = table
            .iter()
            .position(|(c, _, _)| *c == Cohort::LongtailUser)
            .unwrap();
        let k1_idx = table
            .iter()
            .position(|(c, _, _)| *c == Cohort::IncludeClean(1))
            .unwrap();
        let delta = scaled[lt_idx] as i64 - longtail_users as i64;
        scaled[lt_idx] = longtail_users;
        scaled[k1_idx] = (scaled[k1_idx] as i64 + delta).max(0) as u64;

        // Overlay budgets.
        self.dmarc_budget = scale.of(WITH_DMARC_FULL);
        self.deprecated_rr_budget = scale.of(DEPRECATED_RR_FULL);
        self.lax_k1_budget = scale.of(1_249_122);
        self.ip6_budget = scale.of(36_259);
        let top_dmarc = scale.of(TOP_DMARC_FULL);

        // Split each cohort between the top segment and the tail so the
        // top-1M adoption rates come out right.
        let top_total = scale.of(TOP_SEGMENT_FULL);
        let top_spf = scale.of(TOP_SPF_FULL);
        let spf_weights: Vec<u64> = table
            .iter()
            .zip(&scaled)
            .map(|((c, _, _), n)| if is_spf_cohort(*c) { *n } else { 0 })
            .collect();
        let nonspf_weights: Vec<u64> = table
            .iter()
            .zip(&scaled)
            .map(|((c, _, _), n)| if is_spf_cohort(*c) { 0 } else { *n })
            .collect();
        let top_spf_counts = crate::scale::apportion(top_spf, &spf_weights);
        let top_nonspf_counts = crate::scale::apportion(top_total - top_spf, &nonspf_weights);

        // Lay out cohort tags per segment and shuffle deterministically.
        let mut top_tags: Vec<Cohort> = Vec::with_capacity(top_total as usize);
        let mut tail_tags: Vec<Cohort> = Vec::new();
        for (i, (cohort, _, _)) in table.iter().enumerate() {
            let top_n = (top_spf_counts[i] + top_nonspf_counts[i]).min(scaled[i]);
            let tail_n = scaled[i] - top_n;
            top_tags.extend(std::iter::repeat_n(*cohort, top_n as usize));
            tail_tags.extend(std::iter::repeat_n(*cohort, tail_n as usize));
        }
        top_tags.shuffle(&mut self.rng);
        tail_tags.shuffle(&mut self.rng);
        let top_len = top_tags.len();

        // Record the manifest before building.
        for (i, (cohort, _, _)) in table.iter().enumerate() {
            *self.manifest.entry(format!("{cohort:?}")).or_default() += scaled[i];
        }
        self.manifest.insert("total".into(), scaled.iter().sum());
        self.manifest.insert("top_len".into(), top_len as u64);

        // Build every domain. DMARC is assigned segment by segment.
        let mut domains = Vec::with_capacity(top_len + tail_tags.len());
        let mut dmarc_remaining = top_dmarc.min(self.dmarc_budget);
        let mut rank = 1u64;
        let mut longtail_cursor = 0usize;
        for tag in &top_tags {
            let d = self.build_domain(rank, *tag, &mut dmarc_remaining, &mut longtail_cursor);
            domains.push(d);
            rank += 1;
        }
        let mut dmarc_remaining =
            self.dmarc_budget - (top_dmarc.min(self.dmarc_budget) - dmarc_remaining);
        for tag in &tail_tags {
            let d = self.build_domain(rank, *tag, &mut dmarc_remaining, &mut longtail_cursor);
            domains.push(d);
            rank += 1;
        }

        Population {
            store: self.store,
            domains,
            top_len,
            providers: self.providers,
            manifest: self.manifest,
        }
    }

    fn build_shared_infrastructure(&mut self) {
        // Shared MX host pool: 64 mail hosts in 198.18.0.0/24 (benchmark
        // range, disjoint from provider space).
        for j in 0..64u32 {
            let host = DomainName::parse(&format!("mx{j}.mailcore.example")).unwrap();
            self.store.add_a(&host, Ipv4Addr::from(0xC612_0000u32 + j));
            self.mx_pool.push(host);
        }
        // Shared error-target pools.
        let scale = self.config.scale;
        let pool = |full: u64| (scale.of(full) / 50).max(1);
        for i in 0..pool(48_824) {
            let t = DomainName::parse(&format!("nospf{i}.targets.example")).unwrap();
            self.store.add_txt(&t, "just-a-verification-string");
            self.nospf_targets.push(t);
        }
        for i in 0..pool(2_263) {
            let t = DomainName::parse(&format!("multi{i}.targets.example")).unwrap();
            self.store.add_txt(&t, "v=spf1 ip4:203.0.113.40 -all");
            self.store.add_txt(&t, "v=spf1 ip4:203.0.113.41 -all");
            self.multi_targets.push(t);
        }
        for i in 0..pool(173) {
            let t = DomainName::parse(&format!("empty{i}.targets.example")).unwrap();
            self.store.add_empty_name(&t);
            self.empty_targets.push(t);
        }
        for i in 0..pool(2_691) {
            let t = DomainName::parse(&format!("slow{i}.targets.example")).unwrap();
            self.store.add_txt(&t, "v=spf1 -all");
            self.store.set_fault(&t, spf_dns::ZoneFault::Timeout);
            self.slow_targets.push(t);
        }
    }

    /// A deterministic host address for (rank, slot) in 100.128.0.0/9.
    fn host_ip(&self, rank: u64, slot: u64) -> Ipv4Addr {
        let region = 0x6480_0000u64; // 100.128.0.0
        let size = 1u64 << 23; // /9
        Ipv4Addr::from((region + (rank * 8 + slot) % size) as u32)
    }

    fn tld_for(&self, rank: u64) -> &'static str {
        const TLDS: [&str; 8] = ["com", "net", "org", "de", "io", "fr", "nl", "info"];
        TLDS[(rank % TLDS.len() as u64) as usize]
    }

    fn domain_name(&self, rank: u64, tld: &str) -> DomainName {
        DomainName::parse(&format!("site{rank}.{tld}")).expect("generated name valid")
    }

    fn add_mx(&self, rank: u64, domain: &DomainName) {
        let host = &self.mx_pool[(rank % self.mx_pool.len() as u64) as usize];
        self.store.add_mx(domain, 10, host);
    }

    fn maybe_dmarc(&mut self, domain: &DomainName, dmarc_remaining: &mut u64) {
        if *dmarc_remaining == 0 {
            return;
        }
        *dmarc_remaining -= 1;
        let policy = match self.rng.random_range(0..100u32) {
            0..=54 => "none",
            55..=74 => "quarantine",
            _ => "reject",
        };
        let name = domain.prepend_label("_dmarc").expect("short label");
        self.store.add_txt(&name, &format!("v=DMARC1; p={policy}"));
        // The MTA-STS layer rides the domain hash, not the rng stream,
        // so adding it leaves every pre-existing population byte
        // untouched (crate::deployment has the stride arithmetic).
        crate::deployment::assign_mta_sts(&self.store, domain, policy != "none");
    }

    fn maybe_deprecated_rr(&mut self, domain: &DomainName, record: &str) {
        if self.deprecated_rr_budget == 0 {
            return;
        }
        self.deprecated_rr_budget -= 1;
        self.store.add_spf_type99(domain, record);
    }

    fn build_domain(
        &mut self,
        rank: u64,
        cohort: Cohort,
        dmarc_remaining: &mut u64,
        longtail_cursor: &mut usize,
    ) -> DomainName {
        use Cohort::*;
        let tld = match cohort {
            // The paper: /8-ish long-tail includes cluster in ".top".
            LongtailUser => "top",
            _ => self.tld_for(rank),
        };
        let domain = self.domain_name(rank, tld);
        if has_mx(cohort) {
            self.add_mx(rank, &domain);
        }

        let mut record: Option<String> = None;
        match cohort {
            NoSpfMx => {}
            NoSpfNoMx => {}
            DnsTransient => {
                self.store.add_txt(&domain, "v=spf1 -all");
                self.store.set_fault(&domain, spf_dns::ZoneFault::Timeout);
            }
            DenyAllNoMx => {
                // 202,198 "-all" vs 1,143 "~all" (§5.1).
                let soft = self.rng.random_range(0..203_341u32) < 1_143;
                record = Some(if soft {
                    "v=spf1 ~all".into()
                } else {
                    "v=spf1 -all".into()
                });
            }
            MiscSpfNoMx => {
                record = Some(format!("v=spf1 ip4:{} -all", self.host_ip(rank, 0)));
            }
            DirectClean => {
                let mut terms = vec!["mx".to_string()];
                if self.ip6_budget > 0 {
                    self.ip6_budget -= 1;
                    terms.push(format!("ip6:2001:db8:{:x}::/48", rank % 0xffff));
                }
                // ~30 % of self-hosted setups authorize a small office
                // network rather than single hosts — these sit between the
                // "<20 IPs" third and the lax tail of Figure 5.
                if self.rng.random_range(0..100u32) < 30 {
                    let size = 1u64 << 6;
                    let region = 0x6A00_0000u64; // 106.0.0.0/8
                    let idx = (rank * size) % (1u64 << 24);
                    let base = Ipv4Addr::from((region + idx) as u32);
                    terms.push(format!("ip4:{}", Ipv4Cidr::new(base, 26).unwrap()));
                } else {
                    let extra = self.rng.random_range(1..=3u64);
                    for s in 0..extra {
                        terms.push(format!("ip4:{}", self.host_ip(rank, s)));
                    }
                }
                record = Some(format!("v=spf1 {} -all", terms.join(" ")));
            }
            DirectLaxMulti => {
                // Four /17 blocks = 131,072 addresses, prefixes outside
                // Table 3's /0../16 classes.
                let size = 1u64 << 15;
                let region = 0x6800_0000u64; // 104.0.0.0/8
                let blocks: Vec<String> = (0..4u64)
                    .map(|j| {
                        let idx = (rank * 4 + j) % (1u64 << 9);
                        let base = Ipv4Addr::from((region + idx * size) as u32);
                        format!("ip4:{}", Ipv4Cidr::new(base, 17).unwrap())
                    })
                    .collect();
                record = Some(format!("v=spf1 {} -all", blocks.join(" ")));
            }
            PermissiveAll => {
                let variant = self.rng.random_range(0..5u32);
                record = Some(if variant < 4 {
                    format!("v=spf1 ip4:{}", self.host_ip(rank, 0))
                } else {
                    "v=spf1 mx ?all".to_string()
                });
            }
            PtrOnly => {
                record = Some("v=spf1 ptr -all".into());
            }
            ReportingMod => {
                record = Some(format!(
                    "v=spf1 ip4:{} ra=postmaster rp=100 rr=all -all",
                    self.host_ip(rank, 0)
                ));
            }
            Xss => {
                record = Some("v=spf1 xss=<script>alert('SPF')</script> ~all".into());
            }
            ErrSyntax => {
                record = Some(self.syntax_error_record(rank));
            }
            ErrInvalidIp => {
                let bad = match rank % 4 {
                    0 => "ip4:1.2.3".to_string(),
                    1 => "ip4:mail.example.com".to_string(),
                    2 => "ip4:2001:db8::1".to_string(),
                    _ => "ip4:300.1.2.3".to_string(),
                };
                record = Some(format!("v=spf1 {bad} ip4:{} -all", self.host_ip(rank, 0)));
            }
            ErrTooManyLookups => {
                // 79.6 % of affected domains used the bluehost-style record.
                let fat =
                    if self.rng.random_range(0..1000u32) < 796 || self.providers.fat.len() == 1 {
                        &self.providers.fat[0]
                    } else {
                        let i = 1 + (rank as usize) % (self.providers.fat.len() - 1);
                        &self.providers.fat[i]
                    };
                record = Some(format!("v=spf1 include:{fat} -all"));
            }
            ErrVoid => {
                record = Some(format!(
                    "v=spf1 a:v1.{domain} a:v2.{domain} a:v3.{domain} -all"
                ));
            }
            ErrIncludeLoop => {
                // 71.6 % direct self-inclusion (§5.3).
                if self.rng.random_range(0..1000u32) < 716 {
                    record = Some(format!("v=spf1 include:{domain} -all"));
                } else {
                    let mid = DomainName::parse(&format!("loopmid{rank}.example")).unwrap();
                    self.store
                        .add_txt(&mid, &format!("v=spf1 include:{domain} -all"));
                    record = Some(format!("v=spf1 include:{mid} -all"));
                }
            }
            ErrRedirectLoop => {
                record = Some(format!("v=spf1 redirect={domain}"));
            }
            ErrNotFoundNoSpf => {
                let t = &self.nospf_targets[(rank as usize) % self.nospf_targets.len()];
                record = Some(format!(
                    "v=spf1 ip4:{} include:{t} -all",
                    self.host_ip(rank, 0)
                ));
            }
            ErrNotFoundMultiple => {
                // 75.6 % via the cafe24-style hosting provider.
                let target = if self.rng.random_range(0..1000u32) < 756 {
                    self.providers.multi_record.clone()
                } else {
                    self.multi_targets[(rank as usize) % self.multi_targets.len()].clone()
                };
                record = Some(format!("v=spf1 include:{target} -all"));
            }
            ErrNotFoundNx => {
                record = Some(format!(
                    "v=spf1 include:nx-{rank}.unregistered.example -all"
                ));
            }
            ErrNotFoundEmpty => {
                let t = &self.empty_targets[(rank as usize) % self.empty_targets.len()];
                record = Some(format!("v=spf1 include:{t} -all"));
            }
            ErrNotFoundTimeout => {
                let t = &self.slow_targets[(rank as usize) % self.slow_targets.len()];
                record = Some(format!("v=spf1 include:{t} -all"));
            }
            ErrNotFoundOther => {
                // Oversized label / oversized name (the paper's 3 "other"
                // cases; its third was a UTF-8 decode failure, which cannot
                // be expressed in a &str zone — approximated by another
                // oversized label).
                let target = match rank % 3 {
                    0 | 2 => format!("{}.example", "a".repeat(64)),
                    _ => {
                        let label = "b".repeat(60);
                        format!("{label}.{label}.{label}.{label}.{label}.example")
                    }
                };
                record = Some(format!("v=spf1 include:{target} -all"));
            }
            DirectLarge(class) => {
                let term = match class {
                    0 => "ip4:0.0.0.0/0".to_string(),
                    255 => format!("ip4:{}/0", self.host_ip(rank, 0)),
                    p => {
                        let size = 1u64 << (32 - p as u32);
                        let base = Ipv4Addr::from(((rank * size) % (1u64 << 32)) as u32);
                        format!("ip4:{}", Ipv4Cidr::new(base, p).unwrap())
                    }
                };
                record = Some(format!("v=spf1 {term} -all"));
            }
            LongtailUser => {
                let (_, target) =
                    &self.providers.longtail[*longtail_cursor % self.providers.longtail.len()];
                *longtail_cursor += 1;
                record = Some(format!("v=spf1 include:{target} -all"));
            }
            IncludeClean(k) => {
                record = Some(self.include_clean_record(rank, k));
            }
        }

        if let Some(text) = record {
            self.store.add_txt(&domain, &text);
            if is_spf_cohort(cohort) {
                self.maybe_dmarc(&domain, dmarc_remaining);
                if matches!(cohort, DirectClean | IncludeClean(_)) {
                    self.maybe_deprecated_rr(&domain, &text);
                }
            }
        }
        domain
    }

    /// §5.3's syntax-error mix, proportioned like the paper's percentages.
    fn syntax_error_record(&mut self, rank: u64) -> String {
        let host = self.host_ip(rank, 0);
        // Weights: ipv4 4,216; ipv6 289; ip 2,946; concat 2,699;
        // multiple v=spf1 5,847; whitespace 6,344; other typos 15,955.
        let roll = self.rng.random_range(0..38_296u32);
        if roll < 4_216 {
            format!("v=spf1 ipv4:{host} -all")
        } else if roll < 4_505 {
            "v=spf1 ipv6:2001:db8::44 -all".to_string()
        } else if roll < 7_451 {
            format!("v=spf1 ip:{host} -all")
        } else if roll < 10_150 {
            // Site-verification string concatenated into the record.
            format!("v=spf1 ip4:{host} -all 53Gq0RZkX9wM2c")
        } else if roll < 15_997 {
            format!("v=spf1 ip4:{host} v=spf1 mx -all")
        } else if roll < 22_341 {
            format!("v=spf1 ip4: {host} -all")
        } else {
            // The -al / -all; style dead-all typos of §5.5.
            let typo = if rank.is_multiple_of(2) {
                "-al"
            } else {
                "-all;"
            };
            format!("v=spf1 ip4:{host} {typo}")
        }
    }

    /// A clean record with `k` provider includes (k = 11 means 11–13).
    ///
    /// The pick model encodes a constraint hidden in the paper's own
    /// numbers: outlook alone is used by 2.46M domains while only 2.51M
    /// domains are lax through includes — so the users of the five big
    /// (>100k-IP) providers must overlap almost entirely. We reproduce
    /// that by stacking: every multi-include domain and a calibrated
    /// budget of single-include domains draw predominantly from the big
    /// five; all remaining domains draw from the small providers only.
    fn include_clean_record(&mut self, rank: u64, k: u8) -> String {
        let count = if k == 11 {
            11 + (rank % 3) as usize
        } else {
            k as usize
        };
        let is_lax = if count > 1 {
            true
        } else if self.lax_k1_budget > 0 {
            self.lax_k1_budget -= 1;
            true
        } else {
            false
        };
        let mut picks: Vec<DomainName> = Vec::with_capacity(count);
        let mut guard = 0;
        while picks.len() < count {
            let roll: u64 = self.rng.random();
            let entry = if is_lax {
                // First pick always big (guarantees laxness); further
                // picks stay big-weighted 85 % of the time.
                if picks.is_empty() || self.rng.random_range(0..100u32) < 85 {
                    self.providers.pick_big(roll)
                } else {
                    self.providers.pick_small(roll)
                }
            } else {
                self.providers.pick_small(roll)
            };
            guard += 1;
            if !picks.contains(&entry.domain) {
                picks.push(entry.domain.clone());
            } else if guard > 64 {
                // Distinctness exhausted the preferred pool (only 5 big
                // providers exist); fall back to the full catalog.
                let fallback = self.providers.pick_weighted(roll);
                if !picks.contains(&fallback.domain) {
                    picks.push(fallback.domain.clone());
                }
            }
        }
        let mut terms: Vec<String> = picks.iter().map(|d| format!("include:{d}")).collect();
        // Half the customers also authorize a host or two of their own.
        if self.rng.random_range(0..2u32) == 0 {
            terms.push(format!("ip4:{}", self.host_ip(rank, 1)));
        }
        let all = if self.rng.random_range(0..4u32) == 0 {
            "~all"
        } else {
            "-all"
        };
        format!("v=spf1 {} {all}", terms.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_table_sums_to_paper_total() {
        let total: u64 = cohort_table().iter().map(|(_, c, _)| *c).sum();
        assert_eq!(total, TOTAL_DOMAINS_FULL);
    }

    #[test]
    fn spf_cohorts_sum_to_with_spf() {
        let spf_total: u64 = cohort_table()
            .iter()
            .filter(|(c, _, _)| is_spf_cohort(*c))
            .map(|(_, c, _)| *c)
            .sum();
        assert_eq!(spf_total, WITH_SPF_FULL);
    }

    #[test]
    fn mx_cohorts_sum_to_with_mx() {
        let mx_total: u64 = cohort_table()
            .iter()
            .filter(|(c, _, _)| has_mx(*c))
            .map(|(_, c, _)| *c)
            .sum();
        // DnsTransient domains have MX in the zone but their fault hides
        // it; they are excluded from has_mx() and from this sum.
        assert_eq!(mx_total, WITH_MX_FULL - 1_179);
    }

    #[test]
    fn error_cohorts_sum_to_figure2_total() {
        use Cohort::*;
        let err_total: u64 = cohort_table()
            .iter()
            .filter(|(c, _, _)| {
                matches!(
                    c,
                    ErrSyntax
                        | ErrInvalidIp
                        | ErrTooManyLookups
                        | ErrVoid
                        | ErrIncludeLoop
                        | ErrRedirectLoop
                        | ErrNotFoundNoSpf
                        | ErrNotFoundMultiple
                        | ErrNotFoundNx
                        | ErrNotFoundEmpty
                        | ErrNotFoundTimeout
                        | ErrNotFoundOther
                )
            })
            .map(|(_, c, _)| *c)
            .sum();
        assert_eq!(err_total, 211_018);
    }

    #[test]
    fn small_population_builds_deterministically() {
        let config = PopulationConfig {
            scale: Scale { denominator: 2000 },
            seed: 7,
        };
        let a = Population::build(config);
        let b = Population::build(config);
        assert_eq!(a.domains, b.domains);
        assert_eq!(a.manifest, b.manifest);
        assert_eq!(a.domains.len() as u64, a.manifest["total"]);
        assert_eq!(a.domains.len(), 6412); // 12,823,598 / 2000, rounded
    }

    #[test]
    fn top_segment_is_scaled_million() {
        let config = PopulationConfig {
            scale: Scale { denominator: 1000 },
            seed: 7,
        };
        let p = Population::build(config);
        assert_eq!(p.top_len, 1000);
        assert!(p.domains.len() >= p.top_len);
    }

    #[test]
    fn domains_are_unique() {
        let config = PopulationConfig {
            scale: Scale { denominator: 2000 },
            seed: 9,
        };
        let p = Population::build(config);
        let mut names: Vec<&str> = p.domains.iter().map(|d| d.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
