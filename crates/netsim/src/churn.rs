//! Deterministic zone churn: the longitudinal axis of the study.
//!
//! The paper is a single snapshot; this module generates the time series
//! the churn engine (`spf-crawler`'s longitudinal layer) re-measures.
//! A [`ChurnSimulator`] walks epochs over an existing [`ZoneStore`],
//! emitting seeded [`ChurnBatch`]es of [`ChurnEvent`]s — records added
//! and removed, `+all`→`-all` tightenings (and the reverse loosenings),
//! provider migrations, and MX failover flips in the spirit of
//! Ruohonen's BLBFO backup-MX study.
//!
//! **Locality contract** (DESIGN.md §12): every event *fully replaces*
//! the affected domain's own RRset with a self-contained template that
//! references only the simulator's immutable infrastructure names
//! (churn providers and failover exchanges, published once at
//! construction and never touched again). No event edits another
//! mutable domain's subtree, so the incremental re-crawl only has to
//! invalidate the churned roots themselves — every memoized *unchanged*
//! subtree stays valid.
//!
//! **Determinism**: a batch is a pure function of (seed, epoch, zone
//! state), and zone state is itself a pure function of the build seed
//! plus the prior applied batches, so two identically-built worlds
//! churned with the same seed produce byte-identical event streams.
//! Planning ([`ChurnSimulator::next_epoch`]) is separated from
//! application ([`ChurnBatch::apply`]) so a batch can be *delivered* to
//! a mid-crawl engine and deferred to the next epoch without racing the
//! crawl workers.

use std::sync::Arc;

use spf_dns::{LookupOutcome, RecordData, RecordType, ZoneStore};
use spf_types::DomainName;

/// Number of immutable churn-provider includes published at
/// construction; migrations rotate among them.
pub const CHURN_PROVIDERS: u64 = 4;

/// What happened to a domain in one churn epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// A domain without SPF published a record.
    RecordAdded,
    /// A domain deleted its SPF record outright.
    RecordRemoved,
    /// A lax policy (`+all` / `?all` / `~all` / missing `all`) was
    /// re-published as a tight `-all` record.
    Tightened,
    /// A tight `-all` record was re-published with a lax qualifier —
    /// a fresh lazy gatekeeper.
    Loosened,
    /// The domain migrated to a different (churn-)provider include.
    ProviderMigration,
    /// The domain's MX exchange set flipped between its primary and its
    /// BLBFO-style backup host.
    MxFailover,
    /// The domain published (or tightened to) an enforced DMARC policy
    /// at `_dmarc.<domain>`.
    DmarcAdopted,
    /// The domain deleted its `_dmarc` record.
    DmarcDropped,
    /// The domain's `_mta-sts` policy toggled: published enforce-mode
    /// when absent, removed when present.
    MtaStsFlipped,
}

/// The concrete zone mutation an event performs when applied.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ZoneChange {
    /// Replace the domain's TXT RRset with this single record.
    ReplaceTxt(String),
    /// Remove the domain's TXT RRset.
    RemoveTxt,
    /// Replace the domain's MX RRset with this single exchange.
    SetMx(DomainName),
    /// Replace the `_dmarc.<domain>` TXT RRset with this record.
    SetDmarc(String),
    /// Remove the `_dmarc.<domain>` TXT RRset.
    RemoveDmarc,
    /// Replace the `_mta-sts.<domain>` TXT RRset with this record.
    SetMtaSts(String),
    /// Remove the `_mta-sts.<domain>` TXT RRset.
    RemoveMtaSts,
}

/// One domain's change in one epoch: the classification plus the exact
/// mutation to perform at apply time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Epoch the event belongs to (1-based; epoch 0 is the bootstrap
    /// snapshot).
    pub epoch: u64,
    /// The affected domain.
    pub domain: DomainName,
    /// What kind of change this is.
    pub kind: ChurnKind,
    change: ZoneChange,
}

/// One epoch's planned events, ready to apply.
#[derive(Debug, Clone)]
pub struct ChurnBatch {
    /// The epoch these events belong to.
    pub epoch: u64,
    /// The planned events, in deterministic selection order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnBatch {
    /// The distinct domains this batch touches, deduplicated in event
    /// order — the invalidation set the churn engine queues.
    pub fn domains(&self) -> Vec<DomainName> {
        let mut out: Vec<DomainName> = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            if !out.contains(&ev.domain) {
                out.push(ev.domain.clone());
            }
        }
        out
    }

    /// Apply every event's mutation to `store`, in order. Safe to call
    /// from the engine's single-threaded epoch step; must not run
    /// concurrently with a crawl over the same store.
    pub fn apply(&self, store: &ZoneStore) {
        for ev in &self.events {
            match &ev.change {
                ZoneChange::ReplaceTxt(text) => store.replace_txt(&ev.domain, text),
                ZoneChange::RemoveTxt => store.remove_type(&ev.domain, RecordType::Txt),
                ZoneChange::SetMx(exchange) => {
                    store.remove_type(&ev.domain, RecordType::Mx);
                    store.add_mx(&ev.domain, 10, exchange);
                }
                ZoneChange::SetDmarc(text) => {
                    if let Ok(name) = ev.domain.prepend_label("_dmarc") {
                        store.replace_txt(&name, text);
                    }
                }
                ZoneChange::RemoveDmarc => {
                    if let Ok(name) = ev.domain.prepend_label("_dmarc") {
                        store.remove_type(&name, RecordType::Txt);
                    }
                }
                ZoneChange::SetMtaSts(text) => {
                    if let Ok(name) = ev.domain.prepend_label("_mta-sts") {
                        store.replace_txt(&name, text);
                    }
                }
                ZoneChange::RemoveMtaSts => {
                    if let Ok(name) = ev.domain.prepend_label("_mta-sts") {
                        store.remove_type(&name, RecordType::Txt);
                    }
                }
            }
        }
    }
}

/// Which mixture of [`ChurnKind`]s an epoch draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChurnPreset {
    /// Every kind, chosen uniformly among those applicable to the
    /// domain's current state — the default longitudinal mixture.
    #[default]
    Mixed,
    /// Operators clean up: lax records tighten, SPF-less domains adopt.
    TighteningWave,
    /// Provider consolidation: records migrate between includes.
    ProviderShuffle,
    /// BLBFO failover flapping: MX exchange sets flip, policies stay.
    FailoverFlap,
    /// Auth-stack adoption wave: domains adopt or tighten DMARC and
    /// toggle MTA-STS; SPF records stay put (the deployment-mix axis
    /// of DESIGN.md §13 moving over time).
    AuthStackWave,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Fraction of the population churned per epoch (at least one
    /// domain whenever the rate is positive).
    pub rate: f64,
    /// Seed; the event stream is a pure function of (seed, zone state).
    pub seed: u64,
    /// The kind mixture.
    pub preset: ChurnPreset,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            rate: 0.01,
            seed: 0x23_c4u64,
            preset: ChurnPreset::Mixed,
        }
    }
}

/// The zone-churn simulator: plans one [`ChurnBatch`] per epoch against
/// a live [`ZoneStore`].
pub struct ChurnSimulator {
    store: Arc<ZoneStore>,
    domains: Vec<DomainName>,
    config: ChurnConfig,
    epoch: u64,
    primary_mx: DomainName,
    backup_mx: DomainName,
}

impl ChurnSimulator {
    /// Create a simulator over `store` churning `domains`, publishing
    /// the immutable churn infrastructure (provider includes and
    /// failover exchanges) if a prior simulator has not already done so.
    pub fn new(store: Arc<ZoneStore>, domains: Vec<DomainName>, config: ChurnConfig) -> Self {
        let primary_mx = name("mx.churn-primary.example");
        let backup_mx = name("mx.churn-backup.example");
        if !store.name_exists(&primary_mx) {
            for k in 0..CHURN_PROVIDERS {
                // Disjoint /26s out of TEST-NET-2, one per provider, so
                // migrations move real coverage weight.
                let text = format!("v=spf1 ip4:198.51.100.{}/26 -all", k * 64);
                store.add_txt(&provider_name(k), &text);
            }
            store.add_a(&primary_mx, std::net::Ipv4Addr::new(192, 0, 2, 200));
            store.add_a(&backup_mx, std::net::Ipv4Addr::new(192, 0, 2, 201));
        }
        ChurnSimulator {
            store,
            domains,
            config,
            epoch: 0,
            primary_mx,
            backup_mx,
        }
    }

    /// Epochs planned so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Plan the next epoch's batch from the current zone state, without
    /// applying it. The caller (or the churn engine's deferred delta)
    /// applies it with [`ChurnBatch::apply`].
    pub fn next_epoch(&mut self) -> ChurnBatch {
        self.epoch += 1;
        let mut events = Vec::new();
        if self.domains.is_empty() || self.config.rate <= 0.0 {
            return ChurnBatch {
                epoch: self.epoch,
                events,
            };
        }
        let want = (((self.domains.len() as f64) * self.config.rate).round() as usize).max(1);
        let want = want.min(self.domains.len());
        let mut rng = self
            .config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.epoch);
        let mut picked: Vec<usize> = Vec::with_capacity(want);
        // Rejection-sample distinct ranks; the churn rate is far below
        // saturation, so the attempt bound is never the binding limit.
        let mut attempts = 0usize;
        while picked.len() < want && attempts < want * 64 {
            attempts += 1;
            let idx = (splitmix64(&mut rng) % self.domains.len() as u64) as usize;
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        for idx in picked {
            let domain = self.domains[idx].clone();
            let roll = splitmix64(&mut rng);
            let (kind, change) = self.plan_domain(&domain, roll);
            events.push(ChurnEvent {
                epoch: self.epoch,
                domain,
                kind,
                change,
            });
        }
        ChurnBatch {
            epoch: self.epoch,
            events,
        }
    }

    /// Decide one domain's event from its current record and the preset.
    fn plan_domain(&self, domain: &DomainName, roll: u64) -> (ChurnKind, ZoneChange) {
        let spf = current_spf(&self.store, domain);
        let h = domain.precomputed_hash() ^ roll;
        let kind = match self.config.preset {
            ChurnPreset::FailoverFlap => ChurnKind::MxFailover,
            ChurnPreset::AuthStackWave => {
                match current_auth_layer(&self.store, domain) {
                    // No DMARC yet, or monitoring-only: adopt/tighten.
                    AuthLayerState::NoDmarc | AuthLayerState::Monitoring => ChurnKind::DmarcAdopted,
                    // Enforced already: the wave reaches MTA-STS.
                    AuthLayerState::Enforced => ChurnKind::MtaStsFlipped,
                }
            }
            ChurnPreset::ProviderShuffle => match spf {
                Some(_) => ChurnKind::ProviderMigration,
                None => ChurnKind::RecordAdded,
            },
            ChurnPreset::TighteningWave => match &spf {
                Some(record) if is_lax(record) => ChurnKind::Tightened,
                Some(_) => ChurnKind::ProviderMigration,
                None => ChurnKind::RecordAdded,
            },
            ChurnPreset::Mixed => {
                let mut applicable = vec![ChurnKind::MxFailover, ChurnKind::MtaStsFlipped];
                match current_auth_layer(&self.store, domain) {
                    AuthLayerState::NoDmarc | AuthLayerState::Monitoring => {
                        applicable.push(ChurnKind::DmarcAdopted)
                    }
                    AuthLayerState::Enforced => applicable.push(ChurnKind::DmarcDropped),
                }
                match &spf {
                    None => applicable.push(ChurnKind::RecordAdded),
                    Some(record) => {
                        applicable.push(ChurnKind::RecordRemoved);
                        applicable.push(ChurnKind::ProviderMigration);
                        if is_lax(record) {
                            applicable.push(ChurnKind::Tightened);
                        } else {
                            applicable.push(ChurnKind::Loosened);
                        }
                    }
                }
                applicable[(roll % applicable.len() as u64) as usize]
            }
        };
        let change = match kind {
            ChurnKind::RecordAdded => {
                if h & 1 == 0 {
                    ZoneChange::ReplaceTxt(direct_record(h, "-all"))
                } else {
                    ZoneChange::ReplaceTxt(provider_record(h % CHURN_PROVIDERS))
                }
            }
            ChurnKind::RecordRemoved => ZoneChange::RemoveTxt,
            ChurnKind::Tightened => ZoneChange::ReplaceTxt(direct_record(h, "-all")),
            ChurnKind::Loosened => {
                let qualifier = if h & 2 == 0 { "+all" } else { "?all" };
                ZoneChange::ReplaceTxt(direct_record(h, qualifier))
            }
            ChurnKind::ProviderMigration => {
                ZoneChange::ReplaceTxt(provider_record((h.rotate_right(8)) % CHURN_PROVIDERS))
            }
            ChurnKind::MxFailover => {
                let on_primary = match self.store.lookup(domain, RecordType::Mx) {
                    LookupOutcome::Records(rrs) => rrs.iter().any(|rr| match &rr.data {
                        RecordData::Mx { exchange, .. } => *exchange == self.primary_mx,
                        _ => false,
                    }),
                    _ => false,
                };
                if on_primary {
                    ZoneChange::SetMx(self.backup_mx.clone())
                } else {
                    ZoneChange::SetMx(self.primary_mx.clone())
                }
            }
            ChurnKind::DmarcAdopted => {
                let policy = if h & 4 == 0 { "reject" } else { "quarantine" };
                ZoneChange::SetDmarc(format!("v=DMARC1; p={policy}"))
            }
            ChurnKind::DmarcDropped => ZoneChange::RemoveDmarc,
            ChurnKind::MtaStsFlipped => {
                if has_mta_sts(&self.store, domain) {
                    ZoneChange::RemoveMtaSts
                } else {
                    ZoneChange::SetMtaSts(crate::deployment::mta_sts_record("enforce"))
                }
            }
        };
        (kind, change)
    }
}

/// The domain's current DMARC layer, summarized for churn planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AuthLayerState {
    NoDmarc,
    Monitoring,
    Enforced,
}

fn current_auth_layer(store: &ZoneStore, domain: &DomainName) -> AuthLayerState {
    let Ok(name) = domain.prepend_label("_dmarc") else {
        return AuthLayerState::NoDmarc;
    };
    let Some(text) = store
        .txt_strings(&name)
        .into_iter()
        .find(|t| spf_core::is_dmarc_record(t))
    else {
        return AuthLayerState::NoDmarc;
    };
    match spf_core::parse_dmarc(&text) {
        Ok(record) if record.policy != spf_core::DmarcPolicy::None => AuthLayerState::Enforced,
        Ok(_) => AuthLayerState::Monitoring,
        Err(_) => AuthLayerState::NoDmarc,
    }
}

fn has_mta_sts(store: &ZoneStore, domain: &DomainName) -> bool {
    domain
        .prepend_label("_mta-sts")
        .map(|name| !store.txt_strings(&name).is_empty())
        .unwrap_or(false)
}

/// The domain's current SPF record text, if it publishes exactly the
/// kind of record churn rewrites (any TXT starting `v=spf1`).
fn current_spf(store: &ZoneStore, domain: &DomainName) -> Option<String> {
    store
        .txt_strings(domain)
        .into_iter()
        .find(|t| t.starts_with("v=spf1"))
}

/// Lax: a record a tightening event has something to do to — any
/// non-`-all` terminal qualifier, or no `all` term.
fn is_lax(record: &str) -> bool {
    !record.trim_end().ends_with("-all")
}

fn provider_name(k: u64) -> DomainName {
    name(&format!("spf.churn-provider-{k}.example"))
}

fn provider_record(k: u64) -> String {
    format!("v=spf1 include:{} -all", provider_name(k))
}

fn direct_record(h: u64, all: &str) -> String {
    format!("v=spf1 ip4:203.0.113.{} mx {}", h % 256, all)
}

fn name(s: &str) -> DomainName {
    DomainName::parse(s).expect("static churn infrastructure name is valid")
}

/// The same splitmix64 stream the spoof-matrix vantage selection uses —
/// deterministic across platforms, no external RNG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};
    use crate::scale::Scale;

    fn tiny_world() -> Population {
        Population::build(PopulationConfig {
            scale: Scale::quick_bench(),
            ..PopulationConfig::default()
        })
    }

    #[test]
    fn identical_seeds_produce_identical_streams_and_zones() {
        let build = |seed| {
            let world = tiny_world();
            let mut sim = ChurnSimulator::new(
                Arc::clone(&world.store),
                world.domains.clone(),
                ChurnConfig {
                    rate: 0.05,
                    seed,
                    preset: ChurnPreset::Mixed,
                },
            );
            let mut log = Vec::new();
            for _ in 0..4 {
                let batch = sim.next_epoch();
                batch.apply(&world.store);
                log.extend(batch.events);
            }
            (world, log)
        };
        let (world_a, log_a) = build(7);
        let (world_b, log_b) = build(7);
        assert_eq!(log_a, log_b);
        // Spot-check the zones converged identically for every churned
        // domain.
        for ev in &log_a {
            assert_eq!(
                world_a.store.txt_strings(&ev.domain),
                world_b.store.txt_strings(&ev.domain),
                "diverged at {}",
                ev.domain
            );
        }
        let (_, log_c) = build(8);
        assert_ne!(log_a, log_c, "different seeds should differ");
    }

    #[test]
    fn events_only_touch_selected_domains_and_use_immutable_templates() {
        let world = tiny_world();
        let mut sim = ChurnSimulator::new(
            Arc::clone(&world.store),
            world.domains.clone(),
            ChurnConfig::default(),
        );
        // Infrastructure is pinned before and after churn.
        let infra: Vec<String> = (0..CHURN_PROVIDERS)
            .map(|k| world.store.txt_strings(&provider_name(k)).join(" "))
            .collect();
        let batch = sim.next_epoch();
        assert!(!batch.events.is_empty());
        batch.apply(&world.store);
        for ev in &batch.events {
            assert!(world.domains.contains(&ev.domain));
            // Replacement records are self-contained: any include points
            // at a churn provider, never another population domain.
            for txt in world.store.txt_strings(&ev.domain) {
                if let Some(target) = txt.split("include:").nth(1) {
                    let target = target.split_whitespace().next().unwrap_or("");
                    if !ev_kept_original_record(ev) {
                        assert!(
                            target.contains("churn-provider"),
                            "{} includes mutable name {}",
                            ev.domain,
                            target
                        );
                    }
                }
            }
        }
        let after: Vec<String> = (0..CHURN_PROVIDERS)
            .map(|k| world.store.txt_strings(&provider_name(k)).join(" "))
            .collect();
        assert_eq!(infra, after);
    }

    /// MX failover and the auth-stack events keep the domain's own TXT
    /// policy untouched (DMARC/MTA-STS live at `_dmarc`/`_mta-sts`
    /// child names), so the original record legitimately survives.
    fn ev_kept_original_record(ev: &ChurnEvent) -> bool {
        matches!(
            ev.kind,
            ChurnKind::MxFailover
                | ChurnKind::DmarcAdopted
                | ChurnKind::DmarcDropped
                | ChurnKind::MtaStsFlipped
        )
    }

    #[test]
    fn auth_stack_wave_moves_domains_up_the_stack() {
        let world = tiny_world();
        let mut sim = ChurnSimulator::new(
            Arc::clone(&world.store),
            world.domains.clone(),
            ChurnConfig {
                rate: 0.10,
                seed: 21,
                preset: ChurnPreset::AuthStackWave,
            },
        );
        let batch = sim.next_epoch();
        assert!(!batch.events.is_empty());
        assert!(batch
            .events
            .iter()
            .all(|ev| matches!(ev.kind, ChurnKind::DmarcAdopted | ChurnKind::MtaStsFlipped)));
        batch.apply(&world.store);
        for ev in &batch.events {
            match ev.kind {
                ChurnKind::DmarcAdopted => {
                    assert_eq!(
                        current_auth_layer(&world.store, &ev.domain),
                        AuthLayerState::Enforced,
                        "{} did not end enforced",
                        ev.domain
                    );
                }
                ChurnKind::MtaStsFlipped => {
                    // The wave only reaches MTA-STS on already-enforced
                    // domains, and a flip toggles presence.
                    assert_eq!(
                        current_auth_layer(&world.store, &ev.domain),
                        AuthLayerState::Enforced
                    );
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
        // Re-waving the same domains climbs further: every event in the
        // second epoch over the same picks is MTA-STS once DMARC is
        // enforced everywhere it touched.
        let domains: Vec<DomainName> = batch.domains();
        let mut again = ChurnSimulator::new(
            Arc::clone(&world.store),
            domains,
            ChurnConfig {
                rate: 1.0,
                seed: 22,
                preset: ChurnPreset::AuthStackWave,
            },
        );
        let second = again.next_epoch();
        second.apply(&world.store);
        assert!(second
            .events
            .iter()
            .all(|ev| ev.kind == ChurnKind::MtaStsFlipped));
    }

    #[test]
    fn failover_flips_exchange_set_not_preference() {
        let world = tiny_world();
        let mut sim = ChurnSimulator::new(
            Arc::clone(&world.store),
            world.domains.clone(),
            ChurnConfig {
                rate: 0.02,
                seed: 11,
                preset: ChurnPreset::FailoverFlap,
            },
        );
        let first = sim.next_epoch();
        first.apply(&world.store);
        let domain = &first.events[0].domain;
        let exchanges = |d: &DomainName| match world.store.lookup(d, RecordType::Mx) {
            LookupOutcome::Records(rrs) => rrs
                .iter()
                .filter_map(|rr| match &rr.data {
                    RecordData::Mx { exchange, .. } => Some(exchange.to_string()),
                    _ => None,
                })
                .collect::<Vec<_>>(),
            _ => Vec::new(),
        };
        let primary = exchanges(domain);
        assert_eq!(primary, vec!["mx.churn-primary.example".to_string()]);
        // Flip the same domain again (new simulator, same store) — the
        // exchange SET must change, which is what makes failover visible
        // to the `mx` mechanism (preference flips would be invisible).
        let mut again = ChurnSimulator::new(
            Arc::clone(&world.store),
            vec![domain.clone()],
            ChurnConfig {
                rate: 1.0,
                seed: 12,
                preset: ChurnPreset::FailoverFlap,
            },
        );
        let second = again.next_epoch();
        second.apply(&world.store);
        assert_eq!(
            exchanges(domain),
            vec!["mx.churn-backup.example".to_string()]
        );
    }

    #[test]
    fn tightening_wave_leaves_no_lax_target_untightened() {
        let world = tiny_world();
        let mut sim = ChurnSimulator::new(
            Arc::clone(&world.store),
            world.domains.clone(),
            ChurnConfig {
                rate: 0.05,
                seed: 3,
                preset: ChurnPreset::TighteningWave,
            },
        );
        let batch = sim.next_epoch();
        batch.apply(&world.store);
        for ev in &batch.events {
            if ev.kind == ChurnKind::Tightened {
                let txts = world.store.txt_strings(&ev.domain);
                assert!(txts.iter().any(|t| t.trim_end().ends_with("-all")));
            }
        }
    }
}
