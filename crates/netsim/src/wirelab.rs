//! Per-shard fault/latency presets for the wire-path crawl.
//!
//! The paper's crawler spread queries across 150 resolver endpoints; in a
//! real fleet those endpoints do not fail uniformly — one rack is slow,
//! one upstream is lossy, the rest are healthy. The wire substrate
//! ([`spf_dns::fleet`]) accepts one [`ShardBehavior`] per server shard;
//! this module provides the named profiles the stress suites and the
//! `wire_throughput` bench use, so experiments reference a preset instead
//! of hand-rolling probability vectors.

use std::time::Duration;

use spf_dns::{FaultProfile, ShardBehavior};

/// The determinism profile: no injected faults, no added latency, on any
/// number of shards. Wire-mode crawls under this profile are byte-
/// identical to in-memory crawls (the `wire_stress` suite's invariant).
pub fn zero_faults(shards: usize) -> Vec<ShardBehavior> {
    vec![ShardBehavior::none(); shards.max(1)]
}

/// Uniformly lossy fleet: every shard times out with probability
/// `timeout_p` (the paper's transient-error cohort arising from the
/// transport instead of the zone).
pub fn lossy(shards: usize, timeout_p: f64) -> Vec<ShardBehavior> {
    let profile = FaultProfile {
        timeout: timeout_p,
        nxdomain: 0.0,
        empty: 0.0,
        servfail: 0.0,
    };
    vec![
        ShardBehavior {
            fault: profile,
            latency: Duration::ZERO,
        };
        shards.max(1)
    ]
}

/// One degraded shard in an otherwise healthy fleet: shard `victim` gets
/// heavy timeouts/SERVFAILs plus `latency`, everyone else runs clean —
/// the "one slow resolver out of 150" scenario.
pub fn degraded_shard(shards: usize, victim: usize, latency: Duration) -> Vec<ShardBehavior> {
    let shards = shards.max(1);
    let mut behaviors = zero_faults(shards);
    behaviors[victim % shards] = ShardBehavior {
        fault: FaultProfile {
            timeout: 0.25,
            nxdomain: 0.0,
            empty: 0.0,
            servfail: 0.10,
        },
        latency,
    };
    behaviors
}

/// Uniform added latency on every shard (a far-away fleet), no faults.
pub fn uniform_latency(shards: usize, latency: Duration) -> Vec<ShardBehavior> {
    vec![
        ShardBehavior {
            fault: FaultProfile::none(),
            latency,
        };
        shards.max(1)
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_faults_is_the_none_behavior() {
        let b = zero_faults(4);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|s| *s == ShardBehavior::none()));
        // Degenerate shard counts clamp to one.
        assert_eq!(zero_faults(0).len(), 1);
    }

    #[test]
    fn degraded_shard_hits_only_the_victim() {
        let b = degraded_shard(4, 2, Duration::from_millis(30));
        assert_eq!(b.len(), 4);
        for (i, s) in b.iter().enumerate() {
            if i == 2 {
                assert!(s.fault.timeout > 0.0 && s.latency > Duration::ZERO);
            } else {
                assert_eq!(*s, ShardBehavior::none());
            }
        }
        // The victim index wraps instead of panicking.
        let wrapped = degraded_shard(4, 6, Duration::ZERO);
        assert!(wrapped[2].fault.timeout > 0.0);
    }

    #[test]
    fn lossy_and_latency_apply_uniformly() {
        let lossy = lossy(3, 0.05);
        assert!(lossy.iter().all(|s| (s.fault.timeout - 0.05).abs() < 1e-12));
        let slow = uniform_latency(3, Duration::from_millis(10));
        assert!(slow
            .iter()
            .all(|s| s.latency == Duration::from_millis(10) && s.fault == FaultProfile::none()));
    }
}
