//! Cloud-tenancy presets: synthetic worlds whose *overlap shape* is the
//! experimental variable.
//!
//! The calibrated [`crate::Population`] reproduces the paper's marginals,
//! which fixes its overlap profile; the `overlap_scaling` bench instead
//! needs worlds at both ends of the provider-concentration spectrum so
//! the sweep-line's cost model (O(B log B) in the *boundary* count, not
//! the domain count) can be measured as the shape varies:
//!
//! * [`TenancyPreset::MegaProviders`] — a handful of hyperscalers with
//!   huge ranges, each included by thousands of tenants. Few distinct
//!   boundaries, extreme coverage weights: the paper's §6 cloud story.
//! * [`TenancyPreset::LongTail`] — many small providers plus per-domain
//!   direct ranges. Boundary count grows with the population, weights
//!   stay low: the self-hosted world the cloud displaced.
//!
//! Both presets are deterministic in `(scale, seed)` and build real
//! zones, so they run through the full crawl pipeline (memory or wire).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spf_dns::ZoneStore;
use spf_types::{DomainName, Ipv4Cidr};

use crate::blocks::AddressAllocator;
use crate::scale::Scale;

/// Which overlap shape a tenancy world exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenancyPreset {
    /// Four hyperscale providers (one `/10`…`/13` each); every tenant
    /// includes one or two of them and nothing else. Maximizes coverage
    /// weight per boundary.
    MegaProviders,
    /// One small provider (`/24`) per ~48 tenants plus a direct `/32`
    /// per tenant. Maximizes boundaries per unit of covered space.
    LongTail,
}

impl TenancyPreset {
    /// The preset's identifier in bench keys and reports.
    pub fn key(&self) -> &'static str {
        match self {
            TenancyPreset::MegaProviders => "mega",
            TenancyPreset::LongTail => "long_tail",
        }
    }
}

/// Configuration of a tenancy world.
#[derive(Debug, Clone, Copy)]
pub struct TenancyConfig {
    /// Population scale (1:N of the paper's 12.8M domains).
    pub scale: Scale,
    /// Overlap shape.
    pub preset: TenancyPreset,
    /// RNG seed; same `(scale, preset, seed)` ⇒ identical world.
    pub seed: u64,
}

/// A generated tenancy world, ready to crawl.
pub struct TenancyWorld {
    /// The zone backing the world.
    pub store: Arc<ZoneStore>,
    /// The ranked tenant domains.
    pub domains: Vec<DomainName>,
    /// Provider include targets (not part of [`TenancyWorld::domains`]).
    pub providers: Vec<DomainName>,
}

/// The four hyperscaler prefixes of [`TenancyPreset::MegaProviders`]:
/// 4M, 2M, 1M and 512k addresses.
const MEGA_PREFIXES: [u8; 4] = [10, 11, 12, 13];

/// Tenants per small provider under [`TenancyPreset::LongTail`].
const LONG_TAIL_TENANTS_PER_PROVIDER: u64 = 48;

/// Build a tenancy world. Tenant count is `scale.approx_domains()`, the
/// same sizing rule as the calibrated population.
pub fn build_tenancy(config: TenancyConfig) -> TenancyWorld {
    let store = Arc::new(ZoneStore::new());
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7e4a_0c15);
    let tenants = config.scale.approx_domains().max(1);
    // Providers allocate from 10/8 so the two presets never depend on
    // how much space the tenants' own ranges consume.
    let mut provider_alloc = AddressAllocator::new("10.0.0.0".parse().unwrap(), 8);
    let mut tenant_alloc = AddressAllocator::new("100.64.0.0".parse().unwrap(), 10);

    let provider_count = match config.preset {
        TenancyPreset::MegaProviders => MEGA_PREFIXES.len() as u64,
        TenancyPreset::LongTail => tenants.div_ceil(LONG_TAIL_TENANTS_PER_PROVIDER),
    };
    let mut providers = Vec::with_capacity(provider_count as usize);
    for i in 0..provider_count {
        let name = DomainName::parse(&format!("spf.{}{i}.tenancy.example", config.preset.key()))
            .expect("generated provider names are valid");
        let block = match config.preset {
            TenancyPreset::MegaProviders => provider_alloc.alloc_block(MEGA_PREFIXES[i as usize]),
            TenancyPreset::LongTail => {
                // Take the lower /24 of a /23 so consecutive providers
                // never abut: adjacent equal-weight ranges would merge in
                // the sweep and flatten the boundary count the preset
                // exists to maximize.
                let pair = provider_alloc.alloc_block(23);
                Ipv4Cidr::new(pair.raw_address(), 24).expect("24 is a valid prefix")
            }
        };
        store.add_txt(&name, &format!("v=spf1 ip4:{block} -all"));
        providers.push(name);
    }

    let mut domains = Vec::with_capacity(tenants as usize);
    for t in 0..tenants {
        let name = DomainName::parse(&format!("t{t}.{}.tenancy.example", config.preset.key()))
            .expect("generated tenant names are valid");
        let record = match config.preset {
            TenancyPreset::MegaProviders => {
                // Every tenant rides one hyperscaler; a third ride two —
                // the multi-cloud overlap the sweep has to stack. The
                // second pick is drawn from the *other* providers so a
                // two-cloud tenant never degenerates into a duplicate
                // include (which would flatten to one set).
                let first_idx = rng.random_range(0..providers.len());
                let first = &providers[first_idx];
                if rng.random_range(0..3u32) == 0 {
                    let offset = 1 + rng.random_range(0..providers.len() - 1);
                    let second = &providers[(first_idx + offset) % providers.len()];
                    format!("v=spf1 include:{first} include:{second} -all")
                } else {
                    format!("v=spf1 include:{first} -all")
                }
            }
            TenancyPreset::LongTail => {
                // Tenants cluster onto their neighborhood provider and
                // add a direct host of their own: two fresh boundaries
                // per tenant. Hosts sit on /30 spacing so neighbouring
                // tenants' singletons cannot coalesce into one range.
                let provider = &providers[(t / LONG_TAIL_TENANTS_PER_PROVIDER) as usize];
                let host = tenant_alloc.alloc_block(30).raw_address();
                format!("v=spf1 ip4:{host} include:{provider} -all")
            }
        };
        store.add_txt(&name, &record);
        domains.push(name);
    }

    TenancyWorld {
        store,
        domains,
        providers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_analyzer::Walker;
    use spf_crawler::{crawl, CrawlConfig};
    use spf_dns::ZoneResolver;

    fn world(preset: TenancyPreset) -> TenancyWorld {
        build_tenancy(TenancyConfig {
            scale: Scale {
                denominator: 20_000,
            }, // ≈641 tenants
            preset,
            seed: 7,
        })
    }

    fn weighted(world: &TenancyWorld) -> (u64, usize, u64) {
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&world.store)));
        let out = crawl(&walker, &world.domains, CrawlConfig::with_workers(4));
        let mut coverage = out.coverage;
        let boundaries = coverage.boundary_count();
        let w = coverage.into_weighted();
        (w.max_weight(), boundaries, w.total_covered())
    }

    #[test]
    fn mega_concentrates_long_tail_spreads() {
        let mega = world(TenancyPreset::MegaProviders);
        assert_eq!(mega.providers.len(), 4);
        let tail = world(TenancyPreset::LongTail);
        assert_eq!(tail.providers.len(), 641usize.div_ceil(48));
        let (mega_max, mega_bounds, _) = weighted(&mega);
        let (tail_max, tail_bounds, _) = weighted(&tail);
        // The mega world stacks hundreds of tenants onto few boundaries;
        // the long tail does the opposite.
        assert!(mega_max > 100, "mega max weight {mega_max}");
        assert!(mega_bounds < 64, "mega boundaries {mega_bounds}");
        assert!(tail_max <= 48 + 1, "tail max weight {tail_max}");
        assert!(tail_bounds > 1000, "tail boundaries {tail_bounds}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = world(TenancyPreset::MegaProviders);
        let b = world(TenancyPreset::MegaProviders);
        assert_eq!(a.domains, b.domains);
        let record = |w: &TenancyWorld, i: usize| w.store.txt_strings(&w.domains[i]);
        for i in [0usize, 100, 640] {
            let texts = record(&a, i);
            assert!(!texts.is_empty());
            assert_eq!(texts, record(&b, i));
        }
    }

    #[test]
    fn long_tail_crawls_clean() {
        let tail = world(TenancyPreset::LongTail);
        let walker = Walker::new(ZoneResolver::new(Arc::clone(&tail.store)));
        let out = crawl(&walker, &tail.domains, CrawlConfig::with_workers(2));
        assert!(out.reports.iter().all(|r| r.has_spf && !r.has_error()));
    }
}
