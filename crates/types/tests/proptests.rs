//! Property-based tests for the spf-types data structures.
//!
//! The [`Ipv4Set`] invariants are load-bearing for the whole reproduction:
//! Figure 5 and Table 4 are address *counts* over unions of provider
//! networks, so a merging bug silently skews every downstream number.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;
use spf_types::{DomainName, Ipv4Cidr, Ipv4Set, MacroString};

/// A model-based check: compare Ipv4Set against a BTreeSet of addresses for
/// small ranges.
fn model_insert(ops: &[(u32, u32)]) -> (Ipv4Set, BTreeSet<u32>) {
    let mut set = Ipv4Set::new();
    let mut model = BTreeSet::new();
    for &(lo, hi) in ops {
        set.insert_range(lo, hi);
        for v in lo..=hi {
            model.insert(v);
        }
    }
    (set, model)
}

proptest! {
    #[test]
    fn ipset_count_matches_model(
        ops in proptest::collection::vec((0u32..5000, 0u32..64), 1..20)
    ) {
        let ranges: Vec<(u32, u32)> = ops.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let (set, model) = model_insert(&ranges);
        prop_assert_eq!(set.address_count(), model.len() as u64);
    }

    #[test]
    fn ipset_contains_matches_model(
        ops in proptest::collection::vec((0u32..2000, 0u32..32), 1..12),
        probes in proptest::collection::vec(0u32..2100, 32)
    ) {
        let ranges: Vec<(u32, u32)> = ops.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let (set, model) = model_insert(&ranges);
        for p in probes {
            prop_assert_eq!(set.contains(Ipv4Addr::from(p)), model.contains(&p));
        }
    }

    #[test]
    fn ipset_insertion_order_is_irrelevant(
        ops in proptest::collection::vec((0u32..3000, 0u32..64), 1..10)
    ) {
        let ranges: Vec<(u32, u32)> = ops.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let mut forward = Ipv4Set::new();
        for &(lo, hi) in &ranges {
            forward.insert_range(lo, hi);
        }
        let mut backward = Ipv4Set::new();
        for &(lo, hi) in ranges.iter().rev() {
            backward.insert_range(lo, hi);
        }
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn ipset_union_is_commutative_and_counts_bound(
        a_ops in proptest::collection::vec((0u32..4000, 0u32..64), 0..10),
        b_ops in proptest::collection::vec((0u32..4000, 0u32..64), 0..10)
    ) {
        let a: Ipv4Set = {
            let mut s = Ipv4Set::new();
            for (lo, w) in &a_ops { s.insert_range(*lo, lo + w); }
            s
        };
        let b: Ipv4Set = {
            let mut s = Ipv4Set::new();
            for (lo, w) in &b_ops { s.insert_range(*lo, lo + w); }
            s
        };
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.address_count() <= a.address_count() + b.address_count());
        prop_assert!(ab.address_count() >= a.address_count().max(b.address_count()));
    }

    #[test]
    fn cidr_count_is_power_of_two(prefix in 0u8..=32, a in any::<u32>()) {
        let cidr = Ipv4Cidr::new(Ipv4Addr::from(a), prefix).unwrap();
        prop_assert_eq!(cidr.address_count(), 1u64 << (32 - prefix as u32));
        let (lo, hi) = cidr.range_u32();
        prop_assert_eq!((hi as u64) - (lo as u64) + 1, cidr.address_count());
        // The written address is always inside its own network.
        prop_assert!(cidr.contains(Ipv4Addr::from(a)));
    }

    #[test]
    fn cidr_display_parse_round_trip(prefix in 0u8..=32, a in any::<u32>()) {
        let cidr = Ipv4Cidr::new(Ipv4Addr::from(a), prefix).unwrap();
        let reparsed: Ipv4Cidr = cidr.to_string().parse().unwrap();
        prop_assert_eq!(cidr, reparsed);
    }

    #[test]
    fn domain_parse_round_trip(labels in proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..5)) {
        let name = labels.join(".");
        let d = DomainName::parse(&name).unwrap();
        prop_assert_eq!(d.as_str(), name.as_str());
        let reparsed = DomainName::parse(d.as_str()).unwrap();
        prop_assert_eq!(d, reparsed);
    }

    #[test]
    fn domain_case_insensitive(labels in proptest::collection::vec("[a-zA-Z]{1,8}", 1..4)) {
        let name = labels.join(".");
        let lower = DomainName::parse(&name.to_ascii_lowercase()).unwrap();
        let mixed = DomainName::parse(&name).unwrap();
        prop_assert_eq!(lower, mixed);
    }

    #[test]
    fn macro_string_display_round_trip(
        parts in proptest::collection::vec(
            prop_oneof![
                "[a-z0-9.]{1,6}".prop_map(|s| s),
                Just("%{d}".to_string()),
                Just("%{i4r}".to_string()),
                Just("%%".to_string()),
                Just("%_".to_string()),
            ],
            1..6
        )
    ) {
        let text = parts.concat();
        let parsed = MacroString::parse(&text).unwrap();
        let printed = parsed.to_string();
        let reparsed = MacroString::parse(&printed).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
