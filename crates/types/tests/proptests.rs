//! Property-based tests for the spf-types data structures.
//!
//! The [`Ipv4Set`] invariants are load-bearing for the whole reproduction:
//! Figure 5 and Table 4 are address *counts* over unions of provider
//! networks, so a merging bug silently skews every downstream number.
//! The set *algebra* (union / intersect / difference / subset) and the
//! overlap sweep-line are checked against a naive bit-vector model over a
//! small universe: every interval-set operation must agree point-by-point
//! with the same operation on plain per-address booleans.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;
use spf_types::{CoverageMap, DomainName, Ipv4Cidr, Ipv4Set, Ipv6Set, MacroString};

/// A model-based check: compare Ipv4Set against a BTreeSet of addresses for
/// small ranges.
fn model_insert(ops: &[(u32, u32)]) -> (Ipv4Set, BTreeSet<u32>) {
    let mut set = Ipv4Set::new();
    let mut model = BTreeSet::new();
    for &(lo, hi) in ops {
        set.insert_range(lo, hi);
        for v in lo..=hi {
            model.insert(v);
        }
    }
    (set, model)
}

/// The naive model universe for the set-algebra properties: every
/// interval operation is compared against per-address booleans over
/// `0..UNIVERSE`.
const UNIVERSE: u32 = 512;

/// Build an [`Ipv4Set`] and its bit-vector model from `(lo, width)` ops
/// clamped to the universe.
fn bitvec_set(ops: &[(u32, u32)]) -> (Ipv4Set, Vec<bool>) {
    let mut set = Ipv4Set::new();
    let mut bits = vec![false; UNIVERSE as usize];
    for &(lo, w) in ops {
        let lo = lo % UNIVERSE;
        let hi = (lo + w).min(UNIVERSE - 1);
        set.insert_range(lo, hi);
        for bit in bits.iter_mut().take(hi as usize + 1).skip(lo as usize) {
            *bit = true;
        }
    }
    (set, bits)
}

/// Assert that `set` matches `bits` at every point of the universe (and
/// nowhere above it).
fn assert_matches_bits(set: &Ipv4Set, bits: &[bool]) -> Result<(), String> {
    for (v, &expected) in bits.iter().enumerate() {
        prop_assert_eq!(
            set.contains(Ipv4Addr::from(v as u32)),
            expected,
            "mismatch at address {}",
            v
        );
    }
    prop_assert!(!set.contains(Ipv4Addr::from(UNIVERSE)));
    prop_assert_eq!(
        set.address_count(),
        bits.iter().filter(|b| **b).count() as u64
    );
    Ok(())
}

/// The strategy shared by the algebra properties: up to 8 small ranges.
fn ops_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..UNIVERSE, 0u32..48), 0..8)
}

proptest! {
    #[test]
    fn ipset_count_matches_model(
        ops in proptest::collection::vec((0u32..5000, 0u32..64), 1..20)
    ) {
        let ranges: Vec<(u32, u32)> = ops.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let (set, model) = model_insert(&ranges);
        prop_assert_eq!(set.address_count(), model.len() as u64);
    }

    #[test]
    fn ipset_contains_matches_model(
        ops in proptest::collection::vec((0u32..2000, 0u32..32), 1..12),
        probes in proptest::collection::vec(0u32..2100, 32)
    ) {
        let ranges: Vec<(u32, u32)> = ops.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let (set, model) = model_insert(&ranges);
        for p in probes {
            prop_assert_eq!(set.contains(Ipv4Addr::from(p)), model.contains(&p));
        }
    }

    #[test]
    fn ipset_insertion_order_is_irrelevant(
        ops in proptest::collection::vec((0u32..3000, 0u32..64), 1..10)
    ) {
        let ranges: Vec<(u32, u32)> = ops.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let mut forward = Ipv4Set::new();
        for &(lo, hi) in &ranges {
            forward.insert_range(lo, hi);
        }
        let mut backward = Ipv4Set::new();
        for &(lo, hi) in ranges.iter().rev() {
            backward.insert_range(lo, hi);
        }
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn ipset_union_is_commutative_and_counts_bound(
        a_ops in proptest::collection::vec((0u32..4000, 0u32..64), 0..10),
        b_ops in proptest::collection::vec((0u32..4000, 0u32..64), 0..10)
    ) {
        let a: Ipv4Set = {
            let mut s = Ipv4Set::new();
            for (lo, w) in &a_ops { s.insert_range(*lo, lo + w); }
            s
        };
        let b: Ipv4Set = {
            let mut s = Ipv4Set::new();
            for (lo, w) in &b_ops { s.insert_range(*lo, lo + w); }
            s
        };
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.address_count() <= a.address_count() + b.address_count());
        prop_assert!(ab.address_count() >= a.address_count().max(b.address_count()));
    }

    #[test]
    fn cidr_count_is_power_of_two(prefix in 0u8..=32, a in any::<u32>()) {
        let cidr = Ipv4Cidr::new(Ipv4Addr::from(a), prefix).unwrap();
        prop_assert_eq!(cidr.address_count(), 1u64 << (32 - prefix as u32));
        let (lo, hi) = cidr.range_u32();
        prop_assert_eq!((hi as u64) - (lo as u64) + 1, cidr.address_count());
        // The written address is always inside its own network.
        prop_assert!(cidr.contains(Ipv4Addr::from(a)));
    }

    #[test]
    fn cidr_display_parse_round_trip(prefix in 0u8..=32, a in any::<u32>()) {
        let cidr = Ipv4Cidr::new(Ipv4Addr::from(a), prefix).unwrap();
        let reparsed: Ipv4Cidr = cidr.to_string().parse().unwrap();
        prop_assert_eq!(cidr, reparsed);
    }

    #[test]
    fn domain_parse_round_trip(labels in proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..5)) {
        let name = labels.join(".");
        let d = DomainName::parse(&name).unwrap();
        prop_assert_eq!(d.as_str(), name.as_str());
        let reparsed = DomainName::parse(d.as_str()).unwrap();
        prop_assert_eq!(d, reparsed);
    }

    #[test]
    fn domain_case_insensitive(labels in proptest::collection::vec("[a-zA-Z]{1,8}", 1..4)) {
        let name = labels.join(".");
        let lower = DomainName::parse(&name.to_ascii_lowercase()).unwrap();
        let mixed = DomainName::parse(&name).unwrap();
        prop_assert_eq!(lower, mixed);
    }

    #[test]
    fn ipset_intersect_matches_bitvec_model(
        a_ops in ops_strategy(),
        b_ops in ops_strategy()
    ) {
        let (a, a_bits) = bitvec_set(&a_ops);
        let (b, b_bits) = bitvec_set(&b_ops);
        let i = a.intersect(&b);
        let model: Vec<bool> = a_bits.iter().zip(&b_bits).map(|(x, y)| *x && *y).collect();
        assert_matches_bits(&i, &model)?;
        // Commutativity and the canonical representation.
        prop_assert_eq!(&i, &b.intersect(&a));
        prop_assert!(i.is_subset(&a) && i.is_subset(&b));
    }

    #[test]
    fn ipset_difference_matches_bitvec_model(
        a_ops in ops_strategy(),
        b_ops in ops_strategy()
    ) {
        let (a, a_bits) = bitvec_set(&a_ops);
        let (b, b_bits) = bitvec_set(&b_ops);
        let d = a.difference(&b);
        let model: Vec<bool> = a_bits.iter().zip(&b_bits).map(|(x, y)| *x && !*y).collect();
        assert_matches_bits(&d, &model)?;
        // a = (a \ b) ∪ (a ∩ b), and the difference avoids b entirely.
        prop_assert_eq!(d.union(&a.intersect(&b)), a);
        prop_assert!(!d.intersects(&b));
    }

    #[test]
    fn ipset_union_matches_bitvec_model(
        a_ops in ops_strategy(),
        b_ops in ops_strategy()
    ) {
        let (a, a_bits) = bitvec_set(&a_ops);
        let (b, b_bits) = bitvec_set(&b_ops);
        let u = a.union(&b);
        let model: Vec<bool> = a_bits.iter().zip(&b_bits).map(|(x, y)| *x || *y).collect();
        assert_matches_bits(&u, &model)?;
        prop_assert!(a.is_subset(&u) && b.is_subset(&u));
    }

    #[test]
    fn ipset_predicates_match_bitvec_model(
        a_ops in ops_strategy(),
        b_ops in ops_strategy()
    ) {
        let (a, a_bits) = bitvec_set(&a_ops);
        let (b, b_bits) = bitvec_set(&b_ops);
        let model_intersects = a_bits.iter().zip(&b_bits).any(|(x, y)| *x && *y);
        let model_subset = a_bits.iter().zip(&b_bits).all(|(x, y)| !*x || *y);
        prop_assert_eq!(a.intersects(&b), model_intersects);
        prop_assert_eq!(b.intersects(&a), model_intersects);
        prop_assert_eq!(a.is_subset(&b), model_subset);
    }

    #[test]
    fn ipv6set_algebra_matches_ipv4_shape(
        a_ops in ops_strategy(),
        b_ops in ops_strategy()
    ) {
        // The two wrappers share one interval core; embedding the same
        // small universe into u128 space must give identical shapes.
        let (a4, _) = bitvec_set(&a_ops);
        let (b4, _) = bitvec_set(&b_ops);
        let lift = |s: &Ipv4Set| -> Ipv6Set {
            let mut out = Ipv6Set::new();
            for (lo, hi) in s.iter_ranges_u32() {
                out.insert_range(lo as u128, hi as u128);
            }
            out
        };
        let (a6, b6) = (lift(&a4), lift(&b4));
        prop_assert_eq!(lift(&a4.intersect(&b4)), a6.intersect(&b6));
        prop_assert_eq!(lift(&a4.difference(&b4)), a6.difference(&b6));
        prop_assert_eq!(lift(&a4.union(&b4)), a6.union(&b6));
        prop_assert_eq!(a4.intersects(&b4), a6.intersects(&b6));
        prop_assert_eq!(a4.is_subset(&b4), a6.is_subset(&b6));
        prop_assert_eq!(a4.address_count() as u128, a6.address_count());
    }

    #[test]
    fn coverage_sweep_matches_naive_counting(
        domains in proptest::collection::vec(ops_strategy(), 0..12)
    ) {
        // The sweep-line must agree with counting, per address, how many
        // domains' sets contain it — the naive O(domains × probes) scan
        // the overlap engine replaces.
        let sets: Vec<Ipv4Set> = domains.iter().map(|ops| bitvec_set(ops).0).collect();
        let mut map = CoverageMap::new();
        for s in &sets {
            map.add_set(s);
        }
        prop_assert_eq!(map.set_count(), sets.len() as u64);
        let weighted = map.into_weighted();
        let mut max_naive = 0u64;
        let mut covered_naive = 0u64;
        for v in 0..UNIVERSE {
            let addr = Ipv4Addr::from(v);
            let naive = sets.iter().filter(|s| s.contains(addr)).count() as u64;
            prop_assert_eq!(weighted.weight_at(addr), naive, "weight at {}", v);
            max_naive = max_naive.max(naive);
            if naive > 0 {
                covered_naive += 1;
            }
        }
        prop_assert_eq!(weighted.max_weight(), max_naive);
        prop_assert_eq!(weighted.total_covered(), covered_naive);
        for (k, addrs) in weighted.power_of_two_histogram() {
            let naive_k = (0..UNIVERSE)
                .filter(|v| {
                    let addr = Ipv4Addr::from(*v);
                    sets.iter().filter(|s| s.contains(addr)).count() as u64 >= k
                })
                .count() as u64;
            prop_assert_eq!(addrs, naive_k, "histogram at k={}", k);
        }
    }

    #[test]
    fn macro_string_display_round_trip(
        parts in proptest::collection::vec(
            prop_oneof![
                "[a-z0-9.]{1,6}".prop_map(|s| s),
                Just("%{d}".to_string()),
                Just("%{i4r}".to_string()),
                Just("%%".to_string()),
                Just("%_".to_string()),
            ],
            1..6
        )
    ) {
        let text = parts.concat();
        let parsed = MacroString::parse(&text).unwrap();
        let printed = parsed.to_string();
        let reparsed = MacroString::parse(&printed).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
