//! One renderer for every telemetry line.
//!
//! The CLI's `[throughput]`, `[wire]`, `[service]`, `[compiler]`, and
//! cache lines used to be five hand-rolled `format!` calls drifting
//! apart in style. Each counter bundle now implements [`Stats`] — a
//! scope tag plus typed [`StatItem`]s — and [`render_stats`] is the
//! single formatter all of them share: `[scope] label=value ...` with
//! per-type value formatting (counts plain, rates as `/s`, fractions as
//! percentages).

use std::fmt;

/// A typed telemetry value; the variant picks the rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// A plain counter, rendered as its digits.
    Count(u64),
    /// A dimensionless number, rendered with two decimals.
    Float(f64),
    /// A throughput, rendered as `{:.0}/s`.
    PerSec(f64),
    /// A fraction in `[0, 1]`, rendered as `{:.1}%`.
    Percent(f64),
    /// A free-form value, rendered verbatim.
    Text(String),
}

impl fmt::Display for StatValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatValue::Count(n) => write!(f, "{n}"),
            StatValue::Float(v) => write!(f, "{v:.2}"),
            StatValue::PerSec(v) => write!(f, "{v:.0}/s"),
            StatValue::Percent(v) => write!(f, "{:.1}%", v * 100.0),
            StatValue::Text(s) => f.write_str(s),
        }
    }
}

/// One labeled telemetry value inside a [`Stats`] line.
#[derive(Debug, Clone, PartialEq)]
pub struct StatItem {
    /// The label printed before `=`.
    pub label: &'static str,
    /// The typed value printed after it.
    pub value: StatValue,
}

impl StatItem {
    /// A counter item.
    pub fn count(label: &'static str, value: u64) -> StatItem {
        StatItem {
            label,
            value: StatValue::Count(value),
        }
    }

    /// A two-decimal number item.
    pub fn float(label: &'static str, value: f64) -> StatItem {
        StatItem {
            label,
            value: StatValue::Float(value),
        }
    }

    /// A throughput item.
    pub fn per_sec(label: &'static str, value: f64) -> StatItem {
        StatItem {
            label,
            value: StatValue::PerSec(value),
        }
    }

    /// A fraction-as-percentage item.
    pub fn percent(label: &'static str, fraction: f64) -> StatItem {
        StatItem {
            label,
            value: StatValue::Percent(fraction),
        }
    }

    /// A verbatim text item.
    pub fn text(label: &'static str, value: impl Into<String>) -> StatItem {
        StatItem {
            label,
            value: StatValue::Text(value.into()),
        }
    }
}

/// A telemetry bundle that renders through the shared formatter.
pub trait Stats {
    /// The bracket tag of the line (`throughput`, `wire`, `service`, …).
    fn scope(&self) -> &'static str;

    /// The labeled values, in print order.
    fn items(&self) -> Vec<StatItem>;

    /// The rendered line — every implementor goes through
    /// [`render_stats`], so all CLI telemetry shares one format.
    fn render(&self) -> String {
        render_stats(self.scope(), &self.items())
    }
}

/// The one formatter: `[scope] label=value label=value ...`.
pub fn render_stats(scope: &str, items: &[StatItem]) -> String {
    let mut out = format!("[{scope}]");
    for item in items {
        out.push(' ');
        out.push_str(item.label);
        out.push('=');
        out.push_str(&item.value.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo;
    impl Stats for Demo {
        fn scope(&self) -> &'static str {
            "demo"
        }
        fn items(&self) -> Vec<StatItem> {
            vec![
                StatItem::count("served", 12),
                StatItem::per_sec("rate", 1234.56),
                StatItem::percent("hit", 0.4567),
                StatItem::float("amp", 2.5),
                StatItem::text("peer", "udp"),
            ]
        }
    }

    #[test]
    fn renderer_formats_every_value_type() {
        assert_eq!(
            Demo.render(),
            "[demo] served=12 rate=1235/s hit=45.7% amp=2.50 peer=udp"
        );
    }

    #[test]
    fn empty_items_render_the_scope_alone() {
        assert_eq!(render_stats("empty", &[]), "[empty]");
    }

    #[test]
    fn trait_objects_render_too() {
        let dyn_stats: &dyn Stats = &Demo;
        assert!(dyn_stats.render().starts_with("[demo] "));
    }
}
