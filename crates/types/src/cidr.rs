//! CIDR networks and the paper's invalid-IP-address taxonomy.
//!
//! Section 5.3 of the paper classifies invalid IP addresses in `ip4:`/`ip6:`
//! mechanisms into four concrete mistakes, all of which [`Ip4ParseError`]
//! reproduces:
//!
//! * no IP at all (`ip4:`),
//! * wrong number of octets (`ip4:1.2.3`),
//! * a domain instead of an IP (`ip4:mail.example.com`),
//! * wrong IP version (`ip4:2001:db8::1`).
//!
//! Section 6.2 additionally distinguishes a *specific host address with a
//! pathological prefix* (e.g. `1.2.3.4/0`, "rather a misunderstanding of
//! CIDR prefixes") from an intentional `0.0.0.0/0`;
//! [`Ipv4Cidr::has_host_bits`] lets the analyzer make the same distinction.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Classification of a malformed IPv4 argument, mirroring the four error
/// types in Section 5.3 plus prefix-length problems.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ip4ParseError {
    /// `ip4:` with nothing after the colon.
    NoIp,
    /// An octet count other than 4 (`1.2.3` or `1.2.3.4.5`).
    WrongOctetCount {
        /// How many dot-separated parts were present.
        octets: usize,
    },
    /// A hostname where an address was expected.
    DomainInsteadOfIp,
    /// An IPv6 address in an `ip4:` mechanism (or vice versa).
    WrongIpVersion,
    /// An octet failed to parse as 0..=255.
    BadOctet {
        /// The offending octet text.
        octet: String,
    },
    /// The prefix length is not in 0..=32.
    BadPrefixLen {
        /// The offending prefix text.
        len: String,
    },
}

impl fmt::Display for Ip4ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ip4ParseError::NoIp => write!(f, "no IP address given"),
            Ip4ParseError::WrongOctetCount { octets } => {
                write!(f, "wrong number of octets ({octets} instead of 4)")
            }
            Ip4ParseError::DomainInsteadOfIp => write!(f, "a domain was given instead of an IP"),
            Ip4ParseError::WrongIpVersion => write!(f, "wrong IP version for this mechanism"),
            Ip4ParseError::BadOctet { octet } => write!(f, "invalid octet {octet:?}"),
            Ip4ParseError::BadPrefixLen { len } => write!(f, "invalid CIDR prefix length {len:?}"),
        }
    }
}

impl std::error::Error for Ip4ParseError {}

/// An IPv4 network in CIDR notation.
///
/// The address is stored exactly as written (host bits are *not* masked
/// away) because the analyzer needs to distinguish `0.0.0.0/0` from
/// `198.51.100.7/0`. Use [`Ipv4Cidr::network`] for the canonical base.
///
/// ```
/// use spf_types::Ipv4Cidr;
/// let c: Ipv4Cidr = "192.0.2.0/24".parse().unwrap();
/// assert_eq!(c.address_count(), 256);
/// assert!(c.contains("192.0.2.200".parse().unwrap()));
/// assert!(!c.contains("192.0.3.1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Cidr {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Build from parts. Fails if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Result<Self, Ip4ParseError> {
        if prefix_len > 32 {
            return Err(Ip4ParseError::BadPrefixLen {
                len: prefix_len.to_string(),
            });
        }
        Ok(Ipv4Cidr { addr, prefix_len })
    }

    /// A /32 covering exactly one host.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Cidr {
            addr,
            prefix_len: 32,
        }
    }

    /// Parse `a.b.c.d` or `a.b.c.d/len`, classifying failures per the paper.
    pub fn parse(input: &str) -> Result<Self, Ip4ParseError> {
        let (ip_part, prefix_part) = match input.split_once('/') {
            Some((ip, len)) => (ip, Some(len)),
            None => (input, None),
        };
        let addr = parse_ipv4_strict(ip_part)?;
        let prefix_len = match prefix_part {
            None => 32,
            Some(len_str) => {
                // An empty prefix after '/' ("1.2.3.4/") is a bad prefix.
                let len: u8 = len_str.parse().map_err(|_| Ip4ParseError::BadPrefixLen {
                    len: len_str.to_string(),
                })?;
                if len > 32 {
                    return Err(Ip4ParseError::BadPrefixLen {
                        len: len_str.to_string(),
                    });
                }
                len
            }
        };
        Ok(Ipv4Cidr { addr, prefix_len })
    }

    /// The address exactly as written (host bits preserved).
    pub fn raw_address(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The netmask as a u32 (`/24` → `0xffff_ff00`).
    pub fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len)
        }
    }

    /// The canonical network base address (host bits cleared).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.addr) & self.mask())
    }

    /// The last address of the network (broadcast for /24 etc.).
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.addr) & self.mask() | !self.mask())
    }

    /// Number of addresses covered: `2^(32 - prefix_len)`.
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - self.prefix_len as u32)
    }

    /// True if the written address has bits set below the prefix —
    /// e.g. `198.51.100.7/0`. The paper treats such entries as CIDR
    /// misunderstandings rather than intentional allow-everything rules.
    pub fn has_host_bits(&self) -> bool {
        u32::from(self.addr) & !self.mask() != 0
    }

    /// Membership test.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & self.mask() == u32::from(self.addr) & self.mask()
    }

    /// The inclusive `(first, last)` range as u32s, for interval-set math.
    pub fn range_u32(&self) -> (u32, u32) {
        let base = u32::from(self.addr) & self.mask();
        (base, base | !self.mask())
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix_len == 32 {
            write!(f, "{}", self.addr)
        } else {
            write!(f, "{}/{}", self.addr, self.prefix_len)
        }
    }
}

impl FromStr for Ipv4Cidr {
    type Err = Ip4ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ipv4Cidr::parse(s)
    }
}

/// Parse a dotted-quad IPv4 address with the paper's error taxonomy,
/// rejecting everything `std`'s lenient-ish parser would mask.
pub fn parse_ipv4_strict(input: &str) -> Result<Ipv4Addr, Ip4ParseError> {
    if input.is_empty() {
        return Err(Ip4ParseError::NoIp);
    }
    if input.contains(':') {
        // Looks like IPv6 in an ip4 context.
        if input.parse::<Ipv6Addr>().is_ok()
            || input.chars().all(|c| c.is_ascii_hexdigit() || c == ':')
        {
            return Err(Ip4ParseError::WrongIpVersion);
        }
        return Err(Ip4ParseError::DomainInsteadOfIp);
    }
    let parts: Vec<&str> = input.split('.').collect();
    let all_numeric = parts
        .iter()
        .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()));
    if !all_numeric {
        return Err(Ip4ParseError::DomainInsteadOfIp);
    }
    if parts.len() != 4 {
        return Err(Ip4ParseError::WrongOctetCount {
            octets: parts.len(),
        });
    }
    let mut octets = [0u8; 4];
    for (i, part) in parts.iter().enumerate() {
        octets[i] = part.parse::<u8>().map_err(|_| Ip4ParseError::BadOctet {
            octet: (*part).to_string(),
        })?;
    }
    Ok(Ipv4Addr::from(octets))
}

/// Errors raised while parsing an IPv6 CIDR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ip6ParseError {
    /// `ip6:` with nothing after the colon.
    NoIp,
    /// Not parseable as an IPv6 address.
    BadAddress {
        /// The text that failed to parse.
        input: String,
    },
    /// An IPv4 address in an `ip6:` mechanism.
    WrongIpVersion,
    /// The prefix length is not in 0..=128.
    BadPrefixLen {
        /// The offending prefix text.
        len: String,
    },
}

impl fmt::Display for Ip6ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ip6ParseError::NoIp => write!(f, "no IPv6 address given"),
            Ip6ParseError::BadAddress { input } => write!(f, "invalid IPv6 address {input:?}"),
            Ip6ParseError::WrongIpVersion => write!(f, "wrong IP version for this mechanism"),
            Ip6ParseError::BadPrefixLen { len } => {
                write!(f, "invalid IPv6 prefix length {len:?}")
            }
        }
    }
}

impl std::error::Error for Ip6ParseError {}

/// An IPv6 network in CIDR notation.
///
/// The paper restricts its quantitative analysis to IPv4 (only 0.5 % of
/// domains use `ip6`), but the evaluator still has to *match* ip6 terms,
/// so the full type is provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Cidr {
    addr: Ipv6Addr,
    prefix_len: u8,
}

impl Ipv6Cidr {
    /// Build from parts. Fails if `prefix_len > 128`.
    pub fn new(addr: Ipv6Addr, prefix_len: u8) -> Result<Self, Ip6ParseError> {
        if prefix_len > 128 {
            return Err(Ip6ParseError::BadPrefixLen {
                len: prefix_len.to_string(),
            });
        }
        Ok(Ipv6Cidr { addr, prefix_len })
    }

    /// A /128 covering exactly one host.
    pub fn host(addr: Ipv6Addr) -> Self {
        Ipv6Cidr {
            addr,
            prefix_len: 128,
        }
    }

    /// Parse `addr` or `addr/len`.
    pub fn parse(input: &str) -> Result<Self, Ip6ParseError> {
        let (ip_part, prefix_part) = match input.split_once('/') {
            Some((ip, len)) => (ip, Some(len)),
            None => (input, None),
        };
        if ip_part.is_empty() {
            return Err(Ip6ParseError::NoIp);
        }
        let addr: Ipv6Addr = ip_part.parse().map_err(|_| {
            if ip_part.parse::<Ipv4Addr>().is_ok() {
                Ip6ParseError::WrongIpVersion
            } else {
                Ip6ParseError::BadAddress {
                    input: ip_part.to_string(),
                }
            }
        })?;
        let prefix_len = match prefix_part {
            None => 128,
            Some(len_str) => {
                let len: u8 = len_str.parse().map_err(|_| Ip6ParseError::BadPrefixLen {
                    len: len_str.to_string(),
                })?;
                if len > 128 {
                    return Err(Ip6ParseError::BadPrefixLen {
                        len: len_str.to_string(),
                    });
                }
                len
            }
        };
        Ok(Ipv6Cidr { addr, prefix_len })
    }

    /// The address exactly as written.
    pub fn raw_address(&self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    fn mask(&self) -> u128 {
        if self.prefix_len == 0 {
            0
        } else {
            u128::MAX << (128 - self.prefix_len as u32)
        }
    }

    /// Membership test.
    pub fn contains(&self, ip: Ipv6Addr) -> bool {
        u128::from(ip) & self.mask() == u128::from(self.addr) & self.mask()
    }

    /// Number of addresses covered, saturating at `u128::MAX` for /0.
    pub fn address_count(&self) -> u128 {
        if self.prefix_len == 0 {
            u128::MAX
        } else {
            1u128 << (128 - self.prefix_len as u32)
        }
    }

    /// The inclusive `(first, last)` range as u128s, for interval-set math
    /// (the IPv6 counterpart of [`Ipv4Cidr::range_u32`]).
    pub fn range_u128(&self) -> (u128, u128) {
        let base = u128::from(self.addr) & self.mask();
        (base, base | !self.mask())
    }
}

impl fmt::Display for Ipv6Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix_len == 128 {
            write!(f, "{}", self.addr)
        } else {
            write!(f, "{}/{}", self.addr, self.prefix_len)
        }
    }
}

impl FromStr for Ipv6Cidr {
    type Err = Ip6ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ipv6Cidr::parse(s)
    }
}

/// A dual-prefix pair used by the `a` and `mx` mechanisms, which accept
/// independent IPv4 and IPv6 prefix lengths (`a:host/24//64`, RFC 7208 §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DualCidr {
    /// IPv4 prefix length applied to A records (default 32).
    pub v4: u8,
    /// IPv6 prefix length applied to AAAA records (default 128).
    pub v6: u8,
}

impl Default for DualCidr {
    fn default() -> Self {
        DualCidr { v4: 32, v6: 128 }
    }
}

impl DualCidr {
    /// True when both prefixes are at their single-host defaults.
    pub fn is_default(&self) -> bool {
        self.v4 == 32 && self.v6 == 128
    }
}

impl fmt::Display for DualCidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.v4, self.v6) {
            (32, 128) => Ok(()),
            (v4, 128) => write!(f, "/{v4}"),
            (32, v6) => write!(f, "//{v6}"),
            (v4, v6) => write!(f, "/{v4}//{v6}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_host() {
        let c = Ipv4Cidr::parse("192.0.2.1").unwrap();
        assert_eq!(c.prefix_len(), 32);
        assert_eq!(c.address_count(), 1);
        assert_eq!(c.to_string(), "192.0.2.1");
    }

    #[test]
    fn parses_network() {
        let c = Ipv4Cidr::parse("10.0.0.0/8").unwrap();
        assert_eq!(c.address_count(), 1 << 24);
        assert!(c.contains("10.255.255.255".parse().unwrap()));
        assert!(!c.contains("11.0.0.0".parse().unwrap()));
    }

    #[test]
    fn slash_zero_covers_everything() {
        let c = Ipv4Cidr::parse("0.0.0.0/0").unwrap();
        assert_eq!(c.address_count(), 1u64 << 32);
        assert!(c.contains("255.255.255.255".parse().unwrap()));
        assert!(!c.has_host_bits());
    }

    #[test]
    fn host_bits_detected_for_misunderstood_prefix() {
        // Paper §6.2: 15 domains wrote a specific address with /0.
        let c = Ipv4Cidr::parse("198.51.100.7/0").unwrap();
        assert!(c.has_host_bits());
        assert_eq!(c.network(), Ipv4Addr::new(0, 0, 0, 0));
        let proper = Ipv4Cidr::parse("192.0.2.0/24").unwrap();
        assert!(!proper.has_host_bits());
    }

    #[test]
    fn error_no_ip() {
        assert_eq!(Ipv4Cidr::parse(""), Err(Ip4ParseError::NoIp));
    }

    #[test]
    fn error_wrong_octet_count() {
        assert_eq!(
            Ipv4Cidr::parse("1.2.3"),
            Err(Ip4ParseError::WrongOctetCount { octets: 3 })
        );
        assert_eq!(
            Ipv4Cidr::parse("1.2.3.4.5"),
            Err(Ip4ParseError::WrongOctetCount { octets: 5 })
        );
    }

    #[test]
    fn error_domain_instead_of_ip() {
        assert_eq!(
            Ipv4Cidr::parse("mail.example.com"),
            Err(Ip4ParseError::DomainInsteadOfIp)
        );
    }

    #[test]
    fn error_wrong_version() {
        assert_eq!(
            Ipv4Cidr::parse("2001:db8::1"),
            Err(Ip4ParseError::WrongIpVersion)
        );
        assert_eq!(
            Ipv6Cidr::parse("192.0.2.1"),
            Err(Ip6ParseError::WrongIpVersion)
        );
    }

    #[test]
    fn error_octet_out_of_range() {
        assert!(matches!(
            Ipv4Cidr::parse("1.2.3.256"),
            Err(Ip4ParseError::BadOctet { .. })
        ));
    }

    #[test]
    fn error_bad_prefix() {
        assert!(matches!(
            Ipv4Cidr::parse("1.2.3.4/33"),
            Err(Ip4ParseError::BadPrefixLen { .. })
        ));
        assert!(matches!(
            Ipv4Cidr::parse("1.2.3.4/"),
            Err(Ip4ParseError::BadPrefixLen { .. })
        ));
        assert!(matches!(
            Ipv4Cidr::parse("1.2.3.4/ab"),
            Err(Ip4ParseError::BadPrefixLen { .. })
        ));
    }

    #[test]
    fn range_u32_is_inclusive() {
        let c = Ipv4Cidr::parse("192.0.2.0/30").unwrap();
        let (lo, hi) = c.range_u32();
        assert_eq!(hi - lo + 1, 4);
    }

    #[test]
    fn ipv6_basics() {
        let c = Ipv6Cidr::parse("2001:db8::/32").unwrap();
        assert!(c.contains("2001:db8:1::1".parse().unwrap()));
        assert!(!c.contains("2001:db9::1".parse().unwrap()));
        assert_eq!(c.to_string(), "2001:db8::/32");
        assert_eq!(Ipv6Cidr::parse("::1").unwrap().prefix_len(), 128);
    }

    #[test]
    fn ipv6_errors() {
        assert_eq!(Ipv6Cidr::parse(""), Err(Ip6ParseError::NoIp));
        assert!(matches!(
            Ipv6Cidr::parse("zz::1"),
            Err(Ip6ParseError::BadAddress { .. })
        ));
        assert!(matches!(
            Ipv6Cidr::parse("2001:db8::/129"),
            Err(Ip6ParseError::BadPrefixLen { .. })
        ));
    }

    #[test]
    fn dual_cidr_display() {
        assert_eq!(DualCidr::default().to_string(), "");
        assert_eq!(DualCidr { v4: 24, v6: 128 }.to_string(), "/24");
        assert_eq!(DualCidr { v4: 32, v6: 64 }.to_string(), "//64");
        assert_eq!(DualCidr { v4: 28, v6: 64 }.to_string(), "/28//64");
    }

    #[test]
    fn display_round_trips() {
        for s in ["192.0.2.1", "10.0.0.0/8", "0.0.0.0/0", "203.0.113.64/28"] {
            let c = Ipv4Cidr::parse(s).unwrap();
            assert_eq!(c.to_string(), s);
        }
    }
}
