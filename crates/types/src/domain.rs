//! DNS domain names with the validation rules the paper's crawler enforced.
//!
//! The study explicitly reports three low-level name errors seen in the wild
//! (Section 5.3): a label longer than 63 octets, a full name longer than
//! 255 octets, and a UTF-8 decode failure. [`DomainName::parse`] surfaces all
//! three as distinct [`DomainError`] variants so the analyzer can classify
//! them the same way.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::Arc;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Maximum length of a single DNS label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full domain name in octets, including separating dots
/// (RFC 1035 §2.3.4; 255 octets of wire format ≈ 253 presentation characters,
/// we validate the presentation form against 253 plus the optional root dot).
pub const MAX_NAME_LEN: usize = 253;

/// Errors raised while validating a domain name.
///
/// The first three variants mirror the exact error classes the paper counts
/// under "record not found / other errors".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainError {
    /// A DNS label is longer than 63 octets.
    LabelTooLong {
        /// Length of the offending label.
        label_len: usize,
    },
    /// The whole DNS name is longer than 255 octets (wire) / 253 (text).
    NameTooLong {
        /// Length of the offending name.
        name_len: usize,
    },
    /// The name is not valid UTF-8 / contains bytes outside the LDH subset
    /// we accept. The paper observed one utf-8 decode error in 12.8M domains.
    InvalidUtf8,
    /// A label is empty (e.g. `foo..bar` or a leading dot).
    EmptyLabel,
    /// The name is entirely empty.
    EmptyName,
    /// A character outside `[A-Za-z0-9_-]` appeared in a label.
    InvalidCharacter {
        /// The offending character.
        character: char,
    },
    /// A label begins or ends with `-`, which RFC 952/1123 hostnames forbid.
    BadHyphen,
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::LabelTooLong { label_len } => {
                write!(f, "DNS label is {label_len} octets long (> 63)")
            }
            DomainError::NameTooLong { name_len } => {
                write!(f, "DNS name is {name_len} octets long (> 253)")
            }
            DomainError::InvalidUtf8 => write!(f, "domain name is not valid UTF-8"),
            DomainError::EmptyLabel => write!(f, "domain name contains an empty label"),
            DomainError::EmptyName => write!(f, "domain name is empty"),
            DomainError::InvalidCharacter { character } => {
                write!(f, "invalid character {character:?} in domain name")
            }
            DomainError::BadHyphen => write!(f, "label starts or ends with a hyphen"),
        }
    }
}

impl std::error::Error for DomainError {}

/// A validated, case-normalized DNS domain name.
///
/// Names are stored lowercased without a trailing root dot, so
/// `DomainName::parse("Example.COM.")` and `parse("example.com")` compare
/// equal and hash identically — the property the crawler's cache relies on.
///
/// The normalized text is held behind an `Arc<str>` with a hash precomputed
/// at construction, because the crawl hot path clones domain names
/// pervasively (work dispatch, walker recursion, memo-cache keys): cloning
/// is a reference-count bump instead of a string copy, equality gets a
/// fast hash-first reject, and every hash-map operation hashes eight
/// precomputed bytes instead of the whole name. The crawler's sharded memo
/// cache also picks its shard from [`DomainName::precomputed_hash`].
///
/// ```
/// use spf_types::DomainName;
/// let a = DomainName::parse("Example.COM.").unwrap();
/// let b = DomainName::parse("example.com").unwrap();
/// assert_eq!(a, b);
/// assert_eq!(a.precomputed_hash(), b.precomputed_hash());
/// assert_eq!(a.label_count(), 2);
/// assert_eq!(a.to_string(), "example.com");
/// ```
#[derive(Clone)]
pub struct DomainName {
    name: Arc<str>,
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over the normalized name bytes: deterministic across
/// runs and platforms (unlike `RandomState`), so shard assignment and any
/// serialized artifact derived from it are reproducible.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A cheap mixing hasher for maps keyed by [`DomainName`] (or composites
/// of it): [`Hash for DomainName`](DomainName#impl-Hash-for-DomainName)
/// feeds the precomputed FNV-1a value through `write_u64`, so this hasher
/// only has to fold already-mixed words instead of re-hashing strings the
/// way SipHash does. Use via [`DomainHashBuilder`]:
///
/// ```
/// use std::collections::HashMap;
/// use spf_types::{DomainHashBuilder, DomainName};
/// let mut map: HashMap<DomainName, u32, DomainHashBuilder> = HashMap::default();
/// map.insert(DomainName::parse("example.com").unwrap(), 1);
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct DomainHasher(u64);

impl Hasher for DomainHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (composite keys): FNV-1a continued from the
        // current state so every written byte influences the result.
        let mut hash = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        self.0 = hash;
    }

    fn write_u64(&mut self, n: u64) {
        // One multiply to fold the (already well-mixed) word into the
        // state; sound for composite keys, nearly free for plain names.
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(FNV_PRIME);
    }
}

/// `BuildHasher` for [`DomainHasher`], deterministic across runs.
pub type DomainHashBuilder = std::hash::BuildHasherDefault<DomainHasher>;

impl DomainName {
    /// Wrap an already-normalized (lowercase, no root dot) name.
    fn intern(normalized: String) -> Self {
        let hash = fnv1a(normalized.as_bytes());
        DomainName {
            name: Arc::from(normalized),
            hash,
        }
    }
    /// Parse and validate a domain name from presentation format.
    ///
    /// Accepts an optional trailing root dot. Underscores are allowed because
    /// service-label names like `_spf.google.com` are ubiquitous in SPF.
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(DomainError::EmptyName);
        }
        if trimmed.len() > MAX_NAME_LEN {
            return Err(DomainError::NameTooLong {
                name_len: trimmed.len(),
            });
        }
        let mut normalized = String::with_capacity(trimmed.len());
        for (i, label) in trimmed.split('.').enumerate() {
            if i > 0 {
                normalized.push('.');
            }
            Self::validate_label(label)?;
            for ch in label.chars() {
                normalized.push(ch.to_ascii_lowercase());
            }
        }
        Ok(Self::intern(normalized))
    }

    /// Parse a domain name from raw bytes, surfacing UTF-8 failures as the
    /// distinct [`DomainError::InvalidUtf8`] class the paper counts.
    pub fn parse_bytes(input: &[u8]) -> Result<Self, DomainError> {
        let s = std::str::from_utf8(input).map_err(|_| DomainError::InvalidUtf8)?;
        Self::parse(s)
    }

    fn validate_label(label: &str) -> Result<(), DomainError> {
        if label.is_empty() {
            return Err(DomainError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(DomainError::LabelTooLong {
                label_len: label.len(),
            });
        }
        if label.starts_with('-') || label.ends_with('-') {
            return Err(DomainError::BadHyphen);
        }
        for ch in label.chars() {
            if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
                if !ch.is_ascii() {
                    return Err(DomainError::InvalidUtf8);
                }
                return Err(DomainError::InvalidCharacter { character: ch });
            }
        }
        Ok(())
    }

    /// Construct without validation; used by generators that build names from
    /// already-validated parts. Panics in debug builds if invalid.
    pub fn from_validated(name: String) -> Self {
        debug_assert!(DomainName::parse(&name).is_ok(), "invalid: {name}");
        Self::intern(name.to_ascii_lowercase())
    }

    /// The hash computed once at construction (64-bit FNV-1a of the
    /// normalized name). [`Hash`] feeds this value to the hasher instead of
    /// re-walking the string, and the analyzer's sharded memo cache uses it
    /// directly for shard selection.
    pub fn precomputed_hash(&self) -> u64 {
        self.hash
    }

    /// The normalized textual form, lowercase and without trailing dot.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// Iterator over labels, left to right (`www`, `example`, `com`).
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.name.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The parent domain (`example.com` for `www.example.com`), or `None`
    /// for a single-label (TLD-level) name.
    pub fn parent(&self) -> Option<DomainName> {
        let idx = self.name.find('.')?;
        Some(Self::intern(self.name[idx + 1..].to_string()))
    }

    /// True if `self` equals `other` or is a subdomain of it.
    ///
    /// ```
    /// use spf_types::DomainName;
    /// let child = DomainName::parse("a.b.example.com").unwrap();
    /// let parent = DomainName::parse("example.com").unwrap();
    /// assert!(child.is_subdomain_of(&parent));
    /// assert!(!parent.is_subdomain_of(&child));
    /// ```
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if self.name == other.name {
            return true;
        }
        self.name.len() > other.name.len()
            && self.name.ends_with(&*other.name)
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Prepend a label: `"mail"` + `example.com` → `mail.example.com`.
    pub fn prepend_label(&self, label: &str) -> Result<DomainName, DomainError> {
        Self::validate_label(label)?;
        let candidate = format!("{}.{}", label.to_ascii_lowercase(), self.name);
        if candidate.len() > MAX_NAME_LEN {
            return Err(DomainError::NameTooLong {
                name_len: candidate.len(),
            });
        }
        Ok(Self::intern(candidate))
    }

    /// The top-level domain label (`com` for `www.example.com`).
    ///
    /// The paper notes that many /8-including domains cluster in `.top`;
    /// the analyzer groups findings by this label.
    pub fn tld(&self) -> &str {
        self.labels().next_back().unwrap_or(&self.name)
    }

    /// Keep only the last `n` labels: used by SPF macro transformers
    /// (`%{d2}` keeps two labels).
    pub fn truncate_labels(&self, n: usize) -> Cow<'_, str> {
        let count = self.label_count();
        if n == 0 || n >= count {
            return Cow::Borrowed(&self.name);
        }
        let skip = count - n;
        let mut idx = 0;
        for _ in 0..skip {
            idx = self.name[idx..]
                .find('.')
                .map(|p| idx + p + 1)
                .unwrap_or(idx);
        }
        Cow::Borrowed(&self.name[idx..])
    }

    /// Length in octets of the presentation form.
    pub fn len(&self) -> usize {
        self.name.len()
    }

    /// Never true: validation rejects empty names.
    pub fn is_empty(&self) -> bool {
        self.name.is_empty()
    }
}

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        // Hash-first reject: unequal names almost never reach the string
        // comparison, which matters on the walker's include-stack scans.
        self.hash == other.hash && self.name == other.name
    }
}
impl Eq for DomainName {}

impl Hash for DomainName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Debug for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DomainName({:?})", &*self.name)
    }
}

impl Serialize for DomainName {
    fn to_value(&self) -> Value {
        Value::Str(self.name.to_string())
    }
}

impl Deserialize for DomainName {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) => DomainName::parse(s).map_err(SerdeError::custom),
            _ => Err(SerdeError::custom("expected a domain-name string")),
        }
    }
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes_case() {
        let d = DomainName::parse("ExAmPle.COM").unwrap();
        assert_eq!(d.as_str(), "example.com");
    }

    #[test]
    fn strips_trailing_root_dot() {
        let d = DomainName::parse("example.com.").unwrap();
        assert_eq!(d.as_str(), "example.com");
    }

    #[test]
    fn rejects_empty_name() {
        assert_eq!(DomainName::parse(""), Err(DomainError::EmptyName));
        assert_eq!(DomainName::parse("."), Err(DomainError::EmptyName));
    }

    #[test]
    fn rejects_empty_label() {
        assert_eq!(DomainName::parse("foo..bar"), Err(DomainError::EmptyLabel));
        assert_eq!(DomainName::parse(".foo"), Err(DomainError::EmptyLabel));
    }

    #[test]
    fn rejects_label_longer_than_63() {
        let label = "a".repeat(64);
        let err = DomainName::parse(&format!("{label}.com")).unwrap_err();
        assert_eq!(err, DomainError::LabelTooLong { label_len: 64 });
    }

    #[test]
    fn accepts_label_of_exactly_63() {
        let label = "a".repeat(63);
        assert!(DomainName::parse(&format!("{label}.com")).is_ok());
    }

    #[test]
    fn rejects_name_longer_than_253() {
        let mut name = String::new();
        while name.len() <= 253 {
            name.push_str("abcdefgh.");
        }
        name.push_str("com");
        let err = DomainName::parse(&name).unwrap_err();
        assert!(matches!(err, DomainError::NameTooLong { .. }));
    }

    #[test]
    fn rejects_non_utf8_bytes() {
        let err = DomainName::parse_bytes(&[0xff, 0xfe, b'.', b'c', b'o', b'm']).unwrap_err();
        assert_eq!(err, DomainError::InvalidUtf8);
    }

    #[test]
    fn rejects_non_ascii_char() {
        let err = DomainName::parse("exämple.com").unwrap_err();
        assert_eq!(err, DomainError::InvalidUtf8);
    }

    #[test]
    fn rejects_invalid_ascii_char() {
        let err = DomainName::parse("ex ample.com").unwrap_err();
        assert_eq!(err, DomainError::InvalidCharacter { character: ' ' });
    }

    #[test]
    fn rejects_leading_or_trailing_hyphen() {
        assert_eq!(DomainName::parse("-foo.com"), Err(DomainError::BadHyphen));
        assert_eq!(DomainName::parse("foo-.com"), Err(DomainError::BadHyphen));
    }

    #[test]
    fn allows_underscore_service_labels() {
        let d = DomainName::parse("_spf.google.com").unwrap();
        assert_eq!(d.as_str(), "_spf.google.com");
    }

    #[test]
    fn parent_walks_up_one_level() {
        let d = DomainName::parse("www.example.com").unwrap();
        assert_eq!(d.parent().unwrap().as_str(), "example.com");
        assert_eq!(d.parent().unwrap().parent().unwrap().as_str(), "com");
        assert_eq!(d.parent().unwrap().parent().unwrap().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let child = DomainName::parse("deep.mail.example.com").unwrap();
        let parent = DomainName::parse("example.com").unwrap();
        let unrelated = DomainName::parse("notexample.com").unwrap();
        assert!(child.is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!parent.is_subdomain_of(&child));
        // suffix match without a dot boundary must NOT count
        assert!(!unrelated.is_subdomain_of(&parent));
    }

    #[test]
    fn prepend_label_builds_child() {
        let d = DomainName::parse("example.com").unwrap();
        assert_eq!(
            d.prepend_label("Mail").unwrap().as_str(),
            "mail.example.com"
        );
        assert!(d.prepend_label("bad label").is_err());
    }

    #[test]
    fn tld_is_last_label() {
        assert_eq!(DomainName::parse("foo.bar.top").unwrap().tld(), "top");
        assert_eq!(DomainName::parse("com").unwrap().tld(), "com");
    }

    #[test]
    fn truncate_labels_keeps_rightmost() {
        let d = DomainName::parse("a.b.c.example.com").unwrap();
        assert_eq!(d.truncate_labels(2).as_ref(), "example.com");
        assert_eq!(d.truncate_labels(3).as_ref(), "c.example.com");
        assert_eq!(d.truncate_labels(0).as_ref(), "a.b.c.example.com");
        assert_eq!(d.truncate_labels(9).as_ref(), "a.b.c.example.com");
    }

    #[test]
    fn ordering_and_hashing_are_case_insensitive_via_normalization() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(DomainName::parse("EXAMPLE.com").unwrap());
        assert!(set.contains(&DomainName::parse("example.COM").unwrap()));
    }

    #[test]
    fn precomputed_hash_is_stable_and_case_insensitive() {
        let a = DomainName::parse("Example.COM").unwrap();
        let b = DomainName::parse("example.com").unwrap();
        let c = DomainName::parse("example.org").unwrap();
        assert_eq!(a.precomputed_hash(), b.precomputed_hash());
        assert_ne!(a.precomputed_hash(), c.precomputed_hash());
        // The clone shares the backing allocation and the hash.
        let d = a.clone();
        assert_eq!(d.precomputed_hash(), a.precomputed_hash());
        assert_eq!(d, a);
    }

    #[test]
    fn derived_names_recompute_hashes_consistently() {
        let child = DomainName::parse("mail.example.com").unwrap();
        let parent = child.parent().unwrap();
        let direct = DomainName::parse("example.com").unwrap();
        assert_eq!(parent, direct);
        assert_eq!(parent.precomputed_hash(), direct.precomputed_hash());
        let back = direct.prepend_label("mail").unwrap();
        assert_eq!(back, child);
        assert_eq!(back.precomputed_hash(), child.precomputed_hash());
    }

    #[test]
    fn serde_round_trip_is_transparent_string() {
        let d = DomainName::parse("mail.example.org").unwrap();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, "\"mail.example.org\"");
        let back: DomainName = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
