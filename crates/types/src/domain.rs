//! DNS domain names with the validation rules the paper's crawler enforced.
//!
//! The study explicitly reports three low-level name errors seen in the wild
//! (Section 5.3): a label longer than 63 octets, a full name longer than
//! 255 octets, and a UTF-8 decode failure. [`DomainName::parse`] surfaces all
//! three as distinct [`DomainError`] variants so the analyzer can classify
//! them the same way.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Maximum length of a single DNS label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full domain name in octets, including separating dots
/// (RFC 1035 §2.3.4; 255 octets of wire format ≈ 253 presentation characters,
/// we validate the presentation form against 253 plus the optional root dot).
pub const MAX_NAME_LEN: usize = 253;

/// Errors raised while validating a domain name.
///
/// The first three variants mirror the exact error classes the paper counts
/// under "record not found / other errors".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainError {
    /// A DNS label is longer than 63 octets.
    LabelTooLong {
        /// Length of the offending label.
        label_len: usize,
    },
    /// The whole DNS name is longer than 255 octets (wire) / 253 (text).
    NameTooLong {
        /// Length of the offending name.
        name_len: usize,
    },
    /// The name is not valid UTF-8 / contains bytes outside the LDH subset
    /// we accept. The paper observed one utf-8 decode error in 12.8M domains.
    InvalidUtf8,
    /// A label is empty (e.g. `foo..bar` or a leading dot).
    EmptyLabel,
    /// The name is entirely empty.
    EmptyName,
    /// A character outside `[A-Za-z0-9_-]` appeared in a label.
    InvalidCharacter {
        /// The offending character.
        character: char,
    },
    /// A label begins or ends with `-`, which RFC 952/1123 hostnames forbid.
    BadHyphen,
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::LabelTooLong { label_len } => {
                write!(f, "DNS label is {label_len} octets long (> 63)")
            }
            DomainError::NameTooLong { name_len } => {
                write!(f, "DNS name is {name_len} octets long (> 253)")
            }
            DomainError::InvalidUtf8 => write!(f, "domain name is not valid UTF-8"),
            DomainError::EmptyLabel => write!(f, "domain name contains an empty label"),
            DomainError::EmptyName => write!(f, "domain name is empty"),
            DomainError::InvalidCharacter { character } => {
                write!(f, "invalid character {character:?} in domain name")
            }
            DomainError::BadHyphen => write!(f, "label starts or ends with a hyphen"),
        }
    }
}

impl std::error::Error for DomainError {}

/// A validated, case-normalized DNS domain name.
///
/// Names are stored lowercased without a trailing root dot, so
/// `DomainName::parse("Example.COM.")` and `parse("example.com")` compare
/// equal and hash identically — the property the crawler's cache relies on.
///
/// ```
/// use spf_types::DomainName;
/// let a = DomainName::parse("Example.COM.").unwrap();
/// let b = DomainName::parse("example.com").unwrap();
/// assert_eq!(a, b);
/// assert_eq!(a.label_count(), 2);
/// assert_eq!(a.to_string(), "example.com");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainName {
    name: String,
}

impl DomainName {
    /// Parse and validate a domain name from presentation format.
    ///
    /// Accepts an optional trailing root dot. Underscores are allowed because
    /// service-label names like `_spf.google.com` are ubiquitous in SPF.
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(DomainError::EmptyName);
        }
        if trimmed.len() > MAX_NAME_LEN {
            return Err(DomainError::NameTooLong {
                name_len: trimmed.len(),
            });
        }
        let mut normalized = String::with_capacity(trimmed.len());
        for (i, label) in trimmed.split('.').enumerate() {
            if i > 0 {
                normalized.push('.');
            }
            Self::validate_label(label)?;
            for ch in label.chars() {
                normalized.push(ch.to_ascii_lowercase());
            }
        }
        Ok(DomainName { name: normalized })
    }

    /// Parse a domain name from raw bytes, surfacing UTF-8 failures as the
    /// distinct [`DomainError::InvalidUtf8`] class the paper counts.
    pub fn parse_bytes(input: &[u8]) -> Result<Self, DomainError> {
        let s = std::str::from_utf8(input).map_err(|_| DomainError::InvalidUtf8)?;
        Self::parse(s)
    }

    fn validate_label(label: &str) -> Result<(), DomainError> {
        if label.is_empty() {
            return Err(DomainError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(DomainError::LabelTooLong {
                label_len: label.len(),
            });
        }
        if label.starts_with('-') || label.ends_with('-') {
            return Err(DomainError::BadHyphen);
        }
        for ch in label.chars() {
            if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
                if !ch.is_ascii() {
                    return Err(DomainError::InvalidUtf8);
                }
                return Err(DomainError::InvalidCharacter { character: ch });
            }
        }
        Ok(())
    }

    /// Construct without validation; used by generators that build names from
    /// already-validated parts. Panics in debug builds if invalid.
    pub fn from_validated(name: String) -> Self {
        debug_assert!(DomainName::parse(&name).is_ok(), "invalid: {name}");
        DomainName {
            name: name.to_ascii_lowercase(),
        }
    }

    /// The normalized textual form, lowercase and without trailing dot.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// Iterator over labels, left to right (`www`, `example`, `com`).
    pub fn labels(&self) -> impl DoubleEndedIterator<Item = &str> {
        self.name.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The parent domain (`example.com` for `www.example.com`), or `None`
    /// for a single-label (TLD-level) name.
    pub fn parent(&self) -> Option<DomainName> {
        let idx = self.name.find('.')?;
        Some(DomainName {
            name: self.name[idx + 1..].to_string(),
        })
    }

    /// True if `self` equals `other` or is a subdomain of it.
    ///
    /// ```
    /// use spf_types::DomainName;
    /// let child = DomainName::parse("a.b.example.com").unwrap();
    /// let parent = DomainName::parse("example.com").unwrap();
    /// assert!(child.is_subdomain_of(&parent));
    /// assert!(!parent.is_subdomain_of(&child));
    /// ```
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if self.name == other.name {
            return true;
        }
        self.name.len() > other.name.len()
            && self.name.ends_with(&other.name)
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Prepend a label: `"mail"` + `example.com` → `mail.example.com`.
    pub fn prepend_label(&self, label: &str) -> Result<DomainName, DomainError> {
        Self::validate_label(label)?;
        let candidate = format!("{}.{}", label.to_ascii_lowercase(), self.name);
        if candidate.len() > MAX_NAME_LEN {
            return Err(DomainError::NameTooLong {
                name_len: candidate.len(),
            });
        }
        Ok(DomainName { name: candidate })
    }

    /// The top-level domain label (`com` for `www.example.com`).
    ///
    /// The paper notes that many /8-including domains cluster in `.top`;
    /// the analyzer groups findings by this label.
    pub fn tld(&self) -> &str {
        self.labels().next_back().unwrap_or(&self.name)
    }

    /// Keep only the last `n` labels: used by SPF macro transformers
    /// (`%{d2}` keeps two labels).
    pub fn truncate_labels(&self, n: usize) -> Cow<'_, str> {
        let count = self.label_count();
        if n == 0 || n >= count {
            return Cow::Borrowed(&self.name);
        }
        let skip = count - n;
        let mut idx = 0;
        for _ in 0..skip {
            idx = self.name[idx..]
                .find('.')
                .map(|p| idx + p + 1)
                .unwrap_or(idx);
        }
        Cow::Borrowed(&self.name[idx..])
    }

    /// Length in octets of the presentation form.
    pub fn len(&self) -> usize {
        self.name.len()
    }

    /// Never true: validation rejects empty names.
    pub fn is_empty(&self) -> bool {
        self.name.is_empty()
    }
}

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl Eq for DomainName {}

impl Hash for DomainName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes_case() {
        let d = DomainName::parse("ExAmPle.COM").unwrap();
        assert_eq!(d.as_str(), "example.com");
    }

    #[test]
    fn strips_trailing_root_dot() {
        let d = DomainName::parse("example.com.").unwrap();
        assert_eq!(d.as_str(), "example.com");
    }

    #[test]
    fn rejects_empty_name() {
        assert_eq!(DomainName::parse(""), Err(DomainError::EmptyName));
        assert_eq!(DomainName::parse("."), Err(DomainError::EmptyName));
    }

    #[test]
    fn rejects_empty_label() {
        assert_eq!(DomainName::parse("foo..bar"), Err(DomainError::EmptyLabel));
        assert_eq!(DomainName::parse(".foo"), Err(DomainError::EmptyLabel));
    }

    #[test]
    fn rejects_label_longer_than_63() {
        let label = "a".repeat(64);
        let err = DomainName::parse(&format!("{label}.com")).unwrap_err();
        assert_eq!(err, DomainError::LabelTooLong { label_len: 64 });
    }

    #[test]
    fn accepts_label_of_exactly_63() {
        let label = "a".repeat(63);
        assert!(DomainName::parse(&format!("{label}.com")).is_ok());
    }

    #[test]
    fn rejects_name_longer_than_253() {
        let mut name = String::new();
        while name.len() <= 253 {
            name.push_str("abcdefgh.");
        }
        name.push_str("com");
        let err = DomainName::parse(&name).unwrap_err();
        assert!(matches!(err, DomainError::NameTooLong { .. }));
    }

    #[test]
    fn rejects_non_utf8_bytes() {
        let err = DomainName::parse_bytes(&[0xff, 0xfe, b'.', b'c', b'o', b'm']).unwrap_err();
        assert_eq!(err, DomainError::InvalidUtf8);
    }

    #[test]
    fn rejects_non_ascii_char() {
        let err = DomainName::parse("exämple.com").unwrap_err();
        assert_eq!(err, DomainError::InvalidUtf8);
    }

    #[test]
    fn rejects_invalid_ascii_char() {
        let err = DomainName::parse("ex ample.com").unwrap_err();
        assert_eq!(err, DomainError::InvalidCharacter { character: ' ' });
    }

    #[test]
    fn rejects_leading_or_trailing_hyphen() {
        assert_eq!(DomainName::parse("-foo.com"), Err(DomainError::BadHyphen));
        assert_eq!(DomainName::parse("foo-.com"), Err(DomainError::BadHyphen));
    }

    #[test]
    fn allows_underscore_service_labels() {
        let d = DomainName::parse("_spf.google.com").unwrap();
        assert_eq!(d.as_str(), "_spf.google.com");
    }

    #[test]
    fn parent_walks_up_one_level() {
        let d = DomainName::parse("www.example.com").unwrap();
        assert_eq!(d.parent().unwrap().as_str(), "example.com");
        assert_eq!(d.parent().unwrap().parent().unwrap().as_str(), "com");
        assert_eq!(d.parent().unwrap().parent().unwrap().parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let child = DomainName::parse("deep.mail.example.com").unwrap();
        let parent = DomainName::parse("example.com").unwrap();
        let unrelated = DomainName::parse("notexample.com").unwrap();
        assert!(child.is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!parent.is_subdomain_of(&child));
        // suffix match without a dot boundary must NOT count
        assert!(!unrelated.is_subdomain_of(&parent));
    }

    #[test]
    fn prepend_label_builds_child() {
        let d = DomainName::parse("example.com").unwrap();
        assert_eq!(
            d.prepend_label("Mail").unwrap().as_str(),
            "mail.example.com"
        );
        assert!(d.prepend_label("bad label").is_err());
    }

    #[test]
    fn tld_is_last_label() {
        assert_eq!(DomainName::parse("foo.bar.top").unwrap().tld(), "top");
        assert_eq!(DomainName::parse("com").unwrap().tld(), "com");
    }

    #[test]
    fn truncate_labels_keeps_rightmost() {
        let d = DomainName::parse("a.b.c.example.com").unwrap();
        assert_eq!(d.truncate_labels(2).as_ref(), "example.com");
        assert_eq!(d.truncate_labels(3).as_ref(), "c.example.com");
        assert_eq!(d.truncate_labels(0).as_ref(), "a.b.c.example.com");
        assert_eq!(d.truncate_labels(9).as_ref(), "a.b.c.example.com");
    }

    #[test]
    fn ordering_and_hashing_are_case_insensitive_via_normalization() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(DomainName::parse("EXAMPLE.com").unwrap());
        assert!(set.contains(&DomainName::parse("example.COM").unwrap()));
    }

    #[test]
    fn serde_round_trip_is_transparent_string() {
        let d = DomainName::parse("mail.example.org").unwrap();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, "\"mail.example.org\"");
        let back: DomainName = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
