//! Interval-set arithmetic over the IPv4 address space.
//!
//! Counting the *number of authorized IPv4 addresses* per domain is the
//! central quantitative measurement of the paper (Figure 5: CDF of allowed
//! IPs; Table 4: allowed IPs per include). SPF records routinely authorize
//! `/8`…`/0` networks — 2^24 to 2^32 addresses — so the set must be
//! represented symbolically. [`Ipv4Set`] keeps a sorted list of disjoint
//! inclusive `u32` ranges; union/insert are `O(n log n)` in the number of
//! ranges, and counting is a sum of range widths. The bench
//! `ipset_union` contrasts this with naive enumeration (see DESIGN.md §5).
//!
//! The range algebra itself (union / intersection / difference / subset
//! and overlap tests) lives in the width-generic `interval` core shared
//! with [`crate::Ipv6Set`]; DESIGN.md §7 states the invariants.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::cidr::Ipv4Cidr;
use crate::interval;

/// A set of IPv4 addresses stored as sorted, disjoint, non-adjacent
/// inclusive ranges.
///
/// ```
/// use spf_types::{Ipv4Set, Ipv4Cidr};
/// let mut set = Ipv4Set::new();
/// set.insert_cidr(&"192.0.2.0/24".parse::<Ipv4Cidr>().unwrap());
/// set.insert_cidr(&"192.0.3.0/24".parse::<Ipv4Cidr>().unwrap());
/// // Adjacent ranges coalesce:
/// assert_eq!(set.range_count(), 1);
/// assert_eq!(set.address_count(), 512);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Set {
    /// Invariant: sorted by start; `ranges[i].1 + 1 < ranges[i+1].0`
    /// (disjoint and non-adjacent, so the representation is canonical).
    ranges: Vec<(u32, u32)>,
}

impl Ipv4Set {
    /// The empty set.
    pub fn new() -> Self {
        Ipv4Set { ranges: Vec::new() }
    }

    /// The full IPv4 space (what `ip4:0.0.0.0/0` authorizes).
    pub fn full() -> Self {
        Ipv4Set {
            ranges: vec![(0, u32::MAX)],
        }
    }

    /// True if no address is in the set.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Insert a single address.
    pub fn insert_addr(&mut self, addr: Ipv4Addr) {
        let v = u32::from(addr);
        self.insert_range(v, v);
    }

    /// Insert every address of a CIDR network.
    pub fn insert_cidr(&mut self, cidr: &Ipv4Cidr) {
        let (lo, hi) = cidr.range_u32();
        self.insert_range(lo, hi);
    }

    /// Insert an inclusive range, merging with overlapping/adjacent ranges.
    pub fn insert_range(&mut self, lo: u32, hi: u32) {
        interval::insert_range(&mut self.ranges, lo, hi);
    }

    /// Union with another set, in place.
    pub fn union_with(&mut self, other: &Ipv4Set) {
        if other.ranges.len() > 4 && self.ranges.len() > 4 {
            // Merge-sort both range lists then coalesce in one pass; cheaper
            // than repeated splicing for the big provider sets.
            self.ranges = interval::union_merge(&self.ranges, &other.ranges);
        } else {
            for &(lo, hi) in &other.ranges {
                self.insert_range(lo, hi);
            }
        }
    }

    /// Union, returning a new set.
    pub fn union(&self, other: &Ipv4Set) -> Ipv4Set {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Intersection, returning a new set — the addresses two SPF trees
    /// *share*, the primitive behind the cross-population overlap engine.
    ///
    /// ```
    /// use spf_types::Ipv4Set;
    /// let mut a = Ipv4Set::new();
    /// a.insert_cidr(&"10.0.0.0/24".parse().unwrap());
    /// let mut b = Ipv4Set::new();
    /// b.insert_cidr(&"10.0.0.128/25".parse().unwrap());
    /// assert_eq!(a.intersect(&b).address_count(), 128);
    /// ```
    pub fn intersect(&self, other: &Ipv4Set) -> Ipv4Set {
        Ipv4Set {
            ranges: interval::intersect(&self.ranges, &other.ranges),
        }
    }

    /// Set difference `self \ other`, returning a new set — e.g. the
    /// space a domain authorizes *beyond* its provider's include.
    ///
    /// ```
    /// use spf_types::Ipv4Set;
    /// let mut a = Ipv4Set::new();
    /// a.insert_cidr(&"10.0.0.0/24".parse().unwrap());
    /// let mut b = Ipv4Set::new();
    /// b.insert_cidr(&"10.0.0.0/25".parse().unwrap());
    /// let only_a = a.difference(&b);
    /// assert_eq!(only_a.address_count(), 128);
    /// assert!(!only_a.contains("10.0.0.1".parse().unwrap()));
    /// assert!(only_a.contains("10.0.0.200".parse().unwrap()));
    /// ```
    pub fn difference(&self, other: &Ipv4Set) -> Ipv4Set {
        Ipv4Set {
            ranges: interval::difference(&self.ranges, &other.ranges),
        }
    }

    /// True when the two sets share at least one address (early-exit
    /// sweep; no allocation).
    ///
    /// ```
    /// use spf_types::Ipv4Set;
    /// let mut a = Ipv4Set::new();
    /// a.insert_range(0, 10);
    /// let mut b = Ipv4Set::new();
    /// b.insert_range(10, 20);
    /// assert!(a.intersects(&b));
    /// b = Ipv4Set::new();
    /// b.insert_range(11, 20);
    /// assert!(!a.intersects(&b));
    /// ```
    pub fn intersects(&self, other: &Ipv4Set) -> bool {
        interval::intersects(&self.ranges, &other.ranges)
    }

    /// True when every address of `self` is in `other`.
    ///
    /// ```
    /// use spf_types::Ipv4Set;
    /// let mut provider = Ipv4Set::new();
    /// provider.insert_cidr(&"198.51.100.0/24".parse().unwrap());
    /// let mut customer = Ipv4Set::new();
    /// customer.insert_cidr(&"198.51.100.64/26".parse().unwrap());
    /// assert!(customer.is_subset(&provider));
    /// assert!(!provider.is_subset(&customer));
    /// assert!(Ipv4Set::new().is_subset(&customer));
    /// ```
    pub fn is_subset(&self, other: &Ipv4Set) -> bool {
        interval::is_subset(&self.ranges, &other.ranges)
    }

    /// Membership test (binary search).
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        interval::contains(&self.ranges, u32::from(addr))
    }

    /// Total number of addresses in the set. `2^32` for the full space,
    /// hence `u64`.
    pub fn address_count(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
            .sum()
    }

    /// Number of disjoint ranges (representation size).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Iterate the disjoint inclusive ranges in ascending order.
    pub fn iter_ranges(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr)> + '_ {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (Ipv4Addr::from(lo), Ipv4Addr::from(hi)))
    }

    /// Iterate the disjoint inclusive ranges as raw `u32` bounds, in
    /// ascending order — the form the coverage sweep consumes.
    pub fn iter_ranges_u32(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().copied()
    }

    /// An arbitrary member address, if the set is non-empty. The spoofing
    /// case study uses this to pick a connectable source address.
    pub fn sample_first(&self) -> Option<Ipv4Addr> {
        self.ranges.first().map(|&(lo, _)| Ipv4Addr::from(lo))
    }

    /// Decompose the set into the minimal list of CIDR blocks covering it
    /// exactly — the inverse of inserting CIDRs. Used by the record
    /// flattener to rewrite an include tree as direct `ip4:` terms.
    pub fn to_cidrs(&self) -> Vec<Ipv4Cidr> {
        let mut out = Vec::new();
        for &(lo, hi) in &self.ranges {
            let mut cursor = lo as u64;
            let end = hi as u64;
            while cursor <= end {
                // Largest block that is both aligned at `cursor` and fits
                // within the remaining range.
                let align = if cursor == 0 {
                    32
                } else {
                    cursor.trailing_zeros().min(32)
                };
                let remaining = end - cursor + 1;
                let fit = 63 - remaining.leading_zeros(); // floor(log2)
                let bits = align.min(fit);
                let prefix = (32 - bits) as u8;
                out.push(
                    Ipv4Cidr::new(Ipv4Addr::from(cursor as u32), prefix)
                        .expect("prefix within range"),
                );
                cursor += 1u64 << bits;
            }
        }
        out
    }
}

impl FromIterator<Ipv4Cidr> for Ipv4Set {
    fn from_iter<T: IntoIterator<Item = Ipv4Cidr>>(iter: T) -> Self {
        let mut set = Ipv4Set::new();
        for cidr in iter {
            set.insert_cidr(&cidr);
        }
        set
    }
}

impl fmt::Display for Ipv4Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (lo, hi)) in self.iter_ranges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if lo == hi {
                write!(f, "{lo}")?;
            } else {
                write!(f, "{lo}-{hi}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_set() {
        let set = Ipv4Set::new();
        assert!(set.is_empty());
        assert_eq!(set.address_count(), 0);
        assert!(!set.contains("1.2.3.4".parse().unwrap()));
    }

    #[test]
    fn single_host() {
        let mut set = Ipv4Set::new();
        set.insert_addr("192.0.2.1".parse().unwrap());
        assert_eq!(set.address_count(), 1);
        assert!(set.contains("192.0.2.1".parse().unwrap()));
        assert!(!set.contains("192.0.2.2".parse().unwrap()));
    }

    #[test]
    fn disjoint_ranges_count_independently() {
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("10.0.0.0/24"));
        set.insert_cidr(&cidr("172.16.0.0/24"));
        assert_eq!(set.range_count(), 2);
        assert_eq!(set.address_count(), 512);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("10.0.0.0/24"));
        set.insert_cidr(&cidr("10.0.0.0/25"));
        assert_eq!(set.range_count(), 1);
        assert_eq!(set.address_count(), 256);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut set = Ipv4Set::new();
        set.insert_range(0, 9);
        set.insert_range(10, 19);
        assert_eq!(set.range_count(), 1);
        assert_eq!(set.address_count(), 20);
    }

    #[test]
    fn insert_spanning_multiple_existing() {
        let mut set = Ipv4Set::new();
        set.insert_range(0, 1);
        set.insert_range(10, 11);
        set.insert_range(20, 21);
        set.insert_range(1, 15); // bridges the first two but not the third
        assert_eq!(set.range_count(), 2);
        assert_eq!(set.address_count(), 16 + 2);
    }

    #[test]
    fn full_space_is_2_pow_32() {
        assert_eq!(Ipv4Set::full().address_count(), 1u64 << 32);
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("0.0.0.0/0"));
        assert_eq!(set, Ipv4Set::full());
    }

    #[test]
    fn boundary_at_u32_max() {
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("255.255.255.255"));
        set.insert_cidr(&cidr("255.255.255.254"));
        assert_eq!(set.range_count(), 1);
        assert_eq!(set.address_count(), 2);
        assert!(set.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn boundary_at_zero() {
        let mut set = Ipv4Set::new();
        set.insert_addr(Ipv4Addr::new(0, 0, 0, 0));
        set.insert_addr(Ipv4Addr::new(0, 0, 0, 1));
        assert_eq!(set.range_count(), 1);
        assert!(set.contains(Ipv4Addr::new(0, 0, 0, 0)));
    }

    #[test]
    fn union_matches_sequential_insert() {
        let mut a = Ipv4Set::new();
        a.insert_cidr(&cidr("10.0.0.0/16"));
        a.insert_cidr(&cidr("192.168.0.0/24"));
        let mut b = Ipv4Set::new();
        b.insert_cidr(&cidr("10.0.128.0/17")); // overlaps a
        b.insert_cidr(&cidr("172.16.0.0/12"));
        let u = a.union(&b);
        assert_eq!(u.address_count(), (1u64 << 16) + (1 << 8) + (1 << 20));
    }

    #[test]
    fn union_with_large_sets_uses_merge_path() {
        // >4 ranges on both sides exercises the merge-sort branch.
        let mut a = Ipv4Set::new();
        let mut b = Ipv4Set::new();
        for i in 0..10u32 {
            a.insert_range(i * 100, i * 100 + 10);
            b.insert_range(i * 100 + 5, i * 100 + 20);
        }
        let u = a.union(&b);
        assert_eq!(u.range_count(), 10);
        assert_eq!(u.address_count(), 10 * 21);
    }

    #[test]
    fn intersect_basics() {
        let mut a = Ipv4Set::new();
        a.insert_cidr(&cidr("10.0.0.0/16"));
        a.insert_cidr(&cidr("192.168.0.0/24"));
        let mut b = Ipv4Set::new();
        b.insert_cidr(&cidr("10.0.128.0/17"));
        let i = a.intersect(&b);
        assert_eq!(i.address_count(), 1 << 15);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(a.intersect(&Ipv4Set::new()).is_empty());
        assert_eq!(a.intersect(&Ipv4Set::full()), a);
    }

    #[test]
    fn difference_basics() {
        let mut a = Ipv4Set::new();
        a.insert_range(0, 100);
        let mut b = Ipv4Set::new();
        b.insert_range(10, 20);
        b.insert_range(30, 40);
        let d = a.difference(&b);
        assert_eq!(d.address_count(), 101 - 11 - 11);
        assert_eq!(d.range_count(), 3);
        assert!(!d.intersects(&b));
        assert_eq!(d.union(&a.intersect(&b)), a);
        assert!(a.difference(&Ipv4Set::full()).is_empty());
        assert_eq!(a.difference(&Ipv4Set::new()), a);
    }

    #[test]
    fn subset_and_overlap_predicates() {
        let mut provider = Ipv4Set::new();
        provider.insert_cidr(&cidr("198.51.100.0/24"));
        let mut inside = Ipv4Set::new();
        inside.insert_cidr(&cidr("198.51.100.128/25"));
        let mut straddling = Ipv4Set::new();
        straddling.insert_range(
            u32::from(Ipv4Addr::new(198, 51, 100, 200)),
            u32::from(Ipv4Addr::new(198, 51, 101, 5)),
        );
        assert!(inside.is_subset(&provider));
        assert!(!provider.is_subset(&inside));
        assert!(straddling.intersects(&provider));
        assert!(!straddling.is_subset(&provider));
        assert!(Ipv4Set::new().is_subset(&Ipv4Set::new()));
        assert!(!Ipv4Set::new().intersects(&provider));
    }

    #[test]
    fn provider_scale_counts() {
        // Table 4: outlook.com authorizes 491,520 addresses. A plausible
        // decomposition: 7 * /16 + 2 * /18 + /19 + /20 + ... — just verify
        // interval math at that scale with a synthetic decomposition.
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("40.92.0.0/15")); // 131072
        set.insert_cidr(&cidr("40.107.0.0/16")); // 65536
        set.insert_cidr(&cidr("52.100.0.0/14")); // 262144
        set.insert_cidr(&cidr("104.47.0.0/17")); // 32768
        assert_eq!(set.address_count(), 131072 + 65536 + 262144 + 32768);
        assert_eq!(set.address_count(), 491_520);
    }

    #[test]
    fn display_formats_ranges() {
        let mut set = Ipv4Set::new();
        set.insert_range(
            u32::from(Ipv4Addr::new(10, 0, 0, 1)),
            u32::from(Ipv4Addr::new(10, 0, 0, 1)),
        );
        set.insert_cidr(&cidr("192.0.2.0/31"));
        assert_eq!(set.to_string(), "{10.0.0.1, 192.0.2.0-192.0.2.1}");
    }

    #[test]
    fn to_cidrs_round_trips() {
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("10.0.0.0/9"));
        set.insert_cidr(&cidr("192.0.2.3"));
        set.insert_range(
            u32::from(Ipv4Addr::new(198, 51, 100, 1)),
            u32::from(Ipv4Addr::new(198, 51, 100, 14)),
        );
        let blocks = set.to_cidrs();
        let rebuilt: Ipv4Set = blocks.iter().copied().collect();
        assert_eq!(rebuilt, set);
        // Aligned single blocks decompose to themselves.
        let single: Ipv4Set = [cidr("172.16.0.0/12")].into_iter().collect();
        assert_eq!(single.to_cidrs(), vec![cidr("172.16.0.0/12")]);
    }

    #[test]
    fn to_cidrs_handles_full_space_and_edges() {
        assert_eq!(Ipv4Set::full().to_cidrs(), vec![cidr("0.0.0.0/0")]);
        let mut top = Ipv4Set::new();
        top.insert_addr(Ipv4Addr::new(255, 255, 255, 255));
        assert_eq!(top.to_cidrs(), vec![cidr("255.255.255.255")]);
        // An unaligned 3-address range needs two blocks (/31 + /32).
        let mut odd = Ipv4Set::new();
        odd.insert_range(2, 4);
        let blocks = odd.to_cidrs();
        assert_eq!(blocks.len(), 2);
        let rebuilt: Ipv4Set = blocks.into_iter().collect();
        assert_eq!(rebuilt.address_count(), 3);
    }

    #[test]
    fn sample_first_returns_lowest() {
        let mut set = Ipv4Set::new();
        set.insert_cidr(&cidr("192.0.2.0/24"));
        set.insert_cidr(&cidr("10.0.0.0/24"));
        assert_eq!(set.sample_first(), Some(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(Ipv4Set::new().sample_first(), None);
    }
}
