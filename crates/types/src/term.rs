//! The typed model of an SPF record: directives (qualifier + mechanism)
//! and modifiers, per RFC 7208 §4–§6, including the RFC 6652 reporting
//! modifiers (`ra`, `rp`, `rr`) whose near-absence (14 domains out of
//! 12.8 M) the paper reports in Section 5.5.
//!
//! `Display` implementations round-trip a parsed record back to canonical
//! text, which the notification templates and the netsim generator use to
//! publish records into zones.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cidr::{DualCidr, Ipv4Cidr, Ipv6Cidr};
use crate::macrostring::MacroString;

/// Result qualifier prefixed to a mechanism (RFC 7208 §4.6.2).
///
/// A directive with no explicit qualifier defaults to [`Qualifier::Pass`] —
/// the detail behind the paper's warning that "the default result for SPF
/// is not fail".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Qualifier {
    /// `+` — the host is authorized.
    Pass,
    /// `-` — the host is explicitly not authorized.
    Fail,
    /// `~` — not authorized, but not strongly enough for a hard policy.
    SoftFail,
    /// `?` — no assertion.
    Neutral,
}

impl Qualifier {
    /// The single-character prefix (`+`, `-`, `~`, `?`).
    pub fn symbol(self) -> char {
        match self {
            Qualifier::Pass => '+',
            Qualifier::Fail => '-',
            Qualifier::SoftFail => '~',
            Qualifier::Neutral => '?',
        }
    }

    /// Parse a qualifier character.
    pub fn from_symbol(c: char) -> Option<Qualifier> {
        match c {
            '+' => Some(Qualifier::Pass),
            '-' => Some(Qualifier::Fail),
            '~' => Some(Qualifier::SoftFail),
            '?' => Some(Qualifier::Neutral),
            _ => None,
        }
    }

    /// True for `-` and `~`: qualifiers that make a trailing `all`
    /// restrictive. The paper's "permissive all" finding (427,767 domains)
    /// counts records whose `all` term is missing or not restrictive.
    pub fn is_restrictive(self) -> bool {
        matches!(self, Qualifier::Fail | Qualifier::SoftFail)
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// An SPF mechanism (RFC 7208 §5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// `all` — matches every sender.
    All,
    /// `include:<domain>` — delegate matching to another record; matches
    /// only if the included evaluation returns `pass`.
    Include {
        /// The target domain-spec.
        domain: MacroString,
    },
    /// `a[:<domain>][/<cidr>]` — match the A/AAAA records of the domain.
    A {
        /// Optional explicit domain (defaults to the current domain).
        domain: Option<MacroString>,
        /// IPv4/IPv6 prefix lengths applied to the looked-up addresses.
        cidr: DualCidr,
    },
    /// `mx[:<domain>][/<cidr>]` — match the hosts in the domain's MX RRset.
    Mx {
        /// Optional explicit domain (defaults to the current domain).
        domain: Option<MacroString>,
        /// IPv4/IPv6 prefix lengths applied to the looked-up addresses.
        cidr: DualCidr,
    },
    /// `ptr[:<domain>]` — validated reverse-DNS match. Deprecated by
    /// RFC 7208; the paper counts 233,167 domains still using it.
    Ptr {
        /// Optional explicit domain (defaults to the current domain).
        domain: Option<MacroString>,
    },
    /// `ip4:<network>` — match an IPv4 address or network.
    Ip4 {
        /// The authorized network.
        cidr: Ipv4Cidr,
    },
    /// `ip6:<network>` — match an IPv6 address or network.
    Ip6 {
        /// The authorized network.
        cidr: Ipv6Cidr,
    },
    /// `exists:<domain>` — match if the (macro-expanded) domain resolves.
    Exists {
        /// The domain-spec whose existence is tested.
        domain: MacroString,
    },
}

impl Mechanism {
    /// The mechanism keyword as written in a record.
    pub fn keyword(&self) -> &'static str {
        match self {
            Mechanism::All => "all",
            Mechanism::Include { .. } => "include",
            Mechanism::A { .. } => "a",
            Mechanism::Mx { .. } => "mx",
            Mechanism::Ptr { .. } => "ptr",
            Mechanism::Ip4 { .. } => "ip4",
            Mechanism::Ip6 { .. } => "ip6",
            Mechanism::Exists { .. } => "exists",
        }
    }

    /// True for terms that trigger a DNS query and therefore count against
    /// the 10-lookup limit (RFC 7208 §4.6.4): `include`, `a`, `mx`, `ptr`,
    /// `exists` (the `redirect` modifier also counts; see
    /// [`Modifier::counts_as_dns_lookup`]).
    pub fn counts_as_dns_lookup(&self) -> bool {
        matches!(
            self,
            Mechanism::Include { .. }
                | Mechanism::A { .. }
                | Mechanism::Mx { .. }
                | Mechanism::Ptr { .. }
                | Mechanism::Exists { .. }
        )
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::All => write!(f, "all"),
            Mechanism::Include { domain } => write!(f, "include:{domain}"),
            Mechanism::A { domain, cidr } => {
                write!(f, "a")?;
                if let Some(d) = domain {
                    write!(f, ":{d}")?;
                }
                write!(f, "{cidr}")
            }
            Mechanism::Mx { domain, cidr } => {
                write!(f, "mx")?;
                if let Some(d) = domain {
                    write!(f, ":{d}")?;
                }
                write!(f, "{cidr}")
            }
            Mechanism::Ptr { domain } => {
                write!(f, "ptr")?;
                if let Some(d) = domain {
                    write!(f, ":{d}")?;
                }
                Ok(())
            }
            Mechanism::Ip4 { cidr } => write!(f, "ip4:{cidr}"),
            Mechanism::Ip6 { cidr } => write!(f, "ip6:{cidr}"),
            Mechanism::Exists { domain } => write!(f, "exists:{domain}"),
        }
    }
}

/// An SPF modifier (RFC 7208 §6, RFC 6652 §3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Modifier {
    /// `redirect=<domain>` — evaluate the target's record *in place of*
    /// this one. Unlike `include`, the result (including `fail`) is final,
    /// and any terms after a matching evaluation's `redirect` are ignored.
    Redirect {
        /// The delegation target.
        domain: MacroString,
    },
    /// `exp=<domain>` — fetch a human-readable explanation on `fail`.
    Exp {
        /// Where to fetch the explanation string.
        domain: MacroString,
    },
    /// `ra=<mailbox>` — abuse report address (RFC 6652).
    Ra {
        /// The report mailbox local-part.
        mailbox: String,
    },
    /// `rp=<percent>` — fraction of failures to report (RFC 6652).
    Rp {
        /// Percentage of failures to report.
        percent: u8,
    },
    /// `rr=<tags>` — which results to report (RFC 6652).
    Rr {
        /// Colon-separated report condition tags.
        tags: String,
    },
    /// Any other `name=value` pair. RFC 7208 requires receivers to ignore
    /// unknown modifiers, which is how the XSS payload the paper found
    /// (`xss=<script>…`) survives in a syntactically valid record.
    Unknown {
        /// The modifier name.
        name: String,
        /// The raw value.
        value: String,
    },
}

impl Modifier {
    /// The modifier name as written.
    pub fn name(&self) -> &str {
        match self {
            Modifier::Redirect { .. } => "redirect",
            Modifier::Exp { .. } => "exp",
            Modifier::Ra { .. } => "ra",
            Modifier::Rp { .. } => "rp",
            Modifier::Rr { .. } => "rr",
            Modifier::Unknown { name, .. } => name,
        }
    }

    /// `redirect` counts against the 10-lookup limit; other modifiers
    /// do not (`exp` is fetched only after evaluation completes).
    pub fn counts_as_dns_lookup(&self) -> bool {
        matches!(self, Modifier::Redirect { .. })
    }

    /// True for the RFC 6652 reporting extensions. The paper found only
    /// 14 domains using any of them.
    pub fn is_reporting_extension(&self) -> bool {
        matches!(
            self,
            Modifier::Ra { .. } | Modifier::Rp { .. } | Modifier::Rr { .. }
        )
    }
}

impl fmt::Display for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Modifier::Redirect { domain } => write!(f, "redirect={domain}"),
            Modifier::Exp { domain } => write!(f, "exp={domain}"),
            Modifier::Ra { mailbox } => write!(f, "ra={mailbox}"),
            Modifier::Rp { percent } => write!(f, "rp={percent}"),
            Modifier::Rr { tags } => write!(f, "rr={tags}"),
            Modifier::Unknown { name, value } => write!(f, "{name}={value}"),
        }
    }
}

/// A directive: optional qualifier plus mechanism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Directive {
    /// The effective qualifier ([`Qualifier::Pass`] when none was written).
    pub qualifier: Qualifier,
    /// Whether the qualifier was explicit in the source text; needed to
    /// round-trip `mx` vs `+mx` and for style diagnostics.
    pub explicit_qualifier: bool,
    /// The mechanism.
    pub mechanism: Mechanism,
}

impl Directive {
    /// A directive with an implied `+` qualifier.
    pub fn implicit(mechanism: Mechanism) -> Self {
        Directive {
            qualifier: Qualifier::Pass,
            explicit_qualifier: false,
            mechanism,
        }
    }

    /// A directive with an explicit qualifier.
    pub fn explicit(qualifier: Qualifier, mechanism: Mechanism) -> Self {
        Directive {
            qualifier,
            explicit_qualifier: true,
            mechanism,
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.explicit_qualifier {
            write!(f, "{}", self.qualifier)?;
        }
        write!(f, "{}", self.mechanism)
    }
}

/// A policy term: either a directive or a modifier, in record order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Term {
    /// A qualifier+mechanism pair.
    Directive(Directive),
    /// A `name=value` modifier.
    Modifier(Modifier),
}

impl Term {
    /// True if evaluating this term triggers a DNS query (10-lookup limit).
    pub fn counts_as_dns_lookup(&self) -> bool {
        match self {
            Term::Directive(d) => d.mechanism.counts_as_dns_lookup(),
            Term::Modifier(m) => m.counts_as_dns_lookup(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Directive(d) => write!(f, "{d}"),
            Term::Modifier(m) => write!(f, "{m}"),
        }
    }
}

/// A fully parsed SPF record: the `v=spf1` version tag plus its terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpfRecord {
    /// Terms in source order.
    pub terms: Vec<Term>,
}

impl SpfRecord {
    /// An empty `v=spf1` record.
    pub fn new(terms: Vec<Term>) -> Self {
        SpfRecord { terms }
    }

    /// Iterate only the directives.
    pub fn directives(&self) -> impl Iterator<Item = &Directive> {
        self.terms.iter().filter_map(|t| match t {
            Term::Directive(d) => Some(d),
            Term::Modifier(_) => None,
        })
    }

    /// Iterate only the modifiers.
    pub fn modifiers(&self) -> impl Iterator<Item = &Modifier> {
        self.terms.iter().filter_map(|t| match t {
            Term::Modifier(m) => Some(m),
            Term::Directive(_) => None,
        })
    }

    /// The `all` directive, if present.
    pub fn all_directive(&self) -> Option<&Directive> {
        self.directives()
            .find(|d| matches!(d.mechanism, Mechanism::All))
    }

    /// The `redirect` modifier, if present.
    pub fn redirect(&self) -> Option<&MacroString> {
        self.modifiers().find_map(|m| match m {
            Modifier::Redirect { domain } => Some(domain),
            _ => None,
        })
    }

    /// Number of terms that count against the 10-lookup limit when this
    /// record alone is evaluated (not counting recursion into includes).
    pub fn direct_lookup_terms(&self) -> usize {
        self.terms
            .iter()
            .filter(|t| t.counts_as_dns_lookup())
            .count()
    }

    /// True if the record ends the match chain restrictively: an `all`
    /// directive with `-` or `~`, or a redirect (whose target is then
    /// responsible). Mirrors the paper's "permissive all" check (§5.5).
    pub fn has_restrictive_all(&self) -> bool {
        match self.all_directive() {
            Some(d) => d.qualifier.is_restrictive(),
            None => self.redirect().is_some(),
        }
    }

    /// All include targets in source order (unexpanded macro strings).
    pub fn include_targets(&self) -> impl Iterator<Item = &MacroString> {
        self.directives().filter_map(|d| match &d.mechanism {
            Mechanism::Include { domain } => Some(domain),
            _ => None,
        })
    }
}

impl fmt::Display for SpfRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v=spf1")?;
        for term in &self.terms {
            write!(f, " {term}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macrostring::MacroString;

    fn ms(s: &str) -> MacroString {
        MacroString::parse(s).unwrap()
    }

    #[test]
    fn qualifier_symbols_round_trip() {
        for q in [
            Qualifier::Pass,
            Qualifier::Fail,
            Qualifier::SoftFail,
            Qualifier::Neutral,
        ] {
            assert_eq!(Qualifier::from_symbol(q.symbol()), Some(q));
        }
        assert_eq!(Qualifier::from_symbol('x'), None);
    }

    #[test]
    fn restrictive_qualifiers() {
        assert!(Qualifier::Fail.is_restrictive());
        assert!(Qualifier::SoftFail.is_restrictive());
        assert!(!Qualifier::Pass.is_restrictive());
        assert!(!Qualifier::Neutral.is_restrictive());
    }

    #[test]
    fn mechanism_display() {
        assert_eq!(Mechanism::All.to_string(), "all");
        assert_eq!(
            Mechanism::Include {
                domain: ms("_spf.google.com")
            }
            .to_string(),
            "include:_spf.google.com"
        );
        assert_eq!(
            Mechanism::A {
                domain: None,
                cidr: DualCidr::default()
            }
            .to_string(),
            "a"
        );
        assert_eq!(
            Mechanism::A {
                domain: Some(ms("puffin.example.com")),
                cidr: DualCidr { v4: 28, v6: 128 }
            }
            .to_string(),
            "a:puffin.example.com/28"
        );
        assert_eq!(
            Mechanism::Ip4 {
                cidr: "192.0.2.0/24".parse().unwrap()
            }
            .to_string(),
            "ip4:192.0.2.0/24"
        );
    }

    #[test]
    fn lookup_counting_terms() {
        assert!(Mechanism::Include {
            domain: ms("x.com")
        }
        .counts_as_dns_lookup());
        assert!(Mechanism::A {
            domain: None,
            cidr: DualCidr::default()
        }
        .counts_as_dns_lookup());
        assert!(Mechanism::Mx {
            domain: None,
            cidr: DualCidr::default()
        }
        .counts_as_dns_lookup());
        assert!(Mechanism::Ptr { domain: None }.counts_as_dns_lookup());
        assert!(Mechanism::Exists {
            domain: ms("x.com")
        }
        .counts_as_dns_lookup());
        assert!(!Mechanism::All.counts_as_dns_lookup());
        assert!(!Mechanism::Ip4 {
            cidr: "1.2.3.4".parse().unwrap()
        }
        .counts_as_dns_lookup());
        assert!(Modifier::Redirect {
            domain: ms("x.com")
        }
        .counts_as_dns_lookup());
        assert!(!Modifier::Exp {
            domain: ms("x.com")
        }
        .counts_as_dns_lookup());
    }

    #[test]
    fn record_display_round_trips_paper_example() {
        // The worked example from Section 2.1 of the paper.
        let record = SpfRecord::new(vec![
            Term::Directive(Directive::explicit(
                Qualifier::Pass,
                Mechanism::Mx {
                    domain: None,
                    cidr: DualCidr::default(),
                },
            )),
            Term::Directive(Directive::implicit(Mechanism::A {
                domain: Some(ms("puffin.example.com")),
                cidr: DualCidr { v4: 28, v6: 128 },
            })),
            Term::Directive(Directive::explicit(Qualifier::Fail, Mechanism::All)),
        ]);
        assert_eq!(
            record.to_string(),
            "v=spf1 +mx a:puffin.example.com/28 -all"
        );
        assert!(record.has_restrictive_all());
        assert_eq!(record.direct_lookup_terms(), 2);
    }

    #[test]
    fn permissive_all_detection() {
        let no_all = SpfRecord::new(vec![Term::Directive(Directive::implicit(Mechanism::Ip4 {
            cidr: "192.0.2.1".parse().unwrap(),
        }))]);
        assert!(!no_all.has_restrictive_all());

        let pass_all = SpfRecord::new(vec![Term::Directive(Directive::explicit(
            Qualifier::Pass,
            Mechanism::All,
        ))]);
        assert!(!pass_all.has_restrictive_all());

        let neutral_all = SpfRecord::new(vec![Term::Directive(Directive::explicit(
            Qualifier::Neutral,
            Mechanism::All,
        ))]);
        assert!(!neutral_all.has_restrictive_all());

        let redirected = SpfRecord::new(vec![Term::Modifier(Modifier::Redirect {
            domain: ms("_spf.example.com"),
        })]);
        assert!(redirected.has_restrictive_all());
    }

    #[test]
    fn reporting_extensions_flagged() {
        assert!(Modifier::Ra {
            mailbox: "abuse".into()
        }
        .is_reporting_extension());
        assert!(Modifier::Rp { percent: 50 }.is_reporting_extension());
        assert!(Modifier::Rr { tags: "all".into() }.is_reporting_extension());
        assert!(!Modifier::Redirect {
            domain: ms("x.com")
        }
        .is_reporting_extension());
        assert!(!Modifier::Unknown {
            name: "xss".into(),
            value: "<script>".into()
        }
        .is_reporting_extension());
    }

    #[test]
    fn include_targets_iterator() {
        let record = SpfRecord::new(vec![
            Term::Directive(Directive::implicit(Mechanism::Include {
                domain: ms("a.com"),
            })),
            Term::Directive(Directive::implicit(Mechanism::Ip4 {
                cidr: "192.0.2.1".parse().unwrap(),
            })),
            Term::Directive(Directive::implicit(Mechanism::Include {
                domain: ms("b.com"),
            })),
        ]);
        let targets: Vec<String> = record.include_targets().map(|m| m.to_string()).collect();
        assert_eq!(targets, vec!["a.com", "b.com"]);
    }
}
