//! SPF macro strings (RFC 7208 §7).
//!
//! Most `domain-spec` arguments in the wild are plain domain names, but the
//! grammar allows macro expansion (`%{i}`, `%{d2}`, `%{ir}.%{v}._spf.%{d}`…),
//! and the `exists` mechanism depends on it. This module provides the parsed
//! token representation; the *expansion* (which needs the evaluation context)
//! lives in `spf-core`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which value a macro letter expands to (RFC 7208 §7.2/§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacroLetter {
    /// `s` — sender (`local-part@domain`).
    Sender,
    /// `l` — local-part of the sender.
    LocalPart,
    /// `o` — domain of the sender.
    SenderDomain,
    /// `d` — the domain currently being evaluated.
    Domain,
    /// `i` — the sending IP, dot-separated for v4 / nibble format for v6.
    Ip,
    /// `p` — the validated reverse-DNS domain of the IP (discouraged).
    ValidatedDomain,
    /// `v` — `"in-addr"` for IPv4, `"ip6"` for IPv6.
    IpVersion,
    /// `h` — the HELO/EHLO domain.
    Helo,
    /// `c` — pretty-printed sending IP (exp-only).
    SmtpClientIp,
    /// `r` — the receiving host's name (exp-only).
    ReceivingDomain,
    /// `t` — current timestamp (exp-only).
    Timestamp,
}

impl MacroLetter {
    /// Parse a (lowercased) macro letter.
    pub fn from_char(c: char) -> Option<MacroLetter> {
        match c.to_ascii_lowercase() {
            's' => Some(MacroLetter::Sender),
            'l' => Some(MacroLetter::LocalPart),
            'o' => Some(MacroLetter::SenderDomain),
            'd' => Some(MacroLetter::Domain),
            'i' => Some(MacroLetter::Ip),
            'p' => Some(MacroLetter::ValidatedDomain),
            'v' => Some(MacroLetter::IpVersion),
            'h' => Some(MacroLetter::Helo),
            'c' => Some(MacroLetter::SmtpClientIp),
            'r' => Some(MacroLetter::ReceivingDomain),
            't' => Some(MacroLetter::Timestamp),
            _ => None,
        }
    }

    /// The canonical lowercase letter.
    pub fn as_char(self) -> char {
        match self {
            MacroLetter::Sender => 's',
            MacroLetter::LocalPart => 'l',
            MacroLetter::SenderDomain => 'o',
            MacroLetter::Domain => 'd',
            MacroLetter::Ip => 'i',
            MacroLetter::ValidatedDomain => 'p',
            MacroLetter::IpVersion => 'v',
            MacroLetter::Helo => 'h',
            MacroLetter::SmtpClientIp => 'c',
            MacroLetter::ReceivingDomain => 'r',
            MacroLetter::Timestamp => 't',
        }
    }

    /// `c`, `r`, `t` may only appear in `exp=` text (RFC 7208 §7.2).
    pub fn exp_only(self) -> bool {
        matches!(
            self,
            MacroLetter::SmtpClientIp | MacroLetter::ReceivingDomain | MacroLetter::Timestamp
        )
    }

    /// True when the letter expands from the SMTP *session* (sender
    /// identity, HELO name, receiver, timestamp) rather than from the
    /// `(ip, domain, zone)` triple alone. `d`, `i`, `v` and `p` are
    /// session-independent: they derive from the evaluated domain, the
    /// connecting address and the DNS — the inputs a per-`(domain, ip)`
    /// verdict cache keys on.
    pub fn session_dependent(self) -> bool {
        matches!(
            self,
            MacroLetter::Sender
                | MacroLetter::LocalPart
                | MacroLetter::SenderDomain
                | MacroLetter::Helo
                | MacroLetter::SmtpClientIp
                | MacroLetter::ReceivingDomain
                | MacroLetter::Timestamp
        )
    }
}

/// One parsed `%{...}` expansion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroExpand {
    /// Which value to substitute.
    pub letter: MacroLetter,
    /// Keep only the rightmost `n` parts after splitting (0 = all).
    pub digits: u8,
    /// Reverse the parts before truncation (`r` transformer).
    pub reverse: bool,
    /// Split delimiters (default `.`).
    pub delimiters: Vec<char>,
    /// URL-escape the result (uppercase macro letter).
    pub url_escape: bool,
}

impl fmt::Display for MacroExpand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letter = if self.url_escape {
            self.letter.as_char().to_ascii_uppercase()
        } else {
            self.letter.as_char()
        };
        write!(f, "%{{{letter}")?;
        if self.digits > 0 {
            write!(f, "{}", self.digits)?;
        }
        if self.reverse {
            write!(f, "r")?;
        }
        for d in &self.delimiters {
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

/// A single token of a macro string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacroToken {
    /// A run of literal characters.
    Literal(String),
    /// A `%{...}` expansion.
    Expand(MacroExpand),
    /// `%%` → literal `%`.
    PercentLiteral,
    /// `%_` → a space.
    Space,
    /// `%-` → URL-encoded space (`%20`).
    UrlSpace,
}

impl fmt::Display for MacroToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroToken::Literal(s) => f.write_str(s),
            MacroToken::Expand(e) => write!(f, "{e}"),
            MacroToken::PercentLiteral => f.write_str("%%"),
            MacroToken::Space => f.write_str("%_"),
            MacroToken::UrlSpace => f.write_str("%-"),
        }
    }
}

/// Errors raised while parsing a macro string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacroError {
    /// `%` followed by something other than `{`, `%`, `_`, `-`.
    BadPercentEscape {
        /// The character after `%`, or `None` at end of input.
        following: Option<char>,
    },
    /// `%{` without a closing `}`.
    UnterminatedMacro,
    /// Unknown macro letter.
    UnknownLetter {
        /// The unrecognized letter.
        letter: char,
    },
    /// Bad transformer section (e.g. `%{d1r5}`).
    BadTransformer {
        /// The full text between the braces.
        body: String,
    },
    /// The macro string is empty where a domain-spec is required.
    Empty,
    /// A character outside the visible ASCII range appeared.
    InvalidCharacter {
        /// The offending character.
        character: char,
    },
}

impl fmt::Display for MacroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroError::BadPercentEscape { following: Some(c) } => {
                write!(f, "invalid %-escape: %{c}")
            }
            MacroError::BadPercentEscape { following: None } => {
                write!(f, "record ends with a bare %")
            }
            MacroError::UnterminatedMacro => write!(f, "unterminated %{{...}} macro"),
            MacroError::UnknownLetter { letter } => write!(f, "unknown macro letter {letter:?}"),
            MacroError::BadTransformer { body } => {
                write!(f, "invalid macro transformer in %{{{body}}}")
            }
            MacroError::Empty => write!(f, "empty domain-spec"),
            MacroError::InvalidCharacter { character } => {
                write!(f, "invalid character {character:?} in domain-spec")
            }
        }
    }
}

impl std::error::Error for MacroError {}

/// A parsed macro string: the argument of `include:`, `a:`, `exists:`,
/// `redirect=` and friends.
///
/// ```
/// use spf_types::MacroString;
/// let plain = MacroString::parse("_spf.google.com").unwrap();
/// assert!(plain.is_literal());
/// let fancy = MacroString::parse("%{ir}.%{v}._spf.%{d2}").unwrap();
/// assert!(!fancy.is_literal());
/// assert_eq!(fancy.to_string(), "%{ir}.%{v}._spf.%{d2}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroString {
    tokens: Vec<MacroToken>,
}

impl MacroString {
    /// Parse a macro string. Allows an empty string only through
    /// [`MacroError::Empty`] so callers can decide whether empty is legal.
    pub fn parse(input: &str) -> Result<Self, MacroError> {
        if input.is_empty() {
            return Err(MacroError::Empty);
        }
        let mut tokens = Vec::new();
        let mut literal = String::new();
        let mut chars = input.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '%' {
                if !literal.is_empty() {
                    tokens.push(MacroToken::Literal(std::mem::take(&mut literal)));
                }
                match chars.next() {
                    Some('%') => tokens.push(MacroToken::PercentLiteral),
                    Some('_') => tokens.push(MacroToken::Space),
                    Some('-') => tokens.push(MacroToken::UrlSpace),
                    Some('{') => {
                        let mut body = String::new();
                        let mut closed = false;
                        for c2 in chars.by_ref() {
                            if c2 == '}' {
                                closed = true;
                                break;
                            }
                            body.push(c2);
                        }
                        if !closed {
                            return Err(MacroError::UnterminatedMacro);
                        }
                        tokens.push(MacroToken::Expand(Self::parse_expand(&body)?));
                    }
                    other => return Err(MacroError::BadPercentEscape { following: other }),
                }
            } else if !(' '..='~').contains(&c) || c == ' ' {
                return Err(MacroError::InvalidCharacter { character: c });
            } else {
                literal.push(c);
            }
        }
        if !literal.is_empty() {
            tokens.push(MacroToken::Literal(literal));
        }
        Ok(MacroString { tokens })
    }

    fn parse_expand(body: &str) -> Result<MacroExpand, MacroError> {
        let mut chars = body.chars();
        let letter_char = chars
            .next()
            .ok_or(MacroError::BadTransformer { body: body.into() })?;
        let letter = MacroLetter::from_char(letter_char).ok_or(MacroError::UnknownLetter {
            letter: letter_char,
        })?;
        let url_escape = letter_char.is_ascii_uppercase();
        let rest: String = chars.collect();

        let mut digits_str = String::new();
        let mut idx = 0;
        let bytes: Vec<char> = rest.chars().collect();
        while idx < bytes.len() && bytes[idx].is_ascii_digit() {
            digits_str.push(bytes[idx]);
            idx += 1;
        }
        let mut reverse = false;
        if idx < bytes.len() && (bytes[idx] == 'r' || bytes[idx] == 'R') {
            reverse = true;
            idx += 1;
        }
        let mut delimiters = Vec::new();
        while idx < bytes.len() {
            let d = bytes[idx];
            if matches!(d, '.' | '-' | '+' | ',' | '/' | '_' | '=') {
                delimiters.push(d);
                idx += 1;
            } else {
                return Err(MacroError::BadTransformer { body: body.into() });
            }
        }
        let digits: u8 = if digits_str.is_empty() {
            0
        } else {
            // RFC: "transformers = *DIGIT"; a huge digit count is legal
            // syntax but clamp to avoid overflow (128 > any label count).
            digits_str
                .parse::<u32>()
                .map(|d| d.min(128) as u8)
                .unwrap_or(128)
        };
        // "%{d0}" is invalid per the grammar note: DIGIT must be nonzero
        // when present.
        if !digits_str.is_empty() && digits == 0 {
            return Err(MacroError::BadTransformer { body: body.into() });
        }
        Ok(MacroExpand {
            letter,
            digits,
            reverse,
            delimiters,
            url_escape,
        })
    }

    /// The token sequence.
    pub fn tokens(&self) -> &[MacroToken] {
        &self.tokens
    }

    /// True if the string contains no macro expansions — the common case,
    /// where the argument is just a domain name.
    pub fn is_literal(&self) -> bool {
        self.tokens
            .iter()
            .all(|t| matches!(t, MacroToken::Literal(_)))
    }

    /// If [`Self::is_literal`], the concatenated literal text.
    pub fn literal_text(&self) -> Option<String> {
        if !self.is_literal() {
            return None;
        }
        let mut out = String::new();
        for t in &self.tokens {
            if let MacroToken::Literal(s) = t {
                out.push_str(s);
            }
        }
        Some(out)
    }

    /// Build a literal macro string without parsing (for generators).
    pub fn literal(text: &str) -> Self {
        MacroString {
            tokens: vec![MacroToken::Literal(text.to_string())],
        }
    }

    /// True if any expansion uses an exp-only letter (`c`, `r`, `t`) —
    /// a syntax error outside `exp=` per RFC 7208 §7.2.
    pub fn uses_exp_only_macros(&self) -> bool {
        self.tokens.iter().any(|t| match t {
            MacroToken::Expand(e) => e.letter.exp_only(),
            _ => false,
        })
    }

    /// True if any expansion uses a [`MacroLetter::session_dependent`]
    /// letter. An evaluation that expanded such a string is *not* a pure
    /// function of `(ip, domain, zone)`, so subtree verdict caches must
    /// skip it (see `spf_core::eval`'s cached evaluation path).
    pub fn uses_session_macros(&self) -> bool {
        self.tokens.iter().any(|t| match t {
            MacroToken::Expand(e) => e.letter.session_dependent(),
            _ => false,
        })
    }
}

impl fmt::Display for MacroString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_domain_is_literal() {
        let m = MacroString::parse("spf.protection.outlook.com").unwrap();
        assert!(m.is_literal());
        assert_eq!(m.literal_text().unwrap(), "spf.protection.outlook.com");
        assert_eq!(m.to_string(), "spf.protection.outlook.com");
    }

    #[test]
    fn empty_is_error() {
        assert_eq!(MacroString::parse(""), Err(MacroError::Empty));
    }

    #[test]
    fn simple_expand() {
        let m = MacroString::parse("%{d}").unwrap();
        assert!(!m.is_literal());
        assert_eq!(m.literal_text(), None);
        match &m.tokens()[0] {
            MacroToken::Expand(e) => {
                assert_eq!(e.letter, MacroLetter::Domain);
                assert_eq!(e.digits, 0);
                assert!(!e.reverse);
                assert!(e.delimiters.is_empty());
                assert!(!e.url_escape);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn transformers_parse() {
        let m = MacroString::parse("%{d2r-}").unwrap();
        match &m.tokens()[0] {
            MacroToken::Expand(e) => {
                assert_eq!(e.digits, 2);
                assert!(e.reverse);
                assert_eq!(e.delimiters, vec!['-']);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn uppercase_letter_means_url_escape() {
        let m = MacroString::parse("%{S}").unwrap();
        match &m.tokens()[0] {
            MacroToken::Expand(e) => {
                assert_eq!(e.letter, MacroLetter::Sender);
                assert!(e.url_escape);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn rfc_example_round_trips() {
        // From RFC 7208 §7.4.
        for s in [
            "%{s}",
            "%{o}",
            "%{ir}.%{v}._spf.%{d2}",
            "%{lr-}.lp._spf.%{d2}",
            "%{ir}.%{v}.%{l1r-}.lp._spf.%{d2}",
            "%{d2}.trusted-domains.example.net",
        ] {
            let m = MacroString::parse(s).unwrap();
            assert_eq!(m.to_string(), s, "round trip failed for {s}");
        }
    }

    #[test]
    fn percent_escapes() {
        let m = MacroString::parse("a%%b%_c%-d").unwrap();
        assert_eq!(m.to_string(), "a%%b%_c%-d");
        assert_eq!(m.tokens().len(), 7);
    }

    #[test]
    fn bad_escape_rejected() {
        assert_eq!(
            MacroString::parse("%x"),
            Err(MacroError::BadPercentEscape {
                following: Some('x')
            })
        );
        assert_eq!(
            MacroString::parse("abc%"),
            Err(MacroError::BadPercentEscape { following: None })
        );
    }

    #[test]
    fn unterminated_macro_rejected() {
        assert_eq!(
            MacroString::parse("%{d"),
            Err(MacroError::UnterminatedMacro)
        );
    }

    #[test]
    fn unknown_letter_rejected() {
        assert_eq!(
            MacroString::parse("%{z}"),
            Err(MacroError::UnknownLetter { letter: 'z' })
        );
    }

    #[test]
    fn zero_digits_rejected() {
        assert!(matches!(
            MacroString::parse("%{d0}"),
            Err(MacroError::BadTransformer { .. })
        ));
    }

    #[test]
    fn garbage_transformer_rejected() {
        assert!(matches!(
            MacroString::parse("%{d2x}"),
            Err(MacroError::BadTransformer { .. })
        ));
    }

    #[test]
    fn space_in_domain_spec_rejected() {
        // Section 5.3: "a whitespace in this position is causing 16.6% of
        // the errors" — the space after the colon makes the argument empty
        // at the term level; a space *inside* is an invalid character here.
        assert!(matches!(
            MacroString::parse("foo bar.com"),
            Err(MacroError::InvalidCharacter { character: ' ' })
        ));
    }

    #[test]
    fn exp_only_macros_detected() {
        assert!(MacroString::parse("%{c}").unwrap().uses_exp_only_macros());
        assert!(MacroString::parse("%{r}").unwrap().uses_exp_only_macros());
        assert!(MacroString::parse("%{t}").unwrap().uses_exp_only_macros());
        assert!(!MacroString::parse("%{d}").unwrap().uses_exp_only_macros());
    }
}
