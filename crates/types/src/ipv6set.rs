//! Interval-set arithmetic over the IPv6 address space.
//!
//! The paper restricts its quantitative analysis to IPv4 (only 0.5 % of
//! records carry `ip6` terms), but the population-scale overlap engine
//! needs the same set algebra over `u128` so `ip6:` authorizations can be
//! intersected and diffed like their IPv4 counterparts. [`Ipv6Set`]
//! mirrors [`crate::Ipv4Set`] exactly — the same canonical sorted /
//! disjoint / non-adjacent range representation, backed by the same
//! width-generic `interval` core — with one width-specific
//! wrinkle: the full space holds 2^128 addresses, one more than `u128`
//! can express, so [`Ipv6Set::address_count`] saturates at `u128::MAX`
//! (like [`crate::Ipv6Cidr::address_count`]).

use std::fmt;
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use crate::cidr::Ipv6Cidr;
use crate::interval;

/// A set of IPv6 addresses stored as sorted, disjoint, non-adjacent
/// inclusive `u128` ranges.
///
/// ```
/// use spf_types::{Ipv6Set, Ipv6Cidr};
/// let mut set = Ipv6Set::new();
/// set.insert_cidr(&"2001:db8::/126".parse::<Ipv6Cidr>().unwrap());
/// set.insert_cidr(&"2001:db8::4/126".parse::<Ipv6Cidr>().unwrap());
/// // Adjacent ranges coalesce:
/// assert_eq!(set.range_count(), 1);
/// assert_eq!(set.address_count(), 8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Set {
    /// Invariant: sorted by start; disjoint and non-adjacent, so the
    /// representation is canonical (the shared `interval` core preserves
    /// it).
    ranges: Vec<(u128, u128)>,
}

impl Ipv6Set {
    /// The empty set.
    pub fn new() -> Self {
        Ipv6Set { ranges: Vec::new() }
    }

    /// The full IPv6 space (what `ip6:::/0` authorizes).
    pub fn full() -> Self {
        Ipv6Set {
            ranges: vec![(0, u128::MAX)],
        }
    }

    /// True if no address is in the set.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Insert a single address.
    pub fn insert_addr(&mut self, addr: Ipv6Addr) {
        let v = u128::from(addr);
        self.insert_range(v, v);
    }

    /// Insert every address of a CIDR network.
    pub fn insert_cidr(&mut self, cidr: &Ipv6Cidr) {
        let (lo, hi) = cidr.range_u128();
        self.insert_range(lo, hi);
    }

    /// Insert an inclusive range, merging with overlapping/adjacent ranges.
    pub fn insert_range(&mut self, lo: u128, hi: u128) {
        interval::insert_range(&mut self.ranges, lo, hi);
    }

    /// Union with another set, in place.
    pub fn union_with(&mut self, other: &Ipv6Set) {
        if other.ranges.len() > 4 && self.ranges.len() > 4 {
            self.ranges = interval::union_merge(&self.ranges, &other.ranges);
        } else {
            for &(lo, hi) in &other.ranges {
                self.insert_range(lo, hi);
            }
        }
    }

    /// Union, returning a new set.
    pub fn union(&self, other: &Ipv6Set) -> Ipv6Set {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Intersection, returning a new set.
    ///
    /// ```
    /// use spf_types::Ipv6Set;
    /// let mut a = Ipv6Set::new();
    /// a.insert_cidr(&"2001:db8::/64".parse().unwrap());
    /// let mut b = Ipv6Set::new();
    /// b.insert_cidr(&"2001:db8::/65".parse().unwrap());
    /// assert_eq!(a.intersect(&b).address_count(), 1u128 << 63);
    /// ```
    pub fn intersect(&self, other: &Ipv6Set) -> Ipv6Set {
        Ipv6Set {
            ranges: interval::intersect(&self.ranges, &other.ranges),
        }
    }

    /// Set difference `self \ other`, returning a new set.
    ///
    /// ```
    /// use spf_types::Ipv6Set;
    /// let mut a = Ipv6Set::new();
    /// a.insert_range(0, 15);
    /// let mut b = Ipv6Set::new();
    /// b.insert_range(4, 7);
    /// let d = a.difference(&b);
    /// assert_eq!(d.address_count(), 12);
    /// assert!(!d.intersects(&b));
    /// ```
    pub fn difference(&self, other: &Ipv6Set) -> Ipv6Set {
        Ipv6Set {
            ranges: interval::difference(&self.ranges, &other.ranges),
        }
    }

    /// True when the two sets share at least one address.
    ///
    /// ```
    /// use spf_types::Ipv6Set;
    /// let mut a = Ipv6Set::new();
    /// a.insert_cidr(&"2001:db8::/32".parse().unwrap());
    /// let mut b = Ipv6Set::new();
    /// b.insert_addr("2001:db8::1".parse().unwrap());
    /// assert!(a.intersects(&b));
    /// ```
    pub fn intersects(&self, other: &Ipv6Set) -> bool {
        interval::intersects(&self.ranges, &other.ranges)
    }

    /// True when every address of `self` is in `other`.
    ///
    /// ```
    /// use spf_types::Ipv6Set;
    /// let mut provider = Ipv6Set::new();
    /// provider.insert_cidr(&"2001:db8::/48".parse().unwrap());
    /// let mut customer = Ipv6Set::new();
    /// customer.insert_cidr(&"2001:db8:0:42::/64".parse().unwrap());
    /// assert!(customer.is_subset(&provider));
    /// assert!(!provider.is_subset(&customer));
    /// ```
    pub fn is_subset(&self, other: &Ipv6Set) -> bool {
        interval::is_subset(&self.ranges, &other.ranges)
    }

    /// Membership test (binary search).
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        interval::contains(&self.ranges, u128::from(addr))
    }

    /// Total number of addresses in the set, saturating at `u128::MAX`
    /// (the full space holds 2^128 addresses, one more than `u128`
    /// expresses).
    pub fn address_count(&self) -> u128 {
        self.ranges.iter().fold(0u128, |acc, &(lo, hi)| {
            let width = if lo == 0 && hi == u128::MAX {
                u128::MAX
            } else {
                hi - lo + 1
            };
            acc.saturating_add(width)
        })
    }

    /// Number of disjoint ranges (representation size).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Iterate the disjoint inclusive ranges in ascending order.
    pub fn iter_ranges(&self) -> impl Iterator<Item = (Ipv6Addr, Ipv6Addr)> + '_ {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (Ipv6Addr::from(lo), Ipv6Addr::from(hi)))
    }

    /// An arbitrary member address, if the set is non-empty.
    pub fn sample_first(&self) -> Option<Ipv6Addr> {
        self.ranges.first().map(|&(lo, _)| Ipv6Addr::from(lo))
    }
}

impl FromIterator<Ipv6Cidr> for Ipv6Set {
    fn from_iter<T: IntoIterator<Item = Ipv6Cidr>>(iter: T) -> Self {
        let mut set = Ipv6Set::new();
        for cidr in iter {
            set.insert_cidr(&cidr);
        }
        set
    }
}

impl fmt::Display for Ipv6Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (lo, hi)) in self.iter_ranges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if lo == hi {
                write!(f, "{lo}")?;
            } else {
                write!(f, "{lo}-{hi}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv6Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_and_full() {
        let empty = Ipv6Set::new();
        assert!(empty.is_empty());
        assert_eq!(empty.address_count(), 0);
        let full = Ipv6Set::full();
        assert_eq!(full.address_count(), u128::MAX); // saturated
        assert!(full.contains("2001:db8::1".parse().unwrap()));
        let mut via_cidr = Ipv6Set::new();
        via_cidr.insert_cidr(&cidr("::/0"));
        assert_eq!(via_cidr, full);
    }

    #[test]
    fn insert_and_coalesce() {
        let mut set = Ipv6Set::new();
        set.insert_cidr(&cidr("2001:db8::/64"));
        set.insert_cidr(&cidr("2001:db8:0:1::/64")); // adjacent
        assert_eq!(set.range_count(), 1);
        assert_eq!(set.address_count(), 1u128 << 65);
        set.insert_cidr(&cidr("2001:db8::/63")); // already covered
        assert_eq!(set.range_count(), 1);
    }

    #[test]
    fn membership_and_sampling() {
        let mut set = Ipv6Set::new();
        set.insert_cidr(&cidr("2001:db8::/32"));
        assert!(set.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!set.contains("2001:db9::1".parse().unwrap()));
        assert_eq!(set.sample_first(), Some("2001:db8::".parse().unwrap()));
        assert_eq!(Ipv6Set::new().sample_first(), None);
    }

    #[test]
    fn algebra_round_trip() {
        let mut a = Ipv6Set::new();
        a.insert_cidr(&cidr("2001:db8::/48"));
        let mut b = Ipv6Set::new();
        b.insert_cidr(&cidr("2001:db8:0:8000::/49"));
        b.insert_cidr(&cidr("2001:db9::/48"));
        let i = a.intersect(&b);
        assert_eq!(i.address_count(), 1u128 << 79);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        let d = a.difference(&b);
        assert!(!d.intersects(&b));
        assert_eq!(d.union(&i), a);
    }

    #[test]
    fn boundary_at_u128_max() {
        let mut set = Ipv6Set::new();
        set.insert_range(u128::MAX - 1, u128::MAX);
        set.insert_range(u128::MAX - 3, u128::MAX - 2);
        assert_eq!(set.range_count(), 1);
        assert_eq!(set.address_count(), 4);
        assert!(set.contains(Ipv6Addr::from(u128::MAX)));
    }

    #[test]
    fn display_formats_ranges() {
        let mut set = Ipv6Set::new();
        set.insert_addr("2001:db8::1".parse().unwrap());
        set.insert_cidr(&cidr("2001:db8:1::/127"));
        assert_eq!(set.to_string(), "{2001:db8::1, 2001:db8:1::-2001:db8:1::1}");
    }

    #[test]
    fn serde_round_trips_past_u64() {
        // Range endpoints beyond u64 exercise the stub's string-encoded
        // u128 path.
        let mut set = Ipv6Set::new();
        set.insert_cidr(&cidr("2001:db8::/32"));
        set.insert_range(u128::MAX - 10, u128::MAX);
        let json = serde_json::to_string(&set).unwrap();
        let back: Ipv6Set = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }
}
