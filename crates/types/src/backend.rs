//! The unified engine-selection API (DESIGN.md §11).
//!
//! Every entry point that assembles a resolver/evaluator stack — the
//! `repro` CLI, the spoof matrix, the verdict service, the criterion
//! benches — selects it through one typed [`Backend`] value instead of
//! scattered `mode`/`wire_servers`/`use_compiled` knobs:
//!
//! * [`Transport`] — where DNS answers come from: the in-process zone
//!   store, the blocking socket-pool wire client, or the epoll reactor
//!   wire engine.
//! * [`Evaluator`] — how SPF verdicts are produced: bare tree-walks,
//!   memoized tree-walks, or compiled interval matchers.
//!
//! A backend round-trips through the CLI spelling
//! `transport[:servers][+evaluator]` (e.g. `wire-async:8+compiled`),
//! parsed by [`Backend::parse`] and rendered by its `Display`. The
//! [`EngineBuilder`] is the fluent construction path for code that
//! assembles a backend field by field.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Default authoritative server shards for wire transports.
pub const DEFAULT_WIRE_SERVERS: usize = 4;

/// Where DNS answers come from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Resolve in-process against the zone store (no sockets) — the
    /// fastest path and the default.
    #[default]
    Memory,
    /// The blocking wire client: a per-worker socket pool over a
    /// hash-sharded UDP/TCP server fleet, one in-flight query per
    /// worker thread.
    WireBlocking,
    /// The epoll reactor wire engine: one reactor thread multiplexing
    /// hundreds of in-flight queries over a few nonblocking sockets,
    /// with workers parked on completion slots.
    WireAsync,
}

impl Transport {
    /// Whether this transport runs over real sockets (and therefore
    /// needs a server fleet and honors [`Backend::servers`]).
    pub fn is_wire(self) -> bool {
        !matches!(self, Transport::Memory)
    }

    /// Parse a transport name. Accepts the canonical spellings
    /// (`memory`, `wire`, `wire-async`) plus the historical aliases
    /// `in-memory` and `async`.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "memory" | "in-memory" | "mem" => Some(Transport::Memory),
            "wire" | "wire-blocking" => Some(Transport::WireBlocking),
            "wire-async" | "async" => Some(Transport::WireAsync),
            _ => None,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transport::Memory => "memory",
            Transport::WireBlocking => "wire",
            Transport::WireAsync => "wire-async",
        })
    }
}

/// How SPF verdicts are produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Evaluator {
    /// Bare `check_host` tree-walks, no verdict memo.
    Interpreted,
    /// Tree-walks through the subtree verdict cache — the default
    /// everywhere a cache exists today.
    #[default]
    Cached,
    /// Compiled interval matchers with residual-term fallback to the
    /// (cached) evaluator; verdict-identical to the other two.
    Compiled,
}

impl Evaluator {
    /// Parse an evaluator name.
    pub fn parse(s: &str) -> Option<Evaluator> {
        match s {
            "interpreted" | "bare" => Some(Evaluator::Interpreted),
            "cached" | "memo" => Some(Evaluator::Cached),
            "compiled" | "tables" => Some(Evaluator::Compiled),
            _ => None,
        }
    }
}

impl fmt::Display for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Evaluator::Interpreted => "interpreted",
            Evaluator::Cached => "cached",
            Evaluator::Compiled => "compiled",
        })
    }
}

/// A complete engine selection: transport × shard count × evaluator.
///
/// `Copy` and serializable so it travels inside crawl configs the way
/// the old `mode`/`wire_servers` pair did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Backend {
    /// Where DNS answers come from.
    pub transport: Transport,
    /// Authoritative server shards for wire transports (clamped to ≥ 1
    /// by consumers; ignored by [`Transport::Memory`]).
    pub servers: usize,
    /// How SPF verdicts are produced.
    pub evaluator: Evaluator,
}

impl Default for Backend {
    fn default() -> Self {
        Backend {
            transport: Transport::Memory,
            servers: DEFAULT_WIRE_SERVERS,
            evaluator: Evaluator::Cached,
        }
    }
}

/// Why a backend spec failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendParseError {
    /// The transport segment names no known transport.
    UnknownTransport(String),
    /// The `+evaluator` suffix names no known evaluator.
    UnknownEvaluator(String),
    /// The `:servers` segment is not a positive integer.
    BadServers(String),
}

impl fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendParseError::UnknownTransport(s) => {
                write!(f, "unknown transport `{s}` (memory, wire, wire-async)")
            }
            BackendParseError::UnknownEvaluator(s) => {
                write!(f, "unknown evaluator `{s}` (interpreted, cached, compiled)")
            }
            BackendParseError::BadServers(s) => {
                write!(f, "server count `{s}` must be a positive integer")
            }
        }
    }
}

impl std::error::Error for BackendParseError {}

impl Backend {
    /// The in-memory backend with the default (cached) evaluator.
    pub fn memory() -> Backend {
        Backend::default()
    }

    /// The blocking wire backend over `servers` shards.
    pub fn wire(servers: usize) -> Backend {
        Backend {
            transport: Transport::WireBlocking,
            servers: servers.max(1),
            ..Backend::default()
        }
    }

    /// The epoll reactor wire backend over `servers` shards.
    pub fn wire_async(servers: usize) -> Backend {
        Backend {
            transport: Transport::WireAsync,
            servers: servers.max(1),
            ..Backend::default()
        }
    }

    /// Builder-style override of [`Backend::transport`].
    pub fn transport(mut self, transport: Transport) -> Backend {
        self.transport = transport;
        self
    }

    /// Builder-style override of [`Backend::servers`] (clamped to ≥ 1).
    pub fn servers(mut self, servers: usize) -> Backend {
        self.servers = servers.max(1);
        self
    }

    /// Builder-style override of [`Backend::evaluator`].
    pub fn evaluator(mut self, evaluator: Evaluator) -> Backend {
        self.evaluator = evaluator;
        self
    }

    /// Start a fluent [`EngineBuilder`] from the defaults.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Whether the evaluator compiles SPF trees to interval matchers.
    pub fn is_compiled(&self) -> bool {
        self.evaluator == Evaluator::Compiled
    }

    /// Parse the CLI spelling `transport[:servers][+evaluator]`.
    ///
    /// ```
    /// use spf_types::{Backend, Evaluator, Transport};
    /// let b = Backend::parse("wire-async:8+compiled").unwrap();
    /// assert_eq!(b.transport, Transport::WireAsync);
    /// assert_eq!(b.servers, 8);
    /// assert_eq!(b.evaluator, Evaluator::Compiled);
    /// ```
    pub fn parse(spec: &str) -> Result<Backend, BackendParseError> {
        let (head, evaluator) = match spec.split_once('+') {
            Some((head, ev)) => (
                head,
                Evaluator::parse(ev)
                    .ok_or_else(|| BackendParseError::UnknownEvaluator(ev.to_string()))?,
            ),
            None => (spec, Evaluator::default()),
        };
        let (name, servers) = match head.split_once(':') {
            Some((name, n)) => (
                name,
                n.parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| BackendParseError::BadServers(n.to_string()))?,
            ),
            None => (head, DEFAULT_WIRE_SERVERS),
        };
        let transport = Transport::parse(name)
            .ok_or_else(|| BackendParseError::UnknownTransport(name.to_string()))?;
        Ok(Backend {
            transport,
            servers,
            evaluator,
        })
    }
}

impl fmt::Display for Backend {
    /// The canonical spelling: `:servers` only for wire transports,
    /// `+evaluator` only off the default, so `Backend::default()`
    /// renders as plain `memory` and every rendering re-parses to an
    /// equal value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.transport)?;
        if self.transport.is_wire() {
            write!(f, ":{}", self.servers)?;
        }
        if self.evaluator != Evaluator::default() {
            write!(f, "+{}", self.evaluator)?;
        }
        Ok(())
    }
}

/// Fluent constructor for [`Backend`] — the assembly path for code that
/// decides transport, shard count, and evaluator in separate steps
/// (e.g. a CLI folding deprecated aliases into one selection).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineBuilder {
    backend: Backend,
}

impl EngineBuilder {
    /// Start from [`Backend::default`] (in-memory, cached evaluator).
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Select the DNS transport.
    pub fn transport(mut self, transport: Transport) -> EngineBuilder {
        self.backend.transport = transport;
        self
    }

    /// Select the wire shard count (clamped to ≥ 1).
    pub fn servers(mut self, servers: usize) -> EngineBuilder {
        self.backend.servers = servers.max(1);
        self
    }

    /// Select the SPF evaluator.
    pub fn evaluator(mut self, evaluator: Evaluator) -> EngineBuilder {
        self.backend.evaluator = evaluator;
        self
    }

    /// Finish: the assembled [`Backend`].
    pub fn build(self) -> Backend {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_memory_cached() {
        let b = Backend::default();
        assert_eq!(b.transport, Transport::Memory);
        assert_eq!(b.servers, DEFAULT_WIRE_SERVERS);
        assert_eq!(b.evaluator, Evaluator::Cached);
        assert!(!b.transport.is_wire());
        assert!(!b.is_compiled());
    }

    #[test]
    fn parse_accepts_every_shape() {
        assert_eq!(Backend::parse("memory").unwrap(), Backend::memory());
        assert_eq!(Backend::parse("wire").unwrap(), Backend::wire(4));
        assert_eq!(Backend::parse("wire:2").unwrap(), Backend::wire(2));
        assert_eq!(
            Backend::parse("wire-async:8+compiled").unwrap(),
            Backend::wire_async(8).evaluator(Evaluator::Compiled)
        );
        assert_eq!(
            Backend::parse("memory+interpreted").unwrap(),
            Backend::memory().evaluator(Evaluator::Interpreted)
        );
        // Historical aliases keep parsing.
        assert_eq!(
            Backend::parse("in-memory").unwrap().transport,
            Transport::Memory
        );
        assert_eq!(
            Backend::parse("async").unwrap().transport,
            Transport::WireAsync
        );
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(matches!(
            Backend::parse("tokio"),
            Err(BackendParseError::UnknownTransport(_))
        ));
        assert!(matches!(
            Backend::parse("wire+jit"),
            Err(BackendParseError::UnknownEvaluator(_))
        ));
        assert!(matches!(
            Backend::parse("wire:0"),
            Err(BackendParseError::BadServers(_))
        ));
        assert!(matches!(
            Backend::parse("wire:many"),
            Err(BackendParseError::BadServers(_))
        ));
    }

    #[test]
    fn display_round_trips() {
        let cases = [
            Backend::memory(),
            Backend::memory().evaluator(Evaluator::Compiled),
            Backend::wire(2),
            Backend::wire_async(8).evaluator(Evaluator::Interpreted),
        ];
        for b in cases {
            assert_eq!(Backend::parse(&b.to_string()).unwrap(), b, "{b}");
        }
        assert_eq!(Backend::memory().to_string(), "memory");
        assert_eq!(Backend::wire(4).to_string(), "wire:4");
        assert_eq!(
            Backend::wire_async(8)
                .evaluator(Evaluator::Compiled)
                .to_string(),
            "wire-async:8+compiled"
        );
    }

    #[test]
    fn builder_assembles_field_by_field() {
        let b = EngineBuilder::new()
            .transport(Transport::WireAsync)
            .servers(6)
            .evaluator(Evaluator::Compiled)
            .build();
        assert_eq!(b, Backend::wire_async(6).evaluator(Evaluator::Compiled));
        // Clamping matches Backend's builders.
        assert_eq!(EngineBuilder::new().servers(0).build().servers, 1);
        assert_eq!(Backend::builder().build(), Backend::default());
    }

    #[test]
    fn serde_round_trips() {
        let b = Backend::wire_async(3).evaluator(Evaluator::Compiled);
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<Backend>(&json).unwrap(), b);
    }
}
