//! Cross-population address-space overlap: how many domains authorize
//! each IPv4 address.
//!
//! The paper's headline risk is *shared* laxness — huge cloud ranges
//! appear in thousands of SPF trees at once, so one rented address can
//! spoof whole swaths of the population (§6, Tables 4–5). Answering
//! population-wide questions ("which single address is authorized by the
//! most domains?", "how much space is authorized by ≥ k domains?") by
//! probing every domain's [`crate::Ipv4Set`] per candidate address is
//! O(domains × probes); this module answers them in O(B log B) over the
//! *boundary multiset* instead:
//!
//! 1. every domain's flattened range set contributes a `+1` delta at each
//!    range start and a `−1` delta one past each range end into a
//!    [`CoverageMap`];
//! 2. a sweep in boundary order turns the accumulated deltas into
//!    [`WeightedRanges`] — disjoint ranges each tagged with the exact
//!    number of contributing domains.
//!
//! Determinism: a [`CoverageMap`] is the multiset-sum of its input
//! deltas, and integer addition is commutative and associative, so the
//! map — and everything computed from it — is identical however the
//! inputs are batched, sharded, or interleaved across crawl workers
//! (DESIGN.md §7 states the full argument).

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::ipset::Ipv4Set;

/// Pending coverage events are folded into the sorted spine once this
/// many accumulate, so a long accumulation runs in sorted batches
/// (`O(B log B)` overall) with bounded scratch memory.
const FLUSH_LIMIT: usize = 4096;

/// Accumulates `+1`/`−1` coverage deltas at IPv4 range boundaries.
///
/// Boundary coordinates are `u64` in `0..=2^32`: a range `[lo, hi]`
/// contributes `+1` at `lo` and `−1` at `hi + 1`, which for
/// `hi == u32::MAX` is the one-past-the-space boundary `2^32`.
///
/// The accumulator is *bounded*: it never stores per-domain sets, only
/// the merged delta spine (one entry per distinct boundary) plus a fixed
/// number (4096) of not-yet-merged events.
///
/// ```
/// use spf_types::{CoverageMap, Ipv4Set};
/// let mut tenant = Ipv4Set::new();
/// tenant.insert_cidr(&"198.51.100.0/24".parse().unwrap());
/// let mut map = CoverageMap::new();
/// map.add_set(&tenant);
/// map.add_set(&tenant.clone());
/// let weighted = map.into_weighted();
/// assert_eq!(weighted.max_coverage().unwrap().1, 2);
/// assert_eq!(weighted.total_covered(), 256);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    /// Sorted distinct boundaries with their net (non-zero) deltas.
    merged: Vec<(u64, i64)>,
    /// Recent unsorted events, folded into `merged` at [`FLUSH_LIMIT`].
    pending: Vec<(u64, i64)>,
    /// Sets accumulated (for observability; merging sums it).
    sets: u64,
}

impl CoverageMap {
    /// An empty accumulator.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Fold one domain's flattened range set into the accumulator.
    pub fn add_set(&mut self, set: &Ipv4Set) {
        for (lo, hi) in set.iter_ranges_u32() {
            self.push_event(lo as u64, 1);
            self.push_event(hi as u64 + 1, -1);
        }
        self.sets += 1;
    }

    /// Retract one domain's flattened range set from the accumulator —
    /// the exact inverse of [`CoverageMap::add_set`].
    ///
    /// Each range pushes the mirrored deltas (`−1` at `lo`, `+1` one past
    /// `hi`), so the multiset-sum argument that makes accumulation
    /// order-independent makes retraction exact as well: folding a set
    /// out after folding it in restores the map (and everything swept
    /// from it) byte-for-byte, because boundaries whose net delta
    /// returns to zero are dropped at the next flush. This is the
    /// churn engine's fold-out primitive (DESIGN.md §12).
    ///
    /// The caller must only retract sets previously folded in; removing
    /// a set that was never added trips the sweep's non-negative-weight
    /// debug assertion.
    pub fn remove_set(&mut self, set: &Ipv4Set) {
        for (lo, hi) in set.iter_ranges_u32() {
            self.push_event(lo as u64, -1);
            self.push_event(hi as u64 + 1, 1);
        }
        self.sets = self.sets.saturating_sub(1);
    }

    /// Sweep a snapshot of the accumulated boundaries into
    /// [`WeightedRanges`] without consuming the accumulator — the
    /// longitudinal engine re-sweeps its live map every epoch.
    pub fn weighted(&self) -> WeightedRanges {
        self.clone().into_weighted()
    }

    /// Fold another accumulator into this one (consumes it). The sum of
    /// delta multisets is order-independent, so merging per-worker maps
    /// in any order yields the same result.
    pub fn merge(&mut self, other: CoverageMap) {
        let CoverageMap {
            merged,
            pending,
            sets,
        } = other;
        for (boundary, delta) in merged.into_iter().chain(pending) {
            self.push_event(boundary, delta);
        }
        self.sets += sets;
    }

    /// Number of distinct boundaries accumulated so far (the sweep's `B`).
    pub fn boundary_count(&mut self) -> usize {
        self.flush();
        self.merged.len()
    }

    /// Number of range sets folded in.
    pub fn set_count(&self) -> u64 {
        self.sets
    }

    /// True when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.merged.is_empty() && self.pending.is_empty()
    }

    /// Sweep the accumulated boundaries into [`WeightedRanges`].
    pub fn into_weighted(mut self) -> WeightedRanges {
        self.flush();
        let mut ranges: Vec<WeightedRange> = Vec::with_capacity(self.merged.len());
        let mut weight: i64 = 0;
        let mut iter = self.merged.iter().peekable();
        while let Some(&(boundary, delta)) = iter.next() {
            weight += delta;
            debug_assert!(weight >= 0, "coverage weight went negative");
            if weight == 0 {
                continue;
            }
            // The segment runs from this boundary to just before the next
            // one; a final positive segment would mean an unmatched +1.
            let next = iter
                .peek()
                .map(|&&(b, _)| b)
                .expect("every +1 delta has a matching -1");
            ranges.push(WeightedRange {
                lo: boundary as u32,
                hi: (next - 1) as u32,
                weight: weight as u64,
            });
        }
        // Zero-net deltas were dropped by flush, so consecutive segments
        // always differ in weight or are separated by uncovered space —
        // the canonical form the byte-identity tests rely on.
        WeightedRanges { ranges }
    }

    fn push_event(&mut self, boundary: u64, delta: i64) {
        self.pending.push((boundary, delta));
        if self.pending.len() >= FLUSH_LIMIT {
            self.flush();
        }
    }

    /// Fold `pending` into the sorted `merged` spine, dropping boundaries
    /// whose net delta is zero.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable_by_key(|&(b, _)| b);
        let mut batch: Vec<(u64, i64)> = Vec::with_capacity(self.pending.len());
        for &(boundary, delta) in &self.pending {
            match batch.last_mut() {
                Some((last, sum)) if *last == boundary => *sum += delta,
                _ => batch.push((boundary, delta)),
            }
        }
        self.pending.clear();
        let mut out: Vec<(u64, i64)> = Vec::with_capacity(self.merged.len() + batch.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.merged.len() || j < batch.len() {
            let take_merged = match (self.merged.get(i), batch.get(j)) {
                (Some(&(mb, _)), Some(&(bb, _))) if mb == bb => {
                    let delta = self.merged[i].1 + batch[j].1;
                    if delta != 0 {
                        out.push((mb, delta));
                    }
                    i += 1;
                    j += 1;
                    continue;
                }
                (Some(&(mb, _)), Some(&(bb, _))) => mb < bb,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let entry = if take_merged {
                i += 1;
                self.merged[i - 1]
            } else {
                j += 1;
                batch[j - 1]
            };
            if entry.1 != 0 {
                out.push(entry);
            }
        }
        self.merged = out;
    }
}

/// One disjoint address range tagged with how many domains authorize it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedRange {
    /// First address of the range.
    pub lo: u32,
    /// Last address of the range (inclusive).
    pub hi: u32,
    /// Number of contributing domains covering every address in
    /// `lo..=hi`.
    pub weight: u64,
}

impl WeightedRange {
    /// Addresses in the range.
    pub fn width(&self) -> u64 {
        (self.hi as u64) - (self.lo as u64) + 1
    }
}

/// The sweep-line result: disjoint, ascending ranges, each tagged with
/// its exact domain count — the population's address-space overlap
/// profile.
///
/// Canonical form: every weight is positive and consecutive ranges are
/// either separated by uncovered space or differ in weight, so equal
/// profiles serialize byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedRanges {
    ranges: Vec<WeightedRange>,
}

impl WeightedRanges {
    /// No covered space.
    pub fn new() -> Self {
        WeightedRanges::default()
    }

    /// True when no address is covered by any domain.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of distinct weighted ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Iterate the weighted ranges in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = &WeightedRange> + '_ {
        self.ranges.iter()
    }

    /// The highest domain count any single address reaches.
    pub fn max_weight(&self) -> u64 {
        self.ranges.iter().map(|r| r.weight).max().unwrap_or(0)
    }

    /// The most-spoofable address: the lowest address attaining the
    /// maximum domain count, with that count.
    pub fn max_coverage(&self) -> Option<(Ipv4Addr, u64)> {
        let max = self.max_weight();
        if max == 0 {
            return None;
        }
        self.ranges
            .iter()
            .find(|r| r.weight == max)
            .map(|r| (Ipv4Addr::from(r.lo), max))
    }

    /// How many domains authorize `addr` (binary search).
    pub fn weight_at(&self, addr: Ipv4Addr) -> u64 {
        let v = u32::from(addr);
        let idx = self.ranges.partition_point(|r| r.lo <= v);
        if idx > 0 && self.ranges[idx - 1].hi >= v {
            self.ranges[idx - 1].weight
        } else {
            0
        }
    }

    /// The `k` most-covered addresses: one representative address (the
    /// range's low end) per weighted range, ranked by domain count
    /// descending with ties broken on the address, so the answer is a
    /// deterministic function of the profile alone. These are the
    /// shared-infrastructure vantage points the spoofability matrix
    /// evaluates the population from.
    ///
    /// ```
    /// use spf_types::{CoverageMap, Ipv4Set, Ipv4Cidr};
    /// let mut map = CoverageMap::new();
    /// let mut shared = Ipv4Set::new();
    /// shared.insert_cidr(&Ipv4Cidr::parse("10.0.0.0/24").unwrap());
    /// map.add_set(&shared);
    /// map.add_set(&shared);
    /// let mut own = Ipv4Set::new();
    /// own.insert_addr("192.0.2.7".parse().unwrap());
    /// map.add_set(&own);
    /// let weighted = map.into_weighted();
    /// let top = weighted.top_coverage(2);
    /// assert_eq!(top[0], ("10.0.0.0".parse().unwrap(), 2));
    /// assert_eq!(top[1], ("192.0.2.7".parse().unwrap(), 1));
    /// ```
    pub fn top_coverage(&self, k: usize) -> Vec<(Ipv4Addr, u64)> {
        let mut ranked: Vec<(Ipv4Addr, u64)> = self
            .ranges
            .iter()
            .map(|r| (Ipv4Addr::from(r.lo), r.weight))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Number of addresses authorized by at least `k` domains (`k = 0`
    /// trivially yields the full space).
    pub fn addresses_with_at_least(&self, k: u64) -> u64 {
        if k == 0 {
            return 1u64 << 32;
        }
        self.ranges
            .iter()
            .filter(|r| r.weight >= k)
            .map(|r| r.width())
            .sum()
    }

    /// Total covered space: addresses authorized by at least one domain.
    pub fn total_covered(&self) -> u64 {
        self.addresses_with_at_least(1)
    }

    /// The coverage histogram at power-of-two thresholds: `(k, addresses
    /// authorized by ≥ k domains)` for every power of two `k` up to
    /// [`WeightedRanges::max_weight`] (at least the `k = 1` row, so an
    /// empty profile still reports its zero).
    pub fn power_of_two_histogram(&self) -> Vec<(u64, u64)> {
        let max = self.max_weight();
        let mut out = vec![(1, self.addresses_with_at_least(1))];
        let mut k = 2u64;
        while k <= max {
            out.push((k, self.addresses_with_at_least(k)));
            k = k.saturating_mul(2);
        }
        out
    }
}

impl fmt::Display for WeightedRanges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}-{}×{}",
                Ipv4Addr::from(r.lo),
                Ipv4Addr::from(r.hi),
                r.weight
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u32, u32)]) -> Ipv4Set {
        let mut s = Ipv4Set::new();
        for &(lo, hi) in ranges {
            s.insert_range(lo, hi);
        }
        s
    }

    #[test]
    fn empty_map() {
        let map = CoverageMap::new();
        assert!(map.is_empty());
        let w = map.into_weighted();
        assert!(w.is_empty());
        assert_eq!(w.max_coverage(), None);
        assert_eq!(w.total_covered(), 0);
        assert_eq!(w.power_of_two_histogram(), vec![(1, 0)]);
    }

    #[test]
    fn overlapping_sets_stack() {
        let mut map = CoverageMap::new();
        map.add_set(&set(&[(0, 99)]));
        map.add_set(&set(&[(50, 149)]));
        map.add_set(&set(&[(75, 80)]));
        assert_eq!(map.set_count(), 3);
        let w = map.into_weighted();
        assert_eq!(w.max_coverage(), Some((Ipv4Addr::from(75u32), 3)));
        assert_eq!(w.weight_at(Ipv4Addr::from(60u32)), 2);
        assert_eq!(w.weight_at(Ipv4Addr::from(120u32)), 1);
        assert_eq!(w.weight_at(Ipv4Addr::from(150u32)), 0);
        assert_eq!(w.total_covered(), 150);
        assert_eq!(w.addresses_with_at_least(2), 50);
        assert_eq!(w.addresses_with_at_least(3), 6);
        assert_eq!(w.addresses_with_at_least(4), 0);
    }

    #[test]
    fn identical_ranges_cancel_cleanly() {
        let mut map = CoverageMap::new();
        for _ in 0..5 {
            map.add_set(&set(&[(10, 20)]));
        }
        let w = map.into_weighted();
        assert_eq!(w.range_count(), 1);
        assert_eq!(w.max_coverage(), Some((Ipv4Addr::from(10u32), 5)));
    }

    #[test]
    fn merge_is_order_independent() {
        let sets: Vec<Ipv4Set> = (0..40u32)
            .map(|i| set(&[(i * 3, i * 3 + 50), (1000 + i, 1000 + i)]))
            .collect();
        // All into one map.
        let mut all = CoverageMap::new();
        for s in &sets {
            all.add_set(s);
        }
        // Split across "workers", merged in reverse order.
        let mut shards: Vec<CoverageMap> = (0..4).map(|_| CoverageMap::new()).collect();
        for (i, s) in sets.iter().enumerate() {
            shards[i % 4].add_set(s);
        }
        let mut merged = CoverageMap::new();
        for shard in shards.into_iter().rev() {
            merged.merge(shard);
        }
        assert_eq!(merged.set_count(), all.set_count());
        assert_eq!(merged.into_weighted(), all.into_weighted());
    }

    #[test]
    fn top_of_space_boundary() {
        let mut map = CoverageMap::new();
        map.add_set(&set(&[(u32::MAX - 9, u32::MAX)]));
        map.add_set(&set(&[(u32::MAX, u32::MAX)]));
        let w = map.into_weighted();
        assert_eq!(w.max_coverage(), Some((Ipv4Addr::from(u32::MAX), 2)));
        assert_eq!(w.total_covered(), 10);
    }

    #[test]
    fn flush_limit_batching_matches_unbatched() {
        // More events than FLUSH_LIMIT exercises the batched merge path.
        let mut many = CoverageMap::new();
        let mut wide = Ipv4Set::new();
        for i in 0..3000u32 {
            wide.insert_range(i * 4, i * 4 + 1); // 3000 disjoint ranges
        }
        many.add_set(&wide);
        many.add_set(&wide.clone());
        let w = many.into_weighted();
        assert_eq!(w.max_weight(), 2);
        assert_eq!(w.total_covered(), 6000);
        assert_eq!(w.range_count(), 3000);
    }

    #[test]
    fn histogram_covers_power_of_two_ladder() {
        let mut map = CoverageMap::new();
        for _ in 0..5 {
            map.add_set(&set(&[(0, 9)]));
        }
        map.add_set(&set(&[(0, 99)]));
        let w = map.into_weighted();
        // max weight 6 → thresholds 1, 2, 4 (8 would cover nothing).
        assert_eq!(w.power_of_two_histogram(), vec![(1, 100), (2, 10), (4, 10)]);
    }

    #[test]
    fn remove_set_is_exact_inverse_of_add_set() {
        // Base population plus one extra domain; folding the extra
        // domain back out must restore the base profile byte-for-byte.
        let base_sets: Vec<Ipv4Set> = (0..10u32)
            .map(|i| set(&[(i * 7, i * 7 + 30), (500 + i * 2, 520 + i * 2)]))
            .collect();
        let extra = set(&[(3, 600), (4000, 4096)]);
        let mut base = CoverageMap::new();
        for s in &base_sets {
            base.add_set(s);
        }
        let mut churned = base.clone();
        churned.add_set(&extra);
        churned.remove_set(&extra);
        assert_eq!(churned.set_count(), base.set_count());
        let a = serde_json::to_string(&churned.into_weighted()).unwrap();
        let b = serde_json::to_string(&base.into_weighted()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn removing_last_domain_on_boundary_cancels_delta_exactly() {
        // Two domains share the boundary at 100; retracting the one that
        // *ends* there must cancel its −1 without disturbing the
        // survivor's +1 — the boundary stays, with the survivor's weight.
        let ends_at_boundary = set(&[(0, 99)]);
        let starts_at_boundary = set(&[(100, 199)]);
        let mut map = CoverageMap::new();
        map.add_set(&ends_at_boundary);
        map.add_set(&starts_at_boundary);
        map.remove_set(&ends_at_boundary);
        assert_eq!(map.boundary_count(), 2);
        let w = map.into_weighted();
        assert_eq!(w.range_count(), 1);
        assert_eq!(w.weight_at(Ipv4Addr::from(99u32)), 0);
        assert_eq!(w.weight_at(Ipv4Addr::from(100u32)), 1);

        // And retracting the only domain on a boundary cancels the ±1
        // pair entirely: the map returns to empty canonical form.
        let mut lone = CoverageMap::new();
        lone.add_set(&ends_at_boundary);
        lone.remove_set(&ends_at_boundary);
        assert_eq!(lone.boundary_count(), 0);
        assert!(lone.into_weighted().is_empty());
    }

    #[test]
    fn fold_out_never_retains_zero_weight_ranges() {
        // A wide set overlapping a narrow one: after the wide set folds
        // out, the formerly covered-by-both flanks drop to zero weight
        // and must vanish from the canonical sweep, not linger as
        // zero-weight ranges.
        let wide = set(&[(0, 1000)]);
        let narrow = set(&[(400, 600)]);
        let mut map = CoverageMap::new();
        map.add_set(&wide);
        map.add_set(&narrow);
        map.remove_set(&wide);
        let w = map.into_weighted();
        assert!(w.iter().all(|r| r.weight > 0));
        assert_eq!(w.range_count(), 1);
        assert_eq!(w.total_covered(), 201);
    }

    #[test]
    fn set_count_saturates_under_fold_out() {
        let s = set(&[(0, 9)]);
        let mut map = CoverageMap::new();
        map.add_set(&s);
        map.remove_set(&s);
        assert_eq!(map.set_count(), 0);
        // Over-retraction of the *count* saturates rather than wrapping;
        // the boundary deltas themselves are the caller's contract.
        let mut empty = CoverageMap::new();
        empty.remove_set(&set(&[]));
        assert_eq!(empty.set_count(), 0);
    }

    #[test]
    fn weighted_snapshot_matches_consuming_sweep() {
        let mut map = CoverageMap::new();
        map.add_set(&set(&[(0, 99)]));
        map.add_set(&set(&[(50, 149)]));
        let snap = map.weighted();
        assert_eq!(snap, map.into_weighted());
    }

    #[test]
    fn serde_round_trip_is_canonical() {
        let mut map = CoverageMap::new();
        map.add_set(&set(&[(0, 99)]));
        map.add_set(&set(&[(50, 149)]));
        let w = map.into_weighted();
        let json = serde_json::to_string(&w).unwrap();
        let back: WeightedRanges = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
