//! The shared interval-set core behind [`crate::Ipv4Set`] and
//! [`crate::Ipv6Set`].
//!
//! Both sets store sorted, disjoint, *non-adjacent* inclusive ranges over
//! an unsigned integer address space — `u32` for IPv4, `u128` for IPv6 —
//! which makes the representation canonical: two sets are equal exactly
//! when their range vectors are equal. Every operation here preserves
//! that invariant, so the public wrappers never have to re-normalize.
//!
//! The algebra (union, intersection, difference, subset/overlap tests) is
//! implemented once over a [`Bound`] trait rather than twice over the two
//! integer widths; the wrappers add only address-type conversions and the
//! width-specific counting rules (IPv4 counts fit `u64`, IPv6 counts
//! saturate `u128`).

/// An integer-like interval endpoint: totally ordered, with checked
/// successor/predecessor so boundary arithmetic at the ends of the
/// address space cannot wrap.
pub(crate) trait Bound: Copy + Ord {
    /// `self + 1`, or `None` at the top of the address space.
    fn succ(self) -> Option<Self>;
    /// `self - 1`, or `None` at the bottom of the address space.
    fn pred(self) -> Option<Self>;
}

impl Bound for u32 {
    fn succ(self) -> Option<Self> {
        self.checked_add(1)
    }
    fn pred(self) -> Option<Self> {
        self.checked_sub(1)
    }
}

impl Bound for u128 {
    fn succ(self) -> Option<Self> {
        self.checked_add(1)
    }
    fn pred(self) -> Option<Self> {
        self.checked_sub(1)
    }
}

/// Insert the inclusive range `[lo, hi]`, merging every stored range it
/// overlaps or touches. `O(log n)` to find the merge window plus the
/// splice.
pub(crate) fn insert_range<B: Bound>(ranges: &mut Vec<(B, B)>, lo: B, hi: B) {
    assert!(lo <= hi, "inverted range");
    // Ranges strictly before the merge window end at least two below
    // `lo` (i.e. not even adjacent). Stored end points are ascending
    // (sorted + disjoint), so partition_point applies.
    let before_window = lo.pred();
    let start = ranges.partition_point(|&(_, e)| before_window.is_some_and(|lp| e < lp));
    let mut merged_lo = lo;
    let mut merged_hi = hi;
    let mut end = start;
    while end < ranges.len() {
        let (s, e) = ranges[end];
        // A range starting at least two above `hi` cannot merge; when
        // `hi` is the top of the space nothing can start above it.
        if hi.succ().is_some_and(|hs| s > hs) {
            break;
        }
        merged_lo = merged_lo.min(s);
        merged_hi = merged_hi.max(e);
        end += 1;
    }
    ranges.splice(start..end, std::iter::once((merged_lo, merged_hi)));
    debug_assert!(check_invariants(ranges));
}

/// Union of two canonical range lists by merge-sort + one coalescing
/// pass — cheaper than repeated splicing when both sides are large.
pub(crate) fn union_merge<B: Bound>(a: &[(B, B)], b: &[(B, B)]) -> Vec<(B, B)> {
    let mut all: Vec<(B, B)> = Vec::with_capacity(a.len() + b.len());
    all.extend_from_slice(a);
    all.extend_from_slice(b);
    all.sort_unstable();
    let mut out: Vec<(B, B)> = Vec::with_capacity(all.len());
    for (lo, hi) in all {
        match out.last_mut() {
            // Overlapping or adjacent: extend the previous range.
            Some((_, last_hi)) if last_hi.succ().is_none_or(|s| lo <= s) => {
                *last_hi = (*last_hi).max(hi);
            }
            _ => out.push((lo, hi)),
        }
    }
    debug_assert!(check_invariants(&out));
    out
}

/// Intersection of two canonical range lists (two-pointer sweep,
/// `O(|a| + |b|)`). The output is canonical: pieces inherit the
/// disjointness gaps of whichever input ended first.
pub(crate) fn intersect<B: Bound>(a: &[(B, B)], b: &[(B, B)]) -> Vec<(B, B)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (alo, ahi) = a[i];
        let (blo, bhi) = b[j];
        let lo = alo.max(blo);
        let hi = ahi.min(bhi);
        if lo <= hi {
            out.push((lo, hi));
        }
        // Advance whichever range ends first.
        if ahi <= bhi {
            i += 1;
        } else {
            j += 1;
        }
    }
    debug_assert!(check_invariants(&out));
    out
}

/// `a \ b` over canonical range lists (two-pointer sweep). Each `a` range
/// is emitted minus the `b` ranges overlapping it; removed pieces cover at
/// least one address, so the output stays non-adjacent.
pub(crate) fn difference<B: Bound>(a: &[(B, B)], b: &[(B, B)]) -> Vec<(B, B)> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &(alo, ahi) in a {
        // Skip b ranges entirely below this a range; they can never
        // matter again because a ranges only move up.
        while j < b.len() && b[j].1 < alo {
            j += 1;
        }
        let mut cur = alo;
        let mut fully_covered = false;
        let mut k = j;
        while k < b.len() {
            let (blo, bhi) = b[k];
            if blo > ahi {
                break;
            }
            if blo > cur {
                out.push((cur, blo.pred().expect("blo > cur >= MIN")));
            }
            if bhi >= ahi {
                fully_covered = true;
                break;
            }
            cur = cur.max(bhi.succ().expect("bhi < ahi <= MAX"));
            k += 1;
        }
        if !fully_covered && cur <= ahi {
            out.push((cur, ahi));
        }
    }
    debug_assert!(check_invariants(&out));
    out
}

/// True when the two canonical range lists share at least one address
/// (two-pointer sweep with early exit).
pub(crate) fn intersects<B: Bound>(a: &[(B, B)], b: &[(B, B)]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (alo, ahi) = a[i];
        let (blo, bhi) = b[j];
        if alo.max(blo) <= ahi.min(bhi) {
            return true;
        }
        if ahi <= bhi {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// True when every address of `a` is in `b`. Because both lists are
/// canonical, each `a` range must sit inside a *single* `b` range — a
/// range spanning a `b` gap would contain an uncovered address.
pub(crate) fn is_subset<B: Bound>(a: &[(B, B)], b: &[(B, B)]) -> bool {
    let mut j = 0usize;
    for &(alo, ahi) in a {
        while j < b.len() && b[j].1 < alo {
            j += 1;
        }
        match b.get(j) {
            Some(&(blo, bhi)) if blo <= alo && ahi <= bhi => {}
            _ => return false,
        }
    }
    true
}

/// Membership test by binary search on range starts.
pub(crate) fn contains<B: Bound>(ranges: &[(B, B)], v: B) -> bool {
    let idx = ranges.partition_point(|&(s, _)| s <= v);
    idx > 0 && ranges[idx - 1].1 >= v
}

/// The canonical-representation invariant: sorted, disjoint, non-adjacent,
/// each range non-inverted.
pub(crate) fn check_invariants<B: Bound>(ranges: &[(B, B)]) -> bool {
    ranges.windows(2).all(|w| {
        let (_, e1) = w[0];
        let (s2, _) = w[1];
        e1 < s2 && e1.succ().is_none_or(|s| s < s2)
    }) && ranges.iter().all(|&(s, e)| s <= e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_carves_holes() {
        let a = vec![(0u32, 100)];
        let b = vec![(10u32, 20), (30, 40)];
        assert_eq!(difference(&a, &b), vec![(0, 9), (21, 29), (41, 100)]);
        assert_eq!(difference(&b, &a), Vec::<(u32, u32)>::new());
    }

    #[test]
    fn difference_at_space_edges() {
        let full = vec![(0u32, u32::MAX)];
        let mid = vec![(1u32, u32::MAX - 1)];
        assert_eq!(difference(&full, &mid), vec![(0, 0), (u32::MAX, u32::MAX)]);
        assert!(difference(&full, &full).is_empty());
    }

    #[test]
    fn intersect_two_pointer() {
        let a = vec![(0u32, 10), (20, 30)];
        let b = vec![(5u32, 25)];
        assert_eq!(intersect(&a, &b), vec![(5, 10), (20, 25)]);
        assert!(intersects(&a, &b));
        assert!(!intersects(&a, &[(11, 19)]));
    }

    #[test]
    fn subset_requires_single_covering_range() {
        let a = vec![(2u32, 8)];
        assert!(is_subset(&a, &[(0u32, 10)]));
        // {0-4, 6-10} has a hole at 5, so 2..=8 is not contained.
        assert!(!is_subset(&a, &[(0u32, 4), (6, 10)]));
        assert!(is_subset(&[], &[(0u32, 1)]));
        assert!(!is_subset(&[(0u32, 0)], &[]));
    }

    #[test]
    fn u128_bounds_do_not_wrap() {
        let mut ranges: Vec<(u128, u128)> = Vec::new();
        insert_range(&mut ranges, u128::MAX - 1, u128::MAX);
        insert_range(&mut ranges, 0, 1);
        assert_eq!(ranges.len(), 2);
        insert_range(&mut ranges, 2, u128::MAX - 2);
        assert_eq!(ranges, vec![(0, u128::MAX)]);
    }
}
