//! # spf-types — core data model for the Lazy Gatekeepers reproduction
//!
//! Shared, dependency-free types used by every other crate in the
//! workspace: validated [`DomainName`]s, IPv4/IPv6 [`Ipv4Cidr`]/[`Ipv6Cidr`]
//! networks with the paper's invalid-IP error taxonomy, the [`Ipv4Set`]/
//! [`Ipv6Set`] interval sets used to count and intersect authorized
//! addresses (Figure 5 / Table 4), the [`CoverageMap`]/[`WeightedRanges`]
//! cross-population overlap primitives (DESIGN.md §7), and the typed SPF
//! record model ([`SpfRecord`], [`Mechanism`], [`Qualifier`],
//! [`Modifier`], [`MacroString`]), plus two cross-crate plumbing APIs:
//! the typed engine selection ([`Backend`], [`Transport`], [`Evaluator`],
//! [`EngineBuilder`]) every pipeline assembler consumes, and the shared
//! telemetry formatter ([`Stats`], [`render_stats`]) every CLI counter
//! line renders through.
//!
//! Reproduces the data model underlying *Lazy Gatekeepers: A Large-Scale
//! Study on SPF Configuration in the Wild* (Czybik, Horlboge, Rieck —
//! IMC 2023).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cidr;
mod domain;
mod interval;
mod ipset;
mod ipv6set;
mod macrostring;
mod overlap;
mod stats;
mod term;

pub use backend::{
    Backend, BackendParseError, EngineBuilder, Evaluator, Transport, DEFAULT_WIRE_SERVERS,
};
pub use cidr::{parse_ipv4_strict, DualCidr, Ip4ParseError, Ip6ParseError, Ipv4Cidr, Ipv6Cidr};
pub use domain::{
    DomainError, DomainHashBuilder, DomainHasher, DomainName, MAX_LABEL_LEN, MAX_NAME_LEN,
};
pub use ipset::Ipv4Set;
pub use ipv6set::Ipv6Set;
pub use macrostring::{MacroError, MacroExpand, MacroLetter, MacroString, MacroToken};
pub use overlap::{CoverageMap, WeightedRange, WeightedRanges};
pub use stats::{render_stats, StatItem, StatValue, Stats};
pub use term::{Directive, Mechanism, Modifier, Qualifier, SpfRecord, Term};

/// The SPF version tag every record must start with (RFC 7208 §4.5).
pub const SPF_VERSION_TAG: &str = "v=spf1";

/// The RFC 7208 §4.6.4 limit on DNS-querying terms per evaluation.
pub const MAX_DNS_LOOKUPS: usize = 10;

/// The RFC 7208 §4.6.4 limit on "void lookups" (NXDOMAIN or empty answers)
/// per evaluation.
pub const MAX_VOID_LOOKUPS: usize = 2;
