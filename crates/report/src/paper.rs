//! The paper's published values, transcribed once so every experiment can
//! print paper-vs-measured comparisons from a single source of truth.

/// One Table 1 prior-work row: (study, year, list, size-label, spf, dmarc).
/// `None` means the study did not report DMARC.
pub type Table1Row = (
    &'static str,
    u16,
    &'static str,
    &'static str,
    f64,
    Option<f64>,
);

/// Table 1 prior-work rows.
pub const TABLE1_PRIOR: [Table1Row; 10] = [
    ("Gojmerac et al.", 2014, "Alexa", "1M", 0.367, Some(0.005)),
    ("Foster et al.", 2015, "Alexa", "1M", 0.422, Some(0.010)),
    ("Foster et al.", 2015, "Adobe", "1M", 0.436, Some(0.009)),
    ("Durumeric et al.", 2015, "Alexa", "1M", 0.470, Some(0.011)),
    ("Hu and Wang", 2018, "Alexa", "1M", 0.492, Some(0.051)),
    ("Kahraman", 2020, "Alexa", "1M", 0.736, None),
    ("Wang et al.", 2022, "Alexa", "1M", 0.541, Some(0.119)),
    ("Tatang et al.", 2020, "Other", "2M", 0.507, Some(0.115)),
    ("Kahraman", 2020, "None", "168M", 0.250, None),
    ("Our study", 2023, "Tranco", "12M", 0.565, Some(0.136)),
];

/// Table 1 "Our study" row for the top 1M: SPF and DMARC rates.
pub const TABLE1_OURS_TOP1M: (f64, f64) = (0.602, 0.226);
/// Table 1 "Our study" row for all 12M.
pub const TABLE1_OURS_ALL: (f64, f64) = (0.565, 0.136);
/// §5.1: SPF adoption among domains with an MX record (top 1M).
pub const SPF_AMONG_MX: f64 = 0.793;
/// §5.1: SPF adoption among MX-less domains.
pub const SPF_AMONG_NO_MX: f64 = 0.104;
/// §5.1: share of MX-less SPF records that are bare deny-alls.
pub const DENY_ALL_SHARE: f64 = 0.531;

/// Figure 1 counts (thousands): all, mx, spf, dmarc.
pub const FIGURE1_COUNTS: (u64, u64, u64, u64) = (12_823_598, 9_148_000, 7_251_736, 1_744_009);

/// Figure 2 error counts in display order.
pub const FIGURE2: [(&str, u64); 7] = [
    ("Syntax Error", 38_296),
    ("Too Many DNS Lookups", 49_421),
    ("Too Many Void DNS Lookups", 5_308),
    ("Redirect Loop", 58),
    ("Include Loop", 19_356),
    ("Record not found", 90_697),
    ("Invalid IP address", 7_882),
];

/// Total erroneous domains (2.9 % of SPF records).
pub const TOTAL_ERRORS: u64 = 211_018;
/// Transient DNS errors excluded from the analysis.
pub const DNS_TRANSIENT_ERRORS: u64 = 1_179;

/// Figure 3 record-not-found causes in display order.
pub const FIGURE3: [(&str, u64); 6] = [
    ("Other Errors", 3),
    ("No SPF Record", 48_824),
    ("Multiple SPF Records", 2_263),
    ("Domain not found", 36_743),
    ("Empty Result", 173),
    ("DNS Timeout", 2_691),
];

/// Figure 4: includes exceeding the lookup limit, affected domains, and
/// the bluehost share of those.
pub const FIGURE4_FAT_INCLUDES: u64 = 2_408;
/// Domains affected by fat includes.
pub const FIGURE4_AFFECTED: u64 = 85_915;
/// The bluehost-style record's share of affected domains.
pub const FIGURE4_BLUEHOST_SHARE: f64 = 0.796;
/// The bluehost-style record's lookup count.
pub const FIGURE4_BLUEHOST_LOOKUPS: usize = 14;

/// Table 2: per-class (before, after) counts.
pub const TABLE2: [(&str, u64, u64); 6] = [
    ("Syntax Error", 38_296, 36_103),
    ("Too Many DNS Lookups", 49_421, 48_630),
    ("Too Many Void DNS Lookups", 5_308, 5_127),
    ("Redirect Loop", 58, 56),
    ("Include Loop", 19_356, 18_617),
    ("Invalid IP address", 7_882, 7_498),
];
/// Table 2 totals (including the unlisted record-not-found class).
pub const TABLE2_TOTAL: (u64, u64) = (211_018, 204_087);
/// §5.4: notifications sent.
pub const NOTIFICATIONS_SENT: u64 = 111_951;
/// §5.4: thank-you replies / complaints.
pub const FEEDBACK: (u64, u64) = (300, 3);

/// Table 3: (prefix, direct-mechanism count, include count).
pub const TABLE3: [(u8, u64, u64); 17] = [
    (0, 54, 0),
    (1, 29, 2),
    (2, 47, 10),
    (3, 16, 7),
    (4, 7, 3),
    (5, 6, 0),
    (6, 4, 0),
    (7, 4, 0),
    (8, 2_162, 110),
    (9, 23, 3),
    (10, 131, 27),
    (11, 44, 50),
    (12, 313, 137),
    (13, 228, 210),
    (14, 1_178, 5_419),
    (15, 1_145, 5_389),
    (16, 11_126, 14_243),
];

/// §6.1: share of SPF domains allowing >100,000 addresses.
pub const LAX_RATE: f64 = 0.347;
/// §6.1: share with fewer than 20 allowed hosts ("one out of three").
pub const TIGHT_RATE: f64 = 1.0 / 3.0;
/// §6.2: domains lax through direct mechanisms.
pub const LAX_VIA_DIRECT: u64 = 9_994;
/// §6.3: domains lax through includes.
pub const LAX_VIA_INCLUDE: u64 = 2_507_097;
/// §6.3: share of SPF domains using include.
pub const INCLUDE_USAGE_RATE: f64 = 0.670;

/// Table 4 rows: (include, used-by, allowed-ips).
pub const TABLE4: [(&str, u64, u64); 20] = [
    ("spf.protection.outlook.com", 2_456_916, 491_520),
    ("_spf.google.com", 1_418_705, 328_960),
    ("websitewelcome.com", 414_695, 1_088_784),
    ("secureserver.net", 374_986, 505_104),
    ("relay.mailchannels.net", 289_112, 4_358),
    ("servers.mcsv.net", 263_343, 22_528),
    ("spf.mandrillapp.com", 236_293, 4_608),
    ("sendgrid.net", 215_497, 220_672),
    ("_spf.mailspamprotection.com", 212_418, 1_049),
    ("spf.efwd.registrar-servers.com", 196_465, 264),
    ("amazonses.com", 183_184, 64_512),
    ("mx.ovh.com", 176_191, 2),
    ("mailgun.org", 172_499, 36_312),
    ("_spf.mail.hostinger.com", 139_423, 4_358),
    ("zoho.com", 138_227, 6_209),
    ("mail.zendesk.com", 114_026, 26_112),
    ("spf.mailjet.com", 111_760, 5_120),
    ("spf.web-hosting.com", 111_405, 10_492),
    ("spf.sendinblue.com", 102_004, 87_040),
    ("spf.sender.xserver.jp", 92_411, 15),
];

/// Table 5 rows: (provider, success-label, domains, allowed-ips).
pub const TABLE5: [(usize, &str, u64, u64); 5] = [
    (1, "MTA", 24_959, 177_168),
    (2, "SMTP, MTA", 713, 514),
    (3, "MTA", 264, 2_052),
    (4, "SMTP", 159, 3_074),
    (5, "None", 0, 672),
];
/// Total spoofable domains in the case study.
pub const TABLE5_TOTAL_SPOOFABLE: u64 = 26_095;

/// Figure 6: top-level include count histogram (0..=10, then >10).
pub const FIGURE6: [u64; 12] = [
    2_395_029, 3_598_864, 765_073, 286_108, 118_405, 53_526, 22_618, 8_240, 2_744, 784, 195, 150,
];

/// §5.5 curiosities.
pub const PERMISSIVE_ALL: u64 = 427_767;
/// Domains using the deprecated `ptr` mechanism.
pub const PTR_MECHANISM: u64 = 233_167;
/// Domains publishing the deprecated type-99 SPF RR.
pub const DEPRECATED_SPF_RR: u64 = 107_646;
/// Domains using the RFC 6652 reporting modifiers.
pub const REPORTING_MODIFIERS: u64 = 14;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_sums_to_total_errors() {
        let sum: u64 = FIGURE2.iter().map(|(_, c)| *c).sum();
        assert_eq!(sum, TOTAL_ERRORS);
    }

    #[test]
    fn figure3_sums_to_record_not_found() {
        let sum: u64 = FIGURE3.iter().map(|(_, c)| *c).sum();
        let not_found = FIGURE2
            .iter()
            .find(|(l, _)| *l == "Record not found")
            .unwrap()
            .1;
        assert_eq!(sum, not_found);
    }

    #[test]
    fn figure6_sums_to_spf_total() {
        let sum: u64 = FIGURE6.iter().sum();
        assert_eq!(sum, FIGURE1_COUNTS.2);
    }

    #[test]
    fn table2_change_rates_match_section_5_4() {
        // Syntax errors improved by 5.73 %.
        let (_, before, after) = TABLE2[0];
        let change = 1.0 - after as f64 / before as f64;
        assert!((change - 0.0573).abs() < 0.0005);
        // Total improvement is 3.28 % (6,931 entries).
        let (before, after) = TABLE2_TOTAL;
        assert_eq!(before - after, 6_931);
        assert!((1.0 - after as f64 / before as f64 - 0.0328).abs() < 0.0005);
    }

    #[test]
    fn lax_counts_match_lax_rate() {
        // 9,994 direct + 2,507,097 include ≈ 34.7 % of SPF domains.
        let lax = LAX_VIA_DIRECT + LAX_VIA_INCLUDE;
        let rate = lax as f64 / FIGURE1_COUNTS.2 as f64;
        assert!((rate - LAX_RATE).abs() < 0.001);
    }

    #[test]
    fn include_usage_matches_figure6() {
        let with_includes: u64 = FIGURE6.iter().skip(1).sum();
        let rate = with_includes as f64 / FIGURE1_COUNTS.2 as f64;
        assert!((rate - INCLUDE_USAGE_RATE).abs() < 0.001);
    }
}
