//! Statistics primitives behind the paper's figures: CDFs over allowed-IP
//! counts (Figure 5), log₂ binning (Figures 5/8 axes), labelled histograms
//! (Figures 2/3/6/7) and 2-D log-log heatmaps (Figure 8).

use serde::{Deserialize, Serialize};

/// An empirical CDF over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Build from samples (unsorted input accepted).
    pub fn new(mut samples: Vec<u64>) -> Cdf {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_most(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly above `x`.
    pub fn fraction_above(&self, x: u64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// The `q`-quantile (0.0..=1.0), nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Sample the CDF at the powers of two `2^0 .. 2^32` — the x-axis of
    /// Figure 5. Returns `(exponent, fraction ≤ 2^exponent)` pairs.
    pub fn power_of_two_series(&self) -> Vec<(u32, f64)> {
        (0..=32)
            .map(|e| {
                let x = if e == 32 { u64::MAX } else { 1u64 << e };
                (e, self.fraction_at_most(x))
            })
            .collect()
    }

    /// The largest single rise of the CDF between consecutive powers of
    /// two, as `(exponent, rise)` — the paper highlights the jump between
    /// 400k and 700k (≈2^19).
    pub fn steepest_power_of_two_step(&self) -> (u32, f64) {
        let series = self.power_of_two_series();
        let mut best = (0u32, 0.0f64);
        for w in series.windows(2) {
            let rise = w[1].1 - w[0].1;
            if rise > best.1 {
                best = (w[1].0, rise);
            }
        }
        best
    }
}

/// A labelled histogram (ordered buckets with counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `(label, count)` in display order.
    pub buckets: Vec<(String, u64)>,
}

impl Histogram {
    /// Build from pairs.
    pub fn new(buckets: Vec<(String, u64)>) -> Histogram {
        Histogram { buckets }
    }

    /// Sum of all bucket counts.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|(_, c)| *c).sum()
    }

    /// The bucket with the highest count.
    pub fn peak(&self) -> Option<&(String, u64)> {
        self.buckets.iter().max_by_key(|(_, c)| *c)
    }

    /// Share of one bucket, by label.
    pub fn share(&self, label: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.buckets
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| *c as f64 / total as f64)
            .unwrap_or(0.0)
    }
}

/// The log₂ bin index of a count (0 for 0 or 1; clamped to 32).
pub fn log2_bin(value: u64) -> u32 {
    if value <= 1 {
        0
    } else {
        (63 - value.leading_zeros() as u64).min(32) as u32
    }
}

/// A 2-D density map over log₂-binned axes — Figure 8's heatmap of
/// include usage (y) against allowed IPs (x).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heatmap {
    /// `cells[y][x]` = number of points in that bin.
    pub cells: Vec<Vec<u64>>,
    /// Number of x bins (allowed-IP log₂, 0..=32).
    pub x_bins: usize,
    /// Number of y bins (usage log₂).
    pub y_bins: usize,
}

impl Heatmap {
    /// Build from `(x_value, y_value)` points.
    pub fn from_points(points: &[(u64, u64)], x_bins: usize, y_bins: usize) -> Heatmap {
        let mut cells = vec![vec![0u64; x_bins]; y_bins];
        for &(x, y) in points {
            let xi = (log2_bin(x) as usize).min(x_bins - 1);
            let yi = (log2_bin(y) as usize).min(y_bins - 1);
            cells[yi][xi] += 1;
        }
        Heatmap {
            cells,
            x_bins,
            y_bins,
        }
    }

    /// Total points.
    pub fn total(&self) -> u64 {
        self.cells.iter().flatten().sum()
    }

    /// The densest cell as `(x_bin, y_bin, count)`.
    pub fn hottest(&self) -> (usize, usize, u64) {
        let mut best = (0, 0, 0);
        for (y, row) in self.cells.iter().enumerate() {
            for (x, &c) in row.iter().enumerate() {
                if c > best.2 {
                    best = (x, y, c);
                }
            }
        }
        best
    }

    /// Mass (share of points) with x-bin ≤ `x` — the paper observes "a
    /// huge concentration, up to around 2^20 allowed IPs".
    pub fn mass_at_most_x(&self, x: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .cells
            .iter()
            .flat_map(|row| row.iter().take(x + 1))
            .sum();
        below as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::new(vec![1, 2, 2, 4, 10]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.fraction_at_most(2) - 0.6).abs() < 1e-9);
        assert!((cdf.fraction_below(2) - 0.2).abs() < 1e-9);
        assert!((cdf.fraction_above(4) - 0.2).abs() < 1e-9);
        assert_eq!(cdf.fraction_at_most(100), 1.0);
        assert_eq!(cdf.fraction_at_most(0), 0.0);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::new((1..=100).collect());
        assert_eq!(cdf.quantile(0.5), Some(50));
        assert_eq!(cdf.quantile(1.0), Some(100));
        assert_eq!(cdf.quantile(0.0), Some(1));
        assert_eq!(Cdf::new(vec![]).quantile(0.5), None);
    }

    #[test]
    fn cdf_power_series_monotonic() {
        let cdf = Cdf::new(vec![1, 20, 500_000, 5_000_000, 1 << 30]);
        let series = cdf.power_of_two_series();
        assert_eq!(series.len(), 33);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn steepest_step_found() {
        // Mass concentrated just under 2^19 (≈491k, the outlook step).
        let samples: Vec<u64> = std::iter::repeat_n(491_520u64, 80)
            .chain(std::iter::repeat_n(4u64, 20))
            .collect();
        let cdf = Cdf::new(samples);
        let (exp, rise) = cdf.steepest_power_of_two_step();
        assert_eq!(exp, 19);
        assert!(rise >= 0.8);
    }

    #[test]
    fn histogram_basics() {
        let h = Histogram::new(vec![
            ("/32".into(), 170),
            ("/24".into(), 40),
            ("/16".into(), 5),
        ]);
        assert_eq!(h.total(), 215);
        assert_eq!(h.peak().unwrap().0, "/32");
        assert!((h.share("/24") - 40.0 / 215.0).abs() < 1e-9);
        assert_eq!(h.share("/8"), 0.0);
    }

    #[test]
    fn log2_bins() {
        assert_eq!(log2_bin(0), 0);
        assert_eq!(log2_bin(1), 0);
        assert_eq!(log2_bin(2), 1);
        assert_eq!(log2_bin(3), 1);
        assert_eq!(log2_bin(4), 2);
        assert_eq!(log2_bin(1 << 19), 19);
        assert_eq!(log2_bin(u64::MAX), 32);
    }

    #[test]
    fn heatmap_binning() {
        let points = vec![(491_520u64, 2_456_916u64), (2, 176_191), (4_358, 289_112)];
        let map = Heatmap::from_points(&points, 33, 33);
        assert_eq!(map.total(), 3);
        let (x, y, c) = map.hottest();
        assert_eq!(c, 1);
        assert!(x <= 32 && y <= 32);
        assert_eq!(map.mass_at_most_x(32), 1.0);
    }

    #[test]
    fn heatmap_mass_concentration() {
        // 90 small includes, 10 huge ones: mass ≤ 2^20 should be 0.9.
        let mut points = vec![(1u64 << 10, 100u64); 90];
        points.extend(vec![(1u64 << 30, 100u64); 10]);
        let map = Heatmap::from_points(&points, 33, 33);
        assert!((map.mass_at_most_x(20) - 0.9).abs() < 1e-9);
    }
}
