//! Plain-text rendering: aligned tables (Tables 1–5), horizontal bar
//! charts (Figures 2/3/6/7) and series dumps (Figure 5's CDF) — the
//! repro harness prints the same rows and series the paper reports.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::stats::{Cdf, Histogram};

/// A renderable table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each must have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build a table; panics if a row width mismatches the headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns (first column left, rest right).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "=".repeat(line_len));
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                header_line.push_str("  ");
            }
            if i == 0 {
                let _ = write!(header_line, "{h:<width$}", width = widths[i]);
            } else {
                let _ = write!(header_line, "{h:>width$}", width = widths[i]);
            }
        }
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{}", "-".repeat(line_len));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(line, "{cell:<width$}", width = widths[i]);
                } else {
                    let _ = write!(line, "{cell:>width$}", width = widths[i]);
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

/// Render a histogram as a horizontal ASCII bar chart (Figures 2/3/6/7).
pub fn render_bars(title: &str, histogram: &Histogram, max_width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let peak = histogram.peak().map(|(_, c)| *c).unwrap_or(0).max(1);
    let label_width = histogram
        .buckets
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(0);
    for (label, count) in &histogram.buckets {
        let bar_len = ((*count as f64 / peak as f64) * max_width as f64).round() as usize;
        let _ = writeln!(
            out,
            "  {label:<label_width$} |{} {count}",
            "#".repeat(bar_len),
        );
    }
    out
}

/// Render a CDF sampled at powers of two (Figure 5).
pub fn render_cdf(title: &str, cdf: &Cdf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "  {:>6}  {:>12}  {:>8}", "x", "(= 2^k)", "CDF");
    for (exp, frac) in cdf.power_of_two_series() {
        // Only print rows where something happens, plus the anchors.
        let _ = writeln!(
            out,
            "  {:>6}  {:>12}  {:>7.4}",
            format!("2^{exp}"),
            1u64 << exp.min(32),
            frac
        );
    }
    out
}

/// Format a count with thousands separators, paper-style (`2 456 916`).
pub fn fmt_count(n: u64) -> String {
    let raw = n.to_string();
    let bytes = raw.as_bytes();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Format a fraction as a percentage with one decimal (`56.5 %`).
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1} %", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Table X: demo", &["Study", "SPF", "DM."]);
        t.push_row(vec!["Our study".into(), "60.2 %".into(), "22.6 %".into()]);
        t.push_row(vec![
            "Gojmerac et al.".into(),
            "36.7 %".into(),
            "0.5 %".into(),
        ]);
        let rendered = t.render();
        assert!(rendered.contains("Table X: demo"));
        assert!(rendered.contains("Our study"));
        // Right-aligned numeric columns line up:
        let lines: Vec<&str> = rendered.lines().collect();
        let a = lines.iter().find(|l| l.contains("60.2")).unwrap();
        let b = lines.iter().find(|l| l.contains("36.7")).unwrap();
        assert_eq!(a.find("60.2"), b.find("36.7"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn bars_scale_to_peak() {
        let h = Histogram::new(vec![("big".into(), 100), ("small".into(), 50)]);
        let out = render_bars("Figure Y", &h, 10);
        assert!(out.contains("##########")); // the peak
        assert!(out.contains("#####")); // half
        assert!(out.contains("100"));
    }

    #[test]
    fn cdf_render_has_33_rows() {
        let cdf = Cdf::new(vec![1, 1000, 1 << 20]);
        let out = render_cdf("Figure 5", &cdf);
        assert_eq!(out.lines().count(), 2 + 33);
        assert!(out.contains("2^20"));
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(2_456_916), "2,456,916");
        assert_eq!(fmt_count(12_823_598), "12,823,598");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(fmt_percent(0.565), "56.5 %");
        assert_eq!(fmt_percent(0.029), "2.9 %");
    }
}
